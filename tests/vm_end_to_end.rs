//! End-to-end integration tests: a VM built from the public API, running
//! guest code that crosses every substrate (vCPU, MMU, devices, virtio,
//! block, memory).

use virtlab::block::SECTOR_SIZE;
use virtlab::devices::MmioDevice;
use virtlab::types::{GuestAddress, PAGE_SIZE};
use virtlab::vcpu::{Assembler, ExecMode, Instr, Reg, Workload, WorkloadKind};
use virtlab::virtio::blk::{VIRTIO_BLK_T_IN, VIRTIO_BLK_T_OUT};
use virtlab::virtio::{DriverQueue, QueueLayout, VirtioBlk};
use virtlab::vmm::{layout, DiskConfig, HypercallNr, VmLifecycle};
use virtlab::{ByteSize, Vm, VmConfig};

#[test]
fn guest_program_crosses_serial_rtc_and_memory() {
    let mut vm = Vm::new(VmConfig::new("e2e").with_memory(ByteSize::mib(8))).unwrap();
    let mut asm = Assembler::new();
    let r = Reg::new;
    // Print "ok", read the RTC, store the time, halt.
    for &b in b"ok" {
        asm.push(Instr::MovImm {
            rd: r(1),
            imm: b as i32,
        });
        asm.push(Instr::Hypercall {
            nr: HypercallNr::ConsolePutChar.raw(),
            rd: r(2),
            rs1: r(1),
        });
    }
    asm.load_const(r(3), layout::RTC_MMIO.0 + 8);
    asm.push(Instr::Load {
        rd: r(4),
        rs1: r(3),
        imm: 0,
    });
    asm.load_const(r(5), 0x20_0000);
    asm.push(Instr::Store {
        rs2: r(4),
        rs1: r(5),
        imm: 0,
    });
    asm.push(Instr::Halt);

    vm.load_program(&asm.assemble().unwrap(), 0x1000).unwrap();
    let stats = vm.run_to_halt().unwrap();

    assert_eq!(vm.serial_output(), "ok");
    assert_eq!(vm.lifecycle(), VmLifecycle::Halted);
    assert!(stats.hypercalls >= 2);
    assert!(stats.mmio_exits >= 1);
    // The stored RTC value reflects simulated time actually elapsed.
    let stored = vm.memory().read_u64(GuestAddress(0x20_0000)).unwrap();
    assert!(stored > 0 && stored < 1_000_000_000);
}

#[test]
fn all_exec_modes_produce_identical_results_with_different_costs() {
    let mut times = Vec::new();
    for mode in ExecMode::ALL {
        let mut vm = Vm::new(
            VmConfig::new("modes")
                .with_memory(ByteSize::mib(8))
                .with_exec_mode(mode),
        )
        .unwrap();
        let w = Workload::new(WorkloadKind::PrivilegedHeavy { iterations: 2_000 }).unwrap();
        vm.load_workload(&w).unwrap();
        let stats = vm.run_to_halt().unwrap();
        assert_eq!(vm.lifecycle(), VmLifecycle::Halted, "{mode:?}");
        times.push((mode, stats.sim_time, stats.instructions));
    }
    // Same guest work everywhere.
    assert_eq!(times[0].2, times[1].2);
    assert_eq!(times[1].2, times[2].2);
    // Trap-and-emulate is the slowest on this exit-heavy guest; paravirt and
    // hardware-assist are both much faster.
    let te = times
        .iter()
        .find(|(m, ..)| *m == ExecMode::TrapAndEmulate)
        .unwrap()
        .1;
    let hw = times
        .iter()
        .find(|(m, ..)| *m == ExecMode::HardwareAssist)
        .unwrap()
        .1;
    assert!(
        te > hw,
        "trap-and-emulate {te} should exceed hw-assist {hw}"
    );
}

#[test]
fn virtio_blk_io_through_a_vm() {
    let vm = Vm::new(
        VmConfig::new("disk")
            .with_memory(ByteSize::mib(8))
            .with_disk(DiskConfig::new("system", ByteSize::mib(2))),
    )
    .unwrap();

    // Host-side driver: set up a queue in guest memory and push a write + read.
    let (queue_layout, rings_end) = QueueLayout::contiguous(GuestAddress(0x10_0000), 64).unwrap();
    vm.setup_blk_queue(queue_layout).unwrap();
    let mut driver = DriverQueue::new(
        queue_layout,
        GuestAddress((rings_end.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)),
        512 * 1024,
    );
    driver.init(vm.memory()).unwrap();

    let payload = vec![0x5au8; SECTOR_SIZE as usize];
    let write_header = VirtioBlk::request_header(VIRTIO_BLK_T_OUT, 7);
    driver
        .add_chain(vm.memory(), &[&write_header, &payload], &[1])
        .unwrap();
    let read_header = VirtioBlk::request_header(VIRTIO_BLK_T_IN, 7);
    driver
        .add_chain(vm.memory(), &[&read_header], &[SECTOR_SIZE as u32, 1])
        .unwrap();

    // Ring the doorbell through the MMIO register, exactly as the guest would.
    let transport = vm.virtio_blk().unwrap();
    transport
        .lock()
        .write(virtlab::virtio::mmio::regs::QUEUE_NOTIFY, 0, 4);

    // Both completions arrive and the read saw the written data.
    let (_, len_w) = driver.poll_used(vm.memory()).unwrap().unwrap();
    assert_eq!(len_w, 1);
    let (_, len_r) = driver.poll_used(vm.memory()).unwrap().unwrap();
    assert_eq!(len_r as u64, SECTOR_SIZE + 1);
    assert!(vm.interrupts().is_pending(layout::irq::VIRTIO_BLK));
}

#[test]
fn balloon_reclaims_memory_from_a_vm() {
    let vm = Vm::new(
        VmConfig::new("balloon")
            .with_memory(ByteSize::mib(8))
            .with_balloon(),
    )
    .unwrap();
    let total_pages = vm.memory().total_pages();
    vm.set_balloon_pages(total_pages / 2).unwrap();
    let stats = vm.balloon().unwrap().stats();
    assert_eq!(stats.ballooned, ByteSize::pages_of(total_pages / 2));
    assert_eq!(stats.usable + stats.ballooned, stats.configured);
    // Deflate back.
    vm.set_balloon_pages(0).unwrap();
    assert_eq!(vm.balloon().unwrap().held_pages(), 0);
}

#[test]
fn two_vms_exchange_frames_over_a_shared_switch() {
    use virtlab::net::{Frame, MacAddr, ETHERTYPE_IPV4};
    use virtlab::virtio::net::{RX_QUEUE, TX_QUEUE};
    use virtlab::virtio::VirtioNet;

    let mut vmm = virtlab::Vmm::new("net-host");
    let a = vmm
        .create_vm(
            VmConfig::new("vm-a")
                .with_memory(ByteSize::mib(8))
                .with_net(),
        )
        .unwrap();
    let b = vmm
        .create_vm(
            VmConfig::new("vm-b")
                .with_memory(ByteSize::mib(8))
                .with_net(),
        )
        .unwrap();

    // Configure queues on both NICs (host-side driver stand-in).
    let setup = |vm: &Vm| {
        let (rx, rx_end) = QueueLayout::contiguous(GuestAddress(0x10_0000), 64).unwrap();
        let (tx, tx_end) = QueueLayout::contiguous(GuestAddress(rx_end.0 + 0x1000), 64).unwrap();
        let transport = vm.virtio_net().unwrap();
        transport.lock().setup_queue(RX_QUEUE, rx).unwrap();
        transport.lock().setup_queue(TX_QUEUE, tx).unwrap();
        let rx_drv = DriverQueue::new(rx, GuestAddress(tx_end.0 + 0x1000), 256 * 1024);
        let tx_drv = DriverQueue::new(tx, GuestAddress(tx_end.0 + 0x1000 + 256 * 1024), 256 * 1024);
        rx_drv.init(vm.memory()).unwrap();
        tx_drv.init(vm.memory()).unwrap();
        (rx_drv, tx_drv)
    };
    let (_a_rx, mut a_tx) = setup(vmm.vm(a).unwrap());
    let (mut b_rx, mut b_tx) = setup(vmm.vm(b).unwrap());

    // b posts receive buffers and announces itself with a broadcast.
    for _ in 0..4 {
        b_rx.add_chain(vmm.vm(b).unwrap().memory(), &[], &[2048])
            .unwrap();
    }
    let announce = Frame::broadcast(MacAddr::local(b.raw()), ETHERTYPE_IPV4, vec![0u8; 32]);
    b_tx.add_chain(
        vmm.vm(b).unwrap().memory(),
        &[&VirtioNet::tx_packet(&announce)],
        &[],
    )
    .unwrap();
    vmm.vm(b)
        .unwrap()
        .virtio_net()
        .unwrap()
        .lock()
        .notify(TX_QUEUE)
        .unwrap();

    // a sends a unicast frame to b.
    let frame = Frame::new(
        MacAddr::local(a.raw()),
        MacAddr::local(b.raw()),
        ETHERTYPE_IPV4,
        vec![7u8; 600],
    );
    a_tx.add_chain(
        vmm.vm(a).unwrap().memory(),
        &[&VirtioNet::tx_packet(&frame)],
        &[],
    )
    .unwrap();
    vmm.vm(a)
        .unwrap()
        .virtio_net()
        .unwrap()
        .lock()
        .notify(TX_QUEUE)
        .unwrap();

    // b polls its receive queue and finds the frame.
    vmm.vm(b)
        .unwrap()
        .virtio_net()
        .unwrap()
        .lock()
        .poll_queue(RX_QUEUE)
        .unwrap();
    let (_, len) = b_rx
        .poll_used(vmm.vm(b).unwrap().memory())
        .unwrap()
        .unwrap();
    assert_eq!(len as usize, 12 + 14 + 600);
    assert!(vmm.switch().stats().forwarded >= 1);
}
