//! Fleet-level integration tests: consolidation planning feeding real VMMs,
//! live migration between managers, snapshot-based disaster recovery, and
//! the cost model — the operational story end to end.

use virtlab::block::{synthetic_os_image, CloneStrategy, ImageLibrary, StorageModel};
use virtlab::cluster::{
    ConsolidationPlanner, CostModel, HostSpec, PlacementStrategy, Provisioner, VmSpec,
};
use virtlab::migrate::MigrationReport;
use virtlab::net::{Link, LinkModel};
use virtlab::types::{GuestAddress, HostId};
use virtlab::vcpu::{Workload, WorkloadKind};
use virtlab::vmm::{MigrationOutcome, VmLifecycle};
use virtlab::{ByteSize, Vm, VmConfig, Vmm};

#[test]
fn consolidation_plan_boots_real_vms_on_each_host() {
    // Plan a small fleet, then actually create a Vmm per host and a (scaled
    // down) VM per placed workload, and run them all.
    let fleet: Vec<VmSpec> = VmSpec::nireus_fleet().into_iter().take(12).collect();
    let planner = ConsolidationPlanner::new(HostSpec::deck_era_server(HostId::new(0)), 10);
    let plan = planner
        .plan(&fleet, PlacementStrategy::FirstFitDecreasing)
        .unwrap();
    assert!(plan.unplaced.is_empty());

    let mut hosts: Vec<Vmm> = Vec::new();
    for host in &plan.hosts {
        let mut vmm = Vmm::new(&host.spec.id.to_string());
        for vm_spec in &host.placed {
            // Scale memory down so the test stays fast; the placement itself
            // was validated against the real sizes.
            let id = vmm
                .create_vm(VmConfig::new(&vm_spec.name).with_memory(ByteSize::mib(4)))
                .unwrap();
            let w = Workload::new(WorkloadKind::ComputeBound { iterations: 200 }).unwrap();
            vmm.vm_mut(id).unwrap().load_workload(&w).unwrap();
        }
        hosts.push(vmm);
    }
    assert_eq!(hosts.len(), plan.hosts_used());
    let mut total_vms = 0;
    for vmm in &mut hosts {
        vmm.run_all_to_halt(10_000).unwrap();
        total_vms += vmm.vm_count();
    }
    assert_eq!(total_vms, 12);

    // The consolidated plan costs less to power than one-per-host.
    let baseline = planner.plan(&fleet, PlacementStrategy::OnePerHost).unwrap();
    let report = CostModel::default().compare(&baseline, &plan);
    assert!(report.annual_saving_euro() > 0.0);
}

#[test]
fn maintenance_evacuation_migrates_every_vm_off_a_host() {
    let mut source = Vmm::new("host-under-maintenance");
    let mut target = Vmm::new("spare-host");
    let mut ids = Vec::new();
    for i in 0..3 {
        let id = source
            .create_vm(VmConfig::new(&format!("prod-{i}")).with_memory(ByteSize::mib(8)))
            .unwrap();
        let vm = source.vm_mut(id).unwrap();
        let w = Workload::new(WorkloadKind::Idle { wakeups: 50_000 }).unwrap();
        vm.load_workload(&w).unwrap();
        vm.memory()
            .write_u64(GuestAddress(0x3000), 0xbeef_0000 + i as u64)
            .unwrap();
        ids.push(id);
    }

    let mut link = Link::new(LinkModel::ten_gigabit());
    let mut reports: Vec<MigrationReport> = Vec::new();
    for id in ids {
        let (_, report) = source
            .migrate_to(id, &mut target, &mut link, MigrationOutcome::PreCopy)
            .unwrap();
        reports.push(report);
    }

    assert_eq!(source.vm_count(), 0);
    assert_eq!(target.vm_count(), 3);
    for (i, id) in target.vm_ids().into_iter().enumerate() {
        let vm = target.vm(id).unwrap();
        assert_eq!(vm.lifecycle(), VmLifecycle::Running);
        assert_eq!(
            vm.memory().read_u64(GuestAddress(0x3000)).unwrap(),
            0xbeef_0000 + i as u64
        );
    }
    // Live migration kept downtime well below a second per VM on 10 GbE.
    for r in &reports {
        assert!(r.downtime.as_millis_f64() < 1000.0);
        assert!(r.converged);
    }
}

#[test]
fn disaster_recovery_restores_a_vm_from_its_backup_chain() {
    let mut vmm = Vmm::new("primary-site");
    let id = vmm
        .create_vm(VmConfig::new("erp-db").with_memory(ByteSize::mib(16)))
        .unwrap();
    {
        let vm = vmm.vm_mut(id).unwrap();
        let w = Workload::new(WorkloadKind::MemoryDirty {
            pages: 128,
            passes: 1,
        })
        .unwrap();
        vm.load_workload(&w).unwrap();
        vm.memory()
            .write_u64(GuestAddress(0x8000), 0x1CEB00DA)
            .unwrap();
    }
    let snap = vmm.snapshot_vm(id, "nightly").unwrap();
    let checksum_at_backup = vmm.vm(id).unwrap().memory().checksum();

    // "Ransomware" scribbles over guest memory.
    vmm.vm(id)
        .unwrap()
        .memory()
        .fill(GuestAddress(0), ByteSize::mib(1).as_u64(), 0x66)
        .unwrap();
    assert_ne!(vmm.vm(id).unwrap().memory().checksum(), checksum_at_backup);

    // Restore from the snapshot store and verify integrity.
    let store_snapshot = vmm.snapshots().get(snap).unwrap().clone();
    let vm = vmm.vm_mut(id).unwrap();
    store_snapshot.memory.apply(vm.memory()).unwrap();
    assert_eq!(vm.memory().checksum(), checksum_at_backup);
    assert_eq!(
        vm.memory().read_u64(GuestAddress(0x8000)).unwrap(),
        0x1CEB00DA
    );
}

#[test]
fn branch_office_rollout_uses_cow_templates() {
    let mut library = ImageLibrary::new();
    library
        .add_template(
            "branch-gold",
            "branch office server",
            synthetic_os_image(ByteSize::mib(32)),
        )
        .unwrap();
    let mut provisioner = Provisioner::new(library, StorageModel::hdd());

    let (full_reports, full_time) = provisioner
        .provision_many("branch-gold", CloneStrategy::FullCopy, 4)
        .unwrap();
    let (cow_reports, cow_time) = provisioner
        .provision_many("branch-gold", CloneStrategy::CopyOnWrite, 4)
        .unwrap();

    assert_eq!(full_reports.len(), 4);
    assert_eq!(cow_reports.len(), 4);
    assert_eq!(cow_time.as_nanos(), 0);
    assert!(
        full_time.as_millis_f64() > 100.0,
        "full copies over HDD take real time"
    );

    // Each provisioned disk can actually back a VM's virtio-blk device.
    let vm = Vm::new(
        VmConfig::new("branch-1")
            .with_memory(ByteSize::mib(8))
            .with_disk(virtlab::vmm::DiskConfig::new("sys", ByteSize::mib(32))),
    )
    .unwrap();
    assert!(vm.virtio_blk().is_some());
}

#[test]
fn overcommit_with_ballooning_fits_more_vms() {
    // Without ballooning: 12 GiB host, 2 GiB VMs -> 6 fit. With a 1.5x
    // overcommit backed by ballooning, 9 fit; the balloon then actually
    // reclaims the pages from running VMs.
    let fleet: Vec<VmSpec> = (0..9)
        .map(|i| VmSpec::typical(&format!("ts-{i}"), virtlab::cluster::ServerRole::Mail))
        .collect();
    let host = HostSpec::deck_era_server(HostId::new(0));
    let strict = ConsolidationPlanner::new(host.clone(), 1)
        .plan(&fleet, PlacementStrategy::FirstFitDecreasing)
        .unwrap();
    let relaxed = ConsolidationPlanner::new(host, 1)
        .with_memory_overcommit(1.5)
        .plan(&fleet, PlacementStrategy::FirstFitDecreasing)
        .unwrap();
    assert!(strict.vms_placed() < relaxed.vms_placed());

    // Back the overcommit with real balloons on scaled-down VMs.
    let mut vmm = Vmm::new("overcommitted-host");
    for i in 0..relaxed.vms_placed() {
        let id = vmm
            .create_vm(
                VmConfig::new(&format!("vm-{i}"))
                    .with_memory(ByteSize::mib(8))
                    .with_balloon(),
            )
            .unwrap();
        // Reclaim a third of each VM's memory.
        let pages = vmm.vm(id).unwrap().memory().total_pages() / 3;
        vmm.vm(id).unwrap().set_balloon_pages(pages).unwrap();
    }
    let reclaimed: u64 = vmm
        .vm_ids()
        .iter()
        .map(|&id| {
            vmm.vm(id)
                .unwrap()
                .balloon()
                .unwrap()
                .stats()
                .ballooned
                .as_u64()
        })
        .sum();
    assert!(reclaimed > 0);
}
