//! Integration tests for the memory-overcommit, compressed-migration,
//! NUMA-placement and backup/DR subsystems, exercised end to end through the
//! public facade: real VMs under a `Vmm`, the KSM scanner feeding the VDI
//! estimator, compressed pre-copy between two managers, and a backup/restore
//! drill that survives a faulty backing disk.

use virtlab::block::{BlockBackend, FaultKind, FaultPlan, FaultyDisk, RamDisk};
use virtlab::cluster::{
    DesktopProfile, HostSpec, NumaHost, NumaPolicy, NumaTopology, VdiConfig, VdiEstimator, VmSpec,
};
use virtlab::memory::{GuestMemory, KsmConfig};
use virtlab::migrate::{MigrationConfig, PageCompression};
use virtlab::net::{Link, LinkModel};
use virtlab::snapshot::{BackupPolicy, BackupSimulator, BackupTarget};
use virtlab::types::{HostId, Nanoseconds, VmId, PAGE_SIZE};
use virtlab::vcpu::VcpuState;
use virtlab::vmm::{MigrationOutcome, VmConfig};
use virtlab::{ByteSize, GuestAddress, Vmm};

/// Build a manager hosting `count` VMs cloned from the same synthetic image.
fn vmm_with_clones(count: u32, memory: ByteSize, shared_fraction: f64) -> Vmm {
    let mut vmm = Vmm::new("pool-host");
    for d in 0..count {
        let id = vmm
            .create_vm(VmConfig::new(&format!("clone-{d}")).with_memory(memory))
            .expect("create VM");
        let vm = vmm.vm(id).expect("vm exists");
        let pages = vm.memory().total_pages();
        let shared = (pages as f64 * shared_fraction) as u64;
        for p in 0..pages {
            let value = if p < shared {
                0xcafe_0000_0000 + p * 37
            } else {
                (d as u64 + 1) * 5_000_011 + p
            };
            vm.memory()
                .write_u64(GuestAddress(p * PAGE_SIZE), value)
                .expect("seed");
        }
    }
    vmm
}

#[test]
fn ksm_scanner_converges_to_the_analysis_bound_and_feeds_vdi_sizing() {
    let vmm = vmm_with_clones(4, ByteSize::mib(8), 0.5);

    let analysis = vmm.dedup_analysis().expect("analysis");
    assert!(
        analysis.savings_fraction() > 0.3,
        "clones share half their pages: {analysis:?}"
    );

    let mut ksm = vmm.ksm_manager(KsmConfig::default());
    ksm.scan_until_stable(8).expect("scan");
    let stats = ksm.stats();
    assert_eq!(
        stats.pages_saved(),
        analysis.pages_saved(),
        "scanner must reach the bound"
    );
    assert!(
        stats.sharing_ratio() >= 3.9,
        "four identical copies share one page"
    );

    // The measured sharing fraction feeds the VDI density estimate and buys
    // strictly more desktops than assuming no sharing at all.
    let host = HostSpec::modern_server(HostId::new(0));
    let no_sharing = VdiConfig {
        page_sharing_fraction: 0.0,
        ..VdiConfig::typical(DesktopProfile::KnowledgeWorker)
    };
    let measured = no_sharing.with_measured_sharing(&analysis);
    let base = VdiEstimator::new(host.clone(), no_sharing)
        .unwrap()
        .density();
    let tuned = VdiEstimator::new(host, measured).unwrap().density();
    assert!(tuned.desktops > base.desktops);
}

#[test]
fn writes_after_the_scan_break_sharing_and_lower_the_savings() {
    let vmm = vmm_with_clones(2, ByteSize::mib(4), 1.0);
    let mut ksm = vmm.ksm_manager(KsmConfig::default());
    ksm.scan_until_stable(6).expect("scan");
    let before = ksm.stats().pages_saved();
    assert!(before > 0);

    // The first clone's guest writes into a shared page.
    let id = vmm.vm_ids()[0];
    let vm = vmm.vm(id).expect("vm");
    vm.memory()
        .write_u64(GuestAddress(0), 0xdead_beef)
        .expect("write");
    ksm.notify_write(id, 0);

    assert_eq!(ksm.stats().pages_saved(), before - 1);
    assert_eq!(ksm.stats().cow_breaks, 1);
}

#[test]
fn compressed_precopy_between_managers_moves_less_and_stays_correct() {
    let run = |compression: PageCompression| {
        let mut source = Vmm::new("source");
        let id = source
            .create_vm(VmConfig::new("moving").with_memory(ByteSize::mib(8)))
            .expect("create");
        {
            let vm = source.vm(id).expect("vm");
            // A quarter of the guest holds data; the rest stays zero.
            let pages = vm.memory().total_pages();
            for p in 0..pages / 4 {
                vm.memory()
                    .write_u64(GuestAddress(p * PAGE_SIZE), p * 3 + 1)
                    .expect("seed");
            }
        }
        let source_checksum = source.vm(id).unwrap().memory().checksum();
        let mut dest = Vmm::new("dest");
        let mut link = Link::new(LinkModel::gigabit());
        let config = MigrationConfig {
            compression,
            ..Default::default()
        };
        let (dest_id, report) = source
            .migrate_to_with_config(id, &mut dest, &mut link, MigrationOutcome::PreCopy, config)
            .expect("migrate");
        assert_eq!(
            dest.vm(dest_id).unwrap().memory().checksum(),
            source_checksum
        );
        report
    };

    let raw = run(PageCompression::None);
    let zero = run(PageCompression::ZeroPages);
    let xbzrle = run(PageCompression::Xbzrle);
    assert!(zero.bytes_transferred < raw.bytes_transferred / 2);
    assert!(xbzrle.bytes_transferred <= zero.bytes_transferred);
    assert!(zero.total_time < raw.total_time);
}

#[test]
fn numa_packing_keeps_the_fleet_local_where_interleaving_pays_the_penalty() {
    let fleet: Vec<VmSpec> = VmSpec::nireus_fleet().into_iter().take(20).collect();
    let topology = NumaTopology::of_host(&HostSpec::modern_server(HostId::new(0)), 2);

    let mut packed = NumaHost::new(topology.clone());
    let mut interleaved = NumaHost::new(topology);
    for vm in &fleet {
        packed
            .place(vm, NumaPolicy::Packed)
            .expect("packed placement");
        interleaved
            .place(vm, NumaPolicy::Interleaved)
            .expect("interleaved placement");
    }
    assert!(packed.avg_local_fraction() > 0.99);
    assert!(interleaved.avg_local_fraction() < 0.6);
    assert!(packed.avg_expected_slowdown() < interleaved.avg_expected_slowdown());
    assert!(interleaved.memory_imbalance() <= packed.memory_imbalance() + 1e-9);
}

#[test]
fn backup_schedule_restores_after_a_week_of_writes() {
    let memory = GuestMemory::flat(ByteSize::mib(16)).expect("memory");
    for p in 0..memory.total_pages() {
        memory
            .write_u64(GuestAddress(p * PAGE_SIZE), p + 7)
            .expect("seed");
    }
    memory.clear_dirty();

    let mut sim = BackupSimulator::new(
        VmId::new(0),
        BackupPolicy::weekly_full_daily_incremental(),
        BackupTarget::default(),
    )
    .expect("simulator");
    for day in 0..7u64 {
        for w in 0..16u64 {
            let page = (day * 16 + w) % memory.total_pages();
            memory
                .write_u64(GuestAddress(page * PAGE_SIZE), 0xfeed_0000 + day * 100 + w)
                .expect("write");
        }
        sim.run_interval(&memory, &[VcpuState::default()])
            .expect("backup");
    }
    let report = sim.report();
    assert_eq!(report.backups_taken, 7);
    assert_eq!(report.fulls_taken, 1);
    assert_eq!(report.rpo, Nanoseconds::from_secs(24 * 3600));
    assert!(report.storage_saving_fraction() > 0.5);

    let replacement = GuestMemory::flat(ByteSize::mib(16)).expect("replacement");
    let (_, rto) = sim.restore_latest(&replacement).expect("restore");
    assert_eq!(replacement.checksum(), memory.checksum());
    assert!(rto > Nanoseconds::ZERO);
}

#[test]
fn faulty_disk_surfaces_errors_without_corrupting_good_sectors() {
    // A backup target whose middle sectors have gone bad: writes around the
    // bad range succeed and read back intact, writes into it fail loudly.
    let plan = FaultPlan::none().with_bad_range(64, 95, FaultKind::Any);
    let mut disk = FaultyDisk::new(RamDisk::new(ByteSize::mib(1)), plan);

    let payload = vec![0xabu8; 512];
    let mut failures = 0;
    for sector in 0..256u64 {
        if disk.write_sectors(sector, &payload).is_err() {
            failures += 1;
        }
    }
    assert_eq!(failures, 32);
    for sector in (0..64u64).chain(96..256) {
        let mut out = vec![0u8; 512];
        disk.read_sectors(sector, &mut out).expect("good sector");
        assert_eq!(out, payload);
    }
    assert_eq!(disk.fault_stats().range_failures as usize, 32);

    // A transient outage that heals: after recovery everything succeeds again.
    let plan = FaultPlan::none()
        .with_bad_range(0, u64::MAX / 2, FaultKind::Write)
        .with_recovery_after(3);
    let mut flaky = FaultyDisk::new(RamDisk::new(ByteSize::mib(1)), plan);
    let mut errors = 0;
    for attempt in 0..6u64 {
        if flaky.write_sectors(attempt, &payload).is_err() {
            errors += 1;
        }
    }
    assert_eq!(errors, 3);
    assert_eq!(flaky.fault_stats().passed, 3);
}
