//! Experiment E10 — virtio-net throughput vs frame size and queue size,
//! plus the notification-suppression ablation on the transmit path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use rvisor_memory::GuestMemory;
use rvisor_net::{Frame, MacAddr, VirtualSwitch, ETHERTYPE_IPV4};
use rvisor_types::{ByteSize, GuestAddress};
use rvisor_virtio::net::TX_QUEUE;
use rvisor_virtio::{DriverQueue, QueueLayout, VirtQueue, VirtioDevice, VirtioNet};

/// Transmit `frames` frames of `payload_len` bytes through a virtio-net TX
/// queue of `queue_size` descriptors. Returns (driver kicks, switch bytes).
fn tx_run(frames: u64, payload_len: usize, queue_size: u16, event_idx: bool) -> (u64, u64) {
    let mem = GuestMemory::flat(ByteSize::mib(16)).unwrap();
    let switch = VirtualSwitch::new();
    let _sink = switch.add_port(); // something to flood to
    let mut nic = VirtioNet::new(MacAddr::local(1), switch.add_port());

    let (layout, end) = QueueLayout::contiguous(GuestAddress(0x1000), queue_size).unwrap();
    let mut queue = VirtQueue::new(layout);
    queue.set_event_idx(event_idx);
    let mut driver = DriverQueue::new(layout, GuestAddress((end.0 + 0xfff) & !0xfff), 8 << 20);
    driver.set_event_idx(event_idx);
    driver.init(&mem).unwrap();

    let frame = Frame::new(
        MacAddr::local(1),
        MacAddr::local(2),
        ETHERTYPE_IPV4,
        vec![0u8; payload_len],
    );
    let packet = VirtioNet::tx_packet(&frame);
    let batch = (queue_size / 2).max(1) as u64;
    let mut sent = 0u64;
    while sent < frames {
        let this_batch = batch.min(frames - sent);
        for _ in 0..this_batch {
            driver.add_chain(&mem, &[&packet], &[]).unwrap();
        }
        nic.process_queue(TX_QUEUE, &mem, &mut queue).unwrap();
        while driver.poll_used(&mem).unwrap().is_some() {}
        sent += this_batch;
    }
    (driver.kicks(), switch.stats().bytes)
}

fn print_table() {
    println!("\n=== E10: virtio-net transmit path ===");
    println!(
        "{:<14} {:<12} {:>14} {:>16} {:>14}",
        "frame size", "queue size", "frames sent", "driver kicks", "bytes on wire"
    );
    for payload in [64usize, 512, 1500] {
        for qsize in [64u16, 256, 1024] {
            let frames = 20_000;
            let (kicks, bytes) = tx_run(frames, payload, qsize, false);
            println!(
                "{:<14} {:<12} {:>14} {:>16} {:>14}",
                payload, qsize, frames, kicks, bytes
            );
        }
    }
    let (kicks_plain, _) = tx_run(20_000, 512, 256, false);
    let (kicks_ei, _) = tx_run(20_000, 512, 256, true);
    println!(
        "notification-suppression ablation: {kicks_plain} kicks without EVENT_IDX, {kicks_ei} with"
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e10_virtio_net_tx");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let frames = 5_000u64;
    for payload in [64usize, 512, 1500] {
        group.throughput(Throughput::Bytes(frames * payload as u64));
        group.bench_with_input(
            BenchmarkId::new("frame", payload),
            &payload,
            |b, &payload| b.iter(|| tx_run(frames, payload, 256, false)),
        );
    }
    for qsize in [64u16, 1024] {
        group.bench_with_input(BenchmarkId::new("queue", qsize), &qsize, |b, &qsize| {
            b.iter(|| tx_run(frames, 512, qsize, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
