//! Experiment E9 — provisioning latency: copy-on-write template clones vs
//! full image copies, as a function of golden-image size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use rvisor_block::{synthetic_os_image, CloneStrategy, ImageLibrary, StorageModel};
use rvisor_cluster::Provisioner;
use rvisor_types::ByteSize;

fn provisioner_with_image(size: ByteSize) -> Provisioner {
    let mut lib = ImageLibrary::new();
    lib.add_template("golden", "golden OS image", synthetic_os_image(size))
        .unwrap();
    Provisioner::new(lib, StorageModel::ssd())
}

fn print_table() {
    println!("\n=== E9: provisioning a new server from a template ===");
    println!(
        "{:>12} {:>22} {:>22}",
        "image size", "full copy (sim time)", "CoW clone (sim time)"
    );
    for mib in [256u64, 1024, 4096] {
        let mut p = provisioner_with_image(ByteSize::mib(mib));
        let full = p.provision("golden", CloneStrategy::FullCopy).unwrap();
        let cow = p.provision("golden", CloneStrategy::CopyOnWrite).unwrap();
        println!(
            "{:>9} MiB {:>22} {:>22}",
            mib,
            format!("{}", full.storage_time),
            format!("{}", cow.storage_time)
        );
    }
    println!("\n--- standing up 10 servers at once (1 GiB image, SSD model) ---");
    let mut p = provisioner_with_image(ByteSize::mib(1024));
    let (_, full_total) = p
        .provision_many("golden", CloneStrategy::FullCopy, 10)
        .unwrap();
    let (_, cow_total) = p
        .provision_many("golden", CloneStrategy::CopyOnWrite, 10)
        .unwrap();
    println!("full copies: {full_total}, CoW clones: {cow_total}");
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e9_provisioning");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for mib in [16u64, 64, 256] {
        group.throughput(Throughput::Bytes(mib << 20));
        group.bench_with_input(BenchmarkId::new("full_copy", mib), &mib, |b, &mib| {
            b.iter_batched(
                || provisioner_with_image(ByteSize::mib(mib)),
                |mut p| {
                    p.provision("golden", CloneStrategy::FullCopy)
                        .unwrap()
                        .bytes_copied
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("cow_clone", mib), &mib, |b, &mib| {
            b.iter_batched(
                || provisioner_with_image(ByteSize::mib(mib)),
                |mut p| {
                    p.provision("golden", CloneStrategy::CopyOnWrite)
                        .unwrap()
                        .bytes_copied
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
