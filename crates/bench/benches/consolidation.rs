//! Experiments E7 and E8 — server consolidation ratio and the power/cooling
//! cost saving, on the 50-VM fleet described in the source material.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_cluster::{ConsolidationPlanner, CostModel, HostSpec, PlacementStrategy, VmSpec};
use rvisor_types::HostId;

fn print_tables() {
    let fleet = VmSpec::nireus_fleet();

    println!("\n=== E7: consolidation of the 50-VM estate ===");
    println!(
        "{:<26} {:<22} {:>8} {:>10} {:>10}",
        "host model", "strategy", "hosts", "VMs/host", "mem util"
    );
    for (host_name, host) in [
        (
            "deck-era (8c / 12 GiB)",
            HostSpec::deck_era_server(HostId::new(0)),
        ),
        (
            "modern (32c / 128 GiB)",
            HostSpec::modern_server(HostId::new(0)),
        ),
    ] {
        for strategy in [
            PlacementStrategy::OnePerHost,
            PlacementStrategy::FirstFitDecreasing,
        ] {
            let plan = ConsolidationPlanner::new(host.clone(), 60)
                .plan(&fleet, strategy)
                .unwrap();
            println!(
                "{:<26} {:<22} {:>8} {:>10.1} {:>9.0}%",
                host_name,
                strategy.name(),
                plan.hosts_used(),
                plan.consolidation_ratio(),
                plan.avg_memory_utilization() * 100.0
            );
        }
    }

    println!("\n=== E8: annual power+cooling cost and saving ===");
    let planner = ConsolidationPlanner::new(HostSpec::deck_era_server(HostId::new(0)), 60);
    let baseline = planner.plan(&fleet, PlacementStrategy::OnePerHost).unwrap();
    let consolidated = planner
        .plan(&fleet, PlacementStrategy::FirstFitDecreasing)
        .unwrap();
    let report = CostModel::default().compare(&baseline, &consolidated);
    println!(
        "baseline (one server per workload): {:>9.0} EUR/year on {} hosts",
        report.baseline_annual_euro, report.baseline_hosts
    );
    println!(
        "consolidated (FFD):                 {:>9.0} EUR/year on {} hosts",
        report.consolidated_annual_euro, report.consolidated_hosts
    );
    println!(
        "annual saving:                      {:>9.0} EUR",
        report.annual_saving_euro()
    );
    println!(
        "saving per virtualized server:      {:>9.0} EUR",
        report.saving_per_vm_euro()
    );
    println!("(source material claims ~200-250 EUR/server/year, ~10 kEUR/year overall)");
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let fleet = VmSpec::nireus_fleet();
    let big_fleet: Vec<VmSpec> = (0..1000).map(|i| fleet[i % fleet.len()].clone()).collect();

    let mut group = c.benchmark_group("e7_e8_consolidation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for (name, vms) in [("fleet_50", &fleet), ("fleet_1000", &big_fleet)] {
        group.bench_with_input(BenchmarkId::new("ffd_plan", name), vms, |b, vms| {
            let planner =
                ConsolidationPlanner::new(HostSpec::deck_era_server(HostId::new(0)), 2000);
            b.iter(|| {
                planner
                    .plan(vms, PlacementStrategy::FirstFitDecreasing)
                    .unwrap()
                    .hosts_used()
            })
        });
    }
    group.bench_function("cost_model", |b| {
        let planner = ConsolidationPlanner::new(HostSpec::deck_era_server(HostId::new(0)), 60);
        let baseline = planner.plan(&fleet, PlacementStrategy::OnePerHost).unwrap();
        let consolidated = planner
            .plan(&fleet, PlacementStrategy::FirstFitDecreasing)
            .unwrap();
        b.iter(|| {
            CostModel::default()
                .compare(&baseline, &consolidated)
                .annual_saving_euro()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
