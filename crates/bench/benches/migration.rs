//! Experiment E4 — live migration downtime and total time.
//!
//! Sweeps: engine (stop-and-copy / pre-copy / post-copy), guest RAM size,
//! guest dirty rate relative to link bandwidth, and link speed. The printed
//! tables are the figure data (simulated, deterministic); Criterion measures
//! the host-side cost of running a full pre-copy migration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_memory::GuestMemory;
use rvisor_migrate::{
    ConstantRateDirtier, IdleDirtier, MigrationConfig, MigrationReport, PageCompression, PostCopy,
    PreCopy, StopAndCopy,
};
use rvisor_net::{Link, LinkModel};
use rvisor_types::ByteSize;
use rvisor_vcpu::VcpuState;

fn run_precopy(ram: ByteSize, link_model: LinkModel, dirty_fraction: f64) -> MigrationReport {
    let source = GuestMemory::flat(ram).unwrap();
    let dest = GuestMemory::flat(ram).unwrap();
    let mut link = Link::new(link_model);
    let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
        link_model.bytes_per_second,
        dirty_fraction,
        0,
        source.total_pages(),
    );
    PreCopy::migrate(
        &source,
        &dest,
        &[VcpuState::default()],
        &mut link,
        &mut dirtier,
        &MigrationConfig::default(),
    )
    .unwrap()
}

fn print_engine_table() {
    println!("\n=== E4a: migration engines (512 MiB guest, 1 Gbit/s, 30% dirty rate) ===");
    println!(
        "{:<16} {:>14} {:>14} {:>8} {:>16} {:>10}",
        "engine", "downtime", "total time", "rounds", "bytes moved", "amplif."
    );
    let ram = ByteSize::mib(512);
    let model = LinkModel::gigabit();
    let reports = vec![
        ("stop-and-copy", {
            let (s, d) = (
                GuestMemory::flat(ram).unwrap(),
                GuestMemory::flat(ram).unwrap(),
            );
            StopAndCopy::migrate(&s, &d, &[VcpuState::default()], &mut Link::new(model)).unwrap()
        }),
        ("pre-copy", run_precopy(ram, model, 0.3)),
        ("post-copy", {
            let (s, d) = (
                GuestMemory::flat(ram).unwrap(),
                GuestMemory::flat(ram).unwrap(),
            );
            PostCopy::migrate(
                &s,
                &d,
                &[VcpuState::default()],
                &mut Link::new(model),
                &MigrationConfig::default(),
            )
            .unwrap()
        }),
    ];
    for (name, r) in reports {
        println!(
            "{:<16} {:>14} {:>14} {:>8} {:>12} MiB {:>9.2}x",
            name,
            format!("{}", r.downtime),
            format!("{}", r.total_time),
            r.rounds,
            r.bytes_transferred >> 20,
            r.transfer_amplification()
        );
    }
}

fn print_dirty_rate_figure() {
    println!("\n=== E4b: pre-copy downtime vs dirty rate (256 MiB guest, 1 Gbit/s) ===");
    println!(
        "{:>12} {:>14} {:>14} {:>8} {:>10}",
        "dirty rate", "downtime", "total", "rounds", "converged"
    );
    for fraction in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.1] {
        let r = run_precopy(ByteSize::mib(256), LinkModel::gigabit(), fraction);
        println!(
            "{:>11.0}% {:>14} {:>14} {:>8} {:>10}",
            fraction * 100.0,
            format!("{}", r.downtime),
            format!("{}", r.total_time),
            r.rounds,
            r.converged
        );
    }
}

fn print_ram_figure() {
    println!("\n=== E4c: downtime vs RAM size (idle guest vs stop-and-copy) ===");
    println!(
        "{:>10} {:>20} {:>20} {:>16}",
        "RAM", "stop-and-copy", "pre-copy (idle)", "post-copy"
    );
    for mib in [128u64, 256, 512, 1024, 2048] {
        let ram = ByteSize::mib(mib);
        let model = LinkModel::gigabit();
        let (s, d) = (
            GuestMemory::flat(ram).unwrap(),
            GuestMemory::flat(ram).unwrap(),
        );
        let sc =
            StopAndCopy::migrate(&s, &d, &[VcpuState::default()], &mut Link::new(model)).unwrap();
        let (s, d) = (
            GuestMemory::flat(ram).unwrap(),
            GuestMemory::flat(ram).unwrap(),
        );
        let pre = PreCopy::migrate(
            &s,
            &d,
            &[VcpuState::default()],
            &mut Link::new(model),
            &mut IdleDirtier,
            &MigrationConfig::default(),
        )
        .unwrap();
        let (s, d) = (
            GuestMemory::flat(ram).unwrap(),
            GuestMemory::flat(ram).unwrap(),
        );
        let post = PostCopy::migrate(
            &s,
            &d,
            &[VcpuState::default()],
            &mut Link::new(model),
            &MigrationConfig::default(),
        )
        .unwrap();
        println!(
            "{:>7} MiB {:>20} {:>20} {:>16}",
            mib,
            format!("{}", sc.downtime),
            format!("{}", pre.downtime),
            format!("{}", post.downtime)
        );
    }

    println!("\n=== E4d: pre-copy total time vs link speed (512 MiB, 30% dirty) ===");
    for (name, model) in [
        ("100 Mbit/s", LinkModel::wan()),
        ("1 Gbit/s", LinkModel::gigabit()),
        ("10 Gbit/s", LinkModel::ten_gigabit()),
    ] {
        let r = run_precopy(ByteSize::mib(512), model, 0.3);
        println!(
            "{:>12}: total {:>12}, downtime {:>12}, converged {}",
            name,
            format!("{}", r.total_time),
            format!("{}", r.downtime),
            r.converged
        );
    }
    println!();
}

/// Pre-copy with page compression: a half-empty guest over a thin link, with
/// the guest rewriting single words in its working set (the XBZRLE sweet
/// spot). Ablation for the `MigrationConfig::compression` design choice.
fn print_compression_ablation() {
    println!("\n=== E4e: pre-copy page compression ablation (256 MiB guest, 100 Mbit/s WAN, 40% dirty) ===");
    println!(
        "{:<12} {:>14} {:>14} {:>8} {:>14} {:>10}",
        "compression", "downtime", "total time", "rounds", "bytes moved", "converged"
    );
    for compression in PageCompression::ALL {
        let ram = ByteSize::mib(256);
        let source = GuestMemory::flat(ram).unwrap();
        let dest = GuestMemory::flat(ram).unwrap();
        // Half of the guest holds data, the other half is zero pages.
        for page in 0..source.total_pages() / 2 {
            source
                .write_u64(
                    rvisor_types::GuestAddress(page * rvisor_types::PAGE_SIZE),
                    page * 13 + 7,
                )
                .unwrap();
        }
        let model = LinkModel::wan();
        let mut link = Link::new(model);
        let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
            model.bytes_per_second,
            0.4,
            0,
            source.total_pages() / 2,
        );
        let config = MigrationConfig {
            compression,
            ..Default::default()
        };
        let r = PreCopy::migrate(
            &source,
            &dest,
            &[VcpuState::default()],
            &mut link,
            &mut dirtier,
            &config,
        )
        .unwrap();
        assert_eq!(source.checksum(), dest.checksum());
        println!(
            "{:<12} {:>14} {:>14} {:>8} {:>10} MiB {:>10}",
            compression.name(),
            format!("{}", r.downtime),
            format!("{}", r.total_time),
            r.rounds,
            r.bytes_transferred >> 20,
            r.converged
        );
    }
}

fn bench(c: &mut Criterion) {
    print_engine_table();
    print_dirty_rate_figure();
    print_ram_figure();
    print_compression_ablation();

    let mut group = c.benchmark_group("e4_migration");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for mib in [64u64, 256] {
        group.bench_with_input(
            BenchmarkId::new("precopy_host_cost", mib),
            &mib,
            |b, &mib| {
                b.iter(|| {
                    run_precopy(ByteSize::mib(mib), LinkModel::gigabit(), 0.3).pages_transferred
                })
            },
        );
    }
    group.bench_function("stop_and_copy_host_cost_64MiB", |b| {
        b.iter(|| {
            let ram = ByteSize::mib(64);
            let (s, d) = (
                GuestMemory::flat(ram).unwrap(),
                GuestMemory::flat(ram).unwrap(),
            );
            StopAndCopy::migrate(
                &s,
                &d,
                &[VcpuState::default()],
                &mut Link::new(LinkModel::gigabit()),
            )
            .unwrap()
            .pages_transferred
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
