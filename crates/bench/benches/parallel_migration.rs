//! Experiment E18 — the pipelined, multi-stream migration data plane:
//! streams × bandwidth sweep of the *simulated* cost (fair-share chunk
//! streams on the shared fabric — same payload bytes, per-stream MTU
//! framing, never faster than the aggregate in simulated time), then the
//! wall-clock speedup the pipeline actually buys (encode workers + sink
//! thread overlapping on host cores, byte-identical to the serial stream).
//!
//! The simulated table is printed first (deterministic, host-independent);
//! the wall-clock section depends on the host's core count — the header
//! prints `available_parallelism` so numbers are interpretable. On a
//! single-core host the pipeline degrades to roughly serial speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::num::NonZeroUsize;
use std::time::Duration;

use rvisor_memory::GuestMemory;
use rvisor_migrate::{
    ConstantRateDirtier, FabricTransport, IdleDirtier, LoopbackTransport, MigrationConfig,
    MigrationReport, PreCopy,
};
use rvisor_net::{Fabric, FabricParams, Link, LinkModel, DEFAULT_CHUNK_OVERHEAD};
use rvisor_types::{ByteSize, GuestAddress, Nanoseconds, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

const PAGES: u64 = 1024; // 4 MiB guest

fn memories() -> (GuestMemory, GuestMemory) {
    let src = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
    let dst = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
    for p in 0..PAGES {
        if p % 4 != 3 {
            src.write_u64(GuestAddress(p * PAGE_SIZE), p * 11 + 3)
                .unwrap();
        }
    }
    (src, dst)
}

fn config(streams: usize) -> MigrationConfig {
    MigrationConfig {
        streams: NonZeroUsize::new(streams).unwrap(),
        ..Default::default()
    }
}

fn fabric_params(nic: u64) -> FabricParams {
    FabricParams {
        nic_bytes_per_second: nic,
        backbone_bytes_per_second: nic,
        latency: Nanoseconds::from_micros(200),
        mtu: 1500,
        chunk_overhead: DEFAULT_CHUNK_OVERHEAD,
    }
}

fn fabric_pipelined(params: FabricParams, streams: usize, dirty: f64) -> MigrationReport {
    let (src, dst) = memories();
    let mut fabric = Fabric::new(2, params).unwrap();
    let mut transport = FabricTransport::new(&mut fabric, 0, 1).unwrap();
    let mut dirtier =
        ConstantRateDirtier::from_bandwidth_fraction(params.nic_bytes_per_second, dirty, 0, PAGES);
    PreCopy::migrate_pipelined(
        &src,
        &dst,
        &[VcpuState::default()],
        &mut transport,
        &mut dirtier,
        &config(streams),
    )
    .unwrap()
}

fn loopback_run(streams: usize) -> MigrationReport {
    let (src, dst) = memories();
    let mut link = Link::new(LinkModel::ten_gigabit());
    let mut transport = LoopbackTransport::new(&mut link);
    if streams == 0 {
        // The serial reference path.
        PreCopy::migrate_over(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut transport,
            &mut IdleDirtier,
            &MigrationConfig::default(),
        )
        .unwrap()
    } else {
        PreCopy::migrate_pipelined(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut transport,
            &mut IdleDirtier,
            &config(streams),
        )
        .unwrap()
    }
}

fn print_table() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nE18: pipelined multi-stream migration (4 MiB pre-copy, 30% dirty rate)");
    println!("host cores available: {cores}\n");
    println!(
        "{:<8} {:>8} {:>14} {:>12} {:>12} {:>12}",
        "nic", "streams", "total", "downtime", "bytes", "wire bytes"
    );
    for (name, nic) in [("10G", 1_250_000_000u64), ("1G", 125_000_000)] {
        let mut serial_bytes = None;
        for streams in [1usize, 2, 4, 8] {
            let params = fabric_params(nic);
            let (src, dst) = memories();
            let mut fabric = Fabric::new(2, params).unwrap();
            let report = {
                let mut transport = FabricTransport::new(&mut fabric, 0, 1).unwrap();
                let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                    params.nic_bytes_per_second,
                    0.3,
                    0,
                    PAGES,
                );
                PreCopy::migrate_pipelined(
                    &src,
                    &dst,
                    &[VcpuState::default()],
                    &mut transport,
                    &mut dirtier,
                    &config(streams),
                )
                .unwrap()
            };
            // Same-seed replay is `==` (thread scheduling cannot leak into
            // the simulated clock).
            let replay = fabric_pipelined(params, streams, 0.3);
            assert_eq!(report, replay, "multi-stream run must replay ==");
            // Fair-share chunk streams move the same payload; only the
            // per-stream MTU framing grows with the stream count.
            let payload = report.bytes_transferred;
            match serial_bytes {
                None => serial_bytes = Some(payload),
                Some(b) => assert_eq!(payload, b, "striping must not change payload bytes"),
            }
            println!(
                "{:<8} {:>8} {:>14} {:>12} {:>12} {:>12}",
                name,
                streams,
                format!("{}", report.total_time),
                format!("{}", report.downtime),
                payload,
                fabric.wire_bytes_carried(),
            );
        }
    }
    println!(
        "\nsimulated time never improves with streams (single-spine fair share);\n\
         the wall-clock speedup below is what parallelism buys on {cores} core(s)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();

    let mut group = c.benchmark_group("e18_parallel_migration");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(20);

    group.throughput(Throughput::Bytes(PAGES * PAGE_SIZE));
    group.bench_function("precopy_serial_4mib", |b| b.iter(|| loopback_run(0)));
    for streams in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("precopy_pipelined_4mib", format!("{streams}way")),
            &streams,
            |b, &streams| b.iter(|| loopback_run(streams)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
