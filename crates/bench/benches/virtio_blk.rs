//! Experiment E2 — paravirtual (virtio-blk) vs fully emulated (programmed
//! I/O) block device.
//!
//! The table reports, for a fixed amount of data written, how many VM exits
//! each device model costs and the implied simulated I/O-path overhead under
//! the three execution modes' exit costs. The Criterion groups measure host
//! wall-clock throughput of the two device models at several request sizes
//! and queue depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use rvisor_block::{RamDisk, SECTOR_SIZE};
use rvisor_memory::GuestMemory;
use rvisor_types::{ByteSize, GuestAddress};
use rvisor_vcpu::ExecMode;
use rvisor_virtio::blk::VIRTIO_BLK_T_OUT;
use rvisor_virtio::emulated::{driver_write_sector, EmulatedDisk};
use rvisor_virtio::{DriverQueue, QueueLayout, VirtQueue, VirtioBlk, VirtioDevice};

const DATA_MIB: u64 = 4;

/// Write `total_bytes` through virtio-blk using `request_size` requests at
/// `queue_depth`. Returns (device doorbells, total completions).
fn virtio_write(
    total_bytes: u64,
    request_size: u64,
    queue_depth: usize,
    event_idx: bool,
) -> (u64, u64) {
    let mem = GuestMemory::flat(ByteSize::mib(32)).unwrap();
    let (layout, end) = QueueLayout::contiguous(GuestAddress(0x1000), 256).unwrap();
    let mut queue = VirtQueue::new(layout);
    queue.set_event_idx(event_idx);
    let mut driver = DriverQueue::new(layout, GuestAddress((end.0 + 0xfff) & !0xfff), 16 << 20);
    driver.set_event_idx(event_idx);
    driver.init(&mem).unwrap();
    let mut blk = VirtioBlk::new(Box::new(RamDisk::new(ByteSize::mib(16))));

    let payload = vec![0xabu8; request_size as usize];
    let requests = total_bytes / request_size;
    let mut completions = 0u64;
    let mut outstanding = 0usize;
    let mut sector = 0u64;
    for _ in 0..requests {
        let header = VirtioBlk::request_header(VIRTIO_BLK_T_OUT, sector);
        sector = (sector + request_size / SECTOR_SIZE) % (8 << 20 >> 9);
        driver.add_chain(&mem, &[&header, &payload], &[1]).unwrap();
        outstanding += 1;
        if outstanding >= queue_depth {
            blk.process_queue(0, &mem, &mut queue).unwrap();
            while driver.poll_used(&mem).unwrap().is_some() {
                completions += 1;
            }
            outstanding = 0;
        }
    }
    if outstanding > 0 {
        blk.process_queue(0, &mem, &mut queue).unwrap();
        while driver.poll_used(&mem).unwrap().is_some() {
            completions += 1;
        }
    }
    (blk.stats().doorbells, completions)
}

/// Write `total_bytes` through the emulated PIO disk. Returns register accesses (= exits).
fn emulated_write(total_bytes: u64) -> u64 {
    let mut disk = EmulatedDisk::new(Box::new(RamDisk::new(ByteSize::mib(16))));
    let data = [0xabu8; SECTOR_SIZE as usize];
    for sector in 0..(total_bytes / SECTOR_SIZE) {
        driver_write_sector(&mut disk, sector % 1024, &data);
    }
    disk.stats().register_accesses
}

fn print_table() {
    println!("\n=== E2: virtio-blk vs emulated PIO disk ({DATA_MIB} MiB written) ===");
    let total = DATA_MIB << 20;
    let emulated_exits = emulated_write(total);
    println!(
        "{:<28} {:>12} {:>20}",
        "device model", "VM exits", "exit cost @hw-assist"
    );
    let hw_exit_ns = ExecMode::HardwareAssist.default_costs().mmio_exit_ns;
    println!(
        "{:<28} {:>12} {:>17} ms",
        "emulated PIO disk",
        emulated_exits,
        emulated_exits * hw_exit_ns / 1_000_000
    );
    for (qd, req) in [(1u64, 4096u64), (8, 4096), (32, 4096), (32, 65536)] {
        let (doorbells, _) = virtio_write(total, req, qd as usize, false);
        println!(
            "{:<28} {:>12} {:>17} ms",
            format!("virtio-blk qd={qd} req={}K", req >> 10),
            doorbells,
            doorbells * hw_exit_ns / 1_000_000
        );
    }
    let (doorbells_no_ei, _) = virtio_write(total, 4096, 32, false);
    let (doorbells_ei, _) = virtio_write(total, 4096, 32, true);
    println!(
        "notification-suppression ablation (qd=32): {} doorbells without EVENT_IDX, {} with",
        doorbells_no_ei, doorbells_ei
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let total = 1u64 << 20;
    let mut group = c.benchmark_group("e2_virtio_vs_emulated");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.throughput(Throughput::Bytes(total));
    for (qd, req) in [(1usize, 4096u64), (8, 4096), (32, 4096), (32, 65536)] {
        group.bench_with_input(
            BenchmarkId::new("virtio-blk", format!("qd{qd}_req{}", req)),
            &(qd, req),
            |b, &(qd, req)| b.iter(|| virtio_write(total, req, qd, false)),
        );
    }
    group.bench_function("emulated-pio", |b| b.iter(|| emulated_write(total)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
