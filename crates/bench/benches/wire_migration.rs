//! Experiment E17 — wire-format migration over the modelled network
//! fabric: pre-copy total time and downtime vs NIC bandwidth and MTU, the
//! cost of the wire protocol itself (loopback stream vs direct in-memory
//! engine — zero by construction, measured to prove it), and the
//! encode/decode throughput of the frame codec.
//!
//! The simulated table is printed first (deterministic, host-independent);
//! Criterion then measures the wall-clock cost of the codec hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use rvisor_memory::GuestMemory;
use rvisor_migrate::{
    ConstantRateDirtier, FabricTransport, IdleDirtier, LoopbackTransport, MigrationConfig,
    MigrationReport, MigrationSink, MigrationSource, PreCopy, Transport,
};
use rvisor_net::{Fabric, FabricParams, Link, LinkModel, DEFAULT_CHUNK_OVERHEAD};
use rvisor_types::{ByteSize, GuestAddress, Nanoseconds, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

const PAGES: u64 = 1024; // 4 MiB guest

fn memories() -> (GuestMemory, GuestMemory) {
    let src = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
    let dst = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
    for p in 0..PAGES {
        if p % 4 != 3 {
            src.write_u64(GuestAddress(p * PAGE_SIZE), p * 11 + 3)
                .unwrap();
        }
    }
    (src, dst)
}

fn fabric_params(nic: u64, mtu: u64) -> FabricParams {
    FabricParams {
        nic_bytes_per_second: nic,
        backbone_bytes_per_second: nic,
        latency: Nanoseconds::from_micros(200),
        mtu,
        chunk_overhead: DEFAULT_CHUNK_OVERHEAD,
    }
}

fn fabric_precopy(params: FabricParams, dirty: f64) -> MigrationReport {
    let (src, dst) = memories();
    let mut fabric = Fabric::new(2, params).unwrap();
    let mut transport = FabricTransport::new(&mut fabric, 0, 1).unwrap();
    let mut dirtier =
        ConstantRateDirtier::from_bandwidth_fraction(params.nic_bytes_per_second, dirty, 0, PAGES);
    PreCopy::migrate_over(
        &src,
        &dst,
        &[VcpuState::default()],
        &mut transport,
        &mut dirtier,
        &MigrationConfig::default(),
    )
    .unwrap()
}

fn print_table() {
    println!("\nE17 — wire migration over the fabric (4 MiB guest, 30% dirty rate)");
    println!(
        "{:<8} {:>6} {:>14} {:>12} {:>8} {:>12} {:>14}",
        "nic", "mtu", "total", "downtime", "rounds", "bytes", "wire-amplif."
    );
    for (name, nic) in [
        ("10G", 1_250_000_000u64),
        ("1G", 125_000_000),
        ("100M", 12_500_000),
    ] {
        for mtu in [1500u64, 9000] {
            let params = fabric_params(nic, mtu);
            let r = fabric_precopy(params, 0.3);
            let wire_amplification =
                params.wire_bytes(r.bytes_transferred) as f64 / r.bytes_transferred as f64;
            println!(
                "{:<8} {:>6} {:>14} {:>12} {:>8} {:>12} {:>14.4}",
                name,
                mtu,
                format!("{}", r.total_time),
                format!("{}", r.downtime),
                r.rounds,
                r.bytes_transferred,
                wire_amplification,
            );
        }
    }

    // Protocol cost at equal modelled bandwidth: loopback stream vs the
    // direct in-memory engine (equal by construction; printed as proof).
    let (src, dst) = memories();
    let mut link = Link::new(LinkModel::gigabit());
    let direct = PreCopy::migrate(
        &src,
        &dst,
        &[VcpuState::default()],
        &mut link,
        &mut IdleDirtier,
        &MigrationConfig::default(),
    )
    .unwrap();
    let (src2, dst2) = memories();
    let mut link2 = Link::new(LinkModel::gigabit());
    let mut transport = LoopbackTransport::new(&mut link2);
    let streamed = PreCopy::migrate_over(
        &src2,
        &dst2,
        &[VcpuState::default()],
        &mut transport,
        &mut IdleDirtier,
        &MigrationConfig::default(),
    )
    .unwrap();
    assert_eq!(streamed, direct);
    println!(
        "\nloopback stream == direct engine: total {}, downtime {}, {} bytes \
         (the wire protocol is free at equal modelled bandwidth)",
        streamed.total_time, streamed.downtime, streamed.bytes_transferred
    );
}

fn bench(c: &mut Criterion) {
    print_table();

    let mut group = c.benchmark_group("e17_wire_migration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(50))
        .measurement_time(Duration::from_millis(400));

    // Codec throughput: encode one full round of raw page frames.
    let (src, dst) = memories();
    group.throughput(Throughput::Bytes(PAGES * PAGE_SIZE));
    group.bench_function("encode_round_raw", |b| {
        let mut link = Link::new(LinkModel::ten_gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let pages: Vec<u64> = (0..PAGES).collect();
        b.iter(|| {
            let mut source = MigrationSource::raw(&src);
            source.encode_round(&pages, &mut transport).unwrap();
            let (_, burst) = transport.deliver(Nanoseconds::ZERO).unwrap();
            let len = burst.len();
            transport.recycle(burst);
            len
        });
    });

    // Decode + checksum-verify + apply one full round onto the destination.
    let mut link = Link::new(LinkModel::ten_gigabit());
    let mut transport = LoopbackTransport::new(&mut link);
    let mut source = MigrationSource::raw(&src);
    source.send_hello(&mut transport).unwrap();
    source
        .encode_round(&(0..PAGES).collect::<Vec<_>>(), &mut transport)
        .unwrap();
    let (_, burst) = transport.deliver(Nanoseconds::ZERO).unwrap();
    group.bench_function("decode_apply_round", |b| {
        b.iter(|| {
            let mut sink = MigrationSink::new(&dst);
            sink.apply_burst(&burst).unwrap();
            sink.pages_applied()
        });
    });

    // A full streamed pre-copy, loopback vs fabric.
    group.throughput(Throughput::Bytes(PAGES * PAGE_SIZE));
    group.bench_function("precopy_loopback_4mib", |b| {
        b.iter(|| {
            let (src, dst) = memories();
            let mut link = Link::new(LinkModel::ten_gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            PreCopy::migrate_over(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut IdleDirtier,
                &MigrationConfig::default(),
            )
            .unwrap()
        });
    });
    for mtu in [1500u64, 9000] {
        group.bench_with_input(
            BenchmarkId::new("precopy_fabric_4mib", format!("mtu{mtu}")),
            &mtu,
            |b, &mtu| {
                b.iter(|| fabric_precopy(fabric_params(1_250_000_000, mtu), 0.3));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
