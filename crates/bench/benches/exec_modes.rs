//! Experiment E1 — CPU virtualization overhead by execution mode.
//!
//! Reproduces the classic comparison of trap-and-emulate (shadow paging),
//! paravirtualization and hardware-assisted virtualization on three guest
//! workload classes: compute-bound, privileged-operation-heavy and
//! hypercall-heavy. The table printed before the Criterion runs shows the
//! simulated guest time (deterministic) and exits per million instructions;
//! the Criterion groups measure host wall-clock per workload execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_bench::{prepared_vcpu, prepared_vcpu_free, prepared_vcpu_with_costs, run_vcpu_to_halt};
use rvisor_vcpu::{ExecCosts, ExecMode, Workload, WorkloadKind};

fn workloads() -> Vec<(&'static str, Workload)> {
    vec![
        (
            "compute-bound",
            Workload::new(WorkloadKind::ComputeBound { iterations: 20_000 }).unwrap(),
        ),
        (
            "privileged-heavy",
            Workload::new(WorkloadKind::PrivilegedHeavy { iterations: 5_000 }).unwrap(),
        ),
        (
            "hypercall-heavy",
            Workload::new(WorkloadKind::HypercallHeavy { iterations: 5_000 }).unwrap(),
        ),
        (
            "memory-dirty",
            Workload::new(WorkloadKind::MemoryDirty {
                pages: 512,
                passes: 8,
            })
            .unwrap(),
        ),
    ]
}

fn print_table() {
    println!("\n=== E1: virtualization overhead by execution mode ===");
    println!(
        "{:<18} {:<18} {:>16} {:>14} {:>12}",
        "workload", "mode", "sim guest time", "exits/Minstr", "slowdown"
    );
    for (name, workload) in workloads() {
        // Hardware-assist is the normalization baseline for the slowdown column.
        let baseline_ns = {
            let (mut cpu, mem) = prepared_vcpu(ExecMode::HardwareAssist, &workload);
            run_vcpu_to_halt(&mut cpu, &mem).max(1)
        };
        for mode in ExecMode::ALL {
            let (mut cpu, mem) = prepared_vcpu(mode, &workload);
            let sim_ns = run_vcpu_to_halt(&mut cpu, &mem);
            let stats = cpu.stats();
            println!(
                "{:<18} {:<18} {:>13} ns {:>14.1} {:>11.2}x",
                name,
                mode.name(),
                sim_ns,
                stats.exits_per_million_instructions(),
                sim_ns as f64 / baseline_ns as f64
            );
        }
        // Ablation row: the same guest one virtualization level deeper
        // (nested hardware-assist), where every exit is reflected twice.
        let (mut cpu, mem) = prepared_vcpu_with_costs(
            ExecMode::HardwareAssist,
            ExecCosts::nested_hardware_assist(),
            &workload,
        );
        let sim_ns = run_vcpu_to_halt(&mut cpu, &mem);
        let stats = cpu.stats();
        println!(
            "{:<18} {:<18} {:>13} ns {:>14.1} {:>11.2}x",
            name,
            "nested hw-assist",
            sim_ns,
            stats.exits_per_million_instructions(),
            sim_ns as f64 / baseline_ns as f64
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e1_exec_modes");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for (name, workload) in workloads() {
        for mode in ExecMode::ALL {
            group.bench_with_input(
                BenchmarkId::new(name, mode.name()),
                &(mode, &workload),
                |b, (mode, workload)| {
                    b.iter(|| {
                        let (mut cpu, mem) = prepared_vcpu_free(*mode, workload);
                        run_vcpu_to_halt(&mut cpu, &mem);
                        cpu.stats().instructions
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
