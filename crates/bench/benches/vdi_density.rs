//! Experiment E12 — VDI density per host.
//!
//! The source material lists VDI as its next step; the question every VDI
//! sizing exercise answers is "how many desktops per host, and what limits
//! it?". The printed tables sweep the desktop profile, the page-sharing
//! fraction (assumed or measured with the KSM analyzer) and the vCPU
//! oversubscription ratio. Criterion measures the cost of the estimator and
//! of measuring sharing over a pool of cloned desktops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_cluster::{DesktopProfile, HostSpec, VdiConfig, VdiEstimator};
use rvisor_memory::{analyze_sharing, GuestMemory};
use rvisor_types::{ByteSize, GuestAddress, HostId, PAGE_SIZE};

fn host() -> HostSpec {
    HostSpec::modern_server(HostId::new(0)) // 32 cores / 128 GiB
}

fn print_profile_table() {
    println!("\n=== E12a: desktops per host by profile (32-core / 128 GiB host) ===");
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "profile", "baseline", "tuned", "mem bound", "cpu bound", "ratio bound", "limited by"
    );
    for profile in DesktopProfile::ALL {
        let estimator = VdiEstimator::new(host(), VdiConfig::typical(profile)).unwrap();
        let tuned = estimator.density();
        let baseline = estimator.baseline_density();
        println!(
            "{:<18} {:>10} {:>10} {:>12} {:>12} {:>14} {:>12}",
            profile.name(),
            baseline.desktops,
            tuned.desktops,
            tuned.memory_bound,
            tuned.cpu_bound,
            tuned.vcpu_ratio_bound,
            tuned.limited_by.name()
        );
    }
}

fn print_sharing_sweep() {
    println!("\n=== E12b: knowledge-worker density vs page-sharing fraction ===");
    println!(
        "{:>16} {:>22} {:>10}",
        "sharing fraction", "effective mem/desktop", "desktops"
    );
    for sharing in [0.0f64, 0.2, 0.35, 0.5, 0.7] {
        let config = VdiConfig {
            page_sharing_fraction: sharing,
            ..VdiConfig::typical(DesktopProfile::KnowledgeWorker)
        };
        let report = VdiEstimator::new(host(), config).unwrap().density();
        println!(
            "{:>15.0}% {:>18} MiB {:>10}",
            sharing * 100.0,
            report.effective_memory_per_desktop.as_u64() >> 20,
            report.desktops
        );
    }
}

fn print_oversubscription_sweep() {
    println!("\n=== E12c: task-worker density vs vCPU:pCPU admission ratio ===");
    println!("{:>8} {:>10} {:>12}", "ratio", "desktops", "limited by");
    for ratio in [1.0f64, 2.0, 4.0, 6.0, 8.0, 12.0] {
        let config = VdiConfig {
            max_vcpu_per_core: ratio,
            ..VdiConfig::typical(DesktopProfile::TaskWorker)
        };
        let report = VdiEstimator::new(host(), config).unwrap().density();
        println!(
            "{:>7.0}:1 {:>10} {:>12}",
            ratio,
            report.desktops,
            report.limited_by.name()
        );
    }
}

/// Build a small pool of desktops cloned from one golden image and measure
/// the sharing fraction the estimator should use.
fn desktop_pool(count: u64, pages_each: u64) -> Vec<GuestMemory> {
    (0..count)
        .map(|d| {
            let mem = GuestMemory::flat(ByteSize::pages_of(pages_each)).unwrap();
            for p in 0..pages_each {
                // 60% golden image, 40% user-specific.
                let value = if p < pages_each * 6 / 10 {
                    0x901d_u64.wrapping_add(p * 41)
                } else {
                    (d + 1) * 7_000_037 + p
                };
                mem.write_u64(GuestAddress(p * PAGE_SIZE), value).unwrap();
            }
            mem
        })
        .collect()
}

fn print_measured_sharing() {
    println!("\n=== E12d: measured sharing from a cloned desktop pool feeding the estimate ===");
    let pool = desktop_pool(6, ByteSize::mib(32).pages());
    let analysis = analyze_sharing(pool.iter()).unwrap();
    let assumed = VdiConfig::typical(DesktopProfile::KnowledgeWorker);
    let measured = assumed.with_measured_sharing(&analysis);
    let assumed_density = VdiEstimator::new(host(), assumed).unwrap().density();
    let measured_density = VdiEstimator::new(host(), measured).unwrap().density();
    println!(
        "measured sharing fraction: {:.1}% (zero pages: {})",
        analysis.savings_fraction() * 100.0,
        analysis.zero_pages
    );
    println!(
        "density with assumed 35% sharing: {} desktops; with measured sharing: {} desktops",
        assumed_density.desktops, measured_density.desktops
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_profile_table();
    print_sharing_sweep();
    print_oversubscription_sweep();
    print_measured_sharing();

    let mut group = c.benchmark_group("e12_vdi");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));

    group.bench_function("density_estimate", |b| {
        let estimator =
            VdiEstimator::new(host(), VdiConfig::typical(DesktopProfile::KnowledgeWorker)).unwrap();
        b.iter(|| estimator.density().desktops)
    });
    for desktops in [2u64, 6] {
        let pool = desktop_pool(desktops, ByteSize::mib(8).pages());
        group.bench_with_input(
            BenchmarkId::new("measure_pool_sharing", desktops),
            &pool,
            |b, pool| b.iter(|| analyze_sharing(pool.iter()).unwrap().pages_saved()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
