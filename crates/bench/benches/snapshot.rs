//! Experiment E6 — snapshot cost: full vs incremental snapshots as a
//! function of guest RAM size and of the fraction of memory dirtied since
//! the previous snapshot, plus restore cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use rvisor_memory::GuestMemory;
use rvisor_snapshot::{MemorySnapshot, SnapshotStore, VmSnapshot};
use rvisor_types::{ByteSize, GuestAddress, Nanoseconds, VmId, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

fn dirty_fraction_of(mem: &GuestMemory, fraction: f64) {
    let pages = (mem.total_pages() as f64 * fraction) as u64;
    for p in 0..pages {
        mem.write_u64(GuestAddress(p * PAGE_SIZE), p).unwrap();
    }
}

fn full_snapshot(mem: &GuestMemory) -> VmSnapshot {
    VmSnapshot::capture_full(
        VmId::new(1),
        "full",
        Nanoseconds::ZERO,
        mem,
        vec![VcpuState::default()],
        Default::default(),
    )
    .unwrap()
}

fn print_table() {
    println!("\n=== E6a: snapshot size, full vs incremental (10% dirtied) ===");
    println!(
        "{:>10} {:>16} {:>20}",
        "RAM", "full snapshot", "incremental (10%)"
    );
    for mib in [128u64, 256, 512, 1024] {
        let mem = GuestMemory::flat(ByteSize::mib(mib)).unwrap();
        let full = full_snapshot(&mem);
        mem.clear_dirty();
        dirty_fraction_of(&mem, 0.10);
        let dirty = mem.drain_dirty();
        let incr = MemorySnapshot::capture_pages(&mem, &dirty).unwrap();
        println!(
            "{:>7} MiB {:>16} {:>20}",
            mib,
            format!("{}", full.approx_size()),
            format!("{}", incr.data_size())
        );
    }

    println!("\n=== E6b: incremental snapshot size vs dirty fraction (256 MiB guest) ===");
    println!(
        "{:>14} {:>16} {:>14}",
        "dirty fraction", "snapshot size", "pages"
    );
    for fraction in [0.01, 0.05, 0.10, 0.25, 0.50] {
        let mem = GuestMemory::flat(ByteSize::mib(256)).unwrap();
        mem.clear_dirty();
        dirty_fraction_of(&mem, fraction);
        let dirty = mem.drain_dirty();
        let incr = MemorySnapshot::capture_pages(&mem, &dirty).unwrap();
        println!(
            "{:>13.0}% {:>16} {:>14}",
            fraction * 100.0,
            format!("{}", incr.data_size()),
            incr.page_count()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e6_snapshot");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));

    for mib in [64u64, 256] {
        let mem = GuestMemory::flat(ByteSize::mib(mib)).unwrap();
        group.throughput(Throughput::Bytes(mib << 20));
        group.bench_with_input(BenchmarkId::new("capture_full", mib), &mem, |b, mem| {
            b.iter(|| MemorySnapshot::capture_full(mem).unwrap().page_count())
        });
    }

    for fraction_pct in [5u64, 25] {
        group.bench_with_input(
            BenchmarkId::new("capture_incremental_256MiB", fraction_pct),
            &fraction_pct,
            |b, &pct| {
                let mem = GuestMemory::flat(ByteSize::mib(256)).unwrap();
                b.iter(|| {
                    mem.clear_dirty();
                    dirty_fraction_of(&mem, pct as f64 / 100.0);
                    let dirty = mem.drain_dirty();
                    MemorySnapshot::capture_pages(&mem, &dirty)
                        .unwrap()
                        .page_count()
                })
            },
        );
    }

    group.bench_function("restore_full_64MiB", |b| {
        let mem = GuestMemory::flat(ByteSize::mib(64)).unwrap();
        dirty_fraction_of(&mem, 1.0);
        let mut store = SnapshotStore::new();
        let id = store.insert(full_snapshot(&mem)).unwrap();
        let target = GuestMemory::flat(ByteSize::mib(64)).unwrap();
        b.iter(|| store.restore(id, &target).unwrap().1)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
