//! Experiment E14 — backup policies, storage consumption and RPO/RTO.
//!
//! "Snapshots – backup features – DR services" is one of the stated goals of
//! the virtualization roadmap. The printed tables run three policies against
//! the same guest write pattern over a two-week horizon and report the
//! storage each consumes, the recovery point objective it achieves and the
//! worst-case restore time, then sweep the guest's daily write volume.
//! Criterion measures the cost of taking incremental backups and of a full
//! restore drill.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_memory::GuestMemory;
use rvisor_snapshot::{BackupPolicy, BackupReport, BackupSimulator, BackupTarget};
use rvisor_types::{ByteSize, GuestAddress, Nanoseconds, VmId, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

/// A populated guest whose dirty tracking starts clean.
fn guest(ram: ByteSize) -> GuestMemory {
    let mem = GuestMemory::flat(ram).unwrap();
    for p in 0..mem.total_pages() {
        mem.write_u64(GuestAddress(p * PAGE_SIZE), p * 11 + 3)
            .unwrap();
    }
    mem.clear_dirty();
    mem
}

/// Simulate `intervals` backup intervals, dirtying `pages_per_interval`
/// distinct pages of the working set before each backup.
fn run_policy(
    policy: BackupPolicy,
    ram: ByteSize,
    intervals: u32,
    pages_per_interval: u64,
) -> BackupReport {
    let mem = guest(ram);
    let mut sim = BackupSimulator::new(VmId::new(1), policy, BackupTarget::default()).unwrap();
    let total_pages = mem.total_pages();
    let mut cursor = 0u64;
    for _ in 0..intervals {
        for _ in 0..pages_per_interval {
            let page = cursor % total_pages;
            mem.write_u64(GuestAddress(page * PAGE_SIZE), 0xd1d1_0000 + cursor)
                .unwrap();
            cursor += 1;
        }
        sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
    }
    sim.report()
}

fn policies() -> Vec<(&'static str, BackupPolicy)> {
    vec![
        ("nightly full", BackupPolicy::nightly_full()),
        (
            "weekly full + daily inc",
            BackupPolicy::weekly_full_daily_incremental(),
        ),
        (
            "nightly full + hourly inc",
            BackupPolicy::hourly_incremental(),
        ),
    ]
}

fn print_policy_table() {
    println!("\n=== E14a: backup policies over 7 days (256 MiB guest, ~50 MiB written/day) ===");
    println!(
        "{:<26} {:>9} {:>8} {:>12} {:>14} {:>10} {:>12} {:>8}",
        "policy", "backups", "fulls", "stored", "vs full-only", "RPO", "worst RTO", "chain"
    );
    let ram = ByteSize::mib(256);
    let daily_pages = ByteSize::mib(50).pages();
    for (name, policy) in policies() {
        // Express the horizon in this policy's own interval count: 7 days.
        let day = Nanoseconds::from_secs(24 * 3600);
        let intervals = (7 * day.as_nanos() / policy.interval.as_nanos()) as u32;
        let pages_per_interval = daily_pages * policy.interval.as_nanos() / day.as_nanos();
        let report = run_policy(policy, ram, intervals, pages_per_interval);
        println!(
            "{:<26} {:>9} {:>8} {:>8} MiB {:>13.1}% {:>10} {:>12} {:>8}",
            name,
            report.backups_taken,
            report.fulls_taken,
            report.bytes_stored.as_u64() >> 20,
            report.storage_saving_fraction() * 100.0,
            format!("{}", report.rpo),
            format!("{}", report.worst_rto),
            report.longest_chain
        );
    }
}

fn print_write_volume_sweep() {
    println!("\n=== E14b: weekly-full/daily-incremental storage vs daily write volume (128 MiB guest, 14 days) ===");
    println!(
        "{:>14} {:>12} {:>16}",
        "written/day", "stored", "saving vs fulls"
    );
    for daily_mib in [5u64, 20, 50, 100, 128] {
        let report = run_policy(
            BackupPolicy::weekly_full_daily_incremental(),
            ByteSize::mib(128),
            14,
            ByteSize::mib(daily_mib).pages(),
        );
        println!(
            "{:>10} MiB {:>8} MiB {:>15.1}%",
            daily_mib,
            report.bytes_stored.as_u64() >> 20,
            report.storage_saving_fraction() * 100.0
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_policy_table();
    print_write_volume_sweep();

    let mut group = c.benchmark_group("e14_backup");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));

    group.bench_function("incremental_backup_64MiB_5pct_dirty", |b| {
        b.iter(|| {
            let report = run_policy(
                BackupPolicy::weekly_full_daily_incremental(),
                ByteSize::mib(64),
                3,
                ByteSize::mib(3).pages(),
            );
            report.bytes_stored.as_u64()
        })
    });
    for ram_mib in [32u64, 128] {
        group.bench_with_input(
            BenchmarkId::new("restore_drill", ram_mib),
            &ram_mib,
            |b, &ram_mib| {
                let ram = ByteSize::mib(ram_mib);
                let mem = guest(ram);
                let mut sim = BackupSimulator::new(
                    VmId::new(2),
                    BackupPolicy::weekly_full_daily_incremental(),
                    BackupTarget::default(),
                )
                .unwrap();
                for day in 0..5u64 {
                    mem.write_u64(GuestAddress((day % 8) * PAGE_SIZE), day)
                        .unwrap();
                    sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
                }
                b.iter(|| {
                    let replacement = GuestMemory::flat(ram).unwrap();
                    let (_, rto) = sim.restore_latest(&replacement).unwrap();
                    rto.as_nanos()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
