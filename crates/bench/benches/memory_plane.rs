//! Experiment E16 — the zero-copy guest-memory data plane: dirty-harvest
//! and page-copy throughput of the allocating (seed) accessors vs the
//! closure-view API, plus a full pre-copy migration of a 1 GiB dirtying
//! guest driven end-to-end through the zero-copy engine.
//!
//! The "old" paths below intentionally use the allocating convenience
//! wrappers (`read_page`, `drain_dirty`) that the refactor kept as thin
//! shims over the views — they are bit-for-bit the seed behaviour, so the
//! comparison is old API vs new API over identical state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::{Duration, Instant};

use rvisor_memory::GuestMemory;
use rvisor_migrate::{ConstantRateDirtier, MigrationConfig, PreCopy};
use rvisor_net::{Link, LinkModel};
use rvisor_types::{ByteSize, GuestAddress, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

/// Dirty `fraction` of the guest's pages (one u64 store per page).
fn dirty_fraction_of(mem: &GuestMemory, fraction: f64) {
    let pages = (mem.total_pages() as f64 * fraction) as u64;
    for p in 0..pages {
        mem.write_u64(GuestAddress(p * PAGE_SIZE), p | 1).unwrap();
    }
}

/// Harvest round, seed style: a fresh `Vec<u64>` per round.
fn harvest_old(mem: &GuestMemory) -> u64 {
    mem.drain_dirty().len() as u64
}

/// Harvest round, zero-copy style: one buffer reused across rounds.
fn harvest_new(mem: &GuestMemory, buf: &mut Vec<u64>) -> u64 {
    mem.drain_dirty_into(buf);
    buf.len() as u64
}

/// Copy `pages` source pages into `dest`, seed style: a 4 KiB `Vec` per page.
fn copy_old(source: &GuestMemory, dest: &GuestMemory, pages: u64) {
    for p in 0..pages {
        let contents = source.read_page(p).unwrap();
        dest.write_page(p, &contents).unwrap();
    }
}

/// Copy `pages` source pages into `dest` through the views: no heap
/// traffic. This is the engine's raw path verbatim — each page bounces
/// through a stack buffer so source and destination locks are never nested
/// (see `copy_pages_with` in `rvisor-migrate`).
fn copy_new(source: &GuestMemory, dest: &GuestMemory, pages: u64) {
    let mut bounce = [0u8; PAGE_SIZE as usize];
    for p in 0..pages {
        source
            .with_page(p, |bytes| bounce.copy_from_slice(bytes))
            .unwrap();
        dest.with_page_mut(p, |target| target.copy_from_slice(&bounce))
            .unwrap();
    }
}

fn pages_per_sec(pages: u64, elapsed: Duration) -> f64 {
    pages as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn print_table() {
    // E16a: a pre-copy round's data plane — harvest the dirty set, then
    // copy every harvested page — old vs new API, over a 256 MiB guest with
    // 10% of its pages dirtied per round.
    const ROUNDS: u32 = 40;
    let src = GuestMemory::flat(ByteSize::mib(256)).unwrap();
    let dst = GuestMemory::flat(ByteSize::mib(256)).unwrap();
    println!("\n=== E16a: dirty-harvest + page-copy round, 256 MiB guest, 10% dirty/round ===");
    println!("{:>34} {:>16} {:>14}", "path", "pages/sec", "pages/round");
    let mut moved_old = 0u64;
    let mut spent_old = Duration::ZERO;
    for _ in 0..ROUNDS {
        dirty_fraction_of(&src, 0.10);
        let t = Instant::now();
        let dirty = src.drain_dirty();
        for &p in &dirty {
            let contents = src.read_page(p).unwrap();
            dst.write_page(p, &contents).unwrap();
        }
        spent_old += t.elapsed();
        moved_old += dirty.len() as u64;
    }
    let mut buf = Vec::new();
    let mut bounce = [0u8; PAGE_SIZE as usize];
    let mut moved_new = 0u64;
    let mut spent_new = Duration::ZERO;
    for _ in 0..ROUNDS {
        dirty_fraction_of(&src, 0.10);
        let t = Instant::now();
        src.drain_dirty_into(&mut buf);
        for &p in &buf {
            src.with_page(p, |bytes| bounce.copy_from_slice(bytes))
                .unwrap();
            dst.with_page_mut(p, |target| target.copy_from_slice(&bounce))
                .unwrap();
        }
        spent_new += t.elapsed();
        moved_new += buf.len() as u64;
    }
    println!(
        "{:>34} {:>16.0} {:>14}",
        "old (drain_dirty + read_page)",
        pages_per_sec(moved_old, spent_old),
        moved_old / ROUNDS as u64
    );
    println!(
        "{:>34} {:>16.0} {:>14}",
        "new (drain_dirty_into + with_page)",
        pages_per_sec(moved_new, spent_new),
        moved_new / ROUNDS as u64
    );
    println!(
        "{:>34} {:>15.2}x",
        "speedup",
        spent_old.as_secs_f64() / spent_new.as_secs_f64().max(1e-9)
    );

    // E16b: page copy, old vs new, 64 MiB working set.
    const COPY_PASSES: u32 = 8;
    let src = GuestMemory::flat(ByteSize::mib(64)).unwrap();
    let dst = GuestMemory::flat(ByteSize::mib(64)).unwrap();
    dirty_fraction_of(&src, 1.0);
    let pages = src.total_pages();
    println!("\n=== E16b: page-copy throughput, 64 MiB working set ===");
    println!("{:>28} {:>16}", "path", "pages/sec");
    let t = Instant::now();
    for _ in 0..COPY_PASSES {
        copy_old(&src, &dst, pages);
    }
    let old_elapsed = t.elapsed();
    let t = Instant::now();
    for _ in 0..COPY_PASSES {
        copy_new(&src, &dst, pages);
    }
    let new_elapsed = t.elapsed();
    println!(
        "{:>28} {:>16.0}",
        "old (read_page/write_page)",
        pages_per_sec(pages * COPY_PASSES as u64, old_elapsed)
    );
    println!(
        "{:>28} {:>16.0}",
        "new (with_page views)",
        pages_per_sec(pages * COPY_PASSES as u64, new_elapsed)
    );
    println!(
        "{:>28} {:>15.2}x",
        "speedup",
        old_elapsed.as_secs_f64() / new_elapsed.as_secs_f64().max(1e-9)
    );

    // E16c: a full pre-copy migration of a 1 GiB guest dirtying at 30% of a
    // 10 Gbit/s link, end to end through the zero-copy engine.
    let guest = ByteSize::gib(1);
    let src = GuestMemory::flat(guest).unwrap();
    let dst = GuestMemory::flat(guest).unwrap();
    dirty_fraction_of(&src, 1.0);
    let link_model = LinkModel::ten_gigabit();
    let mut link = Link::new(link_model);
    let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
        link_model.bytes_per_second,
        0.30,
        0,
        src.total_pages(),
    );
    let config = MigrationConfig::default();
    let t = Instant::now();
    let report = PreCopy::migrate(
        &src,
        &dst,
        &[VcpuState::default()],
        &mut link,
        &mut dirtier,
        &config,
    )
    .unwrap();
    let wall = t.elapsed();
    assert_eq!(src.checksum(), dst.checksum(), "migration must be lossless");
    println!("\n=== E16c: full pre-copy migration, 1 GiB dirtying guest (zero-copy engine) ===");
    println!(
        "{:>24} {:>12} {:>14} {:>14} {:>14} {:>12}",
        "wall time", "rounds", "pages moved", "wall pages/s", "sim downtime", "converged"
    );
    println!(
        "{:>24} {:>12} {:>14} {:>14.0} {:>14} {:>12}",
        format!("{:.2?}", wall),
        report.rounds,
        report.pages_transferred,
        pages_per_sec(report.pages_transferred, wall),
        format!("{}", report.downtime),
        report.converged
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e16_memory_plane");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));

    // Harvest: old vs new at two guest sizes.
    for mib in [64u64, 256] {
        let mem = GuestMemory::flat(ByteSize::mib(mib)).unwrap();
        group.throughput(Throughput::Elements(mem.total_pages() / 10));
        group.bench_with_input(BenchmarkId::new("harvest_old", mib), &mem, |b, mem| {
            b.iter(|| {
                dirty_fraction_of(mem, 0.10);
                harvest_old(mem)
            })
        });
        let mut buf = Vec::new();
        group.bench_with_input(BenchmarkId::new("harvest_new", mib), &mem, |b, mem| {
            b.iter(|| {
                dirty_fraction_of(mem, 0.10);
                harvest_new(mem, &mut buf)
            })
        });
    }

    // The combined round (harvest + copy), old vs new, 64 MiB guest.
    let rsrc = GuestMemory::flat(ByteSize::mib(64)).unwrap();
    let rdst = GuestMemory::flat(ByteSize::mib(64)).unwrap();
    group.throughput(Throughput::Elements(rsrc.total_pages() / 10));
    group.bench_function("round_old/64MiB", |b| {
        b.iter(|| {
            dirty_fraction_of(&rsrc, 0.10);
            let dirty = rsrc.drain_dirty();
            for &p in &dirty {
                let contents = rsrc.read_page(p).unwrap();
                rdst.write_page(p, &contents).unwrap();
            }
            dirty.len()
        })
    });
    let mut round_buf = Vec::new();
    let mut round_bounce = [0u8; PAGE_SIZE as usize];
    group.bench_function("round_new/64MiB", |b| {
        b.iter(|| {
            dirty_fraction_of(&rsrc, 0.10);
            rsrc.drain_dirty_into(&mut round_buf);
            for &p in &round_buf {
                rsrc.with_page(p, |bytes| round_bounce.copy_from_slice(bytes))
                    .unwrap();
                rdst.with_page_mut(p, |target| target.copy_from_slice(&round_bounce))
                    .unwrap();
            }
            round_buf.len()
        })
    });

    // Page copy: old vs new over a 16 MiB working set.
    let src = GuestMemory::flat(ByteSize::mib(16)).unwrap();
    let dst = GuestMemory::flat(ByteSize::mib(16)).unwrap();
    dirty_fraction_of(&src, 1.0);
    let pages = src.total_pages();
    group.throughput(Throughput::Bytes(pages * PAGE_SIZE));
    group.bench_function("copy_old/16MiB", |b| b.iter(|| copy_old(&src, &dst, pages)));
    group.bench_function("copy_new/16MiB", |b| b.iter(|| copy_new(&src, &dst, pages)));

    // The end-to-end path: a small pre-copy migration per iteration.
    group.bench_function("precopy_migration/32MiB", |b| {
        b.iter(|| {
            let src = GuestMemory::flat(ByteSize::mib(32)).unwrap();
            let dst = GuestMemory::flat(ByteSize::mib(32)).unwrap();
            dirty_fraction_of(&src, 0.5);
            let mut link = Link::new(LinkModel::ten_gigabit());
            let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                LinkModel::ten_gigabit().bytes_per_second,
                0.2,
                0,
                src.total_pages(),
            );
            PreCopy::migrate(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut link,
                &mut dirtier,
                &MigrationConfig::default(),
            )
            .unwrap()
            .pages_transferred
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
