//! Experiment E5 — vCPU scheduling: weighted fairness, cap enforcement and
//! scheduler overhead for round-robin, credit and stride schedulers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_sched::{
    CreditScheduler, EntityId, HostSim, RoundRobin, Scheduler, SimConfig, StrideScheduler,
    VcpuEntity,
};
use rvisor_types::{Nanoseconds, VcpuId, VmId};

fn entity(vm: u32, weight: u32) -> VcpuEntity {
    VcpuEntity::cpu_bound(EntityId::new(VmId::new(vm), VcpuId::new(0))).with_weight(weight)
}

fn weighted_sim(pcpus: usize, quanta: u64) -> HostSim {
    let mut sim = HostSim::new(SimConfig {
        pcpus,
        quanta,
        quantum: Nanoseconds::from_millis(30),
    });
    sim.add_entity(entity(0, 128));
    sim.add_entity(entity(1, 256));
    sim.add_entity(entity(2, 256));
    sim.add_entity(entity(3, 512));
    sim
}

fn oversubscribed_sim(vcpus: u32, pcpus: usize, quanta: u64) -> HostSim {
    let mut sim = HostSim::new(SimConfig {
        pcpus,
        quanta,
        quantum: Nanoseconds::from_millis(30),
    });
    for vm in 0..vcpus {
        sim.add_entity(entity(vm, 256));
    }
    sim
}

fn print_table() {
    println!("\n=== E5: scheduler comparison (weights 128:256:256:512 on 1 pCPU, 20k quanta) ===");
    println!(
        "{:<14} {:>12} {:>18} {:>18}",
        "scheduler", "Jain index", "max weight error", "context switches"
    );
    let sim = weighted_sim(1, 20_000);
    let reports = [
        sim.run(&mut RoundRobin::new()),
        sim.run(&mut CreditScheduler::new()),
        sim.run(&mut StrideScheduler::new()),
    ];
    for r in &reports {
        println!(
            "{:<14} {:>12.4} {:>17.1}% {:>18}",
            r.scheduler,
            r.jain_index,
            r.weighted_error * 100.0,
            r.context_switches
        );
    }

    println!("\n--- cap enforcement (credit scheduler, 1 pCPU) ---");
    let mut sim = HostSim::new(SimConfig {
        pcpus: 1,
        quanta: 10_000,
        quantum: Nanoseconds::from_millis(30),
    });
    sim.add_entity(entity(0, 256).with_cap(25));
    sim.add_entity(entity(1, 256));
    let r = sim.run(&mut CreditScheduler::new());
    println!(
        "capped vCPU got {:.1}% of the CPU (cap 25%), uncapped got {:.1}%",
        r.share_of(EntityId::new(VmId::new(0), VcpuId::new(0))) * 100.0,
        r.share_of(EntityId::new(VmId::new(1), VcpuId::new(0))) * 100.0
    );

    println!("\n--- oversubscription: 32 always-runnable vCPUs on 8 pCPUs ---");
    let sim = oversubscribed_sim(32, 8, 10_000);
    for report in [
        sim.run(&mut RoundRobin::new()),
        sim.run(&mut CreditScheduler::new()),
    ] {
        println!(
            "{:<14} utilization {:>6.1}%  Jain {:.4}",
            report.scheduler,
            report.utilization * 100.0,
            report.jain_index
        );
    }
    println!();
}

type MakeScheduler = fn() -> Box<dyn Scheduler>;

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e5_sched");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let makers: Vec<(&str, MakeScheduler)> = vec![
        ("round-robin", || {
            Box::new(RoundRobin::new()) as Box<dyn Scheduler>
        }),
        ("credit", || {
            Box::new(CreditScheduler::new()) as Box<dyn Scheduler>
        }),
        ("stride", || {
            Box::new(StrideScheduler::new()) as Box<dyn Scheduler>
        }),
    ];
    for (name, make) in makers {
        group.bench_with_input(
            BenchmarkId::new("sim_10k_quanta", name),
            &make,
            |b, make| {
                let sim = oversubscribed_sim(32, 8, 10_000);
                b.iter(|| {
                    let mut sched = make();
                    sim.run(sched.as_mut()).context_switches
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
