//! Experiment E3 — memory overcommit through ballooning.
//!
//! Two parts: (a) how many VMs of a given size fit on a host as the
//! overcommit factor (backed by ballooning) grows — the density curve; and
//! (b) the cost of balloon inflate/deflate operations as a function of the
//! number of pages moved.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_cluster::{ConsolidationPlanner, HostSpec, PlacementStrategy, ServerRole, VmSpec};
use rvisor_memory::{Balloon, GuestMemory};
use rvisor_types::{ByteSize, HostId};

fn density_row(overcommit: f64) -> (usize, f64) {
    let fleet: Vec<VmSpec> = (0..64)
        .map(|i| VmSpec::typical(&format!("vm-{i}"), ServerRole::AppServer))
        .collect();
    let plan = ConsolidationPlanner::new(HostSpec::deck_era_server(HostId::new(0)), 1)
        .with_memory_overcommit(overcommit)
        .plan(&fleet, PlacementStrategy::FirstFitDecreasing)
        .unwrap();
    (plan.vms_placed(), plan.avg_memory_utilization())
}

fn print_table() {
    println!("\n=== E3: VM density vs memory overcommit (12 GiB host, 2 GiB VMs) ===");
    println!(
        "{:>12} {:>12} {:>18}",
        "overcommit", "VMs placed", "mem committed"
    );
    for factor in [1.0, 1.25, 1.5, 1.75, 2.0] {
        let (vms, util) = density_row(factor);
        println!("{:>11.2}x {:>12} {:>17.0}%", factor, vms, util * 100.0);
    }

    println!("\n--- balloon inflate/deflate cost (pages moved per operation) ---");
    println!(
        "{:>12} {:>16} {:>16}",
        "pages", "inflate works", "usable after"
    );
    for pages in [1_000u64, 10_000, 50_000] {
        let mem = GuestMemory::flat(ByteSize::mib(256)).unwrap();
        let balloon = Balloon::new(mem, 64);
        balloon.inflate(pages).unwrap();
        let stats = balloon.stats();
        println!(
            "{:>12} {:>16} {:>16}",
            pages,
            stats.inflations,
            format!("{}", stats.usable)
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e3_balloon");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for pages in [1_000u64, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::new("inflate", pages), &pages, |b, &pages| {
            b.iter_batched(
                || Balloon::new(GuestMemory::flat(ByteSize::mib(256)).unwrap(), 64),
                |balloon| balloon.inflate(pages).unwrap().len(),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("inflate_deflate_cycle", pages),
            &pages,
            |b, &pages| {
                b.iter_batched(
                    || {
                        let balloon =
                            Balloon::new(GuestMemory::flat(ByteSize::mib(256)).unwrap(), 64);
                        balloon.inflate(pages).unwrap();
                        balloon
                    },
                    |balloon| balloon.deflate(pages).len(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.bench_function("density_planning", |b| b.iter(|| density_row(1.5)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
