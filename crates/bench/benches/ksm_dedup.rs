//! Experiment E11 — content-based page sharing (KSM) savings.
//!
//! The estate the source material virtualizes is dozens of near-identical
//! Windows 2003 / XP guests cloned from two templates — the best case for
//! kernel-samepage-merging. The printed tables sweep (a) the number of
//! template clones sharing a host and (b) how much of each guest's memory
//! has diverged from the template, reporting the memory given back by the
//! scanner. Criterion measures the host-side cost of scan rounds and of the
//! one-shot sharing analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_memory::{analyze_sharing, GuestMemory, KsmConfig, KsmManager};
use rvisor_types::{ByteSize, GuestAddress, VmId, PAGE_SIZE};

/// Build a guest cloned from a synthetic golden image: `total_pages` pages of
/// template content, of which the trailing `private_fraction` have been
/// overwritten with VM-unique data.
fn template_clone(vm_seed: u64, total_pages: u64, private_fraction: f64) -> GuestMemory {
    let mem = GuestMemory::flat(ByteSize::pages_of(total_pages)).unwrap();
    let private_pages = (total_pages as f64 * private_fraction).round() as u64;
    let shared_pages = total_pages - private_pages;
    for p in 0..total_pages {
        let value = if p < shared_pages {
            // Template content: identical across all clones.
            0x7e3a_0000_0000 + p * 97
        } else {
            // Private content: unique per VM.
            (vm_seed + 1) * 1_000_003 + p * 31
        };
        mem.write_u64(GuestAddress(p * PAGE_SIZE), value).unwrap();
    }
    mem
}

fn scanner_over(vms: &[GuestMemory]) -> KsmManager {
    let mut ksm = KsmManager::new(KsmConfig::default());
    for (i, mem) in vms.iter().enumerate() {
        ksm.register_vm(VmId::new(i as u32), mem.clone());
    }
    ksm
}

fn print_clone_count_table() {
    println!(
        "\n=== E11a: KSM savings vs number of template clones (32 MiB guests, 20% private) ==="
    );
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>12} {:>14}",
        "clones", "guest RAM", "pages shared", "pages sharing", "saved", "sharing ratio"
    );
    let pages_per_vm = ByteSize::mib(32).pages();
    for clones in [2usize, 4, 8, 16] {
        let vms: Vec<GuestMemory> = (0..clones)
            .map(|i| template_clone(i as u64, pages_per_vm, 0.2))
            .collect();
        let mut ksm = scanner_over(&vms);
        ksm.scan_until_stable(6).unwrap();
        let stats = ksm.stats();
        println!(
            "{:>7} {:>10} MiB {:>14} {:>14} {:>8} MiB {:>13.1}x",
            clones,
            (pages_per_vm * clones as u64 * PAGE_SIZE) >> 20,
            stats.pages_shared,
            stats.pages_sharing,
            stats.bytes_saved() >> 20,
            stats.sharing_ratio()
        );
    }
}

fn print_divergence_table() {
    println!(
        "\n=== E11b: KSM savings vs guest divergence from the template (8 × 32 MiB guests) ==="
    );
    println!(
        "{:>16} {:>14} {:>16} {:>18}",
        "private fraction", "saved", "saving fraction", "one-shot upper bound"
    );
    let pages_per_vm = ByteSize::mib(32).pages();
    for private in [0.0f64, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let vms: Vec<GuestMemory> = (0..8)
            .map(|i| template_clone(i as u64, pages_per_vm, private))
            .collect();
        let analysis = analyze_sharing(vms.iter()).unwrap();
        let mut ksm = scanner_over(&vms);
        ksm.scan_until_stable(6).unwrap();
        let stats = ksm.stats();
        let total_bytes = pages_per_vm * 8 * PAGE_SIZE;
        println!(
            "{:>15.0}% {:>10} MiB {:>15.1}% {:>13} MiB",
            private * 100.0,
            stats.bytes_saved() >> 20,
            stats.bytes_saved() as f64 / total_bytes as f64 * 100.0,
            analysis.bytes_saved() >> 20
        );
    }
}

fn print_cow_break_table() {
    println!("\n=== E11c: sharing decay under guest writes (4 clones, write bursts into shared pages) ===");
    println!(
        "{:>14} {:>12} {:>12}",
        "pages written", "cow breaks", "still saved"
    );
    let pages_per_vm = ByteSize::mib(16).pages();
    let vms: Vec<GuestMemory> = (0..4)
        .map(|i| template_clone(i, pages_per_vm, 0.0))
        .collect();
    let mut ksm = scanner_over(&vms);
    ksm.scan_until_stable(6).unwrap();
    let mut written = 0u64;
    for burst in [0u64, 256, 1024, 2048] {
        for p in written..written + burst {
            let page = p % pages_per_vm;
            vms[0]
                .write_u64(GuestAddress(page * PAGE_SIZE), 0xdead_0000 + p)
                .unwrap();
            ksm.notify_write(VmId::new(0), page);
        }
        written += burst;
        let stats = ksm.stats();
        println!(
            "{:>14} {:>12} {:>8} MiB",
            written,
            stats.cow_breaks,
            stats.bytes_saved() >> 20
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_clone_count_table();
    print_divergence_table();
    print_cow_break_table();

    let mut group = c.benchmark_group("e11_ksm");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));

    for clones in [2usize, 8] {
        let vms: Vec<GuestMemory> = (0..clones)
            .map(|i| template_clone(i as u64, ByteSize::mib(8).pages(), 0.2))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("full_scan_to_stable", clones),
            &vms,
            |b, vms| {
                b.iter(|| {
                    let mut ksm = scanner_over(vms);
                    ksm.scan_until_stable(4).unwrap();
                    ksm.stats().pages_sharing
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("one_shot_analysis", clones),
            &vms,
            |b, vms| b.iter(|| analyze_sharing(vms.iter()).unwrap().pages_saved()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
