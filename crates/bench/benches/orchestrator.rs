//! Experiment E15 — the orchestrated datacenter: SLA metrics of a
//! day-in-the-life cluster run under each rebalance policy and each
//! workload shape, plus the cost of the orchestration hot loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_orch::{
    run_datacenter, ConsolidateAndPowerDown, OrchParams, RebalancePolicy, Scenario, ScenarioConfig,
    SpreadRebalance, ThresholdRebalance, WorkloadShape,
};
use rvisor_types::Nanoseconds;

fn policy(name: &str) -> Box<dyn RebalancePolicy> {
    match name {
        "threshold" => Box::new(ThresholdRebalance),
        "consolidate" => Box::new(ConsolidateAndPowerDown),
        _ => Box::new(SpreadRebalance),
    }
}

fn table_scenario(shape: WorkloadShape) -> Scenario {
    let cfg = ScenarioConfig {
        duration: Nanoseconds::from_secs(6 * 3600),
        ..ScenarioConfig::day(15, shape, 8, 120)
    }
    .with_host_failures(1);
    Scenario::generate(cfg).unwrap()
}

fn print_tables() {
    println!("\n=== E15: orchestrated datacenter (8 hosts, 120 VM arrivals, 6 h) ===");
    println!(
        "{:<14} {:<14} {:>7} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "shape", "policy", "placed", "migrated", "downtime", "restored", "VM-lost", "avg-hosts"
    );
    for shape in WorkloadShape::ALL {
        let scenario = table_scenario(shape);
        for name in ["threshold", "consolidate", "spread"] {
            let report = run_datacenter(8, OrchParams::default(), policy(name), &scenario).unwrap();
            println!(
                "{:<14} {:<14} {:>7} {:>9} {:>10} {:>10} {:>9} {:>9.1}",
                shape.name(),
                name,
                report.vms_placed,
                report.migrations_completed,
                format!("{}", report.migration_downtime_total),
                report.vms_restored,
                report.vms_lost_permanently,
                report.avg_hosts_powered(),
            );
        }
    }
    println!("(deterministic: same seed replays to an identical report)");
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();

    let mut group = c.benchmark_group("e15_orchestrator");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    // End-to-end: a compact two-hour day per policy.
    let small = Scenario::generate(
        ScenarioConfig {
            duration: Nanoseconds::from_secs(2 * 3600),
            ..ScenarioConfig::day(15, WorkloadShape::SteadyState, 4, 30)
        }
        .with_host_failures(1),
    )
    .unwrap();
    for name in ["threshold", "consolidate", "spread"] {
        group.bench_with_input(BenchmarkId::new("day_run", name), &small, |b, s| {
            b.iter(|| {
                run_datacenter(4, OrchParams::default(), policy(name), s)
                    .unwrap()
                    .events_processed
            })
        });
    }

    // Scenario generation alone (the pure-RNG part of the pipeline).
    group.bench_function("generate_500vm_day", |b| {
        let cfg = ScenarioConfig::day(15, WorkloadShape::DiurnalWave, 32, 500);
        b.iter(|| Scenario::generate(cfg).unwrap().events.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
