//! Experiment E13 — NUMA-aware placement: locality vs balance.
//!
//! Packing each VM's memory onto one node keeps accesses local (no remote
//! penalty) at the cost of node imbalance; interleaving balances the nodes
//! but makes roughly `1 - 1/N` of all accesses remote. The printed tables
//! quantify both effects for the 50-VM estate on two- and four-node hosts
//! and sweep the remote-access penalty. Criterion measures the placement
//! cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rvisor_cluster::{HostSpec, NumaHost, NumaPolicy, NumaTopology, VmSpec};
use rvisor_types::{ByteSize, HostId};

/// Place as much of the fleet as fits onto one big NUMA host.
fn place_fleet(host: &mut NumaHost, policy: NumaPolicy) -> usize {
    let mut placed = 0;
    for vm in VmSpec::nireus_fleet() {
        if host.fits(&vm) && host.place(&vm, policy).is_ok() {
            placed += 1;
        }
    }
    placed
}

fn print_policy_table() {
    println!("\n=== E13a: packed vs interleaved placement (50-VM estate) ===");
    println!(
        "{:>6} {:<13} {:>7} {:>16} {:>16} {:>16}",
        "nodes", "policy", "placed", "avg local frac", "avg slowdown", "node imbalance"
    );
    for nodes in [2u32, 4] {
        for policy in NumaPolicy::ALL {
            let topology =
                NumaTopology::symmetric(nodes, 64 / nodes, ByteSize::gib((256 / nodes) as u64));
            let mut host = NumaHost::new(topology);
            let placed = place_fleet(&mut host, policy);
            println!(
                "{:>6} {:<13} {:>7} {:>15.1}% {:>15.3}x {:>15.1}%",
                nodes,
                policy.name(),
                placed,
                host.avg_local_fraction() * 100.0,
                host.avg_expected_slowdown(),
                host.memory_imbalance() * 100.0
            );
        }
    }
}

fn print_penalty_sweep() {
    println!(
        "\n=== E13b: expected slowdown vs remote-access penalty (4-node host, interleaved) ==="
    );
    println!("{:>10} {:>16} {:>16}", "penalty", "packed", "interleaved");
    for penalty in [1.2f64, 1.4, 1.6, 2.0] {
        let mut row = Vec::new();
        for policy in NumaPolicy::ALL {
            let topology =
                NumaTopology::symmetric(4, 16, ByteSize::gib(64)).with_remote_penalty(penalty);
            let mut host = NumaHost::new(topology);
            place_fleet(&mut host, policy);
            row.push(host.avg_expected_slowdown());
        }
        println!("{:>9.1}x {:>15.3}x {:>15.3}x", penalty, row[0], row[1]);
    }
}

fn print_fragmentation_case() {
    println!("\n=== E13c: packing refuses what interleaving fragments (deck-era 2-node host) ===");
    // Four 5 GiB database VMs on a 2 × 6 GiB host: only two fit per node
    // without splitting; the table shows how each policy spends the nodes.
    for policy in NumaPolicy::ALL {
        let topology = NumaTopology::of_host(&HostSpec::deck_era_server(HostId::new(0)), 2);
        let mut host = NumaHost::new(topology);
        let mut placed = 0;
        for i in 0..4 {
            let vm = VmSpec::typical(&format!("sql-{i}"), rvisor_cluster::ServerRole::Database)
                .with_memory(ByteSize::gib(5));
            if host.fits(&vm) && host.place(&vm, policy).is_ok() {
                placed += 1;
            }
        }
        println!(
            "{:<13} placed {} of 4, avg local {:>5.1}%, node utilisation {:?}",
            policy.name(),
            placed,
            host.avg_local_fraction() * 100.0,
            host.node_memory_utilization()
                .iter()
                .map(|u| (u * 100.0).round() as u64)
                .collect::<Vec<_>>()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_policy_table();
    print_penalty_sweep();
    print_fragmentation_case();

    let mut group = c.benchmark_group("e13_numa");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for policy in NumaPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("place_fleet_4_nodes", policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let topology = NumaTopology::symmetric(4, 16, ByteSize::gib(64));
                    let mut host = NumaHost::new(topology);
                    place_fleet(&mut host, policy)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
