//! `bench_json` — the machine-readable perf-tracking harness behind the CI
//! `bench-trend` job.
//!
//! Runs a curated set of quick micro-benchmarks over the workspace's hot
//! paths (the wire codec, the streamed migration engine, the fabric model,
//! the zero-copy memory plane, the warehouse-scale orchestrator
//! structures) and emits a flat JSON map of `bench name -> ns/iter`:
//!
//! ```sh
//! cargo run --release -p rvisor-bench --bin bench_json -- --out BENCH_$(git rev-parse HEAD).json
//! ```
//!
//! With `--compare BENCH_baseline.json` it additionally diffs the fresh
//! numbers against the checked-in baseline and **exits non-zero when any
//! bench regressed by more than `--threshold` percent** (default 25). Each
//! sample is the mean of a timed batch and the reported figure is the
//! *median* sample, which keeps single-digit-millisecond CI runs stable
//! enough for a coarse 25% gate. A bench present only in the current run
//! is reported but never fails the gate, so adding a bench does not
//! require a lockstep baseline update; a bench present only in the
//! *baseline* fails it, so coverage cannot silently disappear.
//!
//! The JSON is written one `"name": value` pair per line, so the
//! dependency-free parser below (and any `jq`-less shell script) can read
//! it back.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::Instant;

use rvisor_cluster::{HostSpec, PlacementStrategy, ServerRole, VmSpec};
use rvisor_memory::GuestMemory;
use rvisor_migrate::compress::xbzrle_encode;
use rvisor_migrate::{
    ConstantRateDirtier, FabricTransport, IdleDirtier, LoopbackTransport, MigrationConfig,
    MigrationSink, MigrationSource, PostCopy, PreCopy, Transport,
};
use rvisor_net::{ClosFabric, ClosParams, Fabric, FabricParams, Link, LinkModel};
use rvisor_obs::{ArgValue, Args as TraceArgs, Trace, TraceSink};
use rvisor_orch::{
    run_datacenter, Cluster, EngineChoice, EventQueue, FabricTopology, OrchEvent, OrchParams,
    RebalancePolicy, Scenario, ScenarioConfig, SpreadRebalance, ThresholdRebalance, VmFidelity,
    WorkloadShape,
};
use rvisor_snapshot::{CasStore, VmSnapshot};
use rvisor_types::{ByteSize, GuestAddress, HostId, Nanoseconds, VmId, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

/// Samples per bench; the median is reported.
const DEFAULT_SAMPLES: usize = 9;
/// Target wall-clock budget per sample, nanoseconds.
const SAMPLE_BUDGET_NS: u128 = 8_000_000;

struct Args {
    out: Option<String>,
    compare: Option<String>,
    threshold_pct: f64,
    samples: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        compare: None,
        threshold_pct: 25.0,
        samples: DEFAULT_SAMPLES,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = Some(value("--out")?),
            "--compare" => args.compare = Some(value("--compare")?),
            "--threshold" => {
                args.threshold_pct = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?
            }
            "--samples" => {
                args.samples = value("--samples")?
                    .parse()
                    .map_err(|e| format!("bad --samples: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_json [--out FILE] [--compare BASELINE] \
                     [--threshold PCT] [--samples N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.samples == 0 {
        return Err("--samples must be at least 1".into());
    }
    Ok(args)
}

/// Measure `routine`: calibrate a batch size to ~`SAMPLE_BUDGET_NS`, take
/// `samples` timed batches, report the median mean-ns-per-iteration.
fn measure<O>(samples: usize, mut routine: impl FnMut() -> O) -> f64 {
    // Warm-up + calibration.
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_nanos() < SAMPLE_BUDGET_NS / 4 || calib_iters == 0 {
        std::hint::black_box(routine());
        calib_iters += 1;
        if calib_iters >= 10_000 {
            break;
        }
    }
    let per_iter = (start.elapsed().as_nanos() / calib_iters as u128).max(1);
    let batch = ((SAMPLE_BUDGET_NS / per_iter).clamp(1, 100_000)) as u64;

    let mut means = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        means.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    means[means.len() / 2]
}

fn sparse_memories(pages: u64) -> (GuestMemory, GuestMemory) {
    let src = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
    let dst = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
    for p in 0..pages {
        if p % 4 != 3 {
            src.write_u64(GuestAddress(p * PAGE_SIZE), p * 11 + 3)
                .unwrap();
        }
    }
    (src, dst)
}

fn run_benches(samples: usize) -> BTreeMap<String, f64> {
    const PAGES: u64 = 512; // 2 MiB guest keeps every bench in the ms range
    let mut results = BTreeMap::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<40} {ns:>14.1} ns/iter");
        results.insert(name.to_string(), ns);
    };

    // -- wire codec: encode one round of raw page frames --
    {
        let (src, _) = sparse_memories(PAGES);
        let pages: Vec<u64> = (0..PAGES).collect();
        let mut link = Link::new(LinkModel::ten_gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let ns = measure(samples, || {
            let mut source = MigrationSource::raw(&src);
            source.encode_round(&pages, &mut transport).unwrap();
            let (_, burst) = transport.deliver(Nanoseconds::ZERO).unwrap();
            let len = burst.len();
            transport.recycle(burst);
            len
        });
        record("wire_encode_round_2mib", ns);
    }

    // -- wire codec: checksum-verify and apply one round --
    {
        let (src, dst) = sparse_memories(PAGES);
        let mut link = Link::new(LinkModel::ten_gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let mut source = MigrationSource::raw(&src);
        source.send_hello(&mut transport).unwrap();
        source
            .encode_round(&(0..PAGES).collect::<Vec<_>>(), &mut transport)
            .unwrap();
        let (_, burst) = transport.deliver(Nanoseconds::ZERO).unwrap();
        let ns = measure(samples, || {
            let mut sink = MigrationSink::new(&dst);
            sink.apply_burst(&burst).unwrap();
            sink.pages_applied()
        });
        record("wire_decode_apply_round_2mib", ns);
    }

    // -- full streamed pre-copy over loopback --
    {
        let ns = measure(samples, || {
            let (src, dst) = sparse_memories(PAGES);
            let mut link = Link::new(LinkModel::ten_gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            PreCopy::migrate_over(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut IdleDirtier,
                &MigrationConfig::default(),
            )
            .unwrap()
        });
        record("precopy_stream_loopback_2mib", ns);
    }

    // -- pre-copy through the traced entry point with tracing *off*: the
    //    no-op plane must cost nothing vs. precopy_stream_loopback_2mib
    //    (main gates the overhead after both medians are in). Measured
    //    immediately after the untraced block above so the two medians see
    //    the same process state — allocator thresholds and cache warmth
    //    drift over a bench run, and the gate must compare the plane, not
    //    the process phase. --
    {
        let ns = measure(samples, || {
            let (src, dst) = sparse_memories(PAGES);
            let mut link = Link::new(LinkModel::ten_gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            PreCopy::migrate_over_traced(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut IdleDirtier,
                &MigrationConfig::default(),
                &Trace::off(),
            )
            .unwrap()
        });
        record("precopy_traced_vs_untraced_2mib", ns);
    }

    // -- pipelined pre-copy over loopback: encode and apply on separate
    //    threads, byte-identical to the serial stream above --
    {
        let ns = measure(samples, || {
            let (src, dst) = sparse_memories(PAGES);
            let mut link = Link::new(LinkModel::ten_gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            let config = MigrationConfig {
                streams: NonZeroUsize::new(2).unwrap(),
                ..Default::default()
            };
            PreCopy::migrate_pipelined(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut IdleDirtier,
                &config,
            )
            .unwrap()
        });
        record("precopy_stream_pipelined_2mib", ns);
    }

    // -- 4-stream pipelined pre-copy over loopback (experiment E18): the
    //    page-index space sharded across 4 encode workers plus the sink
    //    thread. The speedup over the serial number above scales with the
    //    host's core count; on a single core it degrades to ~serial. --
    {
        let ns = measure(samples, || {
            let (src, dst) = sparse_memories(PAGES);
            let mut link = Link::new(LinkModel::ten_gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            let config = MigrationConfig {
                streams: NonZeroUsize::new(4).unwrap(),
                ..Default::default()
            };
            PreCopy::migrate_pipelined(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut IdleDirtier,
                &config,
            )
            .unwrap()
        });
        record("precopy_stream_4way_2mib", ns);
    }

    // -- observability plane: one span emitted through an attached sink --
    {
        /// A sink that discards everything: measures the dispatch-and-borrow
        /// emit path itself, not recorder memory growth.
        struct NullSink;
        impl TraceSink for NullSink {
            fn span(
                &mut self,
                _: &'static str,
                _: &'static str,
                _: Nanoseconds,
                _: Nanoseconds,
                _: &TraceArgs<'_>,
            ) {
            }
            fn instant(
                &mut self,
                _: &'static str,
                _: &'static str,
                _: Nanoseconds,
                _: &TraceArgs<'_>,
            ) {
            }
            fn counter(&mut self, _: &'static str, _: &'static str, _: Nanoseconds, _: u64) {}
            fn add(&mut self, _: &'static str, _: u64) {}
            fn observe(&mut self, _: &'static str, _: u64) {}
        }
        let trace = Trace::to(std::rc::Rc::new(std::cell::RefCell::new(NullSink)));
        let mut i = 0u64;
        let ns = measure(samples, || {
            i = i.wrapping_add(1);
            trace.span(
                "bench",
                "span",
                Nanoseconds(i),
                Nanoseconds(i + 1),
                &[("bytes", ArgValue::U64(i)), ("vm", ArgValue::Str("probe"))],
            );
        });
        record("trace_span_emit", ns);
    }

    // -- full streamed pre-copy over the fabric, dirtying guest --
    {
        let params = FabricParams::datacenter();
        let ns = measure(samples, || {
            let (src, dst) = sparse_memories(PAGES);
            let mut fabric = Fabric::new(2, params).unwrap();
            let mut transport = FabricTransport::new(&mut fabric, 0, 1).unwrap();
            let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                params.nic_bytes_per_second,
                0.3,
                0,
                PAGES,
            );
            PreCopy::migrate_over(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut dirtier,
                &MigrationConfig::default(),
            )
            .unwrap()
        });
        record("precopy_stream_fabric_2mib", ns);
    }

    // -- fabric timing model (pure integer arithmetic) --
    {
        let mut fabric = Fabric::new(16, FabricParams::datacenter()).unwrap();
        let mut i = 0usize;
        let ns = measure(samples, || {
            i = (i + 1) % 15;
            fabric
                .transfer(i, i + 1, Nanoseconds::ZERO, 1 << 20)
                .unwrap()
        });
        record("fabric_transfer_1mib", ns);
    }

    // -- Clos fabric timing model: one cross-rack burst striped over the
    //    spine tier (ECMP hash + per-spine occupancy bookkeeping) --
    {
        let mut fabric = ClosFabric::new(16, ClosParams::datacenter(4, 4)).unwrap();
        let stripes = [256 * 1024u64; 4];
        let mut i = 0usize;
        let ns = measure(samples, || {
            i = (i + 1) % 4;
            // Host i in rack 0 to host 15 - i in rack 3: always cross-rack.
            fabric
                .transfer_striped(i, 15 - i, Nanoseconds::ZERO, &stripes)
                .unwrap()
        });
        record("clos_transfer_striped_cross_rack", ns);
    }

    // -- XBZRLE delta encode of a lightly-touched page --
    {
        let old = vec![0xa5u8; PAGE_SIZE as usize];
        let mut new = old.clone();
        for i in (0..PAGE_SIZE as usize).step_by(512) {
            new[i] ^= 0xff;
        }
        let ns = measure(samples, || xbzrle_encode(&old, &new));
        record("xbzrle_encode_page", ns);
    }

    // -- zero-copy memory plane: harvest + page copy round --
    {
        let (src, dst) = sparse_memories(PAGES);
        let mut harvest: Vec<u64> = Vec::new();
        let mut bounce = [0u8; PAGE_SIZE as usize];
        let ns = measure(samples, || {
            for p in (0..PAGES).step_by(2) {
                src.mark_dirty_page(p);
            }
            src.drain_dirty_into(&mut harvest);
            for &p in &harvest {
                src.with_page(p, |bytes| bounce.copy_from_slice(bytes))
                    .unwrap();
                dst.with_page_mut(p, |target| target.copy_from_slice(&bounce))
                    .unwrap();
            }
            harvest.len()
        });
        record("memory_plane_harvest_copy_round", ns);
    }

    // -- orchestrator at warehouse scale: a 10k-host cluster with 30k
    //    modeled VMs, a handful of hosts run hot --
    {
        let params = OrchParams {
            fidelity: VmFidelity::OnDemand,
            ..Default::default()
        };
        let specs = (0..10_000)
            .map(|i| HostSpec::modern_server(HostId::new(i)))
            .collect();
        let mut cluster = Cluster::new(specs, params).unwrap();
        for host in 0..10_000u32 {
            for slot in 0..3 {
                let spec = VmSpec::typical(&format!("vm-{host}-{slot}"), ServerRole::AppServer);
                cluster.deploy(HostId::new(host), spec).unwrap();
            }
        }
        // Eight hotspots for the threshold policy to drain. 27 cores puts
        // the host at ~0.89 utilization (over the 0.85 bar) while the hot
        // VM still fits on any other host, so the tick measures the
        // candidate-only index walk rather than a futile full scan.
        for host in 0..8u32 {
            cluster
                .set_cpu_demand(&format!("vm-{host}-0"), 27.0)
                .unwrap();
        }

        // A full rebalance tick: find every overloaded host via the
        // utilization index and plan migrations off it.
        let policy = ThresholdRebalance;
        let ns = measure(samples, || policy.plan(&cluster, &params));
        record("orch_rebalance_tick_10k_hosts", ns);

        // One placement decision against all 10k hosts: coldest-first
        // through the same index.
        let spec = VmSpec::typical("probe", ServerRole::Web);
        let ns = measure(samples, || {
            cluster.choose_host(PlacementStrategy::Spread, &spec)
        });
        record("orch_placement_scan_10k_hosts", ns);
    }

    // -- topology-aware day: a 32-rack Clos datacenter runs the E21
    //    flash-crowd day end to end (placement, striped migrations over the
    //    spine tier, DR sweeps), one full deterministic replay per iter --
    {
        let scenario = Scenario::generate(ScenarioConfig {
            duration: Nanoseconds::from_secs(2 * 3600),
            ..ScenarioConfig::day(0xE21, WorkloadShape::FlashCrowd, 32, 256)
        })
        .unwrap();
        let params = OrchParams {
            placement: PlacementStrategy::Spread,
            migration_streams: NonZeroUsize::new(4).unwrap(),
            spread_utilization_gap: 0.05,
            max_migrations_per_tick: 16,
            rebalance_interval: Nanoseconds::from_secs(600),
            backup_interval: Nanoseconds::from_secs(600),
            topology: FabricTopology::Clos {
                racks: 32,
                spines: 4,
                leaf_uplink_bytes_per_second: 2_500_000_000,
                spine_bytes_per_second: 1_250_000_000,
                cross_rack_latency: Nanoseconds::from_micros(50),
            },
            ..Default::default()
        };
        let ns = measure(samples, || {
            run_datacenter(32, params, Box::new(SpreadRebalance), &scenario).unwrap()
        });
        record("orch_day_clos_32rack", ns);
    }

    // -- post-copy with the out-of-order demand-fault lane: faulted pages
    //    ride a dedicated stream that overtakes the background sweep --
    {
        let (src, dst) = sparse_memories(PAGES);
        let mut link = Link::new(LinkModel::gigabit());
        let ns = measure(samples, || {
            let mut transport = LoopbackTransport::new(&mut link);
            PostCopy::migrate_fault_lane_over(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &MigrationConfig::default(),
            )
            .unwrap()
        });
        record("postcopy_fault_lane_2mib", ns);
    }

    // -- adaptive day: the E22 mixed 32-rack Clos day with every rebalance
    //    migration planned per-VM by the MigrationPlanner (observed dirty
    //    rate, guest size, fabric occupancy), one full replay per iter --
    {
        let scenario = Scenario::generate(ScenarioConfig {
            duration: Nanoseconds::from_secs(2 * 3600),
            ..ScenarioConfig::day(0xE22, WorkloadShape::Mixed, 32, 256)
        })
        .unwrap();
        let params = OrchParams {
            placement: PlacementStrategy::Spread,
            engine: Some(EngineChoice::Auto),
            spread_utilization_gap: 0.05,
            max_migrations_per_tick: 16,
            hot_tenant_modulus: std::num::NonZeroU64::new(4),
            rebalance_interval: Nanoseconds::from_secs(600),
            backup_interval: Nanoseconds::from_secs(600),
            topology: FabricTopology::Clos {
                racks: 32,
                spines: 4,
                leaf_uplink_bytes_per_second: 2_500_000_000,
                spine_bytes_per_second: 1_250_000_000,
                cross_rack_latency: Nanoseconds::from_micros(50),
            },
            ..Default::default()
        };
        let ns = measure(samples, || {
            run_datacenter(32, params, Box::new(SpreadRebalance), &scenario).unwrap()
        });
        record("orch_day_adaptive_32rack", ns);
    }

    // -- content-addressed chunk probe: ingest a 512-page snapshot into a
    //    pre-warmed CasStore that already holds every page, so each iter is
    //    512 fingerprint probes + full-page collision compares (the dedup
    //    steady-state hot path: nothing novel, everything interned) --
    {
        let (src, _) = sparse_memories(PAGES);
        let snap = VmSnapshot::capture_full(
            VmId::new(0),
            "probe",
            Nanoseconds::ZERO,
            &src,
            vec![VcpuState::default()],
            BTreeMap::new(),
        )
        .unwrap();
        let mut cas = CasStore::new();
        cas.ingest(&snap, None).unwrap();
        let ns = measure(samples, || cas.ingest(&snap, None).unwrap());
        record("cas_chunk_probe", ns);
    }

    // -- dedup day: the E23 mixed 32-rack Clos day with hourly sweeps
    //    negotiating against the content-addressed DR store (chunk probes,
    //    ChunkRef/ChunkData wire accounting, manifest-chain GC on VM churn),
    //    one full deterministic replay per iter --
    {
        let scenario = Scenario::generate(
            ScenarioConfig {
                duration: Nanoseconds::from_secs(2 * 3600),
                ..ScenarioConfig::day(0xE23, WorkloadShape::Mixed, 32, 256)
            }
            .with_host_failures(2),
        )
        .unwrap();
        let params = OrchParams {
            placement: PlacementStrategy::Spread,
            dedup_backups: true,
            spread_utilization_gap: 0.05,
            max_migrations_per_tick: 16,
            rebalance_interval: Nanoseconds::from_secs(600),
            backup_interval: Nanoseconds::from_secs(600),
            topology: FabricTopology::Clos {
                racks: 32,
                spines: 4,
                leaf_uplink_bytes_per_second: 2_500_000_000,
                spine_bytes_per_second: 1_250_000_000,
                cross_rack_latency: Nanoseconds::from_micros(50),
            },
            ..Default::default()
        };
        let ns = measure(samples, || {
            run_datacenter(32, params, Box::new(ThresholdRebalance), &scenario).unwrap()
        });
        record("orch_day_dedup_32rack", ns);
    }

    // -- calendar event queue: 1M pushes at scattered times, then a full
    //    time-ordered drain (grow and shrink rebucketing included) --
    {
        const EVENTS: u64 = 1_000_000;
        let day_ns = 86_400_000_000_000u64;
        let ns = measure(samples, || {
            let mut q = EventQueue::default();
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..EVENTS {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.push(Nanoseconds(x % day_ns), OrchEvent::RebalanceTick);
            }
            let mut popped = 0u64;
            while q.pop().is_some() {
                popped += 1;
            }
            popped
        });
        record("event_queue_push_pop_1m", ns);
    }

    results
}

/// Host metadata embedded in the JSON so a trend reader can tell numbers
/// from different machines or toolchains apart. Every value is a JSON
/// *string*: the line-oriented [`parse_json`] only keeps `"key": f64`
/// lines, so metadata can never be mistaken for a bench result.
fn host_metadata() -> Vec<(&'static str, String)> {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get().to_string())
        .unwrap_or_else(|_| "unknown".into());
    let toolchain = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    let os = std::env::consts::OS.to_string();
    let arch = std::env::consts::ARCH.to_string();
    vec![
        ("cpus", cpus),
        ("toolchain", toolchain),
        ("os", os),
        ("arch", arch),
    ]
}

fn to_json(results: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"host\": {\n");
    let host = host_metadata();
    let host_last = host.len().saturating_sub(1);
    for (i, (key, value)) in host.iter().enumerate() {
        // Metadata strings come from the environment; keep the output JSON
        // well-formed whatever they contain.
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if (c as u32) < 0x20 => vec![' '],
                c => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "    \"{key}\": \"{escaped}\"{}\n",
            if i == host_last { "" } else { "," }
        ));
    }
    out.push_str("  },\n  \"benches\": {\n");
    let last = results.len().saturating_sub(1);
    for (i, (name, ns)) in results.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {ns:.1}{}\n",
            if i == last { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Parse the `"name": value` lines of a `bench_json` file (full JSON is not
/// needed: the writer emits one pair per line).
fn parse_json(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "schema" || key == "benches" {
            continue;
        }
        if let Ok(v) = value.trim().parse::<f64>() {
            map.insert(key.to_string(), v);
        }
    }
    map
}

fn compare(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    threshold_pct: f64,
) -> bool {
    println!(
        "\n{:<40} {:>14} {:>14} {:>9}",
        "bench", "baseline ns", "current ns", "delta"
    );
    let mut regressed = false;
    for (name, &now) in current {
        match baseline.get(name) {
            Some(&base) if base > 0.0 => {
                let delta_pct = (now / base - 1.0) * 100.0;
                let verdict = if delta_pct > threshold_pct {
                    regressed = true;
                    "REGRESSED"
                } else {
                    ""
                };
                println!("{name:<40} {base:>14.1} {now:>14.1} {delta_pct:>+8.1}% {verdict}");
            }
            _ => println!("{name:<40} {:>14} {now:>14.1}   (new bench)", "-"),
        }
    }
    let mut missing = false;
    for name in baseline.keys() {
        if !current.contains_key(name) {
            missing = true;
            println!("{name:<40} (present in baseline only) MISSING");
        }
    }
    if regressed {
        println!(
            "\nFAIL: at least one bench regressed by more than {threshold_pct}% \
             against the baseline"
        );
    }
    if missing {
        println!(
            "\nFAIL: a baseline bench is no longer measured — remove it from \
             the baseline deliberately, not by omission"
        );
    }
    if !regressed && !missing {
        println!("\nOK: no bench regressed by more than {threshold_pct}%");
    }
    regressed || missing
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_json: {e}");
            return ExitCode::from(2);
        }
    };

    let results = run_benches(args.samples);
    let json = to_json(&results);

    // The no-op-plane gate: pre-copy entered through the traced API with
    // tracing off must cost the same as the plain entry point, within the
    // run's noise threshold. Both medians come from this very process, back
    // to back, so the comparison does not need a baseline file.
    if let (Some(&traced_off), Some(&untraced)) = (
        results.get("precopy_traced_vs_untraced_2mib"),
        results.get("precopy_stream_loopback_2mib"),
    ) {
        let overhead_pct = (traced_off / untraced - 1.0) * 100.0;
        println!(
            "\ntracing-off overhead: {overhead_pct:+.1}% \
             (traced {traced_off:.1} ns vs untraced {untraced:.1} ns)"
        );
        if overhead_pct > args.threshold_pct {
            println!(
                "FAIL: the disabled trace plane added more than \
                 {}% to the pre-copy hot path",
                args.threshold_pct
            );
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("bench_json: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("\nwrote {path}");
    }

    if let Some(path) = &args.compare {
        let baseline_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_json: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = parse_json(&baseline_text);
        if baseline.is_empty() {
            eprintln!("bench_json: baseline {path} contains no bench entries");
            return ExitCode::from(2);
        }
        if compare(&results, &baseline, args.threshold_pct) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
