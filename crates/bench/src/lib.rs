//! # rvisor-bench
//!
//! Shared helpers for the Criterion benchmarks that reproduce the
//! evaluation experiments (E1–E10 in `EXPERIMENTS.md`). Each bench prints
//! the experiment's table/figure data (computed from simulated time, which
//! is deterministic) before handing the hot loops to Criterion for
//! wall-clock measurement.

use rvisor_memory::GuestMemory;
use rvisor_types::ByteSize;
use rvisor_types::VcpuId;
use rvisor_vcpu::ExitReason;
use rvisor_vcpu::{ExecCosts, ExecMode, Vcpu, VcpuConfig, Workload};

/// Build a vCPU + memory pair with the given execution mode, load the
/// workload, and return everything ready to run.
pub fn prepared_vcpu(mode: ExecMode, workload: &Workload) -> (Vcpu, GuestMemory) {
    let mem = GuestMemory::flat(ByteSize::new(workload.required_memory()).page_align_up())
        .expect("guest memory");
    let mut cpu = Vcpu::new(VcpuConfig::new(VcpuId::new(0), mode));
    workload.install(&mem, &mut cpu).expect("install workload");
    (cpu, mem)
}

/// Build a vCPU with a *free* cost model (for wall-clock-only measurements).
pub fn prepared_vcpu_free(mode: ExecMode, workload: &Workload) -> (Vcpu, GuestMemory) {
    prepared_vcpu_with_costs(mode, ExecCosts::FREE, workload)
}

/// Build a vCPU with an explicit cost model (used by the nested-virtualization
/// ablation in E1).
pub fn prepared_vcpu_with_costs(
    mode: ExecMode,
    costs: ExecCosts,
    workload: &Workload,
) -> (Vcpu, GuestMemory) {
    let mem = GuestMemory::flat(ByteSize::new(workload.required_memory()).page_align_up())
        .expect("guest memory");
    let mut cfg = VcpuConfig::new(VcpuId::new(0), mode);
    cfg.costs = costs;
    let mut cpu = Vcpu::new(cfg);
    workload.install(&mem, &mut cpu).expect("install workload");
    (cpu, mem)
}

/// Run a vCPU until the guest halts, servicing exits with no-op handlers.
/// Returns the vCPU's simulated time in nanoseconds.
pub fn run_vcpu_to_halt(cpu: &mut Vcpu, mem: &GuestMemory) -> u64 {
    loop {
        let out = cpu.run(mem, 1_000_000).expect("vcpu run");
        match out.exit {
            ExitReason::Halt => break,
            ExitReason::Hypercall { .. } => cpu.complete_hypercall(0).unwrap(),
            ExitReason::MmioRead { .. } => cpu.complete_mmio_read(0).unwrap(),
            ExitReason::PioIn { .. } => cpu.complete_pio_in(0).unwrap(),
            ExitReason::PioOut { .. }
            | ExitReason::MmioWrite { .. }
            | ExitReason::Idle
            | ExitReason::InstructionLimit => {}
            ExitReason::PageFault { vaddr, .. } => panic!("unexpected page fault at 0x{vaddr:x}"),
        }
    }
    cpu.stats().sim_time_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_vcpu::WorkloadKind;

    #[test]
    fn helpers_run_workloads() {
        let w = Workload::new(WorkloadKind::ComputeBound { iterations: 100 }).unwrap();
        let (mut cpu, mem) = prepared_vcpu(ExecMode::HardwareAssist, &w);
        let sim = run_vcpu_to_halt(&mut cpu, &mem);
        assert!(sim > 0);
        let (mut cpu, mem) = prepared_vcpu_free(ExecMode::Paravirt, &w);
        assert_eq!(run_vcpu_to_halt(&mut cpu, &mem), 0);
        let (mut cpu, mem) = prepared_vcpu_with_costs(
            ExecMode::HardwareAssist,
            ExecCosts::nested_hardware_assist(),
            &w,
        );
        assert!(run_vcpu_to_halt(&mut cpu, &mem) >= sim);
    }
}
