//! The workspace-wide error type.
//!
//! Every crate in the workspace returns [`Error`] (or wraps it); keeping the
//! error vocabulary in one place lets the VMM core surface a single error type
//! through its public API without an error-conversion crate.

use crate::addr::GuestAddress;
use crate::ids::{HostId, VcpuId, VmId};
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the rvisor virtualization stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A guest physical address (or range starting at it) is not backed by memory.
    InvalidGuestAddress(GuestAddress),
    /// A guest memory access ran past the end of its region.
    OutOfBounds {
        /// Address where the access started.
        addr: GuestAddress,
        /// Length of the attempted access.
        len: u64,
    },
    /// A multi-byte guest memory access started inside a region but ran into
    /// a hole (unbacked address space) before it was satisfied.
    ///
    /// Accesses spanning *adjacent* regions are legal and are stitched
    /// together by `GuestMemory`; this error is returned only when the next
    /// byte of the span is backed by no region at all.
    CrossRegionGap {
        /// Address where the access started.
        addr: GuestAddress,
        /// Length of the attempted access.
        len: u64,
        /// First address of the span not backed by any region.
        gap_at: GuestAddress,
    },
    /// Two memory regions overlap.
    RegionOverlap,
    /// A memory region was configured with zero size or misaligned bounds.
    InvalidRegionConfig(String),
    /// The balloon cannot inflate further (guest would have no memory left).
    BalloonExhausted {
        /// Pages requested for inflation.
        requested_pages: u64,
        /// Pages actually available to reclaim.
        available_pages: u64,
    },
    /// A vCPU fault that the hypervisor cannot handle (triple-fault analogue).
    VcpuFault(String),
    /// A guest executed an instruction that is invalid in its current mode.
    InvalidInstruction {
        /// Program counter of the offending instruction.
        pc: u64,
        /// Raw encoding.
        opcode: u32,
    },
    /// The guest page-table walk failed.
    PageFault {
        /// Faulting guest virtual address.
        vaddr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// An MMIO/PIO access hit an address with no device behind it.
    UnmappedIo(GuestAddress),
    /// A device rejected the operation.
    Device(String),
    /// A virtqueue descriptor chain is malformed.
    InvalidDescriptor(String),
    /// Block backend error (bad sector, image corrupt, out of space, ...).
    Block(String),
    /// Network substrate error.
    Net(String),
    /// The referenced VM does not exist.
    UnknownVm(VmId),
    /// The referenced vCPU does not exist.
    UnknownVcpu(VcpuId),
    /// The referenced host does not exist.
    UnknownHost(HostId),
    /// The VM is in the wrong lifecycle state for the requested operation.
    InvalidVmState {
        /// What was attempted.
        operation: &'static str,
        /// The state the VM was actually in.
        state: String,
    },
    /// Snapshot serialization/deserialization failure.
    Snapshot(String),
    /// Live migration failed or was aborted.
    Migration(String),
    /// The migration wire stream is malformed: bad magic or version,
    /// truncated frame, payload past the stream end, or a per-frame
    /// checksum mismatch. `offset` is the byte offset of the offending
    /// frame within its burst.
    WireProtocol {
        /// What was wrong with the stream.
        detail: String,
        /// Byte offset of the offending frame within the received burst.
        offset: u64,
    },
    /// The scheduler configuration is invalid (zero weight, no pCPUs, ...).
    Scheduler(String),
    /// Not enough capacity on a host / in the cluster to place a VM.
    CapacityExceeded(String),
    /// Generic configuration error.
    Config(String),
    /// An I/O error from the host filesystem (file-backed disks, snapshots).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidGuestAddress(a) => write!(f, "invalid guest address {a}"),
            Error::OutOfBounds { addr, len } => {
                write!(f, "guest memory access out of bounds: {len} bytes at {addr}")
            }
            Error::CrossRegionGap { addr, len, gap_at } => write!(
                f,
                "guest memory access of {len} bytes at {addr} crosses into unbacked space at {gap_at}"
            ),
            Error::RegionOverlap => write!(f, "guest memory regions overlap"),
            Error::InvalidRegionConfig(msg) => write!(f, "invalid memory region config: {msg}"),
            Error::BalloonExhausted { requested_pages, available_pages } => write!(
                f,
                "balloon cannot inflate by {requested_pages} pages, only {available_pages} available"
            ),
            Error::VcpuFault(msg) => write!(f, "unrecoverable vCPU fault: {msg}"),
            Error::InvalidInstruction { pc, opcode } => {
                write!(f, "invalid instruction 0x{opcode:08x} at pc 0x{pc:x}")
            }
            Error::PageFault { vaddr, write } => {
                let kind = if *write { "write" } else { "read" };
                write!(f, "unhandled guest page fault ({kind}) at 0x{vaddr:x}")
            }
            Error::UnmappedIo(a) => write!(f, "I/O access to unmapped address {a}"),
            Error::Device(msg) => write!(f, "device error: {msg}"),
            Error::InvalidDescriptor(msg) => write!(f, "invalid virtqueue descriptor: {msg}"),
            Error::Block(msg) => write!(f, "block backend error: {msg}"),
            Error::Net(msg) => write!(f, "network error: {msg}"),
            Error::UnknownVm(id) => write!(f, "unknown VM {id}"),
            Error::UnknownVcpu(id) => write!(f, "unknown vCPU {id}"),
            Error::UnknownHost(id) => write!(f, "unknown host {id}"),
            Error::InvalidVmState { operation, state } => {
                write!(f, "cannot {operation}: VM is {state}")
            }
            Error::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            Error::Migration(msg) => write!(f, "migration error: {msg}"),
            Error::WireProtocol { detail, offset } => {
                write!(f, "migration wire stream error at byte {offset}: {detail}")
            }
            Error::Scheduler(msg) => write!(f, "scheduler error: {msg}"),
            Error::CapacityExceeded(msg) => write!(f, "capacity exceeded: {msg}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Io(msg) => write!(f, "host I/O error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::OutOfBounds {
            addr: GuestAddress(0x1000),
            len: 8,
        };
        assert_eq!(
            e.to_string(),
            "guest memory access out of bounds: 8 bytes at 0x1000"
        );

        let e = Error::PageFault {
            vaddr: 0xdead,
            write: true,
        };
        assert!(e.to_string().contains("write"));
        assert!(e.to_string().contains("0xdead"));

        let e = Error::InvalidVmState {
            operation: "resume",
            state: "Destroyed".into(),
        };
        assert_eq!(e.to_string(), "cannot resume: VM is Destroyed");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing disk image");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("missing disk image"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_e: &dyn std::error::Error) {}
        takes_std_error(&Error::RegionOverlap);
    }
}
