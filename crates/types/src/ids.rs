//! Stable identifiers for virtual machines, vCPUs and physical hosts.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct an identifier from its raw value.
            pub const fn new(v: u32) -> Self {
                $name(v)
            }

            /// The raw numeric value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a virtual machine within a VMM or cluster.
    VmId,
    "vm-"
);
id_type!(
    /// Identifier of a virtual CPU within a VM.
    VcpuId,
    "vcpu-"
);
id_type!(
    /// Identifier of a physical host in the simulated cluster.
    HostId,
    "host-"
);

/// Allocates monotonically increasing identifiers.
///
/// ```
/// use rvisor_types::ids::IdAllocator;
/// use rvisor_types::VmId;
/// let mut alloc = IdAllocator::new();
/// let a: VmId = alloc.next_id();
/// let b: VmId = alloc.next_id();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u32,
}

impl IdAllocator {
    /// Create an allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an allocator whose first issued id will be `start`.
    pub fn starting_at(start: u32) -> Self {
        IdAllocator { next: start }
    }

    /// Allocate the next identifier.
    pub fn next_id<T: From<u32>>(&mut self) -> T {
        let v = self.next;
        self.next += 1;
        T::from(v)
    }

    /// How many identifiers have been issued.
    pub fn issued(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(VmId::new(3).to_string(), "vm-3");
        assert_eq!(VcpuId::new(0).to_string(), "vcpu-0");
        assert_eq!(HostId::new(12).to_string(), "host-12");
    }

    #[test]
    fn allocator_is_monotonic_and_unique() {
        let mut alloc = IdAllocator::new();
        let ids: Vec<VmId> = (0..100).map(|_| alloc.next_id()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.raw(), i as u32);
        }
        assert_eq!(alloc.issued(), 100);
    }

    #[test]
    fn allocator_starting_at() {
        let mut alloc = IdAllocator::starting_at(10);
        let id: HostId = alloc.next_id();
        assert_eq!(id, HostId::new(10));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VmId::new(1) < VmId::new(2));
        assert!(VcpuId::new(7) > VcpuId::new(3));
    }
}
