//! Byte-size units and helpers.
//!
//! Guest memory sizes show up everywhere in a VMM; this module provides the
//! usual binary units plus a small [`ByteSize`] newtype that keeps arithmetic
//! checked and display human-readable.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;
/// The guest page size used throughout the workspace (4 KiB).
pub const PAGE_SIZE: u64 = 4 * KIB;

/// A byte count with human-readable formatting and checked arithmetic.
///
/// ```
/// use rvisor_types::{ByteSize, MIB};
/// let sz = ByteSize::mib(512);
/// assert_eq!(sz.as_u64(), 512 * MIB);
/// assert_eq!(sz.pages(), 131_072);
/// assert_eq!(format!("{sz}"), "512.00 MiB");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Construct from kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }

    /// Construct from mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }

    /// Construct from gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }

    /// Construct from a number of 4 KiB pages.
    pub const fn pages_of(n: u64) -> Self {
        ByteSize(n * PAGE_SIZE)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as `usize`, saturating on 32-bit targets.
    pub fn as_usize(self) -> usize {
        usize::try_from(self.0).unwrap_or(usize::MAX)
    }

    /// Number of whole 4 KiB pages needed to hold this many bytes.
    pub const fn pages(self) -> u64 {
        self.0.div_ceil(PAGE_SIZE)
    }

    /// Whether the size is an exact multiple of the page size.
    pub const fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// Round up to the next page boundary.
    pub const fn page_align_up(self) -> Self {
        ByteSize(self.pages() * PAGE_SIZE)
    }

    /// Checked addition.
    pub fn checked_add(self, other: ByteSize) -> Option<ByteSize> {
        self.0.checked_add(other.0).map(ByteSize)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: ByteSize) -> Option<ByteSize> {
        self.0.checked_sub(other.0).map(ByteSize)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// Express the size in whole mebibytes (rounded down).
    pub const fn whole_mib(self) -> u64 {
        self.0 / MIB
    }

    /// Express the size in whole gibibytes (rounded down).
    pub const fn whole_gib(self) -> u64 {
        self.0 / GIB
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl From<u64> for ByteSize {
    fn from(v: u64) -> Self {
        ByteSize(v)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", b / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", b / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2} KiB", b / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(ByteSize::kib(1).as_u64(), KIB);
        assert_eq!(ByteSize::mib(1).as_u64(), MIB);
        assert_eq!(ByteSize::gib(1).as_u64(), GIB);
        assert_eq!(ByteSize::pages_of(2).as_u64(), 2 * PAGE_SIZE);
    }

    #[test]
    fn page_math() {
        assert_eq!(ByteSize::new(0).pages(), 0);
        assert_eq!(ByteSize::new(1).pages(), 1);
        assert_eq!(ByteSize::new(PAGE_SIZE).pages(), 1);
        assert_eq!(ByteSize::new(PAGE_SIZE + 1).pages(), 2);
        assert!(ByteSize::new(PAGE_SIZE).is_page_aligned());
        assert!(!ByteSize::new(PAGE_SIZE + 1).is_page_aligned());
        assert_eq!(
            ByteSize::new(PAGE_SIZE + 1).page_align_up().as_u64(),
            2 * PAGE_SIZE
        );
    }

    #[test]
    fn display_uses_binary_units() {
        assert_eq!(format!("{}", ByteSize::new(512)), "512 B");
        assert_eq!(format!("{}", ByteSize::kib(4)), "4.00 KiB");
        assert_eq!(format!("{}", ByteSize::mib(3)), "3.00 MiB");
        assert_eq!(format!("{}", ByteSize::gib(2)), "2.00 GiB");
    }

    #[test]
    fn checked_arithmetic() {
        let a = ByteSize::mib(1);
        let b = ByteSize::kib(1);
        assert_eq!(a.checked_sub(b), Some(ByteSize::new(MIB - KIB)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        assert_eq!(ByteSize::new(u64::MAX).checked_add(ByteSize::new(1)), None);
    }

    #[test]
    fn whole_unit_accessors() {
        assert_eq!(ByteSize::mib(1536).whole_gib(), 1);
        assert_eq!(ByteSize::kib(2048).whole_mib(), 2);
    }

    proptest! {
        #[test]
        fn page_align_up_is_aligned_and_not_smaller(v in 0u64..(1 << 40)) {
            let s = ByteSize::new(v).page_align_up();
            prop_assert!(s.is_page_aligned());
            prop_assert!(s.as_u64() >= v);
            prop_assert!(s.as_u64() - v < PAGE_SIZE);
        }

        #[test]
        fn pages_times_page_size_covers(v in 0u64..(1 << 40)) {
            let s = ByteSize::new(v);
            prop_assert!(s.pages() * PAGE_SIZE >= v);
        }
    }
}
