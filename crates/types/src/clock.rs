//! Simulated time.
//!
//! Most rvisor experiments are *simulation-time* experiments: migration
//! downtime, scheduler fairness and provisioning latency are computed against
//! a deterministic clock that the harness advances explicitly, so results are
//! reproducible and independent of the machine running the tests.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A duration or instant expressed in simulated nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanoseconds(pub u64);

impl Nanoseconds {
    /// Zero nanoseconds.
    pub const ZERO: Nanoseconds = Nanoseconds(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanoseconds(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanoseconds(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanoseconds(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanoseconds(s * 1_000_000_000)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Convert to (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Convert to (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: Nanoseconds) -> Option<Nanoseconds> {
        self.0.checked_add(other.0).map(Nanoseconds)
    }
}

impl std::ops::Add for Nanoseconds {
    type Output = Nanoseconds;
    fn add(self, rhs: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Nanoseconds {
    fn add_assign(&mut self, rhs: Nanoseconds) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Nanoseconds {
    type Output = Nanoseconds;
    fn sub(self, rhs: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0 - rhs.0)
    }
}

impl std::ops::Mul<u64> for Nanoseconds {
    type Output = Nanoseconds;
    fn mul(self, rhs: u64) -> Nanoseconds {
        Nanoseconds(self.0 * rhs)
    }
}

impl fmt::Display for Nanoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} µs", self.as_micros_f64())
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

/// A source of simulated time.
pub trait SimClock: Send + Sync {
    /// The current simulated instant.
    fn now(&self) -> Nanoseconds;

    /// Advance the clock by `delta`.
    fn advance(&self, delta: Nanoseconds);
}

/// A shareable, manually-advanced simulated clock.
///
/// Cloning shares the underlying counter, so multiple components observe the
/// same timeline.
///
/// ```
/// use rvisor_types::{ManualClock, Nanoseconds, SimClock};
/// let clock = ManualClock::new();
/// let view = clock.clone();
/// clock.advance(Nanoseconds::from_millis(5));
/// assert_eq!(view.now(), Nanoseconds::from_millis(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// Create a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a clock starting at `start`.
    pub fn starting_at(start: Nanoseconds) -> Self {
        ManualClock {
            now: Arc::new(AtomicU64::new(start.0)),
        }
    }

    /// Set the clock to an absolute instant (must not go backwards).
    ///
    /// Returns `false` (and leaves the clock unchanged) if `t` is earlier
    /// than the current time.
    pub fn set(&self, t: Nanoseconds) -> bool {
        let mut cur = self.now.load(Ordering::SeqCst);
        loop {
            if t.0 < cur {
                return false;
            }
            match self
                .now
                .compare_exchange(cur, t.0, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl SimClock for ManualClock {
    fn now(&self) -> Nanoseconds {
        Nanoseconds(self.now.load(Ordering::SeqCst))
    }

    fn advance(&self, delta: Nanoseconds) {
        self.now.fetch_add(delta.0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanoseconds::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanoseconds::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanoseconds::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((Nanoseconds::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Nanoseconds(999).to_string(), "999 ns");
        assert_eq!(Nanoseconds::from_micros(2).to_string(), "2.000 µs");
        assert_eq!(Nanoseconds::from_millis(3).to_string(), "3.000 ms");
        assert_eq!(Nanoseconds::from_secs(4).to_string(), "4.000 s");
    }

    #[test]
    fn arithmetic() {
        let a = Nanoseconds::from_millis(2);
        let b = Nanoseconds::from_millis(1);
        assert_eq!(a + b, Nanoseconds::from_millis(3));
        assert_eq!(a - b, Nanoseconds::from_millis(1));
        assert_eq!(b * 4, Nanoseconds::from_millis(4));
        assert_eq!(b.saturating_sub(a), Nanoseconds::ZERO);
        assert_eq!(
            Nanoseconds(u64::MAX).saturating_add(b),
            Nanoseconds(u64::MAX)
        );
    }

    #[test]
    fn manual_clock_is_shared() {
        let c = ManualClock::new();
        let view = c.clone();
        assert_eq!(c.now(), Nanoseconds::ZERO);
        c.advance(Nanoseconds::from_secs(1));
        assert_eq!(view.now(), Nanoseconds::from_secs(1));
    }

    #[test]
    fn manual_clock_set_never_goes_backwards() {
        let c = ManualClock::starting_at(Nanoseconds::from_secs(10));
        assert!(!c.set(Nanoseconds::from_secs(5)));
        assert_eq!(c.now(), Nanoseconds::from_secs(10));
        assert!(c.set(Nanoseconds::from_secs(20)));
        assert_eq!(c.now(), Nanoseconds::from_secs(20));
    }
}
