//! # rvisor-types
//!
//! Shared vocabulary used by every crate in the `rvisor` workspace: guest
//! address arithmetic, byte-size helpers, stable identifiers for virtual
//! machines / vCPUs / hosts, the simulated clock, and the common error type.
//!
//! The crate is deliberately dependency-light so that every other crate can
//! depend on it without pulling in device models or memory management.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod addr;
pub mod clock;
pub mod error;
pub mod ids;
pub mod units;

pub use addr::{GuestAddress, GuestRegion, MemoryRegionConfig};
pub use clock::{ManualClock, Nanoseconds, SimClock};
pub use error::{Error, Result};
pub use ids::{HostId, VcpuId, VmId};
pub use units::{ByteSize, GIB, KIB, MIB, PAGE_SIZE};
