//! Guest physical address arithmetic and region descriptions.

use crate::units::{ByteSize, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A guest *physical* address.
///
/// All device models and the memory subsystem speak guest physical addresses;
/// guest *virtual* addresses only exist inside the vCPU's MMU
/// (`rvisor-vcpu`).
///
/// ```
/// use rvisor_types::GuestAddress;
/// let a = GuestAddress(0x1000);
/// assert_eq!(a.unchecked_add(0x20).0, 0x1020);
/// assert!(a.is_page_aligned());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GuestAddress(pub u64);

impl GuestAddress {
    /// Guest physical address zero.
    pub const ZERO: GuestAddress = GuestAddress(0);

    /// Construct a new guest address.
    pub const fn new(addr: u64) -> Self {
        GuestAddress(addr)
    }

    /// The raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Add an offset without overflow checking (wraps like hardware would).
    pub const fn unchecked_add(self, offset: u64) -> GuestAddress {
        GuestAddress(self.0.wrapping_add(offset))
    }

    /// Checked addition of an offset.
    pub fn checked_add(self, offset: u64) -> Option<GuestAddress> {
        self.0.checked_add(offset).map(GuestAddress)
    }

    /// Offset from `base` to `self`; `None` if `self < base`.
    pub fn offset_from(self, base: GuestAddress) -> Option<u64> {
        self.0.checked_sub(base.0)
    }

    /// The index of the 4 KiB page containing this address.
    pub const fn page_index(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// The offset of this address within its 4 KiB page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Whether this address is 4 KiB aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// Round down to the containing page boundary.
    pub const fn page_base(self) -> GuestAddress {
        GuestAddress(self.0 & !(PAGE_SIZE - 1))
    }

    /// Whether this address is aligned to `align` (which must be a power of two).
    pub const fn is_aligned(self, align: u64) -> bool {
        self.0 & (align - 1) == 0
    }
}

impl fmt::Display for GuestAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for GuestAddress {
    fn from(v: u64) -> Self {
        GuestAddress(v)
    }
}

/// A half-open `[start, start+len)` range of guest physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GuestRegion {
    /// First guest physical address of the region.
    pub start: GuestAddress,
    /// Length of the region in bytes.
    pub len: u64,
}

impl GuestRegion {
    /// Construct a region from start and length.
    pub const fn new(start: GuestAddress, len: u64) -> Self {
        GuestRegion { start, len }
    }

    /// One-past-the-end address; `None` if it would overflow `u64`.
    pub fn end(&self) -> Option<GuestAddress> {
        self.start.checked_add(self.len)
    }

    /// The last valid address in the region; `None` for an empty region.
    pub fn last(&self) -> Option<GuestAddress> {
        if self.len == 0 {
            None
        } else {
            self.start.checked_add(self.len - 1)
        }
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: GuestAddress) -> bool {
        addr.0 >= self.start.0 && (addr.0 - self.start.0) < self.len
    }

    /// Whether the whole `[addr, addr+len)` span fits inside the region.
    pub fn contains_range(&self, addr: GuestAddress, len: u64) -> bool {
        if len == 0 {
            return self.contains(addr) || addr.0 == self.start.0 + self.len;
        }
        match addr.checked_add(len - 1) {
            Some(last) => self.contains(addr) && self.contains(last),
            None => false,
        }
    }

    /// Whether two regions overlap in at least one byte.
    pub fn overlaps(&self, other: &GuestRegion) -> bool {
        if self.len == 0 || other.len == 0 {
            return false;
        }
        let self_last = self.start.0 + (self.len - 1);
        let other_last = other.start.0 + (other.len - 1);
        self.start.0 <= other_last && other.start.0 <= self_last
    }

    /// Number of whole pages spanned by the region.
    pub fn pages(&self) -> u64 {
        ByteSize::new(self.len).pages()
    }
}

/// Configuration for a single guest memory region, as supplied by a VM config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRegionConfig {
    /// Guest physical address where the region starts.
    pub base: GuestAddress,
    /// Region size.
    pub size: ByteSize,
}

impl MemoryRegionConfig {
    /// Construct a region config.
    pub const fn new(base: GuestAddress, size: ByteSize) -> Self {
        MemoryRegionConfig { base, size }
    }

    /// The described region.
    pub const fn region(&self) -> GuestRegion {
        GuestRegion {
            start: self.base,
            len: self.size.as_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn address_page_math() {
        let a = GuestAddress(0x1234);
        assert_eq!(a.page_index(), 1);
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.page_base(), GuestAddress(0x1000));
        assert!(!a.is_page_aligned());
        assert!(GuestAddress(0x3000).is_page_aligned());
        assert!(GuestAddress(0x40).is_aligned(0x40));
        assert!(!GuestAddress(0x41).is_aligned(0x40));
    }

    #[test]
    fn address_arithmetic() {
        let a = GuestAddress(10);
        assert_eq!(a.checked_add(5), Some(GuestAddress(15)));
        assert_eq!(GuestAddress(u64::MAX).checked_add(1), None);
        assert_eq!(GuestAddress(u64::MAX).unchecked_add(1), GuestAddress(0));
        assert_eq!(GuestAddress(20).offset_from(a), Some(10));
        assert_eq!(a.offset_from(GuestAddress(20)), None);
    }

    #[test]
    fn region_contains() {
        let r = GuestRegion::new(GuestAddress(0x1000), 0x1000);
        assert!(r.contains(GuestAddress(0x1000)));
        assert!(r.contains(GuestAddress(0x1fff)));
        assert!(!r.contains(GuestAddress(0x2000)));
        assert!(!r.contains(GuestAddress(0xfff)));
        assert!(r.contains_range(GuestAddress(0x1800), 0x800));
        assert!(!r.contains_range(GuestAddress(0x1800), 0x801));
        assert_eq!(r.end(), Some(GuestAddress(0x2000)));
        assert_eq!(r.last(), Some(GuestAddress(0x1fff)));
        assert_eq!(r.pages(), 1);
    }

    #[test]
    fn region_overlap() {
        let a = GuestRegion::new(GuestAddress(0x1000), 0x1000);
        let b = GuestRegion::new(GuestAddress(0x1800), 0x1000);
        let c = GuestRegion::new(GuestAddress(0x2000), 0x1000);
        let empty = GuestRegion::new(GuestAddress(0x1800), 0);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&empty));
    }

    #[test]
    fn empty_region_has_no_last() {
        let r = GuestRegion::new(GuestAddress(0x1000), 0);
        assert_eq!(r.last(), None);
        assert_eq!(r.pages(), 0);
    }

    #[test]
    fn region_config_roundtrip() {
        let cfg = MemoryRegionConfig::new(GuestAddress(0), ByteSize::mib(64));
        let r = cfg.region();
        assert_eq!(r.len, 64 << 20);
        assert_eq!(r.start, GuestAddress(0));
    }

    proptest! {
        #[test]
        fn page_base_is_aligned(addr in 0u64..u64::MAX) {
            let a = GuestAddress(addr);
            prop_assert!(a.page_base().is_page_aligned());
            prop_assert!(a.page_base().0 <= addr);
            prop_assert!(addr - a.page_base().0 < PAGE_SIZE);
        }

        #[test]
        fn overlap_is_symmetric(s1 in 0u64..1_000_000, l1 in 0u64..10_000,
                                s2 in 0u64..1_000_000, l2 in 0u64..10_000) {
            let a = GuestRegion::new(GuestAddress(s1), l1);
            let b = GuestRegion::new(GuestAddress(s2), l2);
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }

        #[test]
        fn contains_implies_overlap(s1 in 0u64..1_000_000, l1 in 1u64..10_000, off in 0u64..10_000) {
            let a = GuestRegion::new(GuestAddress(s1), l1);
            let addr = GuestAddress(s1 + (off % l1));
            prop_assert!(a.contains(addr));
            let single = GuestRegion::new(addr, 1);
            prop_assert!(a.overlaps(&single));
        }
    }
}
