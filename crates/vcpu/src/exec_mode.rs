//! Virtualization execution modes and their cost models.
//!
//! A VMM can virtualize the CPU in several ways; the three modelled here are
//! the ones every virtualization lecture (and the XenServer / ESXi /
//! VirtualBox products surveyed in the source document) distinguishes:
//!
//! * **Trap-and-emulate with shadow paging** — every privileged instruction
//!   and every guest page-table update traps to the hypervisor; exits are
//!   frequent and each costs a full world switch.
//! * **Paravirtual** — the guest is modified to call the hypervisor
//!   explicitly (hypercalls), batching work and avoiding most traps; the
//!   remaining exits are cheaper because no instruction decoding is needed.
//! * **Hardware-assisted** (VT-x/AMD-V with nested paging) — privileged
//!   instructions execute natively in guest mode; only I/O, hypercalls and
//!   configured exceptions exit, but TLB misses walk two levels of page
//!   tables (guest + nested), making each miss more expensive.
//!
//! The cost model converts counted events into simulated nanoseconds so the
//! `exec_modes` benchmark can reproduce the classic overhead comparison
//! (experiment E1) deterministically.

use serde::{Deserialize, Serialize};

/// Which virtualization technique the vCPU models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Full virtualization by trap-and-emulate with shadow page tables.
    TrapAndEmulate,
    /// Paravirtualization: the guest uses hypercalls and is aware of the hypervisor.
    Paravirt,
    /// Hardware-assisted virtualization with nested paging.
    HardwareAssist,
}

impl ExecMode {
    /// All modes, for sweeps.
    pub const ALL: [ExecMode; 3] = [
        ExecMode::TrapAndEmulate,
        ExecMode::Paravirt,
        ExecMode::HardwareAssist,
    ];

    /// A short human-readable name (used in benchmark output).
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::TrapAndEmulate => "trap-and-emulate",
            ExecMode::Paravirt => "paravirt",
            ExecMode::HardwareAssist => "hw-assist",
        }
    }

    /// Whether privileged instructions executed in guest supervisor mode trap
    /// to the hypervisor in this mode.
    pub fn privileged_traps(self) -> bool {
        match self {
            ExecMode::TrapAndEmulate => true,
            // Paravirtual guests replace privileged operations with hypercalls,
            // but if they do execute one it still traps.
            ExecMode::Paravirt => true,
            ExecMode::HardwareAssist => false,
        }
    }

    /// Whether guest page-table maintenance (PTBR writes, TLB flushes) traps.
    ///
    /// Under shadow paging the hypervisor must intercept these to keep shadow
    /// tables coherent; with nested paging the hardware handles it.
    pub fn paging_ops_trap(self) -> bool {
        matches!(self, ExecMode::TrapAndEmulate | ExecMode::Paravirt)
    }

    /// The default cost model for this mode.
    pub fn default_costs(self) -> ExecCosts {
        match self {
            ExecMode::TrapAndEmulate => ExecCosts {
                cycle_ns: 1,
                exit_ns: 2_000,
                hypercall_ns: 2_000,
                mmio_exit_ns: 3_000,
                pio_exit_ns: 2_500,
                tlb_miss_cycles: 40,
                privileged_emulation_ns: 1_200,
            },
            ExecMode::Paravirt => ExecCosts {
                cycle_ns: 1,
                exit_ns: 700,
                hypercall_ns: 500,
                mmio_exit_ns: 900,
                pio_exit_ns: 800,
                tlb_miss_cycles: 40,
                privileged_emulation_ns: 600,
            },
            ExecMode::HardwareAssist => ExecCosts {
                cycle_ns: 1,
                exit_ns: 1_200,
                hypercall_ns: 1_200,
                mmio_exit_ns: 1_500,
                pio_exit_ns: 1_300,
                // Nested paging: a miss walks guest *and* host tables.
                tlb_miss_cycles: 120,
                privileged_emulation_ns: 0,
            },
        }
    }
}

/// The knobs converting counted events into simulated time.
///
/// All values are in nanoseconds except `tlb_miss_cycles`, which is charged
/// in guest cycles (and therefore scales with `cycle_ns`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecCosts {
    /// Simulated nanoseconds per retired guest instruction.
    pub cycle_ns: u64,
    /// Base cost of a world switch (guest -> hypervisor -> guest).
    pub exit_ns: u64,
    /// Cost of a hypercall round trip.
    pub hypercall_ns: u64,
    /// Cost of an MMIO exit (includes instruction decode + device dispatch).
    pub mmio_exit_ns: u64,
    /// Cost of a port-I/O exit.
    pub pio_exit_ns: u64,
    /// Extra guest cycles charged for a TLB miss (page-table walk).
    pub tlb_miss_cycles: u64,
    /// Extra cost of software-emulating a trapped privileged instruction.
    pub privileged_emulation_ns: u64,
}

impl ExecCosts {
    /// A zero-cost model (useful for pure functional tests).
    pub const FREE: ExecCosts = ExecCosts {
        cycle_ns: 0,
        exit_ns: 0,
        hypercall_ns: 0,
        mmio_exit_ns: 0,
        pio_exit_ns: 0,
        tlb_miss_cycles: 0,
        privileged_emulation_ns: 0,
    };

    /// The cost model of *nested* hardware-assisted virtualization: a
    /// hardware-assisted guest hypervisor running its own hardware-assisted
    /// guest (the "KVM implementation?" next step in the source material,
    /// run inside an existing host).
    ///
    /// Every exit of the inner guest is first reflected to the outer
    /// hypervisor and then re-injected into the guest hypervisor, so the
    /// world-switch costs roughly triple, and a TLB miss walks three levels
    /// of page tables instead of two. Used as an ablation row in the E1
    /// benchmark; the relative numbers follow the published Turtles-project
    /// measurements (nested exits cost 2.5–3× single-level exits).
    pub fn nested_hardware_assist() -> ExecCosts {
        let base = ExecMode::HardwareAssist.default_costs();
        ExecCosts {
            cycle_ns: base.cycle_ns,
            exit_ns: base.exit_ns * 3,
            hypercall_ns: base.hypercall_ns * 3,
            mmio_exit_ns: base.mmio_exit_ns * 3,
            pio_exit_ns: base.pio_exit_ns * 3,
            tlb_miss_cycles: base.tlb_miss_cycles * 2,
            privileged_emulation_ns: base.privileged_emulation_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_are_distinct() {
        let names: std::collections::BTreeSet<_> = ExecMode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn trap_behaviour_matches_technique() {
        assert!(ExecMode::TrapAndEmulate.privileged_traps());
        assert!(ExecMode::Paravirt.privileged_traps());
        assert!(!ExecMode::HardwareAssist.privileged_traps());
        assert!(ExecMode::TrapAndEmulate.paging_ops_trap());
        assert!(!ExecMode::HardwareAssist.paging_ops_trap());
    }

    #[test]
    fn cost_model_ordering_matches_folklore() {
        let te = ExecMode::TrapAndEmulate.default_costs();
        let pv = ExecMode::Paravirt.default_costs();
        let hw = ExecMode::HardwareAssist.default_costs();
        // Paravirtual exits are the cheapest, trap-and-emulate the dearest.
        assert!(pv.exit_ns < hw.exit_ns);
        assert!(hw.exit_ns < te.exit_ns);
        // Nested paging pays more per TLB miss than shadow paging.
        assert!(hw.tlb_miss_cycles > te.tlb_miss_cycles);
        // Hardware assist does not emulate privileged instructions.
        assert_eq!(hw.privileged_emulation_ns, 0);
    }

    #[test]
    fn free_costs_are_zero() {
        let f = ExecCosts::FREE;
        assert_eq!(
            f.cycle_ns + f.exit_ns + f.hypercall_ns + f.mmio_exit_ns + f.pio_exit_ns,
            0
        );
    }

    #[test]
    fn nested_costs_sit_above_single_level_hardware_assist() {
        let hw = ExecMode::HardwareAssist.default_costs();
        let nested = ExecCosts::nested_hardware_assist();
        assert!(nested.exit_ns >= 2 * hw.exit_ns && nested.exit_ns <= 4 * hw.exit_ns);
        assert!(nested.hypercall_ns > hw.hypercall_ns);
        assert!(nested.mmio_exit_ns > hw.mmio_exit_ns);
        assert!(nested.tlb_miss_cycles > hw.tlb_miss_cycles);
        // Running the guest's own instructions costs the same; only exits
        // get dearer.
        assert_eq!(nested.cycle_ns, hw.cycle_ns);
        assert_eq!(nested.privileged_emulation_ns, hw.privileged_emulation_ns);
    }
}
