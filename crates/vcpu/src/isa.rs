//! The GISA instruction set: encoding and decoding.
//!
//! GISA is a fixed-width (8 bytes per instruction) load/store architecture
//! with 32 general-purpose 64-bit registers. Register `r0` reads as zero and
//! ignores writes, in the RISC tradition.
//!
//! Encoding layout (little endian):
//!
//! ```text
//! byte 0      opcode
//! byte 1      rd   (destination register, or condition code for branches)
//! byte 2      rs1
//! byte 3      rs2
//! bytes 4..8  imm  (i32, sign-extended where used as an offset)
//! ```

use serde::{Deserialize, Serialize};

use rvisor_types::{Error, Result};

/// Size of one encoded instruction in bytes.
pub const INSTR_BYTES: u64 = 8;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 32;

/// A register index (0..32). Register 0 is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);

    /// Construct a register, panicking on out-of-range indices.
    ///
    /// Intended for hand-written assembly in tests and workloads; decoded
    /// instructions go through [`Reg::try_new`].
    pub fn new(idx: u8) -> Self {
        assert!(
            (idx as usize) < NUM_REGS,
            "register index {idx} out of range"
        );
        Reg(idx)
    }

    /// Construct a register, returning `None` on out-of-range indices.
    pub fn try_new(idx: u8) -> Option<Self> {
        if (idx as usize) < NUM_REGS {
            Some(Reg(idx))
        } else {
            None
        }
    }

    /// The register's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// rs1 == rs2
    Eq,
    /// rs1 != rs2
    Ne,
    /// rs1 < rs2 (unsigned)
    Lt,
    /// rs1 >= rs2 (unsigned)
    Ge,
}

impl Cond {
    fn to_byte(self) -> u8 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Ge => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Cond> {
        Some(match b {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Ge,
            _ => return None,
        })
    }
}

/// A decoded GISA instruction.
///
/// Instructions marked *privileged* may only execute in supervisor mode; in
/// the trap-and-emulate execution mode they additionally cause a VM exit so
/// the hypervisor can emulate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Do nothing.
    Nop,
    /// Stop the vCPU; produces a `Halt` exit. Privileged.
    Halt,
    /// `rd <- imm` (sign-extended 32-bit immediate).
    MovImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// `rd <- rd << 32 | zext(imm)` — build 64-bit constants in two steps.
    MovHigh {
        /// Destination register.
        rd: Reg,
        /// Immediate placed in the low 32 bits after the shift.
        imm: i32,
    },
    /// `rd <- rs1 op rs2` arithmetic.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd <- rs1 + imm`.
    AddImm {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate addend.
        imm: i32,
    },
    /// `rd <- mem[rs1 + imm]` (8 bytes, little endian). May exit with MMIO.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset.
        imm: i32,
    },
    /// `mem[rs1 + imm] <- rs2` (8 bytes, little endian). May exit with MMIO.
    Store {
        /// Value register.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset.
        imm: i32,
    },
    /// Conditional branch: `if rs1 cond rs2 then pc += imm` (imm in bytes).
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Reg,
        /// Signed byte offset relative to the *next* instruction.
        imm: i32,
    },
    /// Unconditional jump: `pc += imm`, with `rd <- return address`.
    Jal {
        /// Link register receiving the return address (use r0 to discard).
        rd: Reg,
        /// Signed byte offset relative to the next instruction.
        imm: i32,
    },
    /// Indirect jump: `pc <- rs1`, with `rd <- return address`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Register holding the target virtual address.
        rs1: Reg,
    },
    /// Explicit paravirtual call into the hypervisor. `rd` receives the result.
    Hypercall {
        /// Hypercall number.
        nr: u16,
        /// Register receiving the hypervisor's return value.
        rd: Reg,
        /// Register holding the argument.
        rs1: Reg,
    },
    /// Port output: `port[imm] <- rs1` (4 bytes). Privileged; always exits.
    Out {
        /// Source register.
        rs1: Reg,
        /// Port number.
        imm: i32,
    },
    /// Port input: `rd <- port[imm]` (4 bytes). Privileged; always exits.
    In {
        /// Destination register.
        rd: Reg,
        /// Port number.
        imm: i32,
    },
    /// Set the page-table base register. Privileged.
    SetPtbr {
        /// Register holding the new PTBR (guest physical address).
        rs1: Reg,
    },
    /// Flush the software TLB. Privileged.
    TlbFlush,
    /// Read a control/status register. CSR 0..16 are unprivileged, others privileged.
    ReadCsr {
        /// Destination register.
        rd: Reg,
        /// CSR number.
        imm: i32,
    },
    /// Write a control/status register. Privileged.
    WriteCsr {
        /// Source register.
        rs1: Reg,
        /// CSR number.
        imm: i32,
    },
    /// Return from supervisor to user mode, jumping to the address in `rs1`. Privileged.
    Iret {
        /// Register holding the user-mode resume address.
        rs1: Reg,
    },
    /// Pause/yield hint: the guest has nothing to do. Produces an `Idle` exit.
    Pause,
}

/// ALU operation selectors for [`Instr::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (x / 0 = u64::MAX, like RISC-V).
    Div,
    /// Unsigned remainder (x % 0 = x).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by rs2 & 63).
    Shl,
    /// Logical shift right (by rs2 & 63).
    Shr,
}

impl AluOp {
    fn to_byte(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::Mul => 2,
            AluOp::Div => 3,
            AluOp::Rem => 4,
            AluOp::And => 5,
            AluOp::Or => 6,
            AluOp::Xor => 7,
            AluOp::Shl => 8,
            AluOp::Shr => 9,
        }
    }

    fn from_byte(b: u8) -> Option<AluOp> {
        Some(match b {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mul,
            3 => AluOp::Div,
            4 => AluOp::Rem,
            5 => AluOp::And,
            6 => AluOp::Or,
            7 => AluOp::Xor,
            8 => AluOp::Shl,
            9 => AluOp::Shr,
            _ => return None,
        })
    }

    /// Apply the operation to two operands.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => a.checked_rem(b).unwrap_or(a),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
            AluOp::Shr => a >> (b & 63),
        }
    }
}

// Opcode assignments.
mod op {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const MOV_IMM: u8 = 0x02;
    pub const MOV_HIGH: u8 = 0x03;
    pub const ALU: u8 = 0x04;
    pub const ADD_IMM: u8 = 0x05;
    pub const LOAD: u8 = 0x06;
    pub const STORE: u8 = 0x07;
    pub const BRANCH: u8 = 0x08;
    pub const JAL: u8 = 0x09;
    pub const JALR: u8 = 0x0a;
    pub const HYPERCALL: u8 = 0x0b;
    pub const OUT: u8 = 0x0c;
    pub const IN: u8 = 0x0d;
    pub const SET_PTBR: u8 = 0x0e;
    pub const TLB_FLUSH: u8 = 0x0f;
    pub const READ_CSR: u8 = 0x10;
    pub const WRITE_CSR: u8 = 0x11;
    pub const IRET: u8 = 0x12;
    pub const PAUSE: u8 = 0x13;
}

impl Instr {
    /// Whether the instruction is privileged (supervisor-only).
    pub fn is_privileged(&self) -> bool {
        matches!(
            self,
            Instr::Halt
                | Instr::Out { .. }
                | Instr::In { .. }
                | Instr::SetPtbr { .. }
                | Instr::TlbFlush
                | Instr::WriteCsr { .. }
                | Instr::Iret { .. }
        ) || matches!(self, Instr::ReadCsr { imm, .. } if *imm >= 16)
    }

    /// Encode into the 8-byte wire format.
    pub fn encode(&self) -> [u8; INSTR_BYTES as usize] {
        let (opcode, b1, b2, b3, imm) = match *self {
            Instr::Nop => (op::NOP, 0, 0, 0, 0),
            Instr::Halt => (op::HALT, 0, 0, 0, 0),
            Instr::MovImm { rd, imm } => (op::MOV_IMM, rd.0, 0, 0, imm),
            Instr::MovHigh { rd, imm } => (op::MOV_HIGH, rd.0, 0, 0, imm),
            Instr::Alu {
                op: alu,
                rd,
                rs1,
                rs2,
            } => (op::ALU, rd.0, rs1.0, rs2.0, alu.to_byte() as i32),
            Instr::AddImm { rd, rs1, imm } => (op::ADD_IMM, rd.0, rs1.0, 0, imm),
            Instr::Load { rd, rs1, imm } => (op::LOAD, rd.0, rs1.0, 0, imm),
            Instr::Store { rs2, rs1, imm } => (op::STORE, 0, rs1.0, rs2.0, imm),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => (op::BRANCH, cond.to_byte(), rs1.0, rs2.0, imm),
            Instr::Jal { rd, imm } => (op::JAL, rd.0, 0, 0, imm),
            Instr::Jalr { rd, rs1 } => (op::JALR, rd.0, rs1.0, 0, 0),
            Instr::Hypercall { nr, rd, rs1 } => (op::HYPERCALL, rd.0, rs1.0, 0, nr as i32),
            Instr::Out { rs1, imm } => (op::OUT, 0, rs1.0, 0, imm),
            Instr::In { rd, imm } => (op::IN, rd.0, 0, 0, imm),
            Instr::SetPtbr { rs1 } => (op::SET_PTBR, 0, rs1.0, 0, 0),
            Instr::TlbFlush => (op::TLB_FLUSH, 0, 0, 0, 0),
            Instr::ReadCsr { rd, imm } => (op::READ_CSR, rd.0, 0, 0, imm),
            Instr::WriteCsr { rs1, imm } => (op::WRITE_CSR, 0, rs1.0, 0, imm),
            Instr::Iret { rs1 } => (op::IRET, 0, rs1.0, 0, 0),
            Instr::Pause => (op::PAUSE, 0, 0, 0, 0),
        };
        let mut out = [0u8; INSTR_BYTES as usize];
        out[0] = opcode;
        out[1] = b1;
        out[2] = b2;
        out[3] = b3;
        out[4..8].copy_from_slice(&imm.to_le_bytes());
        out
    }

    /// Decode from the 8-byte wire format.
    pub fn decode(bytes: &[u8; INSTR_BYTES as usize], pc: u64) -> Result<Instr> {
        let opcode = bytes[0];
        let b1 = bytes[1];
        let b2 = bytes[2];
        let b3 = bytes[3];
        let imm = i32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let raw = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let invalid = || Error::InvalidInstruction { pc, opcode: raw };
        let reg = |b: u8| Reg::try_new(b).ok_or_else(invalid);

        Ok(match opcode {
            op::NOP => Instr::Nop,
            op::HALT => Instr::Halt,
            op::MOV_IMM => Instr::MovImm { rd: reg(b1)?, imm },
            op::MOV_HIGH => Instr::MovHigh { rd: reg(b1)?, imm },
            op::ALU => Instr::Alu {
                op: AluOp::from_byte(imm as u8).ok_or_else(invalid)?,
                rd: reg(b1)?,
                rs1: reg(b2)?,
                rs2: reg(b3)?,
            },
            op::ADD_IMM => Instr::AddImm {
                rd: reg(b1)?,
                rs1: reg(b2)?,
                imm,
            },
            op::LOAD => Instr::Load {
                rd: reg(b1)?,
                rs1: reg(b2)?,
                imm,
            },
            op::STORE => Instr::Store {
                rs2: reg(b3)?,
                rs1: reg(b2)?,
                imm,
            },
            op::BRANCH => Instr::Branch {
                cond: Cond::from_byte(b1).ok_or_else(invalid)?,
                rs1: reg(b2)?,
                rs2: reg(b3)?,
                imm,
            },
            op::JAL => Instr::Jal { rd: reg(b1)?, imm },
            op::JALR => Instr::Jalr {
                rd: reg(b1)?,
                rs1: reg(b2)?,
            },
            op::HYPERCALL => Instr::Hypercall {
                nr: imm as u16,
                rd: reg(b1)?,
                rs1: reg(b2)?,
            },
            op::OUT => Instr::Out { rs1: reg(b2)?, imm },
            op::IN => Instr::In { rd: reg(b1)?, imm },
            op::SET_PTBR => Instr::SetPtbr { rs1: reg(b2)? },
            op::TLB_FLUSH => Instr::TlbFlush,
            op::READ_CSR => Instr::ReadCsr { rd: reg(b1)?, imm },
            op::WRITE_CSR => Instr::WriteCsr { rs1: reg(b2)?, imm },
            op::IRET => Instr::Iret { rs1: reg(b2)? },
            op::PAUSE => Instr::Pause,
            _ => return Err(invalid()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_sample_instrs() -> Vec<Instr> {
        let r = Reg::new;
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::MovImm { rd: r(1), imm: -5 },
            Instr::MovHigh {
                rd: r(2),
                imm: 0x1234,
            },
            Instr::Alu {
                op: AluOp::Add,
                rd: r(3),
                rs1: r(1),
                rs2: r(2),
            },
            Instr::Alu {
                op: AluOp::Shr,
                rd: r(3),
                rs1: r(1),
                rs2: r(2),
            },
            Instr::AddImm {
                rd: r(4),
                rs1: r(3),
                imm: 1024,
            },
            Instr::Load {
                rd: r(5),
                rs1: r(4),
                imm: 8,
            },
            Instr::Store {
                rs2: r(5),
                rs1: r(4),
                imm: -8,
            },
            Instr::Branch {
                cond: Cond::Ne,
                rs1: r(1),
                rs2: r(0),
                imm: -16,
            },
            Instr::Jal { rd: r(31), imm: 64 },
            Instr::Jalr {
                rd: r(0),
                rs1: r(31),
            },
            Instr::Hypercall {
                nr: 7,
                rd: r(1),
                rs1: r(2),
            },
            Instr::Out {
                rs1: r(2),
                imm: 0x3f8,
            },
            Instr::In {
                rd: r(2),
                imm: 0x3f8,
            },
            Instr::SetPtbr { rs1: r(10) },
            Instr::TlbFlush,
            Instr::ReadCsr { rd: r(6), imm: 3 },
            Instr::ReadCsr { rd: r(6), imm: 20 },
            Instr::WriteCsr { rs1: r(6), imm: 20 },
            Instr::Iret { rs1: r(7) },
            Instr::Pause,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for instr in all_sample_instrs() {
            let bytes = instr.encode();
            let back = Instr::decode(&bytes, 0).unwrap();
            assert_eq!(back, instr, "roundtrip failed for {instr:?}");
        }
    }

    #[test]
    fn privilege_classification() {
        assert!(Instr::Halt.is_privileged());
        assert!(Instr::TlbFlush.is_privileged());
        assert!(Instr::SetPtbr { rs1: Reg::new(1) }.is_privileged());
        assert!(Instr::Out {
            rs1: Reg::new(1),
            imm: 0
        }
        .is_privileged());
        assert!(Instr::WriteCsr {
            rs1: Reg::new(1),
            imm: 0
        }
        .is_privileged());
        assert!(Instr::ReadCsr {
            rd: Reg::new(1),
            imm: 16
        }
        .is_privileged());
        assert!(!Instr::ReadCsr {
            rd: Reg::new(1),
            imm: 3
        }
        .is_privileged());
        assert!(!Instr::Nop.is_privileged());
        assert!(!Instr::Hypercall {
            nr: 0,
            rd: Reg::ZERO,
            rs1: Reg::ZERO
        }
        .is_privileged());
        assert!(!Instr::Load {
            rd: Reg::new(1),
            rs1: Reg::new(2),
            imm: 0
        }
        .is_privileged());
    }

    #[test]
    fn invalid_opcode_rejected() {
        let mut bytes = [0u8; 8];
        bytes[0] = 0xff;
        let err = Instr::decode(&bytes, 0x40).unwrap_err();
        assert!(matches!(err, Error::InvalidInstruction { pc: 0x40, .. }));
    }

    #[test]
    fn invalid_register_rejected() {
        let bad = [op::MOV_IMM, 200, 0, 0, 0, 0, 0, 0];
        assert!(Instr::decode(&bad, 0).is_err());
    }

    #[test]
    fn invalid_alu_op_rejected() {
        let bad = [op::ALU, 1, 2, 3, 99, 0, 0, 0];
        assert!(Instr::decode(&bad, 0).is_err());
    }

    #[test]
    fn reg_bounds() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
        assert_eq!(Reg::new(5).index(), 5);
    }

    #[test]
    #[should_panic]
    fn reg_new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(1 << 40, 1 << 40), 0);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), u64::MAX);
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Rem.apply(7, 4), 3);
        assert_eq!(AluOp::Shl.apply(1, 65), 2);
        assert_eq!(AluOp::Shr.apply(8, 3), 1);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
    }

    proptest! {
        #[test]
        fn alu_roundtrip_via_encoding(op_byte in 0u8..10, rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32) {
            let op = AluOp::from_byte(op_byte).unwrap();
            let instr = Instr::Alu { op, rd: Reg(rd), rs1: Reg(rs1), rs2: Reg(rs2) };
            prop_assert_eq!(Instr::decode(&instr.encode(), 0).unwrap(), instr);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::array::uniform8(any::<u8>())) {
            let _ = Instr::decode(&bytes, 0);
        }

        #[test]
        fn imm_roundtrips(imm in any::<i32>()) {
            let instr = Instr::MovImm { rd: Reg(7), imm };
            prop_assert_eq!(Instr::decode(&instr.encode(), 0).unwrap(), instr);
        }
    }
}
