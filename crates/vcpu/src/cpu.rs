//! The GISA interpreter: a virtual CPU that produces VM exits.
//!
//! [`Vcpu::run`] executes guest instructions until one of three things
//! happens: the instruction budget is exhausted, the guest performs an action
//! that requires the hypervisor (I/O, hypercall, halt, unresolvable page
//! fault), or the guest misbehaves badly enough to be killed. The returned
//! [`ExitReason`] is the moral equivalent of `KVM_RUN` returning with an exit
//! reason in the `kvm_run` structure.
//!
//! The interpreter charges simulated time according to the [`ExecCosts`] of
//! the configured [`ExecMode`], which is what makes the virtualization-
//! overhead experiments deterministic and host-independent.

use serde::{Deserialize, Serialize};

use rvisor_memory::GuestMemory;
use rvisor_types::{Error, GuestAddress, Nanoseconds, Result, VcpuId};

use crate::exec_mode::{ExecCosts, ExecMode};
use crate::isa::{Instr, Reg, INSTR_BYTES, NUM_REGS};
use crate::mmu::{Mmu, TlbStats, TranslateFault};

/// Number of control/status registers.
pub const NUM_CSRS: usize = 32;

/// CSR index holding the vCPU id (read-only to the guest).
pub const CSR_VCPU_ID: i32 = 0;
/// CSR index holding the current privilege mode (read-only to the guest).
pub const CSR_MODE: i32 = 1;
/// First CSR index that is privileged to read.
pub const CSR_PRIVILEGED_BASE: i32 = 16;

/// Guest privilege modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrivMode {
    /// Guest user mode.
    User,
    /// Guest supervisor (kernel) mode.
    Supervisor,
}

/// Why `Vcpu::run` returned to the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The guest executed `Halt`.
    Halt,
    /// The guest read from an address not backed by RAM; the hypervisor must
    /// call [`Vcpu::complete_mmio_read`] with the value before resuming.
    MmioRead {
        /// Guest physical address of the access.
        addr: GuestAddress,
        /// Access width in bytes (always 8 for GISA loads).
        size: u8,
    },
    /// The guest wrote to an address not backed by RAM.
    MmioWrite {
        /// Guest physical address of the access.
        addr: GuestAddress,
        /// Value written.
        value: u64,
        /// Access width in bytes.
        size: u8,
    },
    /// The guest executed `In`; call [`Vcpu::complete_pio_in`] before resuming.
    PioIn {
        /// Port number.
        port: u32,
    },
    /// The guest executed `Out`.
    PioOut {
        /// Port number.
        port: u32,
        /// Value written.
        value: u32,
    },
    /// The guest executed `Hypercall`; optionally call
    /// [`Vcpu::complete_hypercall`] to set the return value.
    Hypercall {
        /// Hypercall number.
        nr: u16,
        /// Argument taken from the guest register.
        arg: u64,
    },
    /// The guest touched an unmapped or protected page. The faulting
    /// instruction has *not* retired; fixing the mapping and resuming will
    /// re-execute it (this is what post-copy migration relies on).
    PageFault {
        /// Faulting guest virtual address.
        vaddr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// The instruction budget given to `run` was exhausted (preemption point).
    InstructionLimit,
    /// The guest executed `Pause` — it has no useful work (idle loop).
    Idle,
}

/// The result of one `run` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why control returned to the hypervisor.
    pub exit: ExitReason,
    /// Instructions retired during this invocation.
    pub instructions: u64,
    /// Simulated time consumed during this invocation.
    pub elapsed: Nanoseconds,
}

/// Cumulative per-vCPU counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuStats {
    /// Total instructions retired.
    pub instructions: u64,
    /// Total VM exits (all reasons, including emulated privileged traps).
    pub exits: u64,
    /// Exits caused by MMIO accesses.
    pub mmio_exits: u64,
    /// Exits caused by port I/O.
    pub pio_exits: u64,
    /// Hypercalls performed.
    pub hypercalls: u64,
    /// Guest page faults delivered to the hypervisor.
    pub page_faults: u64,
    /// Privileged instructions that trapped and were emulated.
    pub privileged_traps: u64,
    /// Halt exits.
    pub halts: u64,
    /// Idle (Pause) exits.
    pub idles: u64,
    /// Total simulated guest time.
    pub sim_time_ns: u64,
}

impl VcpuStats {
    /// Simulated time as a typed duration.
    pub fn sim_time(&self) -> Nanoseconds {
        Nanoseconds(self.sim_time_ns)
    }

    /// Exits per million retired instructions (a standard overhead metric).
    pub fn exits_per_million_instructions(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.exits as f64 * 1_000_000.0 / self.instructions as f64
        }
    }
}

/// Configuration for a [`Vcpu`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VcpuConfig {
    /// Identifier within the VM.
    pub id: VcpuId,
    /// Virtualization technique being modelled.
    pub mode: ExecMode,
    /// Cost model; defaults to `mode.default_costs()`.
    pub costs: ExecCosts,
    /// Number of TLB entries.
    pub tlb_entries: usize,
}

impl VcpuConfig {
    /// A configuration with the default cost model for `mode`.
    pub fn new(id: VcpuId, mode: ExecMode) -> Self {
        VcpuConfig {
            id,
            mode,
            costs: mode.default_costs(),
            tlb_entries: 64,
        }
    }
}

impl Default for VcpuConfig {
    fn default() -> Self {
        VcpuConfig::new(VcpuId::new(0), ExecMode::HardwareAssist)
    }
}

/// Architectural state that is saved/restored by snapshots and migration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuState {
    /// General-purpose registers.
    pub regs: [u64; NUM_REGS],
    /// Program counter (guest virtual address).
    pub pc: u64,
    /// Privilege mode.
    pub mode: PrivMode,
    /// Control/status registers.
    pub csrs: [u64; NUM_CSRS],
    /// Page-table base register.
    pub ptbr: u64,
}

impl Default for VcpuState {
    fn default() -> Self {
        VcpuState {
            regs: [0; NUM_REGS],
            pc: 0,
            mode: PrivMode::Supervisor,
            csrs: [0; NUM_CSRS],
            ptbr: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    None,
    MmioRead { rd: Reg },
    PioIn { rd: Reg },
    Hypercall { rd: Reg },
}

/// A virtual CPU.
#[derive(Debug)]
pub struct Vcpu {
    config: VcpuConfig,
    regs: [u64; NUM_REGS],
    pc: u64,
    mode: PrivMode,
    csrs: [u64; NUM_CSRS],
    mmu: Mmu,
    stats: VcpuStats,
    pending: Pending,
}

impl Vcpu {
    /// Create a vCPU in supervisor mode with the PC at zero and paging disabled.
    pub fn new(config: VcpuConfig) -> Self {
        let mut csrs = [0u64; NUM_CSRS];
        csrs[CSR_VCPU_ID as usize] = config.id.raw() as u64;
        Vcpu {
            config,
            regs: [0; NUM_REGS],
            pc: 0,
            mode: PrivMode::Supervisor,
            csrs,
            mmu: Mmu::new(config.tlb_entries),
            stats: VcpuStats::default(),
            pending: Pending::None,
        }
    }

    /// The vCPU's identifier.
    pub fn id(&self) -> VcpuId {
        self.config.id
    }

    /// The execution mode being modelled.
    pub fn exec_mode(&self) -> ExecMode {
        self.config.mode
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> VcpuStats {
        self.stats
    }

    /// TLB statistics from the MMU.
    pub fn tlb_stats(&self) -> TlbStats {
        self.mmu.tlb_stats()
    }

    /// Read a general-purpose register.
    pub fn reg(&self, r: Reg) -> u64 {
        if r.index() == 0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Write a general-purpose register (writes to r0 are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Set the program counter (used when loading a program).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// The current privilege mode.
    pub fn priv_mode(&self) -> PrivMode {
        self.mode
    }

    /// Capture the architectural state for snapshot/migration.
    pub fn save_state(&self) -> VcpuState {
        VcpuState {
            regs: self.regs,
            pc: self.pc,
            mode: self.mode,
            csrs: self.csrs,
            ptbr: self.mmu.ptbr().0,
        }
    }

    /// Restore previously captured architectural state.
    pub fn restore_state(&mut self, state: &VcpuState) {
        self.regs = state.regs;
        self.pc = state.pc;
        self.mode = state.mode;
        self.csrs = state.csrs;
        if state.ptbr != 0 {
            self.mmu.set_ptbr(GuestAddress(state.ptbr));
        } else {
            self.mmu = Mmu::new(self.config.tlb_entries);
        }
        self.pending = Pending::None;
    }

    /// Provide the value for a pending MMIO read and retire the load.
    pub fn complete_mmio_read(&mut self, value: u64) -> Result<()> {
        match self.pending {
            Pending::MmioRead { rd } => {
                self.set_reg(rd, value);
                self.pending = Pending::None;
                Ok(())
            }
            _ => Err(Error::VcpuFault("no MMIO read pending".into())),
        }
    }

    /// Provide the value for a pending port-input and retire the instruction.
    pub fn complete_pio_in(&mut self, value: u32) -> Result<()> {
        match self.pending {
            Pending::PioIn { rd } => {
                self.set_reg(rd, value as u64);
                self.pending = Pending::None;
                Ok(())
            }
            _ => Err(Error::VcpuFault("no port input pending".into())),
        }
    }

    /// Provide the return value of a pending hypercall.
    pub fn complete_hypercall(&mut self, value: u64) -> Result<()> {
        match self.pending {
            Pending::Hypercall { rd } => {
                self.set_reg(rd, value);
                self.pending = Pending::None;
                Ok(())
            }
            _ => Err(Error::VcpuFault("no hypercall pending".into())),
        }
    }

    fn charge(&mut self, ns: u64, elapsed: &mut u64) {
        *elapsed += ns;
    }

    /// Translate a data access, converting MMU faults into page-fault exits.
    fn translate_data(
        &mut self,
        memory: &GuestMemory,
        vaddr: u64,
        write: bool,
        elapsed: &mut u64,
    ) -> std::result::Result<GuestAddress, ExitReason> {
        let user = self.mode == PrivMode::User;
        match self.mmu.translate(memory, vaddr, write, user) {
            Ok(t) => {
                if !t.tlb_hit {
                    self.charge(
                        self.config.costs.tlb_miss_cycles * self.config.costs.cycle_ns,
                        elapsed,
                    );
                }
                Ok(t.paddr)
            }
            Err(TranslateFault::OutOfRange) | Err(TranslateFault::NotMapped) => {
                Err(ExitReason::PageFault { vaddr, write })
            }
            Err(TranslateFault::NotWritable) => Err(ExitReason::PageFault { vaddr, write: true }),
            Err(TranslateFault::NotUser) => Err(ExitReason::PageFault { vaddr, write }),
        }
    }

    /// Execute up to `max_instructions` guest instructions.
    pub fn run(&mut self, memory: &GuestMemory, max_instructions: u64) -> Result<RunOutcome> {
        if self.pending != Pending::None {
            return Err(Error::VcpuFault(
                "cannot resume: an MMIO/PIO/hypercall completion is pending".into(),
            ));
        }
        let costs = self.config.costs;
        let mut executed = 0u64;
        let mut elapsed = 0u64;

        let outcome = loop {
            if executed >= max_instructions {
                break ExitReason::InstructionLimit;
            }

            // Fetch.
            let fetch_paddr = match self.translate_data(memory, self.pc, false, &mut elapsed) {
                Ok(p) => p,
                Err(exit) => {
                    self.stats.page_faults += 1;
                    self.stats.exits += 1;
                    self.charge(costs.exit_ns, &mut elapsed);
                    break exit;
                }
            };
            let mut raw = [0u8; INSTR_BYTES as usize];
            if memory.read(fetch_paddr, &mut raw).is_err() {
                return Err(Error::VcpuFault(format!(
                    "instruction fetch from unbacked address {fetch_paddr} at pc 0x{:x}",
                    self.pc
                )));
            }
            let instr = Instr::decode(&raw, self.pc)?;

            // Privilege check / trap-and-emulate accounting.
            if instr.is_privileged() {
                if self.mode == PrivMode::User {
                    return Err(Error::VcpuFault(format!(
                        "privileged instruction {instr:?} in user mode at pc 0x{:x}",
                        self.pc
                    )));
                }
                if self.config.mode.privileged_traps() {
                    self.stats.privileged_traps += 1;
                    self.stats.exits += 1;
                    self.charge(costs.exit_ns + costs.privileged_emulation_ns, &mut elapsed);
                }
            }

            executed += 1;
            self.stats.instructions += 1;
            self.charge(costs.cycle_ns, &mut elapsed);
            let next_pc = self.pc.wrapping_add(INSTR_BYTES);

            match instr {
                Instr::Nop => self.pc = next_pc,
                Instr::Halt => {
                    self.pc = next_pc;
                    self.stats.halts += 1;
                    self.stats.exits += 1;
                    self.charge(costs.exit_ns, &mut elapsed);
                    break ExitReason::Halt;
                }
                Instr::Pause => {
                    self.pc = next_pc;
                    self.stats.idles += 1;
                    self.stats.exits += 1;
                    self.charge(costs.exit_ns, &mut elapsed);
                    break ExitReason::Idle;
                }
                Instr::MovImm { rd, imm } => {
                    self.set_reg(rd, imm as i64 as u64);
                    self.pc = next_pc;
                }
                Instr::MovHigh { rd, imm } => {
                    let v = (self.reg(rd) << 32) | (imm as u32 as u64);
                    self.set_reg(rd, v);
                    self.pc = next_pc;
                }
                Instr::Alu { op, rd, rs1, rs2 } => {
                    let v = op.apply(self.reg(rs1), self.reg(rs2));
                    self.set_reg(rd, v);
                    self.pc = next_pc;
                }
                Instr::AddImm { rd, rs1, imm } => {
                    let v = self.reg(rs1).wrapping_add(imm as i64 as u64);
                    self.set_reg(rd, v);
                    self.pc = next_pc;
                }
                Instr::Load { rd, rs1, imm } => {
                    let vaddr = self.reg(rs1).wrapping_add(imm as i64 as u64);
                    let paddr = match self.translate_data(memory, vaddr, false, &mut elapsed) {
                        Ok(p) => p,
                        Err(exit) => {
                            self.stats.page_faults += 1;
                            self.stats.exits += 1;
                            self.charge(costs.exit_ns, &mut elapsed);
                            break exit;
                        }
                    };
                    match memory.read_u64(paddr) {
                        Ok(v) => {
                            self.set_reg(rd, v);
                            self.pc = next_pc;
                        }
                        Err(_) => {
                            // Not backed by RAM: MMIO read.
                            self.pending = Pending::MmioRead { rd };
                            self.pc = next_pc;
                            self.stats.mmio_exits += 1;
                            self.stats.exits += 1;
                            self.charge(costs.mmio_exit_ns, &mut elapsed);
                            break ExitReason::MmioRead {
                                addr: paddr,
                                size: 8,
                            };
                        }
                    }
                }
                Instr::Store { rs2, rs1, imm } => {
                    let vaddr = self.reg(rs1).wrapping_add(imm as i64 as u64);
                    let value = self.reg(rs2);
                    let paddr = match self.translate_data(memory, vaddr, true, &mut elapsed) {
                        Ok(p) => p,
                        Err(exit) => {
                            self.stats.page_faults += 1;
                            self.stats.exits += 1;
                            self.charge(costs.exit_ns, &mut elapsed);
                            break exit;
                        }
                    };
                    match memory.write_u64(paddr, value) {
                        Ok(()) => self.pc = next_pc,
                        Err(_) => {
                            self.pc = next_pc;
                            self.stats.mmio_exits += 1;
                            self.stats.exits += 1;
                            self.charge(costs.mmio_exit_ns, &mut elapsed);
                            break ExitReason::MmioWrite {
                                addr: paddr,
                                value,
                                size: 8,
                            };
                        }
                    }
                }
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    imm,
                } => {
                    let a = self.reg(rs1);
                    let b = self.reg(rs2);
                    let taken = match cond {
                        crate::isa::Cond::Eq => a == b,
                        crate::isa::Cond::Ne => a != b,
                        crate::isa::Cond::Lt => a < b,
                        crate::isa::Cond::Ge => a >= b,
                    };
                    self.pc = if taken {
                        next_pc.wrapping_add(imm as i64 as u64)
                    } else {
                        next_pc
                    };
                }
                Instr::Jal { rd, imm } => {
                    self.set_reg(rd, next_pc);
                    self.pc = next_pc.wrapping_add(imm as i64 as u64);
                }
                Instr::Jalr { rd, rs1 } => {
                    let target = self.reg(rs1);
                    self.set_reg(rd, next_pc);
                    self.pc = target;
                }
                Instr::Hypercall { nr, rd, rs1 } => {
                    let arg = self.reg(rs1);
                    self.set_reg(rd, 0);
                    self.pending = Pending::Hypercall { rd };
                    self.pc = next_pc;
                    self.stats.hypercalls += 1;
                    self.stats.exits += 1;
                    self.charge(costs.hypercall_ns, &mut elapsed);
                    break ExitReason::Hypercall { nr, arg };
                }
                Instr::Out { rs1, imm } => {
                    let value = self.reg(rs1) as u32;
                    self.pc = next_pc;
                    self.stats.pio_exits += 1;
                    self.stats.exits += 1;
                    self.charge(costs.pio_exit_ns, &mut elapsed);
                    break ExitReason::PioOut {
                        port: imm as u32,
                        value,
                    };
                }
                Instr::In { rd, imm } => {
                    self.pending = Pending::PioIn { rd };
                    self.pc = next_pc;
                    self.stats.pio_exits += 1;
                    self.stats.exits += 1;
                    self.charge(costs.pio_exit_ns, &mut elapsed);
                    break ExitReason::PioIn { port: imm as u32 };
                }
                Instr::SetPtbr { rs1 } => {
                    let ptbr = self.reg(rs1);
                    self.mmu.set_ptbr(GuestAddress(ptbr));
                    self.pc = next_pc;
                }
                Instr::TlbFlush => {
                    self.mmu.flush_tlb();
                    self.pc = next_pc;
                }
                Instr::ReadCsr { rd, imm } => {
                    let idx = (imm as usize) % NUM_CSRS;
                    let v = if imm == CSR_MODE {
                        match self.mode {
                            PrivMode::User => 0,
                            PrivMode::Supervisor => 1,
                        }
                    } else {
                        self.csrs[idx]
                    };
                    self.set_reg(rd, v);
                    self.pc = next_pc;
                }
                Instr::WriteCsr { rs1, imm } => {
                    let idx = (imm as usize) % NUM_CSRS;
                    if imm != CSR_VCPU_ID && imm != CSR_MODE {
                        self.csrs[idx] = self.reg(rs1);
                    }
                    self.pc = next_pc;
                }
                Instr::Iret { rs1 } => {
                    self.pc = self.reg(rs1);
                    self.mode = PrivMode::User;
                }
            }
        };

        self.stats.sim_time_ns += elapsed;
        Ok(RunOutcome {
            exit: outcome,
            instructions: executed,
            elapsed: Nanoseconds(elapsed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::{AluOp, Cond};
    use rvisor_types::ByteSize;

    fn memory() -> GuestMemory {
        GuestMemory::flat(ByteSize::mib(1)).unwrap()
    }

    fn vcpu(mode: ExecMode) -> Vcpu {
        let mut cfg = VcpuConfig::new(VcpuId::new(0), mode);
        cfg.costs = ExecCosts::FREE;
        Vcpu::new(cfg)
    }

    fn load(mem: &GuestMemory, at: u64, program: &[Instr]) {
        let mut addr = at;
        for instr in program {
            mem.write(GuestAddress(addr), &instr.encode()).unwrap();
            addr += INSTR_BYTES;
        }
    }

    #[test]
    fn arithmetic_program_runs_to_halt() {
        let mem = memory();
        let r = Reg::new;
        load(
            &mem,
            0,
            &[
                Instr::MovImm { rd: r(1), imm: 6 },
                Instr::MovImm { rd: r(2), imm: 7 },
                Instr::Alu {
                    op: AluOp::Mul,
                    rd: r(3),
                    rs1: r(1),
                    rs2: r(2),
                },
                Instr::Halt,
            ],
        );
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        let out = cpu.run(&mem, 100).unwrap();
        assert_eq!(out.exit, ExitReason::Halt);
        assert_eq!(out.instructions, 4);
        assert_eq!(cpu.reg(r(3)), 42);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mem = memory();
        load(
            &mem,
            0,
            &[
                Instr::MovImm {
                    rd: Reg::ZERO,
                    imm: 99,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        cpu.run(&mem, 10).unwrap();
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loop_with_branch_counts_correctly() {
        let mem = memory();
        let mut asm = Assembler::new();
        let r = Reg::new;
        asm.push(Instr::MovImm { rd: r(1), imm: 10 }); // counter
        asm.push(Instr::MovImm { rd: r(2), imm: 0 }); // accumulator
        asm.label("loop");
        asm.push(Instr::AddImm {
            rd: r(2),
            rs1: r(2),
            imm: 3,
        });
        asm.push(Instr::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: -1,
        });
        asm.branch_to(Cond::Ne, r(1), Reg::ZERO, "loop");
        asm.push(Instr::Halt);
        let program = asm.assemble().unwrap();
        mem.write(GuestAddress(0), &program).unwrap();

        let mut cpu = vcpu(ExecMode::HardwareAssist);
        let out = cpu.run(&mem, 1000).unwrap();
        assert_eq!(out.exit, ExitReason::Halt);
        assert_eq!(cpu.reg(r(2)), 30);
    }

    #[test]
    fn load_store_roundtrip_through_guest_memory() {
        let mem = memory();
        let r = Reg::new;
        load(
            &mem,
            0,
            &[
                Instr::MovImm {
                    rd: r(1),
                    imm: 0x8000,
                },
                Instr::MovImm {
                    rd: r(2),
                    imm: 1234,
                },
                Instr::Store {
                    rs2: r(2),
                    rs1: r(1),
                    imm: 16,
                },
                Instr::Load {
                    rd: r(3),
                    rs1: r(1),
                    imm: 16,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        cpu.run(&mem, 10).unwrap();
        assert_eq!(cpu.reg(r(3)), 1234);
        assert_eq!(mem.read_u64(GuestAddress(0x8010)).unwrap(), 1234);
    }

    #[test]
    fn mmio_access_exits_and_resumes() {
        let mem = memory(); // 1 MiB of RAM; 0x200000 is unbacked -> MMIO
        let r = Reg::new;
        load(
            &mem,
            0,
            &[
                Instr::MovImm {
                    rd: r(1),
                    imm: 0x20_0000,
                },
                Instr::Store {
                    rs2: r(2),
                    rs1: r(1),
                    imm: 0,
                },
                Instr::Load {
                    rd: r(3),
                    rs1: r(1),
                    imm: 8,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        let out = cpu.run(&mem, 10).unwrap();
        assert_eq!(
            out.exit,
            ExitReason::MmioWrite {
                addr: GuestAddress(0x20_0000),
                value: 0,
                size: 8
            }
        );

        let out = cpu.run(&mem, 10).unwrap();
        assert_eq!(
            out.exit,
            ExitReason::MmioRead {
                addr: GuestAddress(0x20_0008),
                size: 8
            }
        );
        cpu.complete_mmio_read(0xabcd).unwrap();
        let out = cpu.run(&mem, 10).unwrap();
        assert_eq!(out.exit, ExitReason::Halt);
        assert_eq!(cpu.reg(r(3)), 0xabcd);
        assert_eq!(cpu.stats().mmio_exits, 2);
    }

    #[test]
    fn resume_without_completion_is_an_error() {
        let mem = memory();
        let r = Reg::new;
        load(
            &mem,
            0,
            &[
                Instr::MovImm {
                    rd: r(1),
                    imm: 0x20_0000,
                },
                Instr::Load {
                    rd: r(3),
                    rs1: r(1),
                    imm: 0,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        let out = cpu.run(&mem, 10).unwrap();
        assert!(matches!(out.exit, ExitReason::MmioRead { .. }));
        assert!(cpu.run(&mem, 10).is_err());
        assert!(cpu.complete_pio_in(0).is_err());
        cpu.complete_mmio_read(1).unwrap();
        assert!(cpu.run(&mem, 10).is_ok());
    }

    #[test]
    fn pio_and_hypercall_exits() {
        let mem = memory();
        let r = Reg::new;
        load(
            &mem,
            0,
            &[
                Instr::MovImm { rd: r(1), imm: 65 },
                Instr::Out {
                    rs1: r(1),
                    imm: 0x3f8,
                },
                Instr::In {
                    rd: r(2),
                    imm: 0x3f8,
                },
                Instr::Hypercall {
                    nr: 4,
                    rd: r(3),
                    rs1: r(1),
                },
                Instr::Halt,
            ],
        );
        let mut cpu = vcpu(ExecMode::Paravirt);
        let out = cpu.run(&mem, 10).unwrap();
        assert_eq!(
            out.exit,
            ExitReason::PioOut {
                port: 0x3f8,
                value: 65
            }
        );
        let out = cpu.run(&mem, 10).unwrap();
        assert_eq!(out.exit, ExitReason::PioIn { port: 0x3f8 });
        cpu.complete_pio_in(66).unwrap();
        let out = cpu.run(&mem, 10).unwrap();
        assert_eq!(out.exit, ExitReason::Hypercall { nr: 4, arg: 65 });
        cpu.complete_hypercall(77).unwrap();
        let out = cpu.run(&mem, 10).unwrap();
        assert_eq!(out.exit, ExitReason::Halt);
        assert_eq!(cpu.reg(r(2)), 66);
        assert_eq!(cpu.reg(r(3)), 77);
        assert_eq!(cpu.stats().pio_exits, 2);
        assert_eq!(cpu.stats().hypercalls, 1);
    }

    #[test]
    fn instruction_limit_preempts() {
        let mem = memory();
        // Infinite loop: jump to self.
        load(
            &mem,
            0,
            &[Instr::Jal {
                rd: Reg::ZERO,
                imm: -(INSTR_BYTES as i32),
            }],
        );
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        let out = cpu.run(&mem, 50).unwrap();
        assert_eq!(out.exit, ExitReason::InstructionLimit);
        assert_eq!(out.instructions, 50);
    }

    #[test]
    fn pause_produces_idle_exit() {
        let mem = memory();
        load(&mem, 0, &[Instr::Pause, Instr::Halt]);
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        assert_eq!(cpu.run(&mem, 10).unwrap().exit, ExitReason::Idle);
        assert_eq!(cpu.run(&mem, 10).unwrap().exit, ExitReason::Halt);
        assert_eq!(cpu.stats().idles, 1);
    }

    #[test]
    fn privileged_traps_counted_only_when_mode_traps() {
        let mem = memory();
        let program = [
            Instr::TlbFlush,
            Instr::TlbFlush,
            Instr::WriteCsr {
                rs1: Reg::new(1),
                imm: 20,
            },
            Instr::Halt,
        ];
        for (mode, expected_traps) in [
            (ExecMode::TrapAndEmulate, 4),
            (ExecMode::Paravirt, 4),
            (ExecMode::HardwareAssist, 0),
        ] {
            load(&mem, 0, &program);
            let mut cpu = vcpu(mode);
            cpu.run(&mem, 10).unwrap();
            assert_eq!(
                cpu.stats().privileged_traps,
                expected_traps,
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn trap_and_emulate_charges_more_time_for_privileged_work() {
        let mem = memory();
        let program = [
            Instr::TlbFlush,
            Instr::TlbFlush,
            Instr::TlbFlush,
            Instr::Halt,
        ];
        load(&mem, 0, &program);
        let mut te = Vcpu::new(VcpuConfig::new(VcpuId::new(0), ExecMode::TrapAndEmulate));
        let mut hw = Vcpu::new(VcpuConfig::new(VcpuId::new(1), ExecMode::HardwareAssist));
        let te_out = te.run(&mem, 10).unwrap();
        load(&mem, 0, &program);
        let hw_out = hw.run(&mem, 10).unwrap();
        assert!(te_out.elapsed > hw_out.elapsed);
    }

    #[test]
    fn csr_access_and_mode() {
        let mem = memory();
        let r = Reg::new;
        load(
            &mem,
            0,
            &[
                Instr::ReadCsr {
                    rd: r(1),
                    imm: CSR_VCPU_ID,
                },
                Instr::ReadCsr {
                    rd: r(2),
                    imm: CSR_MODE,
                },
                Instr::MovImm { rd: r(3), imm: 55 },
                Instr::WriteCsr { rs1: r(3), imm: 20 },
                Instr::ReadCsr { rd: r(4), imm: 20 },
                Instr::Halt,
            ],
        );
        let mut cfg = VcpuConfig::new(VcpuId::new(9), ExecMode::HardwareAssist);
        cfg.costs = ExecCosts::FREE;
        let mut cpu = Vcpu::new(cfg);
        cpu.run(&mem, 10).unwrap();
        assert_eq!(cpu.reg(r(1)), 9);
        assert_eq!(cpu.reg(r(2)), 1); // supervisor
        assert_eq!(cpu.reg(r(4)), 55);
    }

    #[test]
    fn iret_switches_to_user_mode_and_priv_faults() {
        let mem = memory();
        let r = Reg::new;
        // Supervisor: set r1 to user code address, iret. User code at 0x100 does TlbFlush -> fault.
        load(
            &mem,
            0,
            &[
                Instr::MovImm {
                    rd: r(1),
                    imm: 0x100,
                },
                Instr::Iret { rs1: r(1) },
            ],
        );
        load(&mem, 0x100, &[Instr::TlbFlush, Instr::Halt]);
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        let err = cpu.run(&mem, 10).unwrap_err();
        assert!(matches!(err, Error::VcpuFault(_)));
        assert_eq!(cpu.priv_mode(), PrivMode::User);
    }

    #[test]
    fn save_restore_state_roundtrip() {
        let mem = memory();
        let r = Reg::new;
        load(
            &mem,
            0,
            &[
                Instr::MovImm { rd: r(5), imm: 123 },
                Instr::Pause,
                Instr::Halt,
            ],
        );
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        cpu.run(&mem, 10).unwrap(); // stops at Pause
        let state = cpu.save_state();

        let mut other = vcpu(ExecMode::HardwareAssist);
        other.restore_state(&state);
        assert_eq!(other.reg(r(5)), 123);
        assert_eq!(other.pc(), cpu.pc());
        let out = other.run(&mem, 10).unwrap();
        assert_eq!(out.exit, ExitReason::Halt);
    }

    #[test]
    fn page_fault_exit_is_restartable() {
        let mem = memory();
        let r = Reg::new;
        // Enable paging with an empty page table, then touch an unmapped address.
        // First build a page table area at 0x40000 identity-mapping only the code page.
        use crate::mmu::PageTableEditor;
        let mut ed = PageTableEditor::new(mem.clone(), GuestAddress(0x40000), 16 * 4096).unwrap();
        ed.identity_map(GuestAddress(0), 4096, true, false).unwrap();
        load(
            &mem,
            0,
            &[
                Instr::MovImm {
                    rd: r(1),
                    imm: 0x40000,
                },
                Instr::SetPtbr { rs1: r(1) },
                Instr::MovImm {
                    rd: r(2),
                    imm: 0x9000,
                }, // unmapped vaddr
                Instr::Load {
                    rd: r(3),
                    rs1: r(2),
                    imm: 0,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = vcpu(ExecMode::HardwareAssist);
        let out = cpu.run(&mem, 100).unwrap();
        assert_eq!(
            out.exit,
            ExitReason::PageFault {
                vaddr: 0x9000,
                write: false
            }
        );
        // Hypervisor fixes the mapping (demand paging) and resumes; the load retries.
        ed.map(0x9000, GuestAddress(0x9000), true, false).unwrap();
        mem.write_u64(GuestAddress(0x9000), 777).unwrap();
        let out = cpu.run(&mem, 100).unwrap();
        assert_eq!(out.exit, ExitReason::Halt);
        assert_eq!(cpu.reg(r(3)), 777);
        assert_eq!(cpu.stats().page_faults, 1);
    }

    #[test]
    fn stats_exits_per_million() {
        let mut s = VcpuStats::default();
        assert_eq!(s.exits_per_million_instructions(), 0.0);
        s.instructions = 2_000_000;
        s.exits = 4;
        assert!((s.exits_per_million_instructions() - 2.0).abs() < 1e-9);
    }
}
