//! # rvisor-vcpu
//!
//! The guest CPU substrate: a small, deterministic RISC-style instruction set
//! (**GISA**) together with an assembler, a paging MMU with a software TLB,
//! and an interpreter that produces **VM exits** exactly where a hardware
//! virtualization extension would.
//!
//! ## Why a synthetic ISA?
//!
//! The experiments a virtualization paper runs against real hardware —
//! virtualization overhead of exit-heavy vs compute-bound workloads,
//! paravirtual vs emulated I/O, dirty-page behaviour under migration —
//! depend on *when the guest leaves guest mode and how much that costs*,
//! not on the particular ISA the guest speaks. GISA makes those events
//! explicit and countable:
//!
//! * privileged instructions (`SetPtbr`, `TlbFlush`, `Iret`, CSR access)
//!   trap to the hypervisor when the execution mode says they must;
//! * loads/stores that touch MMIO or port I/O addresses produce
//!   [`ExitReason::MmioRead`]/[`ExitReason::MmioWrite`]/PIO exits;
//! * the `Hypercall` instruction models paravirtual calls;
//! * the MMU walks real page tables stored in guest memory, so page-table
//!   experiments (shadow paging vs nested paging cost) are measurable.
//!
//! ## Execution modes
//!
//! [`ExecMode`] selects the virtualization technique being modelled —
//! trap-and-emulate (shadow paging), paravirtual, or hardware-assisted —
//! and with it the cost model ([`ExecCosts`]) used to convert counted events
//! into simulated nanoseconds.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod asm;
pub mod cpu;
pub mod exec_mode;
pub mod isa;
pub mod mmu;
pub mod workloads;

pub use asm::Assembler;
pub use cpu::{ExitReason, RunOutcome, Vcpu, VcpuConfig, VcpuState, VcpuStats};
pub use exec_mode::{ExecCosts, ExecMode};
pub use isa::{Cond, Instr, Reg, INSTR_BYTES};
pub use mmu::{Mmu, PageTableEditor, Pte, TlbStats, PTE_SIZE};
pub use workloads::{Workload, WorkloadKind};
