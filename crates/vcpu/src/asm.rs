//! A tiny two-pass assembler for GISA programs.
//!
//! The synthetic guest workloads (and the tests) need loops and forward
//! branches; hand-computing byte offsets is error-prone, so [`Assembler`]
//! provides named labels and resolves branch/jump targets in a second pass.

use std::collections::HashMap;

use rvisor_types::{Error, Result};

use crate::isa::{Cond, Instr, Reg, INSTR_BYTES};

/// An instruction slot that may still reference an unresolved label.
#[derive(Debug, Clone)]
enum Slot {
    /// A fully resolved instruction.
    Ready(Instr),
    /// A conditional branch to a label.
    BranchTo {
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    /// An unconditional jump (with link register) to a label.
    JalTo { rd: Reg, label: String },
}

/// Two-pass assembler producing a flat byte image of a GISA program.
///
/// ```
/// use rvisor_vcpu::{Assembler, Instr, Reg, Cond};
/// let mut asm = Assembler::new();
/// let r = Reg::new;
/// asm.push(Instr::MovImm { rd: r(1), imm: 3 });
/// asm.label("spin");
/// asm.push(Instr::AddImm { rd: r(1), rs1: r(1), imm: -1 });
/// asm.branch_to(Cond::Ne, r(1), Reg::ZERO, "spin");
/// asm.push(Instr::Halt);
/// let image = asm.assemble().unwrap();
/// assert_eq!(image.len(), 4 * 8);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    slots: Vec<Slot>,
    labels: HashMap<String, u64>,
    /// Base virtual address the program will be loaded at (affects absolute labels only).
    base: u64,
}

impl Assembler {
    /// Create an assembler for a program loaded at virtual address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an assembler for a program loaded at `base`.
    pub fn with_base(base: u64) -> Self {
        Assembler {
            base,
            ..Self::default()
        }
    }

    /// The base address the program is assembled for.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Current length of the program in instructions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no instructions have been added yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Append a resolved instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.slots.push(Slot::Ready(instr));
        self
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let addr = self.base + self.slots.len() as u64 * INSTR_BYTES;
        self.labels.insert(name.to_string(), addr);
        self
    }

    /// The address of a previously defined label.
    pub fn label_address(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }

    /// Append a conditional branch to a (possibly forward) label.
    pub fn branch_to(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::BranchTo {
            cond,
            rs1,
            rs2,
            label: label.to_string(),
        });
        self
    }

    /// Append an unconditional jump to a (possibly forward) label.
    pub fn jal_to(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::JalTo {
            rd,
            label: label.to_string(),
        });
        self
    }

    /// Append a `MovImm`/`MovHigh` pair that loads an arbitrary 64-bit constant.
    pub fn load_const(&mut self, rd: Reg, value: u64) -> &mut Self {
        // MovImm sign-extends; load the high half first, then shift in the low half.
        self.push(Instr::MovImm {
            rd,
            imm: (value >> 32) as i32,
        });
        self.push(Instr::MovHigh {
            rd,
            imm: value as u32 as i32,
        });
        self
    }

    /// Resolve labels and emit the byte image.
    pub fn assemble(&self) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.slots.len() * INSTR_BYTES as usize);
        for (i, slot) in self.slots.iter().enumerate() {
            let pc = self.base + i as u64 * INSTR_BYTES;
            let next_pc = pc + INSTR_BYTES;
            let instr = match slot {
                Slot::Ready(instr) => *instr,
                Slot::BranchTo {
                    cond,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target = self.resolve(label)?;
                    let offset = Self::rel_offset(next_pc, target)?;
                    Instr::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        imm: offset,
                    }
                }
                Slot::JalTo { rd, label } => {
                    let target = self.resolve(label)?;
                    let offset = Self::rel_offset(next_pc, target)?;
                    Instr::Jal {
                        rd: *rd,
                        imm: offset,
                    }
                }
            };
            out.extend_from_slice(&instr.encode());
        }
        Ok(out)
    }

    fn resolve(&self, label: &str) -> Result<u64> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| Error::Config(format!("undefined label `{label}`")))
    }

    fn rel_offset(next_pc: u64, target: u64) -> Result<i32> {
        let diff = target as i64 - next_pc as i64;
        i32::try_from(diff).map_err(|_| Error::Config(format!("branch offset {diff} out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new();
        let r = Reg::new;
        asm.push(Instr::MovImm { rd: r(1), imm: 2 });
        asm.label("top");
        asm.push(Instr::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: -1,
        });
        asm.branch_to(Cond::Eq, r(1), Reg::ZERO, "done"); // forward
        asm.jal_to(Reg::ZERO, "top"); // backward
        asm.label("done");
        asm.push(Instr::Halt);
        let bytes = asm.assemble().unwrap();
        assert_eq!(bytes.len(), 5 * INSTR_BYTES as usize);

        // Decode the branch (index 2) and the jump (index 3) and check offsets.
        let branch = Instr::decode(bytes[16..24].try_into().unwrap(), 16).unwrap();
        match branch {
            Instr::Branch { imm, .. } => assert_eq!(imm, 8), // next_pc 24 -> done at 32
            other => panic!("expected branch, got {other:?}"),
        }
        let jump = Instr::decode(bytes[24..32].try_into().unwrap(), 24).unwrap();
        match jump {
            Instr::Jal { imm, .. } => assert_eq!(imm, -24), // next_pc 32 -> top at 8
            other => panic!("expected jal, got {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut asm = Assembler::new();
        asm.jal_to(Reg::ZERO, "nowhere");
        assert!(asm.assemble().is_err());
    }

    #[test]
    fn base_address_shifts_labels() {
        let mut asm = Assembler::with_base(0x1000);
        asm.label("start");
        asm.push(Instr::Nop);
        assert_eq!(asm.label_address("start"), Some(0x1000));
        assert_eq!(asm.base(), 0x1000);
        assert_eq!(asm.len(), 1);
        assert!(!asm.is_empty());
    }

    #[test]
    fn load_const_materializes_64_bit_values() {
        use crate::cpu::{Vcpu, VcpuConfig};
        use crate::exec_mode::{ExecCosts, ExecMode};
        use rvisor_memory::GuestMemory;
        use rvisor_types::{ByteSize, GuestAddress, VcpuId};

        let value = 0xdead_beef_cafe_f00d_u64;
        let mut asm = Assembler::new();
        asm.load_const(Reg::new(4), value);
        asm.push(Instr::Halt);
        let image = asm.assemble().unwrap();

        let mem = GuestMemory::flat(ByteSize::mib(1)).unwrap();
        mem.write(GuestAddress(0), &image).unwrap();
        let mut cfg = VcpuConfig::new(VcpuId::new(0), ExecMode::HardwareAssist);
        cfg.costs = ExecCosts::FREE;
        let mut cpu = Vcpu::new(cfg);
        cpu.run(&mem, 10).unwrap();
        assert_eq!(cpu.reg(Reg::new(4)), value);
    }
}
