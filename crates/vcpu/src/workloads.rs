//! Synthetic guest workloads.
//!
//! Real evaluations boot Linux or Windows guests and run SPEC, kernel builds
//! or iperf inside them. What those guests contribute to a *virtualization*
//! experiment is a pattern of events: retired instructions, privileged
//! operations, I/O requests, and dirtied pages. The generators here produce
//! GISA programs with precisely controllable amounts of each, which is what
//! lets the benches sweep "dirty rate" or "exit rate" as an independent
//! variable.

use rvisor_memory::GuestMemory;
use rvisor_types::{GuestAddress, Result, PAGE_SIZE};

use crate::asm::Assembler;
use crate::cpu::Vcpu;
use crate::isa::{AluOp, Cond, Instr, Reg};

/// Default guest virtual address where workload code is loaded.
pub const DEFAULT_ENTRY: u64 = 0x1000;
/// Default guest virtual address of the workload's data area.
pub const DEFAULT_DATA_BASE: u64 = 0x10_0000;

/// The kinds of synthetic guest programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Pure register arithmetic; never exits until it halts.
    ComputeBound {
        /// Number of loop iterations (4 ALU ops each).
        iterations: u64,
    },
    /// Writes one 8-byte value into each of `pages` pages, `passes` times —
    /// the canonical dirty-page generator for migration experiments.
    MemoryDirty {
        /// Number of distinct pages to touch per pass.
        pages: u64,
        /// Number of passes over the page set.
        passes: u64,
    },
    /// Performs `requests` port-output operations (device doorbells).
    IoBound {
        /// Number of I/O operations.
        requests: u64,
        /// Port to write to.
        port: u32,
    },
    /// Executes privileged operations (TLB flushes and CSR writes) in a loop;
    /// the exit-heavy workload that separates the virtualization techniques.
    PrivilegedHeavy {
        /// Number of loop iterations (2 privileged ops each).
        iterations: u64,
    },
    /// Issues `iterations` hypercalls — the paravirtual fast path.
    HypercallHeavy {
        /// Number of hypercalls.
        iterations: u64,
    },
    /// An idle guest that pauses `wakeups` times before halting.
    Idle {
        /// Number of pause/idle exits before halting.
        wakeups: u64,
    },
}

impl WorkloadKind {
    /// A short name for benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::ComputeBound { .. } => "compute-bound",
            WorkloadKind::MemoryDirty { .. } => "memory-dirty",
            WorkloadKind::IoBound { .. } => "io-bound",
            WorkloadKind::PrivilegedHeavy { .. } => "privileged-heavy",
            WorkloadKind::HypercallHeavy { .. } => "hypercall-heavy",
            WorkloadKind::Idle { .. } => "idle",
        }
    }
}

/// A generated guest program plus the layout it expects.
#[derive(Debug, Clone)]
pub struct Workload {
    kind: WorkloadKind,
    entry: u64,
    data_base: u64,
    code: Vec<u8>,
}

impl Workload {
    /// Build a workload with the default memory layout.
    pub fn new(kind: WorkloadKind) -> Result<Self> {
        Self::with_layout(kind, DEFAULT_ENTRY, DEFAULT_DATA_BASE)
    }

    /// Build a workload with an explicit entry point and data area.
    pub fn with_layout(kind: WorkloadKind, entry: u64, data_base: u64) -> Result<Self> {
        let code = Self::generate(kind, entry, data_base)?;
        Ok(Workload {
            kind,
            entry,
            data_base,
            code,
        })
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The entry point (guest virtual address).
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The first address of the data area the workload writes to.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// The assembled code image.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Size of guest memory (in bytes) this workload needs to run with the
    /// identity mapping used by the VMM: code + data area.
    pub fn required_memory(&self) -> u64 {
        let data_len = match self.kind {
            WorkloadKind::MemoryDirty { pages, .. } => pages * PAGE_SIZE,
            _ => PAGE_SIZE,
        };
        (self.data_base + data_len).max(self.entry + self.code.len() as u64 + PAGE_SIZE)
    }

    /// Write the code image into guest memory at the entry address.
    ///
    /// The dirty bits produced by loading are cleared: loading the guest
    /// image is the hypervisor's doing, not guest activity.
    pub fn load(&self, memory: &GuestMemory) -> Result<()> {
        memory.write(GuestAddress(self.entry), &self.code)?;
        memory.clear_dirty();
        Ok(())
    }

    /// Load the code and point the vCPU's program counter at the entry.
    pub fn install(&self, memory: &GuestMemory, vcpu: &mut Vcpu) -> Result<()> {
        self.load(memory)?;
        vcpu.set_pc(self.entry);
        Ok(())
    }

    fn generate(kind: WorkloadKind, entry: u64, data_base: u64) -> Result<Vec<u8>> {
        let mut asm = Assembler::with_base(entry);
        let r = Reg::new;
        match kind {
            WorkloadKind::ComputeBound { iterations } => {
                // r1 = counter, r2/r3/r4 = working registers
                asm.load_const(r(1), iterations);
                asm.push(Instr::MovImm { rd: r(2), imm: 1 });
                asm.push(Instr::MovImm { rd: r(3), imm: 3 });
                asm.label("loop");
                asm.push(Instr::Alu {
                    op: AluOp::Mul,
                    rd: r(2),
                    rs1: r(2),
                    rs2: r(3),
                });
                asm.push(Instr::Alu {
                    op: AluOp::Add,
                    rd: r(4),
                    rs1: r(4),
                    rs2: r(2),
                });
                asm.push(Instr::Alu {
                    op: AluOp::Xor,
                    rd: r(2),
                    rs1: r(2),
                    rs2: r(4),
                });
                asm.push(Instr::Alu {
                    op: AluOp::Or,
                    rd: r(4),
                    rs1: r(4),
                    rs2: r(3),
                });
                asm.push(Instr::AddImm {
                    rd: r(1),
                    rs1: r(1),
                    imm: -1,
                });
                asm.branch_to(Cond::Ne, r(1), Reg::ZERO, "loop");
                asm.push(Instr::Halt);
            }
            WorkloadKind::MemoryDirty { pages, passes } => {
                // r1 = pass counter, r2 = page counter, r3 = address, r5 = page size
                asm.load_const(r(1), passes.max(1));
                asm.load_const(r(5), PAGE_SIZE);
                asm.label("pass");
                asm.load_const(r(2), pages.max(1));
                asm.load_const(r(3), data_base);
                asm.label("page");
                asm.push(Instr::Store {
                    rs2: r(1),
                    rs1: r(3),
                    imm: 0,
                });
                asm.push(Instr::Alu {
                    op: AluOp::Add,
                    rd: r(3),
                    rs1: r(3),
                    rs2: r(5),
                });
                asm.push(Instr::AddImm {
                    rd: r(2),
                    rs1: r(2),
                    imm: -1,
                });
                asm.branch_to(Cond::Ne, r(2), Reg::ZERO, "page");
                asm.push(Instr::AddImm {
                    rd: r(1),
                    rs1: r(1),
                    imm: -1,
                });
                asm.branch_to(Cond::Ne, r(1), Reg::ZERO, "pass");
                asm.push(Instr::Halt);
            }
            WorkloadKind::IoBound { requests, port } => {
                asm.load_const(r(1), requests.max(1));
                asm.push(Instr::MovImm {
                    rd: r(2),
                    imm: 0x5a,
                });
                asm.label("io");
                asm.push(Instr::Out {
                    rs1: r(2),
                    imm: port as i32,
                });
                asm.push(Instr::AddImm {
                    rd: r(1),
                    rs1: r(1),
                    imm: -1,
                });
                asm.branch_to(Cond::Ne, r(1), Reg::ZERO, "io");
                asm.push(Instr::Halt);
            }
            WorkloadKind::PrivilegedHeavy { iterations } => {
                asm.load_const(r(1), iterations.max(1));
                asm.push(Instr::MovImm { rd: r(2), imm: 7 });
                asm.label("loop");
                asm.push(Instr::TlbFlush);
                asm.push(Instr::WriteCsr { rs1: r(2), imm: 20 });
                asm.push(Instr::AddImm {
                    rd: r(1),
                    rs1: r(1),
                    imm: -1,
                });
                asm.branch_to(Cond::Ne, r(1), Reg::ZERO, "loop");
                asm.push(Instr::Halt);
            }
            WorkloadKind::HypercallHeavy { iterations } => {
                asm.load_const(r(1), iterations.max(1));
                asm.push(Instr::MovImm { rd: r(2), imm: 42 });
                asm.label("loop");
                asm.push(Instr::Hypercall {
                    nr: 1,
                    rd: r(3),
                    rs1: r(2),
                });
                asm.push(Instr::AddImm {
                    rd: r(1),
                    rs1: r(1),
                    imm: -1,
                });
                asm.branch_to(Cond::Ne, r(1), Reg::ZERO, "loop");
                asm.push(Instr::Halt);
            }
            WorkloadKind::Idle { wakeups } => {
                asm.load_const(r(1), wakeups.max(1));
                asm.label("loop");
                asm.push(Instr::Pause);
                asm.push(Instr::AddImm {
                    rd: r(1),
                    rs1: r(1),
                    imm: -1,
                });
                asm.branch_to(Cond::Ne, r(1), Reg::ZERO, "loop");
                asm.push(Instr::Halt);
            }
        }
        asm.assemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{ExitReason, VcpuConfig};
    use crate::exec_mode::{ExecCosts, ExecMode};
    use rvisor_types::{ByteSize, VcpuId};

    fn run_to_halt(workload: &Workload, mode: ExecMode) -> (Vcpu, GuestMemory, u64) {
        let mem =
            GuestMemory::flat(ByteSize::new(workload.required_memory()).page_align_up()).unwrap();
        let mut cfg = VcpuConfig::new(VcpuId::new(0), mode);
        cfg.costs = ExecCosts::FREE;
        let mut cpu = Vcpu::new(cfg);
        workload.install(&mem, &mut cpu).unwrap();
        let mut hypercall_count = 0u64;
        loop {
            let out = cpu.run(&mem, 1_000_000).unwrap();
            match out.exit {
                ExitReason::Halt => break,
                ExitReason::Hypercall { .. } => {
                    hypercall_count += 1;
                    cpu.complete_hypercall(0).unwrap();
                }
                ExitReason::PioOut { .. } | ExitReason::Idle | ExitReason::InstructionLimit => {}
                ExitReason::PioIn { .. } => cpu.complete_pio_in(0).unwrap(),
                ExitReason::MmioRead { .. } => cpu.complete_mmio_read(0).unwrap(),
                other => panic!("unexpected exit {other:?}"),
            }
        }
        (cpu, mem, hypercall_count)
    }

    #[test]
    fn compute_bound_never_exits_until_halt() {
        let w = Workload::new(WorkloadKind::ComputeBound { iterations: 100 }).unwrap();
        let (cpu, _mem, _) = run_to_halt(&w, ExecMode::HardwareAssist);
        let stats = cpu.stats();
        assert_eq!(stats.halts, 1);
        assert_eq!(
            stats.mmio_exits + stats.pio_exits + stats.hypercalls + stats.page_faults,
            0
        );
        assert!(stats.instructions > 600);
    }

    #[test]
    fn memory_dirty_touches_expected_pages() {
        let pages = 32;
        let w = Workload::new(WorkloadKind::MemoryDirty { pages, passes: 2 }).unwrap();
        let (_cpu, mem, _) = run_to_halt(&w, ExecMode::HardwareAssist);
        // Exactly `pages` distinct data pages were dirtied (code loading clears its own dirt).
        assert_eq!(mem.dirty_page_count(), pages);
        let first_data_page = DEFAULT_DATA_BASE / PAGE_SIZE;
        assert!(mem
            .dirty_pages()
            .iter()
            .all(|&p| p >= first_data_page && p < first_data_page + pages));
    }

    #[test]
    fn io_bound_generates_exact_pio_exits() {
        let w = Workload::new(WorkloadKind::IoBound {
            requests: 57,
            port: 0x3f8,
        })
        .unwrap();
        let (cpu, _mem, _) = run_to_halt(&w, ExecMode::HardwareAssist);
        assert_eq!(cpu.stats().pio_exits, 57);
    }

    #[test]
    fn hypercall_heavy_generates_exact_hypercalls() {
        let w = Workload::new(WorkloadKind::HypercallHeavy { iterations: 23 }).unwrap();
        let (cpu, _mem, count) = run_to_halt(&w, ExecMode::Paravirt);
        assert_eq!(cpu.stats().hypercalls, 23);
        assert_eq!(count, 23);
    }

    #[test]
    fn privileged_heavy_exit_counts_depend_on_mode() {
        let w = Workload::new(WorkloadKind::PrivilegedHeavy { iterations: 50 }).unwrap();
        let (te, _, _) = run_to_halt(&w, ExecMode::TrapAndEmulate);
        let (hw, _, _) = run_to_halt(&w, ExecMode::HardwareAssist);
        // 2 privileged ops per iteration + the final halt.
        assert_eq!(te.stats().privileged_traps, 50 * 2 + 1);
        assert_eq!(hw.stats().privileged_traps, 0);
        assert!(te.stats().exits > hw.stats().exits);
    }

    #[test]
    fn idle_workload_pauses() {
        let w = Workload::new(WorkloadKind::Idle { wakeups: 5 }).unwrap();
        let (cpu, _, _) = run_to_halt(&w, ExecMode::HardwareAssist);
        assert_eq!(cpu.stats().idles, 5);
    }

    #[test]
    fn workload_metadata() {
        let w = Workload::new(WorkloadKind::MemoryDirty {
            pages: 16,
            passes: 1,
        })
        .unwrap();
        assert_eq!(w.kind().name(), "memory-dirty");
        assert_eq!(w.entry(), DEFAULT_ENTRY);
        assert_eq!(w.data_base(), DEFAULT_DATA_BASE);
        assert!(!w.code().is_empty());
        assert!(w.required_memory() >= DEFAULT_DATA_BASE + 16 * PAGE_SIZE);
    }

    #[test]
    fn all_kinds_have_distinct_names() {
        let kinds = [
            WorkloadKind::ComputeBound { iterations: 1 },
            WorkloadKind::MemoryDirty {
                pages: 1,
                passes: 1,
            },
            WorkloadKind::IoBound {
                requests: 1,
                port: 0,
            },
            WorkloadKind::PrivilegedHeavy { iterations: 1 },
            WorkloadKind::HypercallHeavy { iterations: 1 },
            WorkloadKind::Idle { wakeups: 1 },
        ];
        let names: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn custom_layout_is_respected() {
        let w = Workload::with_layout(
            WorkloadKind::ComputeBound { iterations: 3 },
            0x2000,
            0x20_0000,
        )
        .unwrap();
        let mem = GuestMemory::flat(ByteSize::mib(4)).unwrap();
        let mut cfg = VcpuConfig::new(VcpuId::new(0), ExecMode::HardwareAssist);
        cfg.costs = ExecCosts::FREE;
        let mut cpu = Vcpu::new(cfg);
        w.install(&mem, &mut cpu).unwrap();
        assert_eq!(cpu.pc(), 0x2000);
        let out = cpu.run(&mem, 100_000).unwrap();
        assert_eq!(out.exit, ExitReason::Halt);
    }
}
