//! Guest virtual memory: two-level page tables and a software TLB.
//!
//! GISA uses a 30-bit virtual address space (1 GiB) translated by a
//! two-level page table rooted at the PTBR register:
//!
//! ```text
//! vaddr[29:21]  index into the level-1 table (512 entries)
//! vaddr[20:12]  index into the level-2 table (512 entries)
//! vaddr[11:0]   byte offset inside the 4 KiB page
//! ```
//!
//! Each page-table entry is 8 bytes:
//!
//! ```text
//! bit 0   valid
//! bit 1   writable
//! bit 2   user accessible
//! bits 12..  physical frame base (page aligned guest physical address)
//! ```
//!
//! Translations are cached in a direct-mapped software TLB; the TLB hit
//! rate is one of the quantities the virtualization-overhead experiment (E1)
//! reports, because the cost of a miss differs sharply between shadow paging
//! (trap-and-emulate) and nested paging (hardware-assist).

use serde::{Deserialize, Serialize};

use rvisor_memory::GuestMemory;
use rvisor_types::{Error, GuestAddress, Result, PAGE_SIZE};

/// Size of a page-table entry in bytes.
pub const PTE_SIZE: u64 = 8;

/// Number of entries per page-table level.
pub const ENTRIES_PER_TABLE: u64 = 512;

/// Width of the virtual address space in bits.
pub const VADDR_BITS: u32 = 30;

const VALID: u64 = 1 << 0;
const WRITABLE: u64 = 1 << 1;
const USER: u64 = 1 << 2;
const PFN_MASK: u64 = !0xfff;

/// A decoded page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pte(pub u64);

impl Pte {
    /// An all-zero (invalid) entry.
    pub const INVALID: Pte = Pte(0);

    /// Build a valid leaf entry pointing at `frame`.
    pub fn leaf(frame: GuestAddress, writable: bool, user: bool) -> Pte {
        let mut v = (frame.0 & PFN_MASK) | VALID;
        if writable {
            v |= WRITABLE;
        }
        if user {
            v |= USER;
        }
        Pte(v)
    }

    /// Build a valid non-leaf entry pointing at the next-level table.
    pub fn table(next: GuestAddress) -> Pte {
        Pte((next.0 & PFN_MASK) | VALID | WRITABLE | USER)
    }

    /// Whether the entry is valid.
    pub fn valid(self) -> bool {
        self.0 & VALID != 0
    }

    /// Whether the mapped page may be written.
    pub fn writable(self) -> bool {
        self.0 & WRITABLE != 0
    }

    /// Whether user mode may access the mapped page.
    pub fn user(self) -> bool {
        self.0 & USER != 0
    }

    /// The physical frame / next-level table address.
    pub fn frame(self) -> GuestAddress {
        GuestAddress(self.0 & PFN_MASK)
    }
}

/// Why a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateFault {
    /// No valid mapping for the address.
    NotMapped,
    /// The mapping exists but is not writable and a write was attempted.
    NotWritable,
    /// The mapping exists but is supervisor-only and the access was from user mode.
    NotUser,
    /// The virtual address is outside the 30-bit address space.
    OutOfRange,
}

/// Result of a successful translation, including how it was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The resulting guest physical address.
    pub paddr: GuestAddress,
    /// Whether the translation was served from the TLB.
    pub tlb_hit: bool,
}

/// TLB behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed and required a page-table walk.
    pub misses: u64,
    /// Explicit flushes.
    pub flushes: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; zero when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    frame: GuestAddress,
    writable: bool,
    user: bool,
    valid: bool,
}

/// A direct-mapped software TLB.
#[derive(Debug)]
struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    stats: TlbStats,
}

impl Tlb {
    fn new(size: usize) -> Self {
        Tlb {
            entries: vec![None; size.max(1)],
            stats: TlbStats::default(),
        }
    }

    fn slot(&self, vpn: u64) -> usize {
        (vpn as usize) % self.entries.len()
    }

    fn lookup(&mut self, vpn: u64) -> Option<TlbEntry> {
        let slot = self.slot(vpn);
        match self.entries[slot] {
            Some(e) if e.valid && e.vpn == vpn => {
                self.stats.hits += 1;
                Some(e)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, e: TlbEntry) {
        let slot = self.slot(e.vpn);
        self.entries[slot] = Some(e);
    }

    fn flush(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
        self.stats.flushes += 1;
    }
}

/// The per-vCPU memory-management unit.
#[derive(Debug)]
pub struct Mmu {
    ptbr: GuestAddress,
    paging_enabled: bool,
    tlb: Tlb,
    /// Page-table walks performed (each is two guest memory reads).
    walks: u64,
}

impl Mmu {
    /// Create an MMU with a TLB of `tlb_entries` slots. Paging starts disabled
    /// (identity mapping), as on real hardware before the OS sets a page table.
    pub fn new(tlb_entries: usize) -> Self {
        Mmu {
            ptbr: GuestAddress::ZERO,
            paging_enabled: false,
            tlb: Tlb::new(tlb_entries),
            walks: 0,
        }
    }

    /// Set the page-table base register and enable paging. Flushes the TLB.
    pub fn set_ptbr(&mut self, ptbr: GuestAddress) {
        self.ptbr = ptbr;
        self.paging_enabled = ptbr != GuestAddress::ZERO;
        self.tlb.flush();
    }

    /// The current page-table base.
    pub fn ptbr(&self) -> GuestAddress {
        self.ptbr
    }

    /// Whether paging is enabled.
    pub fn paging_enabled(&self) -> bool {
        self.paging_enabled
    }

    /// Flush the TLB.
    pub fn flush_tlb(&mut self) {
        self.tlb.flush();
    }

    /// TLB statistics so far.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats
    }

    /// Number of page-table walks performed.
    pub fn walk_count(&self) -> u64 {
        self.walks
    }

    /// Translate a guest virtual address.
    ///
    /// `write` and `user` describe the access being performed; a violation
    /// returns the corresponding [`TranslateFault`] wrapped in
    /// [`Error::PageFault`] by the caller (the vCPU), which also knows the
    /// faulting PC.
    pub fn translate(
        &mut self,
        memory: &GuestMemory,
        vaddr: u64,
        write: bool,
        user: bool,
    ) -> std::result::Result<Translation, TranslateFault> {
        if !self.paging_enabled {
            // Identity map while paging is off (boot-time accesses).
            return Ok(Translation {
                paddr: GuestAddress(vaddr),
                tlb_hit: true,
            });
        }
        if vaddr >> VADDR_BITS != 0 {
            return Err(TranslateFault::OutOfRange);
        }
        let vpn = vaddr / PAGE_SIZE;
        let offset = vaddr % PAGE_SIZE;

        if let Some(e) = self.tlb.lookup(vpn) {
            if write && !e.writable {
                return Err(TranslateFault::NotWritable);
            }
            if user && !e.user {
                return Err(TranslateFault::NotUser);
            }
            return Ok(Translation {
                paddr: e.frame.unchecked_add(offset),
                tlb_hit: true,
            });
        }

        let pte = self.walk(memory, vaddr)?;
        let entry = TlbEntry {
            vpn,
            frame: pte.frame(),
            writable: pte.writable(),
            user: pte.user(),
            valid: true,
        };
        self.tlb.insert(entry);

        if write && !pte.writable() {
            return Err(TranslateFault::NotWritable);
        }
        if user && !pte.user() {
            return Err(TranslateFault::NotUser);
        }
        Ok(Translation {
            paddr: pte.frame().unchecked_add(offset),
            tlb_hit: false,
        })
    }

    /// Perform the two-level walk, returning the leaf PTE.
    fn walk(
        &mut self,
        memory: &GuestMemory,
        vaddr: u64,
    ) -> std::result::Result<Pte, TranslateFault> {
        self.walks += 1;
        let l1_index = (vaddr >> 21) & (ENTRIES_PER_TABLE - 1);
        let l2_index = (vaddr >> 12) & (ENTRIES_PER_TABLE - 1);

        let l1_addr = self.ptbr.unchecked_add(l1_index * PTE_SIZE);
        let l1 = Pte(memory
            .read_u64(l1_addr)
            .map_err(|_| TranslateFault::NotMapped)?);
        if !l1.valid() {
            return Err(TranslateFault::NotMapped);
        }
        let l2_addr = l1.frame().unchecked_add(l2_index * PTE_SIZE);
        let l2 = Pte(memory
            .read_u64(l2_addr)
            .map_err(|_| TranslateFault::NotMapped)?);
        if !l2.valid() {
            return Err(TranslateFault::NotMapped);
        }
        Ok(l2)
    }
}

/// Helper for building guest page tables inside guest memory.
///
/// The hypervisor (and the synthetic workloads) use this to set up a linear
/// mapping before starting the guest, playing the role a guest OS kernel
/// would play on real hardware.
#[derive(Debug)]
pub struct PageTableEditor {
    memory: GuestMemory,
    root: GuestAddress,
    /// Next free physical page used when a new L2 table must be allocated.
    next_table: GuestAddress,
    table_region_end: GuestAddress,
}

impl PageTableEditor {
    /// Create an editor whose tables live in
    /// `[table_area, table_area + table_area_size)` of guest physical memory.
    /// The root (L1) table occupies the first page of that area.
    pub fn new(
        memory: GuestMemory,
        table_area: GuestAddress,
        table_area_size: u64,
    ) -> Result<Self> {
        if !table_area.is_page_aligned() || table_area_size < PAGE_SIZE {
            return Err(Error::Config(
                "page-table area must be page aligned and at least one page".into(),
            ));
        }
        memory.fill(table_area, PAGE_SIZE, 0)?;
        Ok(PageTableEditor {
            memory,
            root: table_area,
            next_table: table_area.unchecked_add(PAGE_SIZE),
            table_region_end: table_area.unchecked_add(table_area_size),
        })
    }

    /// The guest physical address of the root table (value for the PTBR).
    pub fn root(&self) -> GuestAddress {
        self.root
    }

    /// Map the virtual page containing `vaddr` to the physical frame
    /// containing `paddr`.
    pub fn map(
        &mut self,
        vaddr: u64,
        paddr: GuestAddress,
        writable: bool,
        user: bool,
    ) -> Result<()> {
        if vaddr >> VADDR_BITS != 0 {
            return Err(Error::Config(format!(
                "virtual address 0x{vaddr:x} outside the 30-bit space"
            )));
        }
        let l1_index = (vaddr >> 21) & (ENTRIES_PER_TABLE - 1);
        let l2_index = (vaddr >> 12) & (ENTRIES_PER_TABLE - 1);
        let l1_addr = self.root.unchecked_add(l1_index * PTE_SIZE);
        let mut l1 = Pte(self.memory.read_u64(l1_addr)?);
        if !l1.valid() {
            let table = self.alloc_table()?;
            l1 = Pte::table(table);
            self.memory.write_u64(l1_addr, l1.0)?;
        }
        let l2_addr = l1.frame().unchecked_add(l2_index * PTE_SIZE);
        let leaf = Pte::leaf(paddr.page_base(), writable, user);
        self.memory.write_u64(l2_addr, leaf.0)?;
        Ok(())
    }

    /// Identity-map `[start, start + len)` so virtual address == physical address.
    pub fn identity_map(
        &mut self,
        start: GuestAddress,
        len: u64,
        writable: bool,
        user: bool,
    ) -> Result<()> {
        let mut addr = start.page_base();
        let end = start.unchecked_add(len);
        while addr.0 < end.0 {
            self.map(addr.0, addr, writable, user)?;
            addr = addr.unchecked_add(PAGE_SIZE);
        }
        Ok(())
    }

    /// Remove the mapping for the virtual page containing `vaddr`.
    pub fn unmap(&mut self, vaddr: u64) -> Result<()> {
        let l1_index = (vaddr >> 21) & (ENTRIES_PER_TABLE - 1);
        let l2_index = (vaddr >> 12) & (ENTRIES_PER_TABLE - 1);
        let l1_addr = self.root.unchecked_add(l1_index * PTE_SIZE);
        let l1 = Pte(self.memory.read_u64(l1_addr)?);
        if !l1.valid() {
            return Ok(());
        }
        let l2_addr = l1.frame().unchecked_add(l2_index * PTE_SIZE);
        self.memory.write_u64(l2_addr, Pte::INVALID.0)?;
        Ok(())
    }

    fn alloc_table(&mut self) -> Result<GuestAddress> {
        if self.next_table.0 + PAGE_SIZE > self.table_region_end.0 {
            return Err(Error::Config("page-table area exhausted".into()));
        }
        let table = self.next_table;
        self.memory.fill(table, PAGE_SIZE, 0)?;
        self.next_table = self.next_table.unchecked_add(PAGE_SIZE);
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rvisor_types::ByteSize;

    fn memory() -> GuestMemory {
        GuestMemory::flat(ByteSize::mib(4)).unwrap()
    }

    fn editor(mem: &GuestMemory) -> PageTableEditor {
        PageTableEditor::new(mem.clone(), GuestAddress(0x100000), 64 * PAGE_SIZE).unwrap()
    }

    #[test]
    fn pte_encoding() {
        let p = Pte::leaf(GuestAddress(0x5000), true, false);
        assert!(p.valid());
        assert!(p.writable());
        assert!(!p.user());
        assert_eq!(p.frame(), GuestAddress(0x5000));
        assert!(!Pte::INVALID.valid());
        let t = Pte::table(GuestAddress(0x7123));
        assert_eq!(t.frame(), GuestAddress(0x7000));
        assert!(t.user() && t.writable() && t.valid());
    }

    #[test]
    fn identity_translation_with_paging_disabled() {
        let mem = memory();
        let mut mmu = Mmu::new(16);
        assert!(!mmu.paging_enabled());
        let t = mmu.translate(&mem, 0x1234, true, true).unwrap();
        assert_eq!(t.paddr, GuestAddress(0x1234));
    }

    #[test]
    fn mapped_translation_and_tlb() {
        let mem = memory();
        let mut ed = editor(&mem);
        ed.map(0x4000, GuestAddress(0x9000), true, true).unwrap();
        let mut mmu = Mmu::new(16);
        mmu.set_ptbr(ed.root());
        assert!(mmu.paging_enabled());

        let t1 = mmu.translate(&mem, 0x4010, false, true).unwrap();
        assert_eq!(t1.paddr, GuestAddress(0x9010));
        assert!(!t1.tlb_hit);
        let t2 = mmu.translate(&mem, 0x4020, false, true).unwrap();
        assert_eq!(t2.paddr, GuestAddress(0x9020));
        assert!(t2.tlb_hit);

        let stats = mmu.tlb_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(mmu.walk_count(), 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tlb_flush_forces_rewalk() {
        let mem = memory();
        let mut ed = editor(&mem);
        ed.map(0x4000, GuestAddress(0x9000), true, true).unwrap();
        let mut mmu = Mmu::new(16);
        mmu.set_ptbr(ed.root());
        mmu.translate(&mem, 0x4000, false, false).unwrap();
        mmu.flush_tlb();
        mmu.translate(&mem, 0x4000, false, false).unwrap();
        assert_eq!(mmu.walk_count(), 2);
        assert_eq!(mmu.tlb_stats().flushes, 2); // set_ptbr also flushes
    }

    #[test]
    fn permission_faults() {
        let mem = memory();
        let mut ed = editor(&mem);
        ed.map(0x4000, GuestAddress(0x9000), false, false).unwrap();
        let mut mmu = Mmu::new(16);
        mmu.set_ptbr(ed.root());
        assert_eq!(
            mmu.translate(&mem, 0x4000, true, false).unwrap_err(),
            TranslateFault::NotWritable
        );
        assert_eq!(
            mmu.translate(&mem, 0x4000, false, true).unwrap_err(),
            TranslateFault::NotUser
        );
        assert!(mmu.translate(&mem, 0x4000, false, false).is_ok());
    }

    #[test]
    fn unmapped_and_out_of_range_fault() {
        let mem = memory();
        let ed = editor(&mem);
        let mut mmu = Mmu::new(16);
        mmu.set_ptbr(ed.root());
        assert_eq!(
            mmu.translate(&mem, 0x4000, false, false).unwrap_err(),
            TranslateFault::NotMapped
        );
        assert_eq!(
            mmu.translate(&mem, 1 << VADDR_BITS, false, false)
                .unwrap_err(),
            TranslateFault::OutOfRange
        );
    }

    #[test]
    fn unmap_removes_mapping() {
        let mem = memory();
        let mut ed = editor(&mem);
        ed.map(0x4000, GuestAddress(0x9000), true, true).unwrap();
        let mut mmu = Mmu::new(16);
        mmu.set_ptbr(ed.root());
        assert!(mmu.translate(&mem, 0x4000, false, false).is_ok());
        ed.unmap(0x4000).unwrap();
        mmu.flush_tlb();
        assert_eq!(
            mmu.translate(&mem, 0x4000, false, false).unwrap_err(),
            TranslateFault::NotMapped
        );
        // Unmapping a never-mapped address is a no-op.
        ed.unmap(0x2000_0000 - PAGE_SIZE).unwrap();
    }

    #[test]
    fn identity_map_covers_range() {
        let mem = memory();
        let mut ed = editor(&mem);
        ed.identity_map(GuestAddress(0), 16 * PAGE_SIZE, true, true)
            .unwrap();
        let mut mmu = Mmu::new(64);
        mmu.set_ptbr(ed.root());
        for page in 0..16u64 {
            let vaddr = page * PAGE_SIZE + 8;
            let t = mmu.translate(&mem, vaddr, true, true).unwrap();
            assert_eq!(t.paddr, GuestAddress(vaddr));
        }
    }

    #[test]
    fn editor_validation() {
        let mem = memory();
        assert!(PageTableEditor::new(mem.clone(), GuestAddress(0x123), PAGE_SIZE).is_err());
        assert!(PageTableEditor::new(mem.clone(), GuestAddress(0x1000), 10).is_err());
        // Exhausting the table area: area of 1 page leaves no room for L2 tables.
        let mut ed = PageTableEditor::new(mem, GuestAddress(0x100000), PAGE_SIZE).unwrap();
        assert!(ed.map(0x4000, GuestAddress(0x9000), true, true).is_err());
    }

    proptest! {
        #[test]
        fn mapped_addresses_translate_correctly(
            pages in proptest::collection::btree_map(0u64..256, 300u64..700, 1..20),
        ) {
            let mem = GuestMemory::flat(ByteSize::mib(8)).unwrap();
            let mut ed = PageTableEditor::new(mem.clone(), GuestAddress(0x400000), 256 * PAGE_SIZE).unwrap();
            for (&vpage, &ppage) in &pages {
                ed.map(vpage * PAGE_SIZE, GuestAddress(ppage * PAGE_SIZE), true, true).unwrap();
            }
            let mut mmu = Mmu::new(8);
            mmu.set_ptbr(ed.root());
            for (&vpage, &ppage) in &pages {
                let vaddr = vpage * PAGE_SIZE + 0x123;
                let t = mmu.translate(&mem, vaddr, true, true).unwrap();
                prop_assert_eq!(t.paddr, GuestAddress(ppage * PAGE_SIZE + 0x123));
            }
        }

        #[test]
        fn tlb_hit_plus_miss_equals_lookups(n in 1usize..200) {
            let mem = GuestMemory::flat(ByteSize::mib(8)).unwrap();
            let mut ed = PageTableEditor::new(mem.clone(), GuestAddress(0x400000), 256 * PAGE_SIZE).unwrap();
            ed.identity_map(GuestAddress(0), 64 * PAGE_SIZE, true, true).unwrap();
            let mut mmu = Mmu::new(4);
            mmu.set_ptbr(ed.root());
            for i in 0..n {
                let _ = mmu.translate(&mem, ((i % 64) as u64) * PAGE_SIZE, false, false);
            }
            let s = mmu.tlb_stats();
            prop_assert_eq!(s.hits + s.misses, n as u64);
        }
    }
}
