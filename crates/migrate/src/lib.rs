//! # rvisor-migrate
//!
//! Live migration engines. Moving a running VM between hosts is the
//! flagship capability that justifies clustered virtualization (maintenance
//! without downtime, load balancing, disaster recovery), and its two key
//! metrics — **downtime** (how long the guest is paused) and **total
//! migration time** — are what experiment E4 sweeps against guest dirty
//! rate, RAM size and link bandwidth.
//!
//! Three engines are provided, mirroring the literature:
//!
//! * [`StopAndCopy`] — pause, copy everything, resume: minimal total time,
//!   worst downtime (∝ RAM size / bandwidth).
//! * [`PreCopy`] — iterative rounds copy memory while the guest runs; each
//!   round copies the pages dirtied during the previous round; when the
//!   dirty set stops shrinking (or a round budget is hit) the guest pauses
//!   for a final short stop-and-copy. Downtime ∝ residual dirty set.
//! * [`PostCopy`] — pause only to move vCPU state, resume on the
//!   destination immediately, and pull pages over the network on demand
//!   (plus a background sweep). Downtime is minimal and constant; the cost
//!   is degraded performance while remote faults are outstanding.
//!
//! The guest's memory-dirtying behaviour during migration is abstracted as a
//! [`DirtySource`], so the benchmarks can sweep dirty rates precisely.
//!
//! Pre-copy transfers can additionally be compressed with zero-page
//! detection and XBZRLE delta encoding (the [`compress`] module), the two
//! techniques production migration stacks use to survive write-heavy guests
//! on thin links.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod compress;
pub mod dirty;
pub mod engines;
pub mod report;

pub use compress::{CompressionStats, PageCompression, PageCompressor, WirePage};
pub use dirty::{ConstantRateDirtier, DirtySource, IdleDirtier};
pub use engines::{MigrationConfig, PostCopy, PreCopy, StopAndCopy};
pub use report::{MigrationKind, MigrationReport};
