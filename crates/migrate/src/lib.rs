//! # rvisor-migrate
//!
//! Live migration engines. Moving a running VM between hosts is the
//! flagship capability that justifies clustered virtualization (maintenance
//! without downtime, load balancing, disaster recovery), and its two key
//! metrics — **downtime** (how long the guest is paused) and **total
//! migration time** — are what experiment E4 sweeps against guest dirty
//! rate, RAM size and link bandwidth.
//!
//! Three engines are provided, mirroring the literature:
//!
//! * [`StopAndCopy`] — pause, copy everything, resume: minimal total time,
//!   worst downtime (∝ RAM size / bandwidth).
//! * [`PreCopy`] — iterative rounds copy memory while the guest runs; each
//!   round copies the pages dirtied during the previous round; when the
//!   dirty set stops shrinking (or a round budget is hit) the guest pauses
//!   for a final short stop-and-copy. Downtime ∝ residual dirty set.
//! * [`PostCopy`] — pause only to move vCPU state, resume on the
//!   destination immediately, and pull pages over the network on demand
//!   (plus a background sweep). Downtime is minimal and constant; the cost
//!   is degraded performance while remote faults are outstanding.
//!
//! The guest's memory-dirtying behaviour during migration is abstracted as a
//! [`DirtySource`], so the benchmarks can sweep dirty rates precisely.
//!
//! Pre-copy transfers can additionally be compressed with zero-page
//! detection and XBZRLE delta encoding (the [`compress`] module), the two
//! techniques production migration stacks use to survive write-heavy guests
//! on thin links.
//!
//! ## Three data planes, one protocol
//!
//! Each engine exists in three forms that are pinned equivalent by proptest:
//!
//! * **direct** (`migrate`, the [`engines`] module) — memory-to-memory copy
//!   with modelled byte accounting over a [`Link`](rvisor_net::Link); the
//!   fast path for benchmarks that sweep thousands of migrations.
//! * **streamed** (`migrate_over`, the [`stream`] module) — the migration
//!   crosses a [`Transport`] as a real byte stream in the versioned
//!   [`wire`] format: framed page records with compression mode, run-length
//!   zero pages, per-frame checksums verified before anything touches the
//!   destination, and end-of-round markers. Point the transport at a
//!   [`FabricTransport`] and the same migration pays per-host NIC
//!   serialization, shared-backbone contention and MTU chunk framing
//!   (experiment E17).
//! * **pipelined** (`migrate_pipelined`, the [`pipeline`] module) — the
//!   same wire stream, produced and consumed concurrently: encode workers
//!   shard the page-index space into fixed stripes
//!   ([`MigrationConfig::streams`]) while a dedicated sink thread applies
//!   segments as they arrive over a bounded channel of recycled buffers.
//!   Byte-identical and report-`==` to the serial stream; the win is host
//!   wall-clock overlap on multi-core hosts (experiment E18). See the
//!   [`pipeline`] module docs for what the fair-share multi-stream network
//!   model does and does not capture.
//!
//! ## Which plan do I want?
//!
//! [`MigrationConfig`] carries run-level knobs; a [`MigrationPlan`] is the
//! per-migration decision object that one migration actually executes
//! (`config.plan(engine)` lowers one into the other). Rules of thumb:
//!
//! | Guest | Plan |
//! |-------|------|
//! | Tiny (fits one stop-the-world copy in the downtime budget) | [`PlanEngine::StopAndCopy`], 1 stream, no compression |
//! | Large, mostly idle, fabric idle | [`PlanEngine::PreCopy`], several streams |
//! | Large, write-heavy, thin link | [`PlanEngine::PreCopy`], [`PageCompression::Xbzrle`], dedicated compressors |
//! | Dirty-hot (pre-copy would never converge) | [`PlanEngine::PostCopy`] + [`FaultService::FaultLane`] |
//! | Don't know / measuring | [`PlanEngine::PreCopy`] defaults — it observes the dirty rate for next time |
//!
//! The `rvisor-orch` `MigrationPlanner` automates exactly this table from
//! observed dirty rate, guest size and fabric occupancy.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod compress;
pub mod dirty;
pub mod engines;
pub mod pipeline;
pub mod plan;
pub mod report;
pub mod stream;
pub mod transport;
pub mod wire;

pub use compress::{CompressionStats, PageCompression, PageCompressor, WirePage};
pub use dirty::{ConstantRateDirtier, DirtySource, IdleDirtier};
pub use engines::{
    sweep_mean_fault_latency, MigrationConfig, PostCopy, PreCopy, StopAndCopy,
    MAX_MIGRATION_STREAMS,
};
pub use plan::{
    FaultService, MigrationConfigBuilder, MigrationPlan, MigrationPlanBuilder, PlanEngine,
};
pub use report::{MigrationKind, MigrationReport, RoundStat};
pub use stream::{MigrationSink, MigrationSource};
pub use transport::{FabricTransport, LoopbackTransport, Transport};
