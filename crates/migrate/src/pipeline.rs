//! Pipelined, multi-stream migration engine.
//!
//! The serial streamed engines in [`stream`](crate::stream) run encode and
//! decode back to back on one thread: the source encodes a full round, the
//! sink applies it, repeat. This module overlaps the two halves and shards
//! the encode work, while staying **byte-identical and
//! [`MigrationReport`]-`==` to the serial path** (pinned by proptest below):
//!
//! * **Pipelining** — a dedicated sink thread owns the destination-side
//!   [`MigrationSink`]; the coordinator ships encoded segments to it over a
//!   bounded `std::sync::mpsc` channel and receives the buffers back on a
//!   recycle channel, so decode/apply of one segment overlaps encode of the
//!   next and steady-state rounds reuse the same buffers.
//! * **Multi-stream scatter** — [`MigrationConfig::streams`] shards the
//!   page-index space into *fixed* contiguous stripes (`stripe =
//!   page / ceil(total_pages / streams)`). One encode worker owns each
//!   stripe, so a page always travels on the same stream, per-stripe XBZRLE
//!   caches stay coherent across rounds, and — because stripes are disjoint
//!   — sink-side applies can never race. Per-stripe results are merged in
//!   stripe order, which is what keeps same-seed runs `==`-replay-equal.
//! * **Boundary stitching** — zero runs crossing a stripe boundary are
//!   exported unencoded by the workers and re-coalesced by the coordinator,
//!   so the merged stream carries *exactly* the frames the serial encoder
//!   would (same [`ZeroRun`](crate::wire::FrameKind::ZeroRun) coalescing,
//!   same bytes, same report).
//!
//! # Parallelism model assumptions
//!
//! The simulated network does **not** speed up under multi-stream: the
//! round's per-stripe byte counts are presented to
//! [`Transport::transmit_striped`], which models N chunk streams *fairly
//! sharing* the path — on a loopback that is exactly the aggregate burst
//! (keeping the `==` pin to the serial engine), and on a
//! [`Fabric`](rvisor_net::Fabric) each stream additionally pays its own MTU
//! chunk framing, so simulated time is never *better* than serial. What
//! parallel streams buy is **host wall-clock**: encode and apply overlap
//! and encode itself fans out across cores, which is the speedup experiment
//! E18 measures. On a single-core host the pipeline degrades gracefully to
//! roughly serial speed (the threads time-slice); the byte stream, the
//! destination memory and the report are identical either way. One
//! deliberate divergence: each stripe's XBZRLE cache has the full
//! configured capacity, so the aggregate cache across N streams is N× the
//! serial engine's. With cache pressure the parallel engine may therefore
//! send *fewer* bytes than serial (never more, never wrong bytes); without
//! eviction — the common case, and every configuration the equivalence
//! proptests run — the two are bit-identical.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread;

use rvisor_memory::GuestMemory;
use rvisor_obs::{ArgValue, Trace};
use rvisor_types::{Error, Nanoseconds, Result, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

use crate::compress::{PageCompression, PageCompressor, WirePage};
use crate::dirty::DirtySource;
use crate::engines::{check_same_size, MigrationConfig, PostCopy, PreCopy, StopAndCopy};
use crate::engines::{emit_migration_span, emit_round_span, PER_PAGE_OVERHEAD};
use crate::plan::MigrationPlan;
use crate::report::{MigrationKind, MigrationReport, RoundStat};
use crate::stream::MigrationSink;
use crate::transport::Transport;
use crate::wire;

/// One round's work order for an encode/compression worker: which stripe it
/// is, the stripe's slice of the round's page list and a recycled buffer to
/// encode into.
struct RoundTask {
    stripe: usize,
    pages: Vec<u64>,
    body: Vec<u8>,
}

/// A zero run withheld at a stripe boundary: `(first page, page count)`.
type Run = (u64, u64);

/// What a stripe worker hands back per round.
struct StripeEncoding {
    /// Zero run at the very start of the stripe's page list (may continue
    /// the previous stripe's trailing run).
    leading: Option<Run>,
    /// Frames for everything between the boundary runs.
    body: Vec<u8>,
    /// Zero run still pending at the stripe's end (may continue into the
    /// next stripe's leading run).
    trailing: Option<Run>,
    /// The task's page list, handed back for recycling.
    pages: Vec<u64>,
}

/// Flush a finished zero run: the run opening the stripe is exported for
/// boundary stitching, every later run is encoded in place exactly as the
/// serial encoder would.
fn flush_run(body: &mut Vec<u8>, leading: &mut Option<Run>, first_page: Option<u64>, run: Run) {
    let (first, count) = run;
    if leading.is_none() && body.is_empty() && Some(first) == first_page {
        *leading = Some(run);
    } else {
        put_run(body, first, count);
    }
}

/// Encode a run as the serial encoder does: a lone zero page costs the same
/// 1-byte marker frame, run-length coding pays from two pages up.
fn put_run(out: &mut Vec<u8>, first: u64, count: u64) {
    if count == 1 {
        wire::put_page_zero(out, first);
    } else {
        wire::put_zero_run(out, first, count);
    }
}

/// Worker body: encode one stripe's pages, withholding boundary zero runs.
fn encode_stripe(
    memory: &GuestMemory,
    mut compressor: Option<&mut PageCompressor>,
    task: RoundTask,
) -> Result<StripeEncoding> {
    let RoundTask {
        stripe: _,
        pages,
        mut body,
    } = task;
    body.clear();
    let first_page = pages.first().copied();
    let mut leading: Option<Run> = None;
    let mut pending: Option<Run> = None;
    for &p in &pages {
        match compressor.as_deref_mut() {
            None => {
                memory.with_page(p, |contents| wire::put_page_raw(&mut body, p, contents))?;
            }
            Some(c) => {
                let encoded = memory.with_page(p, |contents| c.compress(p, contents))?;
                if let WirePage::Zero = encoded {
                    pending = match pending {
                        Some((first, count)) if first + count == p => Some((first, count + 1)),
                        other => {
                            if let Some(run) = other {
                                flush_run(&mut body, &mut leading, first_page, run);
                            }
                            Some((p, 1))
                        }
                    };
                    continue;
                }
                if let Some(run) = pending.take() {
                    flush_run(&mut body, &mut leading, first_page, run);
                }
                wire::put_wire_page(&mut body, p, &encoded);
            }
        }
    }
    let trailing = match pending.take() {
        Some((first, count))
            if leading.is_none() && body.is_empty() && Some(first) == first_page =>
        {
            // The whole stripe is one zero run: export it as the leading
            // run so it can merge with *both* neighbours.
            leading = Some((first, count));
            None
        }
        other => other,
    };
    Ok(StripeEncoding {
        leading,
        body,
        trailing,
        pages,
    })
}

fn channel_closed(what: &str) -> Error {
    Error::Migration(format!("pipelined migration {what} terminated early"))
}

/// The coordinator's handle onto a running pipeline: stripe workers, the
/// sink thread, and the recycled-buffer pools connecting them.
struct Pipeline<'p> {
    total_pages: u64,
    memory_bytes: u64,
    stripe_len: u64,
    round: u32,
    task_txs: Vec<SyncSender<RoundTask>>,
    result_rxs: Vec<Receiver<Result<StripeEncoding>>>,
    seg_tx: SyncSender<Vec<u8>>,
    recycle_rx: &'p Receiver<Vec<u8>>,
    /// Recycled byte buffers (segment bodies, control frames).
    pool: Vec<Vec<u8>>,
    /// Recycled per-stripe page-index lists.
    page_pool: Vec<Vec<u64>>,
    /// Per-stripe payload bytes of the round being encoded (what
    /// [`Transport::transmit_striped`] is fed); control frames ride
    /// stripe 0, stitched runs are attributed to the stripe they start in.
    stripe_bytes: Vec<u64>,
    /// Which stripes received a task this round.
    dispatched: Vec<bool>,
}

impl Pipeline<'_> {
    /// Pull every buffer the sink has handed back into the local pool.
    fn refill_pool(&mut self) {
        while let Ok(mut buf) = self.recycle_rx.try_recv() {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// The highest-capacity recycled buffer — for stripe bodies, so a
    /// megabyte body buffer is never wasted on a 16-byte control frame
    /// while a tiny one regrows to megabytes (which would allocate every
    /// round instead of recycling).
    fn grab_body_buf(&mut self) -> Vec<u8> {
        self.refill_pool();
        self.grab_ranked(|best, cand| cand > best)
    }

    /// The lowest-capacity recycled buffer — for control frames (hello,
    /// zero runs, end-of-round markers, vCPU state).
    fn grab_ctl_buf(&mut self) -> Vec<u8> {
        self.refill_pool();
        self.grab_ranked(|best, cand| cand < best)
    }

    fn grab_ranked(&mut self, better: impl Fn(usize, usize) -> bool) -> Vec<u8> {
        let mut pick = match self.pool.first() {
            Some(_) => 0usize,
            None => return Vec::new(),
        };
        for (i, buf) in self.pool.iter().enumerate().skip(1) {
            if better(self.pool[pick].capacity(), buf.capacity()) {
                pick = i;
            }
        }
        self.pool.swap_remove(pick)
    }

    /// Ship one segment of whole frames to the sink thread, in stream
    /// order. Returns its length.
    fn ship(&mut self, seg: Vec<u8>) -> Result<u64> {
        let len = seg.len() as u64;
        if len == 0 {
            self.pool.push(seg);
            return Ok(0);
        }
        self.seg_tx.send(seg).map_err(|_| channel_closed("sink"))?;
        Ok(len)
    }

    fn ship_run(&mut self, stripe: usize, first: u64, count: u64) -> Result<()> {
        let mut buf = self.grab_ctl_buf();
        put_run(&mut buf, first, count);
        self.stripe_bytes[stripe] += buf.len() as u64;
        self.ship(buf)?;
        Ok(())
    }

    /// Encode and ship the stream-opening Hello; returns its wire bytes.
    fn send_hello(&mut self) -> Result<u64> {
        let mut buf = self.grab_ctl_buf();
        wire::put_hello(&mut buf, self.total_pages, self.memory_bytes);
        self.ship(buf)
    }

    /// Encode and ship the vCPU state frames; returns their wire bytes.
    fn send_vcpu_states(&mut self, states: &[VcpuState]) -> Result<u64> {
        let placeholder = [VcpuState::default()];
        let states = if states.is_empty() {
            &placeholder[..]
        } else {
            states
        };
        let mut buf = self.grab_ctl_buf();
        for (i, state) in states.iter().enumerate() {
            wire::put_vcpu_state(&mut buf, i as u32, state);
        }
        self.ship(buf)
    }

    /// Encode one round of `pages` (ascending global indices) across the
    /// stripe workers, stitch the boundary zero runs, ship the merged
    /// stream to the sink and terminate it with an end-of-round marker.
    /// [`Self::stripe_bytes`] afterwards holds the round's per-stream
    /// payload split.
    fn encode_round(&mut self, pages: &[u64]) -> Result<()> {
        self.stripe_bytes.fill(0);
        self.dispatched.fill(false);
        // Scatter: stripe s owns the fixed index range
        // [s * stripe_len, (s + 1) * stripe_len); the ascending page list
        // partitions into contiguous per-stripe sublists.
        let streams = self.task_txs.len();
        let mut start = 0usize;
        for s in 0..streams {
            let stripe_end = (s as u64 + 1).saturating_mul(self.stripe_len);
            let end = start + pages[start..].partition_point(|&p| p < stripe_end);
            if end > start {
                let mut task_pages = self.page_pool.pop().unwrap_or_default();
                task_pages.clear();
                task_pages.extend_from_slice(&pages[start..end]);
                let body = self.grab_body_buf();
                self.task_txs[s]
                    .send(RoundTask {
                        stripe: s,
                        pages: task_pages,
                        body,
                    })
                    .map_err(|_| channel_closed("encode worker"))?;
                self.dispatched[s] = true;
            }
            start = end;
        }
        // Gather in stripe order, re-coalescing runs across boundaries so
        // the merged stream is frame-for-frame the serial encoder's.
        // `pending` carries the run still open at the current boundary and
        // the stripe it started in (for byte attribution).
        let mut pending: Option<(usize, Run)> = None;
        for s in 0..streams {
            if !self.dispatched[s] {
                continue;
            }
            let enc = self.result_rxs[s]
                .recv()
                .map_err(|_| channel_closed("encode worker"))??;
            let StripeEncoding {
                leading,
                body,
                trailing,
                pages: task_pages,
            } = enc;
            self.page_pool.push(task_pages);
            if let Some((lf, lc)) = leading {
                pending = match pending {
                    Some((os, (pf, pc))) if pf + pc == lf => Some((os, (pf, pc + lc))),
                    Some((os, (pf, pc))) => {
                        self.ship_run(os, pf, pc)?;
                        Some((s, (lf, lc)))
                    }
                    None => Some((s, (lf, lc))),
                };
            }
            if !body.is_empty() {
                if let Some((os, (pf, pc))) = pending.take() {
                    self.ship_run(os, pf, pc)?;
                }
                self.stripe_bytes[s] += body.len() as u64;
                self.ship(body)?;
                pending = trailing.map(|run| (s, run));
            } else if let Some(run) = trailing {
                // The stripe was zero runs only; its trailing run cannot
                // continue the leading one (there was an index gap).
                if let Some((os, (pf, pc))) = pending.take() {
                    self.ship_run(os, pf, pc)?;
                }
                self.pool.push(body);
                pending = Some((s, run));
            } else {
                self.pool.push(body);
            }
        }
        if let Some((os, (pf, pc))) = pending.take() {
            self.ship_run(os, pf, pc)?;
        }
        // End-of-round marker rides the control stream (stripe 0).
        let mut buf = self.grab_ctl_buf();
        wire::put_end_of_round(&mut buf, self.round);
        self.round += 1;
        self.stripe_bytes[0] += buf.len() as u64;
        self.ship(buf)?;
        Ok(())
    }

    /// The per-stream payload split of the round just encoded.
    fn stripe_bytes(&self) -> &[u64] {
        &self.stripe_bytes
    }
}

/// Stand up the worker fleet and sink thread, run `f` on the coordinator,
/// then tear everything down — propagating a sink-side error in preference
/// to the coordinator's (a broken sink surfaces as a channel failure on the
/// coordinator, and the sink's own error says why).
///
/// The encode stage and the compression stage scale independently: raw
/// rounds get one encode worker per stripe (`streams`), compressed rounds
/// run on a separate pool of `compressors` compression workers. Stripe `s`
/// is statically owned by worker `s % workers` and each worker keeps one
/// persistent [`PageCompressor`] *per stripe it owns*, so every stripe sees
/// the same sequence of compress calls — and produces byte-identical frames
/// — for any worker count (pinned by test). The knob trades host wall-clock
/// only.
fn with_pipeline<R>(
    source: &GuestMemory,
    dest: &GuestMemory,
    compression: Option<(PageCompression, usize)>,
    streams: NonZeroUsize,
    compressors: NonZeroUsize,
    f: impl FnOnce(&mut Pipeline<'_>) -> Result<R>,
) -> Result<R> {
    let streams = streams.get();
    // More workers than stripes cannot help: stripes are the unit of work.
    let workers = match compression {
        None => streams,
        Some(_) => compressors.get().min(streams),
    };
    let total_pages = source.total_pages();
    let stripe_len = total_pages.div_ceil(streams as u64).max(1);
    thread::scope(|scope| {
        let (seg_tx, seg_rx) = sync_channel::<Vec<u8>>(4 * streams + 8);
        let (recycle_tx, recycle_rx) = sync_channel::<Vec<u8>>(8 * streams + 16);
        let sink_thread = scope.spawn(move || -> Result<()> {
            let mut sink = MigrationSink::new(dest);
            while let Ok(seg) = seg_rx.recv() {
                let applied = sink.apply_burst(&seg);
                // A full recycle channel only costs a reallocation later.
                let _ = recycle_tx.try_send(seg);
                applied?;
            }
            Ok(())
        });
        // Per-stripe result channels: the coordinator still gathers in
        // stripe order, whatever worker encoded the stripe.
        let mut result_txs = Vec::with_capacity(streams);
        let mut result_rxs = Vec::with_capacity(streams);
        for _ in 0..streams {
            let (result_tx, result_rx) = sync_channel::<Result<StripeEncoding>>(1);
            result_txs.push(result_tx);
            result_rxs.push(result_rx);
        }
        // Each result channel carries at most one encoding per round and is
        // fully drained before the next round's scatter, so a worker's
        // result sends never block and the task channels below can never
        // deadlock against them.
        let mut worker_txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            // A worker may be handed every stripe it owns before it drains
            // any of them; size the task channel for a full round.
            let (task_tx, task_rx) = sync_channel::<RoundTask>(streams.div_ceil(workers));
            let results: Vec<SyncSender<Result<StripeEncoding>>> = result_txs.clone();
            scope.spawn(move || {
                let mut per_stripe: BTreeMap<usize, PageCompressor> = BTreeMap::new();
                while let Ok(task) = task_rx.recv() {
                    let stripe = task.stripe;
                    let compressor = compression.map(|(mode, cache_pages)| {
                        per_stripe.entry(stripe).or_insert_with(|| {
                            PageCompressor::with_cache_capacity(mode, cache_pages)
                        })
                    });
                    let encoded = encode_stripe(source, compressor, task);
                    if results[stripe].send(encoded).is_err() {
                        break;
                    }
                }
            });
            worker_txs.push(task_tx);
        }
        drop(result_txs);
        let task_txs: Vec<SyncSender<RoundTask>> = (0..streams)
            .map(|s| worker_txs[s % workers].clone())
            .collect();
        drop(worker_txs);
        let mut pipeline = Pipeline {
            total_pages,
            memory_bytes: source.total_size().as_u64(),
            stripe_len,
            round: 0,
            task_txs,
            result_rxs,
            seg_tx,
            recycle_rx: &recycle_rx,
            pool: Vec::new(),
            page_pool: Vec::new(),
            stripe_bytes: vec![0u64; streams],
            dispatched: vec![false; streams],
        };
        let out = f(&mut pipeline);
        // Closing the channels releases the workers and flushes the sink;
        // joining the sink guarantees every shipped frame has been applied
        // before the destination memory is handed back to the caller.
        drop(pipeline);
        let sink_out = sink_thread.join().expect("migration sink thread panicked");
        match sink_out {
            Err(e) => Err(e),
            Ok(()) => out,
        }
    })
}

/// The compression setup the pipeline's workers should mirror (`None` when
/// pages go raw).
fn compression_of(config: &MigrationConfig) -> Option<(PageCompression, usize)> {
    match config.compression {
        PageCompression::None => None,
        mode => Some((mode, config.xbzrle_cache_pages)),
    }
}

/// One instant per active stream on the `migrate/stream` track, recording
/// the payload split [`Pipeline::stripe_bytes`] fed to
/// [`Transport::transmit_striped`] for the round just encoded.
fn emit_stripe_instants(trace: &Trace, round: u32, at: Nanoseconds, stripes: &[u64]) {
    if !trace.is_on() {
        return;
    }
    for (stream, &bytes) in stripes.iter().enumerate() {
        if bytes == 0 {
            continue;
        }
        trace.instant(
            "migrate/stream",
            "stripe",
            at,
            &[
                ("round", ArgValue::U64(u64::from(round))),
                ("stream", ArgValue::U64(stream as u64)),
                ("bytes", ArgValue::U64(bytes)),
            ],
        );
    }
}

impl StopAndCopy {
    /// Run a stop-and-copy migration through the pipelined, multi-stream
    /// data plane. Byte-identical and report-`==` to
    /// [`StopAndCopy::migrate_over`] on the same transport.
    pub fn migrate_pipelined(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        config: &MigrationConfig,
    ) -> Result<MigrationReport> {
        Self::migrate_pipelined_traced(source, dest, vcpus, transport, config, &Trace::off())
    }

    /// [`StopAndCopy::migrate_pipelined`] with trace spans emitted to
    /// `trace`; with [`Trace::off`] the two are identical.
    pub fn migrate_pipelined_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        config: &MigrationConfig,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        config.validate()?;
        check_same_size(source, dest)?;
        let start = transport.free_at();
        let bytes_before = transport.bytes_sent();
        with_pipeline(source, dest, None, config.streams, config.streams, |p| {
            let hello = p.send_hello()?;
            let after_hello = transport.transmit_bytes(start, hello)?;
            let all_pages: Vec<u64> = (0..source.total_pages()).collect();
            p.encode_round(&all_pages)?;
            let round_bytes_before = transport.bytes_sent();
            let after_pages = transport.transmit_striped(after_hello, p.stripe_bytes())?;
            let round = RoundStat {
                pages: all_pages.len() as u64,
                bytes: transport.bytes_sent() - round_bytes_before,
                duration: after_pages.saturating_sub(after_hello),
            };
            emit_round_span(trace, "round", 1, round, after_hello, after_pages);
            emit_stripe_instants(trace, 1, after_pages, p.stripe_bytes());
            let state = p.send_vcpu_states(vcpus)?;
            let done = transport.transmit_bytes(after_pages, state)?;
            let elapsed = done.saturating_sub(start);
            let report = MigrationReport {
                kind: MigrationKind::StopAndCopy,
                downtime: elapsed,
                total_time: elapsed,
                rounds: 1,
                bytes_transferred: transport.bytes_sent() - bytes_before,
                pages_transferred: all_pages.len() as u64,
                memory_size: source.total_size(),
                converged: true,
                remote_faults: 0,
                avg_fault_latency: Nanoseconds::ZERO,
                rounds_breakdown: vec![round],
            };
            emit_migration_span(trace, &report, start, done, None);
            Ok(report)
        })
    }
}

impl PreCopy {
    /// Run an iterative pre-copy migration through the pipelined,
    /// multi-stream data plane while `dirty_source` keeps writing into the
    /// source. Byte-identical and report-`==` to [`PreCopy::migrate_over`]
    /// on the same transport (see the module docs for the one documented
    /// divergence under XBZRLE cache pressure).
    pub fn migrate_pipelined(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        dirty_source: &mut dyn DirtySource,
        config: &MigrationConfig,
    ) -> Result<MigrationReport> {
        Self::migrate_pipelined_traced(
            source,
            dest,
            vcpus,
            transport,
            dirty_source,
            config,
            &Trace::off(),
        )
    }

    /// [`PreCopy::migrate_pipelined`] with trace spans emitted to `trace`;
    /// with [`Trace::off`] the two are identical.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate_pipelined_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        dirty_source: &mut dyn DirtySource,
        config: &MigrationConfig,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        Self::pipelined_with_compressors(
            source,
            dest,
            vcpus,
            transport,
            dirty_source,
            config,
            config.streams,
            trace,
        )
    }

    /// [`PreCopy::migrate_pipelined_traced`] shaped by a per-migration
    /// [`MigrationPlan`]: stream count, compression mode and the decoupled
    /// compression-stage worker count
    /// ([`MigrationPlan::compressor_workers`]) all come from the plan. The
    /// wire bytes, the destination memory and the report are identical for
    /// any compressor-worker count (pinned by test); the knob trades host
    /// wall-clock only.
    pub fn migrate_pipelined_planned_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        dirty_source: &mut dyn DirtySource,
        plan: &MigrationPlan,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        plan.validate()?;
        Self::pipelined_with_compressors(
            source,
            dest,
            vcpus,
            transport,
            dirty_source,
            &plan.config(),
            plan.compressor_workers(),
            trace,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn pipelined_with_compressors(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        dirty_source: &mut dyn DirtySource,
        config: &MigrationConfig,
        compressors: NonZeroUsize,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        config.validate()?;
        check_same_size(source, dest)?;
        let start = transport.free_at();
        let bytes_before = transport.bytes_sent();
        with_pipeline(
            source,
            dest,
            compression_of(config),
            config.streams,
            compressors,
            |p| {
                let hello = p.send_hello()?;
                let mut now = transport.transmit_bytes(start, hello)?;

                let mut total_pages = 0u64;
                let mut rounds = 0u32;
                let mut converged = false;
                let mut breakdown: Vec<RoundStat> =
                    Vec::with_capacity(config.max_rounds as usize + 1);

                source.clear_dirty();
                let mut to_send: Vec<u64> = (0..source.total_pages()).collect();
                let mut harvest: Vec<u64> = Vec::new();

                loop {
                    rounds += 1;
                    let round_start = now;
                    p.encode_round(&to_send)?;
                    let round_bytes_before = transport.bytes_sent();
                    let done = transport.transmit_striped(now, p.stripe_bytes())?;
                    total_pages += to_send.len() as u64;
                    let round_duration = done.saturating_sub(round_start);
                    let stat = RoundStat {
                        pages: to_send.len() as u64,
                        bytes: transport.bytes_sent() - round_bytes_before,
                        duration: round_duration,
                    };
                    breakdown.push(stat);
                    emit_round_span(trace, "round", rounds, stat, round_start, done);
                    emit_stripe_instants(trace, rounds, done, p.stripe_bytes());
                    dirty_source.run_for(source, round_duration)?;
                    now = done;

                    source.drain_dirty_into(&mut harvest);
                    std::mem::swap(&mut to_send, &mut harvest);
                    if to_send.len() as u64 <= config.dirty_page_threshold {
                        converged = true;
                        break;
                    }
                    if rounds >= config.max_rounds {
                        break;
                    }
                }

                let pause_start = now;
                p.encode_round(&to_send)?;
                let stop_bytes_before = transport.bytes_sent();
                let after_residual = transport.transmit_striped(now, p.stripe_bytes())?;
                total_pages += to_send.len() as u64;
                let stop_stat = RoundStat {
                    pages: to_send.len() as u64,
                    bytes: transport.bytes_sent() - stop_bytes_before,
                    duration: after_residual.saturating_sub(pause_start),
                };
                breakdown.push(stop_stat);
                emit_round_span(
                    trace,
                    "stop-phase",
                    rounds + 1,
                    stop_stat,
                    pause_start,
                    after_residual,
                );
                emit_stripe_instants(trace, rounds + 1, after_residual, p.stripe_bytes());
                let state = p.send_vcpu_states(vcpus)?;
                let done = transport.transmit_bytes(after_residual, state)?;

                let report = MigrationReport {
                    kind: MigrationKind::PreCopy,
                    downtime: done.saturating_sub(pause_start),
                    total_time: done.saturating_sub(start),
                    rounds,
                    bytes_transferred: transport.bytes_sent() - bytes_before,
                    pages_transferred: total_pages,
                    memory_size: source.total_size(),
                    converged,
                    remote_faults: 0,
                    avg_fault_latency: Nanoseconds::ZERO,
                    rounds_breakdown: breakdown,
                };
                // Per-stripe workers own their compressors, so no aggregate
                // compression stats are available on this path.
                emit_migration_span(trace, &report, start, done, None);
                Ok(report)
            },
        )
    }
}

impl PostCopy {
    /// Run a post-copy migration through the pipelined, multi-stream data
    /// plane. Byte-identical and report-`==` to
    /// [`PostCopy::migrate_over`] on the same transport.
    pub fn migrate_pipelined(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        config: &MigrationConfig,
    ) -> Result<MigrationReport> {
        Self::migrate_pipelined_traced(source, dest, vcpus, transport, config, &Trace::off())
    }

    /// [`PostCopy::migrate_pipelined`] with trace spans emitted to `trace`;
    /// with [`Trace::off`] the two are identical.
    pub fn migrate_pipelined_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        config: &MigrationConfig,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        config.validate()?;
        check_same_size(source, dest)?;
        let start = transport.free_at();
        let bytes_before = transport.bytes_sent();
        with_pipeline(source, dest, None, config.streams, config.streams, |p| {
            let hello = p.send_hello()?;
            let after_hello = transport.transmit_bytes(start, hello)?;

            // Pause: only the vCPU/device state crosses before resume.
            let state = p.send_vcpu_states(vcpus)?;
            let resumed_at = transport.transmit_bytes(after_hello, state)?;
            let downtime = resumed_at.saturating_sub(after_hello);

            let total_pages = source.total_pages();
            let fault_pages =
                ((total_pages as f64) * config.postcopy_fault_fraction).round() as u64;
            let fault_pages = fault_pages.min(total_pages);

            let all_pages: Vec<u64> = (0..total_pages).collect();
            p.encode_round(&all_pages)?;
            let round_bytes_before = transport.bytes_sent();
            let after_pages = transport.transmit_striped(resumed_at, p.stripe_bytes())?;
            let round = RoundStat {
                pages: total_pages,
                bytes: transport.bytes_sent() - round_bytes_before,
                duration: after_pages.saturating_sub(resumed_at),
            };
            emit_round_span(trace, "round", 1, round, resumed_at, after_pages);
            emit_stripe_instants(trace, 1, after_pages, p.stripe_bytes());

            let per_fault_latency = transport.transfer_time(PAGE_SIZE + PER_PAGE_OVERHEAD);
            let fault_penalty = Nanoseconds(transport.latency().as_nanos() * fault_pages);
            let done = after_pages.saturating_add(fault_penalty);

            let report = MigrationReport {
                kind: MigrationKind::PostCopy,
                downtime,
                total_time: done.saturating_sub(start),
                rounds: 1,
                bytes_transferred: transport.bytes_sent() - bytes_before,
                pages_transferred: total_pages,
                memory_size: source.total_size(),
                converged: true,
                remote_faults: fault_pages,
                avg_fault_latency: per_fault_latency.saturating_add(transport.latency()),
                rounds_breakdown: vec![round],
            };
            emit_migration_span(trace, &report, start, done, None);
            Ok(report)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirty::{ConstantRateDirtier, IdleDirtier};
    use crate::transport::{FabricTransport, LoopbackTransport};
    use rvisor_net::{Fabric, FabricParams, Link, LinkModel};
    use rvisor_types::{ByteSize, GuestAddress};

    fn streams(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).expect("non-zero")
    }

    /// Source with content, zero gaps that straddle stripe boundaries, and
    /// an all-zero tail (the stitching stress pattern).
    fn memories(pages: u64) -> (GuestMemory, GuestMemory) {
        let src = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        let dst = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        for p in 0..pages {
            if p % 7 < 4 && p < pages - pages / 4 {
                src.write_u64(GuestAddress(p * PAGE_SIZE), p * 7 + 1)
                    .unwrap();
            }
        }
        (src, dst)
    }

    fn region_bytes(mem: &GuestMemory) -> Vec<u8> {
        let mut out = Vec::new();
        for r in mem.regions() {
            r.with_bytes(|b| out.extend_from_slice(b));
        }
        out
    }

    fn serial_report(
        engine: usize,
        pages: u64,
        dirty_fraction: f64,
        config: &MigrationConfig,
    ) -> (MigrationReport, Vec<u8>) {
        let (src, dst) = memories(pages);
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let vcpus = [VcpuState::default()];
        let report = match engine {
            0 => StopAndCopy::migrate_over(&src, &dst, &vcpus, &mut transport).unwrap(),
            1 => {
                let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                    LinkModel::gigabit().bytes_per_second,
                    dirty_fraction,
                    0,
                    pages,
                );
                PreCopy::migrate_over(&src, &dst, &vcpus, &mut transport, &mut dirtier, config)
                    .unwrap()
            }
            _ => PostCopy::migrate_over(&src, &dst, &vcpus, &mut transport, config).unwrap(),
        };
        (report, region_bytes(&dst))
    }

    fn pipelined_report(
        engine: usize,
        pages: u64,
        dirty_fraction: f64,
        config: &MigrationConfig,
    ) -> (MigrationReport, Vec<u8>) {
        let (src, dst) = memories(pages);
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let vcpus = [VcpuState::default()];
        let report = match engine {
            0 => {
                StopAndCopy::migrate_pipelined(&src, &dst, &vcpus, &mut transport, config).unwrap()
            }
            1 => {
                let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                    LinkModel::gigabit().bytes_per_second,
                    dirty_fraction,
                    0,
                    pages,
                );
                PreCopy::migrate_pipelined(&src, &dst, &vcpus, &mut transport, &mut dirtier, config)
                    .unwrap()
            }
            _ => PostCopy::migrate_pipelined(&src, &dst, &vcpus, &mut transport, config).unwrap(),
        };
        (report, region_bytes(&dst))
    }

    #[test]
    fn pipelined_matches_serial_for_every_engine_and_stream_count() {
        for engine in 0..3usize {
            let (serial, serial_mem) = serial_report(engine, 256, 0.4, &MigrationConfig::default());
            for n in [1usize, 2, 3, 4, 7] {
                let config = MigrationConfig {
                    streams: streams(n),
                    ..Default::default()
                };
                let (pipelined, pipelined_mem) = pipelined_report(engine, 256, 0.4, &config);
                assert_eq!(pipelined, serial, "engine {engine} at {n} streams");
                assert_eq!(
                    pipelined_mem, serial_mem,
                    "engine {engine} at {n} streams: memory diverged"
                );
            }
        }
    }

    #[test]
    fn zero_runs_stitch_across_stripe_boundaries() {
        // An all-zero guest: serial coalesces every round into one ZeroRun
        // frame. With 4 stripes the run crosses 3 boundaries and must be
        // re-coalesced to the identical frame (equal bytes proves it:
        // split runs would cost 3 extra frame headers).
        let pages = 256u64;
        let config = MigrationConfig {
            compression: PageCompression::ZeroPages,
            ..Default::default()
        };
        let run = |n: usize| {
            let src = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
            let dst = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
            let mut link = Link::new(LinkModel::gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            let config = MigrationConfig {
                streams: streams(n),
                ..config
            };
            if n == 1 {
                PreCopy::migrate_over(
                    &src,
                    &dst,
                    &[VcpuState::default()],
                    &mut transport,
                    &mut IdleDirtier,
                    &config,
                )
                .unwrap()
            } else {
                PreCopy::migrate_pipelined(
                    &src,
                    &dst,
                    &[VcpuState::default()],
                    &mut transport,
                    &mut IdleDirtier,
                    &config,
                )
                .unwrap()
            }
        };
        let serial = run(1);
        for n in [2usize, 4, 8] {
            assert_eq!(run(n), serial, "{n} streams");
        }
    }

    #[test]
    fn multi_stream_fabric_migration_replays_identically_and_pays_framing() {
        let pages = 512u64;
        let run = |n: usize| {
            let (src, dst) = memories(pages);
            let mut fabric = Fabric::new(2, FabricParams::office_lan()).unwrap();
            let mut transport = FabricTransport::new(&mut fabric, 0, 1).unwrap();
            let config = MigrationConfig {
                streams: streams(n),
                ..Default::default()
            };
            let report = PreCopy::migrate_pipelined(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut IdleDirtier,
                &config,
            )
            .unwrap();
            (report, region_bytes(&dst))
        };
        let (serial, serial_mem) = run(1);
        let (four, four_mem) = run(4);
        // Fair-share chunk streams: same payload bytes, identical memory,
        // never faster than the aggregate stream (per-stream MTU framing).
        assert_eq!(four.bytes_transferred, serial.bytes_transferred);
        assert_eq!(four_mem, serial_mem);
        assert!(four.total_time >= serial.total_time);
        // Same-seed multi-stream runs replay `==`.
        let (replay, replay_mem) = run(4);
        assert_eq!(replay, four);
        assert_eq!(replay_mem, four_mem);
    }

    #[test]
    fn pipelined_rejects_bad_configs_and_mismatched_memories() {
        let (src, dst) = memories(8);
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let config = MigrationConfig {
            streams: streams(crate::engines::MAX_MIGRATION_STREAMS + 1),
            ..Default::default()
        };
        assert!(StopAndCopy::migrate_pipelined(&src, &dst, &[], &mut transport, &config).is_err());
        let small = GuestMemory::flat(ByteSize::pages_of(2)).unwrap();
        assert!(PostCopy::migrate_pipelined(
            &src,
            &small,
            &[],
            &mut transport,
            &MigrationConfig::default()
        )
        .is_err());
    }

    #[test]
    fn compressor_worker_count_never_changes_the_bytes() {
        use crate::plan::{MigrationPlan, PlanEngine};

        // The compression stage is decoupled from the stripe workers; any
        // compressor-worker count must produce the identical report and
        // destination memory (per-stripe compressor state is preserved no
        // matter which worker owns the stripe).
        let pages = 256u64;
        for compression in [PageCompression::ZeroPages, PageCompression::Xbzrle] {
            let run = |compressors: Option<usize>| {
                let (src, dst) = memories(pages);
                let mut link = Link::new(LinkModel::gigabit());
                let mut transport = LoopbackTransport::new(&mut link);
                let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                    LinkModel::gigabit().bytes_per_second,
                    0.4,
                    0,
                    pages,
                );
                let mut builder = MigrationPlan::builder(PlanEngine::PreCopy)
                    .streams(streams(6))
                    .compression(compression);
                if let Some(c) = compressors {
                    builder = builder.compressors(streams(c));
                }
                let plan = builder.build().unwrap();
                let report = PreCopy::migrate_pipelined_planned_traced(
                    &src,
                    &dst,
                    &[VcpuState::default()],
                    &mut transport,
                    &mut dirtier,
                    &plan,
                    &Trace::off(),
                )
                .unwrap();
                (report, region_bytes(&dst))
            };
            let (base, base_mem) = run(None);
            for c in [1usize, 2, 3, 8] {
                let (report, mem) = run(Some(c));
                assert_eq!(report, base, "{compression:?} with {c} compressors");
                assert_eq!(mem, base_mem, "{compression:?} with {c} compressors");
            }
            // The plan-routed entry with default compressors matches the
            // config-routed entry exactly.
            let (src, dst) = memories(pages);
            let mut link = Link::new(LinkModel::gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                LinkModel::gigabit().bytes_per_second,
                0.4,
                0,
                pages,
            );
            let config = MigrationConfig {
                streams: streams(6),
                compression,
                ..Default::default()
            };
            let direct = PreCopy::migrate_pipelined(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut dirtier,
                &config,
            )
            .unwrap();
            assert_eq!(direct, base, "{compression:?}: plan routing diverged");
            assert_eq!(region_bytes(&dst), base_mem);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// The pipelined multi-stream engine is byte-identical and
            /// `MigrationReport`-equal to the serial streamed path (and so,
            /// transitively, to the direct in-memory engines) for all three
            /// engines, any stream count, with and without compression.
            #[test]
            fn pipelined_engine_is_equivalent_to_the_serial_path(
                engine in 0usize..3,
                pages in 32u64..160,
                dirty_fraction_pct in 0u64..120,
                n_streams in 1usize..6,
                mode_idx in 0usize..3,
            ) {
                let serial_config = MigrationConfig {
                    max_rounds: 6,
                    dirty_page_threshold: 8,
                    compression: PageCompression::ALL[mode_idx],
                    ..Default::default()
                };
                let pipelined_config = MigrationConfig {
                    streams: streams(n_streams),
                    ..serial_config
                };
                let fraction = dirty_fraction_pct as f64 / 100.0;
                let (serial, serial_mem) =
                    serial_report(engine, pages, fraction, &serial_config);
                let (pipelined, pipelined_mem) =
                    pipelined_report(engine, pages, fraction, &pipelined_config);
                prop_assert_eq!(pipelined, serial);
                prop_assert_eq!(pipelined_mem, serial_mem);
            }
        }
    }
}
