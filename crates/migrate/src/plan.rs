//! Per-migration decision objects: [`MigrationPlan`] and the validating
//! builders for it and [`MigrationConfig`].
//!
//! [`MigrationConfig`] is a *run-level* knob set: one engine choice, one
//! stream count, one compression mode applied to every migration a caller
//! starts. A [`MigrationPlan`] is the *per-migration* decision an adaptive
//! control plane makes: which engine this particular VM rides, how many
//! streams it gets, how its demand faults are serviced. The config [lowers
//! into a plan](MigrationConfig::plan) (so every existing entry point keeps
//! compiling and behaving identically), and a plan [lowers back into a
//! config](MigrationPlan::config) where the engine signatures want one.
//!
//! Both types get a validating builder: `builder().streams(4).build()` runs
//! [`MigrationConfig::validate`] exactly once, so a caller can no longer
//! construct a silently-invalid knob set without going out of its way (the
//! plain struct fields stay public for backward compatibility).

use std::num::NonZeroUsize;

use rvisor_types::{Error, Result};

use crate::compress::PageCompression;
use crate::engines::{MigrationConfig, MAX_MIGRATION_STREAMS};

/// Which engine a [`MigrationPlan`] selects.
///
/// Deliberately *not* the report-side [`MigrationKind`](crate::MigrationKind):
/// a plan is an input (what we decided to do), a kind is an observation
/// (what the report says happened). Keeping them separate lets either grow
/// without entangling the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanEngine {
    /// Pause, copy everything, resume (cold migration).
    StopAndCopy,
    /// Iterative pre-copy (the default live migration).
    #[default]
    PreCopy,
    /// Post-copy with demand paging.
    PostCopy,
}

impl PlanEngine {
    /// Stable lowercase label (trace args, report tables).
    pub fn name(&self) -> &'static str {
        match self {
            PlanEngine::StopAndCopy => "stop-and-copy",
            PlanEngine::PreCopy => "pre-copy",
            PlanEngine::PostCopy => "post-copy",
        }
    }
}

/// How a post-copy migration services its demand faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultService {
    /// Faulted pages wait for the background sweep to reach them; each
    /// fault additionally serializes one propagation delay behind its
    /// predecessors (the proptest-pinned reference discipline).
    #[default]
    Sweep,
    /// Faulted pages ride a dedicated stream that overtakes the background
    /// sweep: they are encoded and delivered *first*, and no per-fault
    /// serialization penalty accrues
    /// ([`PostCopy::migrate_fault_lane_over`](crate::PostCopy::migrate_fault_lane_over)).
    FaultLane,
}

impl FaultService {
    /// Stable lowercase label (trace args, report tables).
    pub fn name(&self) -> &'static str {
        match self {
            FaultService::Sweep => "sweep",
            FaultService::FaultLane => "fault-lane",
        }
    }
}

/// The full decision for one migration: engine, data-plane shape, and
/// fault-service policy.
///
/// # Which plan do I want?
///
/// | Guest | Plan | Why |
/// |---|---|---|
/// | Tiny, or already paused | [`PlanEngine::StopAndCopy`] | The full copy is cheap; no rounds, no fault tail |
/// | Default live migration | [`PlanEngine::PreCopy`] | Downtime is only the residual dirty set |
/// | Big guest, idle fabric | [`PlanEngine::PreCopy`] + [`streams`](MigrationPlan::streams) > 1 | Stripes ECMP-spread over idle spine paths |
/// | Write-heavy (pre-copy cannot converge) | [`PlanEngine::PostCopy`] | Downtime is the vCPU state only |
/// | Write-heavy *and* latency-sensitive | [`PlanEngine::PostCopy`] + [`FaultService::FaultLane`] | Faulted pages overtake the sweep; no serialization tail |
/// | Sparse or duplicate-heavy memory | any + [`PageCompression`] | Zero runs / XBZRLE deltas shrink bytes on wire |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPlan {
    /// Which engine this migration rides.
    pub engine: PlanEngine,
    /// Parallel streams for the pipelined data plane (at most
    /// [`MAX_MIGRATION_STREAMS`]); 1 selects the serial streamed engines.
    pub streams: NonZeroUsize,
    /// Page compression crossing the wire.
    pub compression: PageCompression,
    /// XBZRLE delta-cache capacity in pages (see
    /// [`MigrationConfig::xbzrle_cache_pages`]).
    pub xbzrle_cache_pages: usize,
    /// Compression-stage workers for the pipelined data plane, decoupled
    /// from [`streams`](Self::streams) so encode bandwidth and compressor
    /// bandwidth scale independently; `None` matches the stream count (the
    /// pre-plan behaviour). The wire bytes are identical for any worker
    /// count — this knob only changes host wall-clock.
    pub compressors: Option<NonZeroUsize>,
    /// How post-copy demand faults are serviced (ignored by the other
    /// engines).
    pub fault_service: FaultService,
    /// Pre-copy round budget (see [`MigrationConfig::max_rounds`]).
    pub max_rounds: u32,
    /// Pre-copy convergence threshold in pages (see
    /// [`MigrationConfig::dirty_page_threshold`]).
    pub dirty_page_threshold: u64,
    /// Post-copy demand-faulted fraction (see
    /// [`MigrationConfig::postcopy_fault_fraction`]).
    pub postcopy_fault_fraction: f64,
}

impl Default for MigrationPlan {
    fn default() -> Self {
        MigrationConfig::default().plan(PlanEngine::default())
    }
}

impl MigrationPlan {
    /// A validating builder seeded with the default plan for `engine`.
    pub fn builder(engine: PlanEngine) -> MigrationPlanBuilder {
        MigrationPlanBuilder {
            plan: MigrationConfig::default().plan(engine),
        }
    }

    /// Lower the plan into the run-level knob set the engine entry points
    /// take. The engine choice and fault-service policy do not survive the
    /// lowering — they are dispatch, not knobs.
    pub fn config(&self) -> MigrationConfig {
        MigrationConfig {
            max_rounds: self.max_rounds,
            dirty_page_threshold: self.dirty_page_threshold,
            postcopy_fault_fraction: self.postcopy_fault_fraction,
            compression: self.compression,
            xbzrle_cache_pages: self.xbzrle_cache_pages,
            streams: self.streams,
        }
    }

    /// Compression-stage worker count for the pipelined data plane:
    /// [`compressors`](Self::compressors), defaulting to the stream count.
    pub fn compressor_workers(&self) -> NonZeroUsize {
        self.compressors.unwrap_or(self.streams)
    }

    /// Validate the plan. Checks every lowered config invariant
    /// ([`MigrationConfig::validate`]) plus the plan-only knobs.
    pub fn validate(&self) -> Result<()> {
        self.config().validate()?;
        if let Some(c) = self.compressors {
            if c.get() > MAX_MIGRATION_STREAMS {
                return Err(Error::Migration(format!(
                    "compressors must be at most {MAX_MIGRATION_STREAMS}, got {c}"
                )));
            }
        }
        Ok(())
    }
}

impl MigrationConfig {
    /// A validating builder seeded with [`MigrationConfig::default`].
    pub fn builder() -> MigrationConfigBuilder {
        MigrationConfigBuilder {
            config: MigrationConfig::default(),
            streams: 1,
        }
    }

    /// Lower this run-level config into a per-migration plan riding
    /// `engine`. Plan-only knobs take their defaults (sweep-ordered fault
    /// service, compressors matching the stream count), so a lowered plan
    /// behaves exactly like the config did before plans existed.
    pub fn plan(&self, engine: PlanEngine) -> MigrationPlan {
        MigrationPlan {
            engine,
            streams: self.streams,
            compression: self.compression,
            xbzrle_cache_pages: self.xbzrle_cache_pages,
            compressors: None,
            fault_service: FaultService::Sweep,
            max_rounds: self.max_rounds,
            dirty_page_threshold: self.dirty_page_threshold,
            postcopy_fault_fraction: self.postcopy_fault_fraction,
        }
    }
}

/// Builder for [`MigrationConfig`]; [`build`](Self::build) runs
/// [`MigrationConfig::validate`] once.
#[derive(Debug, Clone)]
pub struct MigrationConfigBuilder {
    config: MigrationConfig,
    streams: usize,
}

impl MigrationConfigBuilder {
    /// Set [`MigrationConfig::max_rounds`].
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        self.config.max_rounds = rounds;
        self
    }

    /// Set [`MigrationConfig::dirty_page_threshold`].
    pub fn dirty_page_threshold(mut self, pages: u64) -> Self {
        self.config.dirty_page_threshold = pages;
        self
    }

    /// Set [`MigrationConfig::postcopy_fault_fraction`].
    pub fn postcopy_fault_fraction(mut self, fraction: f64) -> Self {
        self.config.postcopy_fault_fraction = fraction;
        self
    }

    /// Set [`MigrationConfig::compression`].
    pub fn compression(mut self, compression: PageCompression) -> Self {
        self.config.compression = compression;
        self
    }

    /// Set [`MigrationConfig::xbzrle_cache_pages`].
    pub fn xbzrle_cache_pages(mut self, pages: usize) -> Self {
        self.config.xbzrle_cache_pages = pages;
        self
    }

    /// Set [`MigrationConfig::streams`] (zero is rejected by
    /// [`build`](Self::build), like every other invalid knob).
    pub fn streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Validate and return the config.
    pub fn build(self) -> Result<MigrationConfig> {
        let MigrationConfigBuilder {
            mut config,
            streams,
        } = self;
        config.streams = NonZeroUsize::new(streams)
            .ok_or_else(|| Error::Migration("streams must be at least 1".into()))?;
        config.validate()?;
        Ok(config)
    }
}

/// Builder for [`MigrationPlan`]; [`build`](Self::build) runs
/// [`MigrationPlan::validate`] once.
#[derive(Debug, Clone)]
pub struct MigrationPlanBuilder {
    plan: MigrationPlan,
}

impl MigrationPlanBuilder {
    /// Set [`MigrationPlan::streams`].
    pub fn streams(mut self, streams: NonZeroUsize) -> Self {
        self.plan.streams = streams;
        self
    }

    /// Set [`MigrationPlan::compression`].
    pub fn compression(mut self, compression: PageCompression) -> Self {
        self.plan.compression = compression;
        self
    }

    /// Set [`MigrationPlan::xbzrle_cache_pages`].
    pub fn xbzrle_cache_pages(mut self, pages: usize) -> Self {
        self.plan.xbzrle_cache_pages = pages;
        self
    }

    /// Set [`MigrationPlan::compressors`].
    pub fn compressors(mut self, compressors: NonZeroUsize) -> Self {
        self.plan.compressors = Some(compressors);
        self
    }

    /// Set [`MigrationPlan::fault_service`].
    pub fn fault_service(mut self, service: FaultService) -> Self {
        self.plan.fault_service = service;
        self
    }

    /// Set [`MigrationPlan::max_rounds`].
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        self.plan.max_rounds = rounds;
        self
    }

    /// Set [`MigrationPlan::dirty_page_threshold`].
    pub fn dirty_page_threshold(mut self, pages: u64) -> Self {
        self.plan.dirty_page_threshold = pages;
        self
    }

    /// Set [`MigrationPlan::postcopy_fault_fraction`].
    pub fn postcopy_fault_fraction(mut self, fraction: f64) -> Self {
        self.plan.postcopy_fault_fraction = fraction;
        self
    }

    /// Validate and return the plan.
    pub fn build(self) -> Result<MigrationPlan> {
        self.plan.validate()?;
        Ok(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_lowers_into_a_plan_and_back_without_loss() {
        let config = MigrationConfig {
            max_rounds: 7,
            dirty_page_threshold: 12,
            compression: PageCompression::Xbzrle,
            xbzrle_cache_pages: 99,
            streams: NonZeroUsize::new(4).unwrap(),
            ..Default::default()
        };
        for engine in [
            PlanEngine::StopAndCopy,
            PlanEngine::PreCopy,
            PlanEngine::PostCopy,
        ] {
            let plan = config.plan(engine);
            assert_eq!(plan.engine, engine);
            assert_eq!(plan.fault_service, FaultService::Sweep);
            assert_eq!(plan.compressor_workers().get(), 4);
            let lowered = plan.config();
            assert_eq!(lowered.max_rounds, config.max_rounds);
            assert_eq!(lowered.dirty_page_threshold, config.dirty_page_threshold);
            assert_eq!(lowered.compression, config.compression);
            assert_eq!(lowered.xbzrle_cache_pages, config.xbzrle_cache_pages);
            assert_eq!(lowered.streams, config.streams);
        }
    }

    #[test]
    fn config_builder_validates_once_and_rejects_bad_knobs() {
        let config = MigrationConfig::builder()
            .streams(4)
            .compression(PageCompression::Xbzrle)
            .xbzrle_cache_pages(128)
            .max_rounds(9)
            .dirty_page_threshold(16)
            .postcopy_fault_fraction(0.25)
            .build()
            .unwrap();
        assert_eq!(config.streams.get(), 4);
        assert_eq!(config.max_rounds, 9);
        assert!(MigrationConfig::builder().streams(0).build().is_err());
        assert!(MigrationConfig::builder()
            .streams(MAX_MIGRATION_STREAMS + 1)
            .build()
            .is_err());
        assert!(MigrationConfig::builder()
            .postcopy_fault_fraction(1.5)
            .build()
            .is_err());
        assert!(MigrationConfig::builder()
            .compression(PageCompression::Xbzrle)
            .xbzrle_cache_pages(0)
            .build()
            .is_err());
        assert!(MigrationConfig::builder().max_rounds(0).build().is_err());
    }

    #[test]
    fn plan_builder_validates_once_and_rejects_bad_knobs() {
        let plan = MigrationPlan::builder(PlanEngine::PostCopy)
            .streams(NonZeroUsize::new(2).unwrap())
            .compressors(NonZeroUsize::new(8).unwrap())
            .fault_service(FaultService::FaultLane)
            .postcopy_fault_fraction(0.5)
            .build()
            .unwrap();
        assert_eq!(plan.engine, PlanEngine::PostCopy);
        assert_eq!(plan.fault_service, FaultService::FaultLane);
        assert_eq!(plan.compressor_workers().get(), 8);
        assert!(MigrationPlan::builder(PlanEngine::PreCopy)
            .postcopy_fault_fraction(-0.1)
            .build()
            .is_err());
        assert!(MigrationPlan::builder(PlanEngine::PreCopy)
            .compressors(NonZeroUsize::new(MAX_MIGRATION_STREAMS + 1).unwrap())
            .build()
            .is_err());
        assert!(MigrationPlan::builder(PlanEngine::PreCopy)
            .max_rounds(0)
            .build()
            .is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PlanEngine::StopAndCopy.name(), "stop-and-copy");
        assert_eq!(PlanEngine::PreCopy.name(), "pre-copy");
        assert_eq!(PlanEngine::PostCopy.name(), "post-copy");
        assert_eq!(FaultService::Sweep.name(), "sweep");
        assert_eq!(FaultService::FaultLane.name(), "fault-lane");
    }

    #[test]
    fn default_plan_matches_default_config() {
        let plan = MigrationPlan::default();
        assert_eq!(plan.engine, PlanEngine::PreCopy);
        let config = MigrationConfig::default();
        assert_eq!(plan.max_rounds, config.max_rounds);
        assert_eq!(plan.streams, config.streams);
        plan.validate().unwrap();
    }
}
