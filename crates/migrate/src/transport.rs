//! Byte-stream transports carrying the migration wire format.
//!
//! The engines' streaming halves ([`stream`](crate::stream)) speak to the
//! network only through [`Transport`]: frames are appended to an in-flight
//! **burst** with [`Transport::send`], and a [`Transport::deliver`] call —
//! issued at every [`EndOfRound`](crate::wire::FrameKind::EndOfRound)
//! boundary — models the burst crossing the wire and hands the received
//! bytes to the destination side. Two implementations ship:
//!
//! * [`LoopbackTransport`] — same-process delivery timed by a single
//!   point-to-point [`Link`]; byte-for-byte and nanosecond-for-nanosecond
//!   equivalent to the direct in-memory engines (pinned by proptest).
//! * [`FabricTransport`] — delivery across a shared
//!   [`Fabric`]: per-host NIC serialization, backbone
//!   contention with every other migration and DR stream, and MTU chunk
//!   framing, so migration duration and downtime come from modelled
//!   bytes-on-wire.
//!
//! Burst buffers are recycled ([`Transport::recycle`]) so steady-state
//! rounds allocate nothing new.

use rvisor_net::{Fabric, FabricModel, Link};
use rvisor_types::{Nanoseconds, Result};

/// A simulated byte-stream channel between a migration source and sink.
pub trait Transport {
    /// Earliest simulated instant a new burst could start transmitting.
    fn free_at(&self) -> Nanoseconds;

    /// Append one encoded frame to the in-flight burst.
    fn send(&mut self, frame: &[u8]) -> Result<()>;

    /// Append one frame by encoding it directly into the transport's burst
    /// buffer. This is the zero-bounce path for page frames: the encoder's
    /// `fill` writes the frame (header + payload) straight into the burst,
    /// so raw page bytes go guest memory → burst with a single copy.
    fn send_built(&mut self, build: &mut dyn FnMut(&mut Vec<u8>)) -> Result<()>;

    /// Transmit the accumulated burst starting no earlier than `now`.
    /// Returns the simulated arrival time and the delivered bytes; the
    /// caller hands the buffer back via [`Transport::recycle`] once the
    /// sink has applied it.
    fn deliver(&mut self, now: Nanoseconds) -> Result<(Nanoseconds, Vec<u8>)>;

    /// Account and time a burst of `bytes` crossing the channel starting no
    /// earlier than `now`, *without* routing the bytes through the internal
    /// burst buffer. Busy-time marks and the [`Transport::bytes_sent`]
    /// counter advance exactly as a [`Transport::deliver`] of the same size
    /// would; the pipelined engine uses this because it hands the encoded
    /// bytes to the sink thread directly and only needs the channel model.
    fn transmit_bytes(&mut self, now: Nanoseconds, bytes: u64) -> Result<Nanoseconds>;

    /// Like [`Transport::transmit_bytes`], but as parallel streams fairly
    /// sharing the channel: `stripes[i]` is stream `i`'s payload bytes.
    ///
    /// On a point-to-point [`LoopbackTransport`] fair sharing of one pipe
    /// completes the aggregate exactly when a single stream would, so this
    /// is `transmit_bytes` of the sum — which is what keeps a multi-stream
    /// loopback migration `==`-report-equal to the serial engine. On a
    /// [`FabricTransport`] each stream pays its own MTU chunk framing
    /// ([`Fabric::transfer_striped`]).
    fn transmit_striped(&mut self, now: Nanoseconds, stripes: &[u64]) -> Result<Nanoseconds> {
        self.transmit_bytes(now, stripes.iter().sum())
    }

    /// Return a delivered burst buffer for reuse by the next round.
    fn recycle(&mut self, buf: Vec<u8>);

    /// One-way propagation latency of the underlying channel (drives the
    /// post-copy demand-fault penalty).
    fn latency(&self) -> Nanoseconds;

    /// Modelled time for `bytes` to cross the idle channel (drives the
    /// post-copy per-fault service time).
    fn transfer_time(&self, bytes: u64) -> Nanoseconds;

    /// Total payload bytes handed to [`Transport::deliver`] so far.
    fn bytes_sent(&self) -> u64;
}

/// The burst/spare buffer pair every transport implementation shares: one
/// recycling protocol, written once. Frames accumulate in `burst`; on
/// delivery the burst is handed out whole and the previously recycled
/// buffer takes its place, so steady-state rounds allocate nothing.
#[derive(Debug, Default)]
struct BurstBuffer {
    burst: Vec<u8>,
    spare: Vec<u8>,
    bytes_sent: u64,
}

impl BurstBuffer {
    fn append(&mut self, frame: &[u8]) {
        self.burst.extend_from_slice(frame);
    }

    fn build(&mut self, build: &mut dyn FnMut(&mut Vec<u8>)) {
        build(&mut self.burst);
    }

    fn len(&self) -> u64 {
        self.burst.len() as u64
    }

    /// Hand the burst out for delivery, installing the recycled spare as
    /// the next round's (empty) burst.
    fn take(&mut self) -> Vec<u8> {
        self.bytes_sent += self.burst.len() as u64;
        std::mem::replace(&mut self.burst, std::mem::take(&mut self.spare))
    }

    fn recycle(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.spare = buf;
    }
}

/// In-process delivery timed by one point-to-point [`Link`].
///
/// Borrows the link mutably so the caller's link keeps its busy-time
/// account across migrations (back-to-back transfers queue), exactly like
/// handing the same `&mut Link` to the direct engines.
#[derive(Debug)]
pub struct LoopbackTransport<'l> {
    link: &'l mut Link,
    buf: BurstBuffer,
}

impl<'l> LoopbackTransport<'l> {
    /// Create a loopback transport over `link`.
    pub fn new(link: &'l mut Link) -> Self {
        LoopbackTransport {
            link,
            buf: BurstBuffer::default(),
        }
    }
}

impl Transport for LoopbackTransport<'_> {
    fn free_at(&self) -> Nanoseconds {
        self.link.free_at()
    }

    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.buf.append(frame);
        Ok(())
    }

    fn send_built(&mut self, build: &mut dyn FnMut(&mut Vec<u8>)) -> Result<()> {
        self.buf.build(build);
        Ok(())
    }

    fn deliver(&mut self, now: Nanoseconds) -> Result<(Nanoseconds, Vec<u8>)> {
        let done = self.link.transmit(now, self.buf.len());
        Ok((done, self.buf.take()))
    }

    fn transmit_bytes(&mut self, now: Nanoseconds, bytes: u64) -> Result<Nanoseconds> {
        self.buf.bytes_sent += bytes;
        Ok(self.link.transmit(now, bytes))
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        self.buf.recycle(buf);
    }

    fn latency(&self) -> Nanoseconds {
        self.link.model().latency
    }

    fn transfer_time(&self, bytes: u64) -> Nanoseconds {
        self.link.model().transfer_time(bytes)
    }

    fn bytes_sent(&self) -> u64 {
        self.buf.bytes_sent
    }
}

/// Delivery across a shared fabric, between two endpoint indices.
///
/// Generic over [`FabricModel`], defaulting to the single-spine [`Fabric`]:
/// the same transport carries a migration over a two-tier
/// `ClosFabric` (or the topology-erasing `AnyFabric`) without any caller
/// changes. Borrows the fabric mutably: the busy-time marks the migration
/// leaves on its NICs, leaves and spines are visible to every later
/// transfer, which is how rebalance storms and DR backup traffic contend
/// with each other.
#[derive(Debug)]
pub struct FabricTransport<'f, F: FabricModel = Fabric> {
    fabric: &'f mut F,
    from: usize,
    to: usize,
    /// Earliest simulated instant any burst of this stream may start.
    /// Callers embedded in a larger simulation (the orchestrator) set this
    /// to their current clock so a migration started at `t` cannot occupy
    /// the fabric in the past — which is what makes it contend with backup
    /// streams issued at the same instant.
    start_floor: Nanoseconds,
    buf: BurstBuffer,
}

impl<'f, F: FabricModel> FabricTransport<'f, F> {
    /// Create a transport carrying one migration from endpoint `from` to
    /// endpoint `to` of `fabric`.
    pub fn new(fabric: &'f mut F, from: usize, to: usize) -> Result<Self> {
        Self::starting_at(fabric, from, to, Nanoseconds::ZERO)
    }

    /// Like [`FabricTransport::new`], but no burst starts before `floor`
    /// (the caller's current simulated time).
    pub fn starting_at(
        fabric: &'f mut F,
        from: usize,
        to: usize,
        floor: Nanoseconds,
    ) -> Result<Self> {
        fabric.path_free_at(from, to)?; // validates the endpoint pair
        Ok(FabricTransport {
            fabric,
            from,
            to,
            start_floor: floor,
            buf: BurstBuffer::default(),
        })
    }
}

impl<F: FabricModel> Transport for FabricTransport<'_, F> {
    fn free_at(&self) -> Nanoseconds {
        self.fabric
            .path_free_at(self.from, self.to)
            .expect("endpoints validated at construction")
            .max(self.start_floor)
    }

    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.buf.append(frame);
        Ok(())
    }

    fn send_built(&mut self, build: &mut dyn FnMut(&mut Vec<u8>)) -> Result<()> {
        self.buf.build(build);
        Ok(())
    }

    fn deliver(&mut self, now: Nanoseconds) -> Result<(Nanoseconds, Vec<u8>)> {
        let done = self.fabric.transfer(
            self.from,
            self.to,
            now.max(self.start_floor),
            self.buf.len(),
        )?;
        Ok((done, self.buf.take()))
    }

    fn transmit_bytes(&mut self, now: Nanoseconds, bytes: u64) -> Result<Nanoseconds> {
        self.buf.bytes_sent += bytes;
        self.fabric
            .transfer(self.from, self.to, now.max(self.start_floor), bytes)
    }

    fn transmit_striped(&mut self, now: Nanoseconds, stripes: &[u64]) -> Result<Nanoseconds> {
        self.buf.bytes_sent += stripes.iter().sum::<u64>();
        self.fabric
            .transfer_striped(self.from, self.to, now.max(self.start_floor), stripes)
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        self.buf.recycle(buf);
    }

    fn latency(&self) -> Nanoseconds {
        self.fabric.latency(self.from, self.to)
    }

    fn transfer_time(&self, bytes: u64) -> Nanoseconds {
        self.fabric.transfer_time(self.from, self.to, bytes)
    }

    fn bytes_sent(&self) -> u64 {
        self.buf.bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_net::{FabricParams, LinkModel};

    #[test]
    fn loopback_times_bursts_like_the_bare_link() {
        let mut reference = Link::new(LinkModel::gigabit());
        let expect = reference.transmit(Nanoseconds::ZERO, 1000);

        let mut link = Link::new(LinkModel::gigabit());
        let mut t = LoopbackTransport::new(&mut link);
        assert_eq!(t.free_at(), Nanoseconds::ZERO);
        t.send(&[0u8; 600]).unwrap();
        t.send(&[1u8; 400]).unwrap();
        let (done, buf) = t.deliver(Nanoseconds::ZERO).unwrap();
        assert_eq!(done, expect);
        assert_eq!(buf.len(), 1000);
        assert_eq!(&buf[..600], &[0u8; 600][..]);
        assert_eq!(t.bytes_sent(), 1000);
        t.recycle(buf);
        // The next burst reuses the recycled buffer and queues behind.
        t.send(&[2u8; 100]).unwrap();
        let (done2, buf2) = t.deliver(Nanoseconds::ZERO).unwrap();
        assert!(done2 > done);
        assert_eq!(buf2.len(), 100);
        assert_eq!(t.latency(), LinkModel::gigabit().latency);
        assert!(t.transfer_time(1 << 20) > t.latency());
    }

    #[test]
    fn fabric_transport_contends_with_other_traffic() {
        let mut fabric = Fabric::new(4, FabricParams::office_lan()).unwrap();
        // Another tenant's transfer keeps the backbone busy first.
        let other_done = fabric.transfer(2, 3, Nanoseconds::ZERO, 4 << 20).unwrap();

        let mut t = FabricTransport::new(&mut fabric, 0, 1).unwrap();
        assert!(t.free_at() >= other_done.saturating_sub(FabricParams::office_lan().latency));
        t.send(&[7u8; 4096]).unwrap();
        let (done, buf) = t.deliver(Nanoseconds::ZERO).unwrap();
        assert!(done > other_done, "must queue behind the busy backbone");
        assert_eq!(buf.len(), 4096);
        t.recycle(buf);
        assert_eq!(t.bytes_sent(), 4096);
        assert!(FabricTransport::new(&mut fabric, 1, 1).is_err());
    }

    #[test]
    fn transmit_bytes_times_and_counts_like_deliver() {
        // Loopback: transmit_bytes of n == deliver of an n-byte burst.
        let mut ref_link = Link::new(LinkModel::gigabit());
        let mut reference = LoopbackTransport::new(&mut ref_link);
        reference.send(&[0u8; 1234]).unwrap();
        let (ref_done, buf) = reference.deliver(Nanoseconds::ZERO).unwrap();
        reference.recycle(buf);

        let mut link = Link::new(LinkModel::gigabit());
        let mut t = LoopbackTransport::new(&mut link);
        let done = t.transmit_bytes(Nanoseconds::ZERO, 1234).unwrap();
        assert_eq!(done, ref_done);
        assert_eq!(t.bytes_sent(), reference.bytes_sent());
        // Striped on a point-to-point pipe is the aggregate.
        let striped = t.transmit_striped(Nanoseconds::ZERO, &[1000, 234]).unwrap();
        let serial = reference.transmit_bytes(Nanoseconds::ZERO, 1234).unwrap();
        assert_eq!(striped, serial);
        assert_eq!(t.bytes_sent(), reference.bytes_sent());

        // Fabric: the floor applies and striping pays per-stream framing.
        let mut fabric = Fabric::new(2, FabricParams::office_lan()).unwrap();
        let floor = Nanoseconds::from_secs(1);
        let mut ft = FabricTransport::starting_at(&mut fabric, 0, 1, floor).unwrap();
        let one = ft.transmit_bytes(Nanoseconds::ZERO, 1_000_000).unwrap();
        assert!(one > floor);
        let striped = ft
            .transmit_striped(Nanoseconds::ZERO, &[500_000, 500_000])
            .unwrap();
        assert!(striped > one, "the striped burst queues behind the first");
        assert_eq!(ft.bytes_sent(), 2_000_000);
    }

    #[test]
    fn start_floor_keeps_streams_out_of_the_past() {
        let mut fabric = Fabric::new(2, FabricParams::office_lan()).unwrap();
        let floor = Nanoseconds::from_secs(100);
        let mut t = FabricTransport::starting_at(&mut fabric, 0, 1, floor).unwrap();
        // The fabric is idle since t=0, but this stream belongs to a caller
        // whose clock already reads 100 s.
        assert_eq!(t.free_at(), floor);
        t.send(&[0u8; 1000]).unwrap();
        let (done, buf) = t.deliver(Nanoseconds::ZERO).unwrap();
        assert!(
            done > floor,
            "the burst must not occupy the fabric before the floor"
        );
        t.recycle(buf);
        // The busy-marks it leaves behind gate later same-instant traffic.
        assert!(fabric.path_free_at(0, 1).unwrap() >= floor);
    }
}
