//! The versioned migration wire format.
//!
//! Everything a migration moves — guest pages, vCPU state, round
//! boundaries — crosses the [`Transport`](crate::Transport) as **frames**:
//! a fixed 16-byte header followed by a payload. The stream opens with a
//! [`FrameKind::Hello`] carrying magic, version, page size and guest size
//! (so an incompatible destination rejects the stream before any memory is
//! touched), every frame carries a FNV-1a checksum verified *before* its
//! payload is applied, zero pages can be run-length-coalesced into a single
//! [`FrameKind::ZeroRun`] frame, and each pre-copy round is terminated by an
//! explicit [`FrameKind::EndOfRound`] marker.
//!
//! ## Frame layout (all integers little-endian)
//!
//! ```text
//! offset 0   kind         u8   (Hello / Page / ZeroRun / VcpuState / EndOfRound)
//! offset 1   mode         u8   (Page only: raw / zero marker / XBZRLE delta)
//! offset 2   payload_len  u16
//! offset 4   checksum     u32  (folded word-wise FNV-1a-64, see below)
//! offset 8   arg          u64  (kind-specific: page index, first page, round, ...)
//! offset 16  payload      [u8; payload_len]
//! ```
//!
//! The checksum (format version 2) is FNV-1a-64 fed one little-endian `u64`
//! word at a time — first the header with its checksum field zeroed (two
//! words), then the payload with its ragged tail zero-padded to a word —
//! and XOR-folded to 32 bits. Hashing words instead of bytes cuts the
//! multiply chain by 8×, which matters because the checksum touches every
//! payload byte twice per migration (once at encode, once at verify) and
//! dominated the wire codec's wall-clock cost in format version 1.
//!
//! ## Accounting alignment
//!
//! The direct (in-memory) engines in [`engines`](crate::engines) charge the
//! link with exactly the byte counts this format produces —
//! [`FRAME_HEADER_BYTES`] per page record, [`HELLO_WIRE_BYTES`] per stream,
//! [`END_OF_ROUND_WIRE_BYTES`] per round, [`VCPU_STATE_WIRE_BYTES`] per
//! vCPU (header included) — which is what makes a loopback-transport
//! migration report `==`-equal to the direct path (pinned by proptest in
//! [`stream`](crate::stream)).

use rvisor_types::{Error, Result, PAGE_SIZE};
use rvisor_vcpu::cpu::{PrivMode, NUM_CSRS};
use rvisor_vcpu::isa::NUM_REGS;
use rvisor_vcpu::VcpuState;

use crate::compress::WirePage;

/// Stream magic: `"RVM1"`.
pub const WIRE_MAGIC: u32 = 0x3152_564D;
/// Current wire-format version. Bump on any incompatible layout change;
/// the sink rejects streams whose Hello announces a version outside
/// [`WIRE_VERSION_MIN`]`..=WIRE_VERSION`.
/// Version 2 switched the frame checksum from byte-wise FNV-1a-32 to the
/// folded word-wise FNV-1a-64 described in the module docs. Version 3 added
/// the content-addressed backup frames ([`FrameKind::ChunkRef`] /
/// [`FrameKind::ChunkData`]); every version-2 frame is unchanged, so v2
/// streams stay decodable.
pub const WIRE_VERSION: u16 = 3;
/// Oldest wire-format version this build still decodes.
pub const WIRE_VERSION_MIN: u16 = 2;
/// Fixed size of every frame header.
pub const FRAME_HEADER_BYTES: u64 = 16;
/// On-wire size of the Hello frame (header + magic/version/page-size/guest-size).
pub const HELLO_WIRE_BYTES: u64 = FRAME_HEADER_BYTES + 18;
/// On-wire size of an end-of-round marker (header only).
pub const END_OF_ROUND_WIRE_BYTES: u64 = FRAME_HEADER_BYTES;
/// On-wire size of one vCPU's state frame, *header included*: the modelled
/// 4 KiB per-vCPU state figure of the engines covers its own framing.
pub const VCPU_STATE_WIRE_BYTES: u64 = 4096;
/// Payload bytes of one vCPU state frame (registers + CSRs, zero-padded).
pub const VCPU_STATE_PAYLOAD_BYTES: usize = (VCPU_STATE_WIRE_BYTES - FRAME_HEADER_BYTES) as usize;

/// Total on-wire bytes for the vCPU state of `n_vcpus` vCPUs (at least one
/// frame is always sent, mirroring the engines' `max(1)` accounting).
pub fn vcpu_state_wire_bytes(n_vcpus: usize) -> u64 {
    VCPU_STATE_WIRE_BYTES * n_vcpus.max(1) as u64
}

/// Serialized size of a chunk id (fingerprint `u64` + ordinal `u32`).
pub const CHUNK_ID_BYTES: u64 = 12;
/// On-wire size of a [`FrameKind::ChunkRef`] frame (header + chunk id).
pub const CHUNK_REF_WIRE_BYTES: u64 = FRAME_HEADER_BYTES + CHUNK_ID_BYTES;
/// On-wire size of a [`FrameKind::ChunkData`] frame carrying one full page
/// (header + chunk id + page bytes).
pub const CHUNK_DATA_WIRE_BYTES: u64 = FRAME_HEADER_BYTES + CHUNK_ID_BYTES + PAGE_SIZE;

/// Total on-wire bytes of one deduplicated backup stream: the Hello
/// handshake, one [`FrameKind::ChunkData`] per novel page, one
/// [`FrameKind::ChunkRef`] per page the DR endpoint already stores, the
/// vCPU state, and the closing end-of-round marker. The orchestrator
/// charges the fabric with exactly this figure; the
/// `dedup_backup_stream_matches_accounting` test pins it to an actually
/// encoded stream.
pub fn dedup_backup_wire_bytes(novel_pages: u64, deduped_pages: u64, n_vcpus: usize) -> u64 {
    HELLO_WIRE_BYTES
        + novel_pages * CHUNK_DATA_WIRE_BYTES
        + deduped_pages * CHUNK_REF_WIRE_BYTES
        + vcpu_state_wire_bytes(n_vcpus)
        + END_OF_ROUND_WIRE_BYTES
}

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Stream opener: magic, version, page size, guest size.
    Hello = 1,
    /// One guest page (raw, zero marker, or XBZRLE delta — see `mode`).
    Page = 2,
    /// A run of consecutive all-zero pages (`arg` = first page, payload =
    /// count), the run-length form of the zero-page marker.
    ZeroRun = 3,
    /// One vCPU's architectural state (`arg` = vCPU index).
    VcpuState = 4,
    /// End of a pre-copy round (`arg` = round number); the source flushes
    /// the transport here.
    EndOfRound = 5,
    /// Deduplicated-backup reference to a chunk the DR endpoint already
    /// stores (`arg` = page index, payload = chunk id). Wire v3.
    ChunkRef = 6,
    /// Deduplicated-backup chunk the DR endpoint does not yet store
    /// (`arg` = page index, payload = chunk id + page bytes). Wire v3.
    ChunkData = 7,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Page),
            3 => Some(FrameKind::ZeroRun),
            4 => Some(FrameKind::VcpuState),
            5 => Some(FrameKind::EndOfRound),
            6 => Some(FrameKind::ChunkRef),
            7 => Some(FrameKind::ChunkData),
            _ => None,
        }
    }
}

/// Page-frame payload encodings (the `mode` header byte).
pub const MODE_RAW: u8 = 0;
/// The page is all zero; payload is the 1-byte marker.
pub const MODE_ZERO: u8 = 1;
/// XBZRLE delta against the destination's current copy of the page.
pub const MODE_DELTA: u8 = 2;

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Page encoding mode (meaningful for [`FrameKind::Page`] only).
    pub mode: u8,
    /// Kind-specific argument (page index, first page of a run, vCPU
    /// index, round number, total pages for Hello).
    pub arg: u64,
    /// Payload length in bytes.
    pub payload_len: u16,
}

/// A decoded frame: header plus a zero-copy view of its payload inside the
/// received burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFrame<'a> {
    /// The frame header.
    pub header: FrameHeader,
    /// The payload bytes (borrowed from the burst buffer).
    pub payload: &'a [u8],
}

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV64_PRIME)
}

/// Checksum over the header (checksum field zeroed) and payload: word-wise
/// FNV-1a-64 XOR-folded to 32 bits (wire format version 2 — one multiply
/// per 8 payload bytes instead of one per byte).
fn frame_checksum(kind: u8, mode: u8, payload_len: u16, arg: u64, payload: &[u8]) -> u32 {
    // The header with its checksum field zeroed, as two little-endian words.
    let header_word = kind as u64 | (mode as u64) << 8 | (payload_len as u64) << 16;
    let mut h = mix(mix(FNV64_OFFSET, header_word), arg);
    let mut words = payload.chunks_exact(8);
    for word in words.by_ref() {
        h = mix(
            h,
            u64::from_le_bytes(word.try_into().expect("8-byte chunk")),
        );
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        // Ragged tail zero-padded to one word; the true length is already
        // mixed in via the header word, so padding is unambiguous.
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        h = mix(h, u64::from_le_bytes(last));
    }
    (h ^ (h >> 32)) as u32
}

const HEADER: usize = FRAME_HEADER_BYTES as usize;

/// Append a frame to `out`: 16-byte header, then the payload, each written
/// exactly once (`extend_from_slice`, no zero-fill pass over the payload
/// area). Raw page frames stay copy-once: the page bytes go straight from
/// the guest-memory view into the burst buffer.
fn put_frame(out: &mut Vec<u8>, kind: FrameKind, mode: u8, arg: u64, payload: &[u8]) {
    debug_assert!(payload.len() <= u16::MAX as usize, "payload too large");
    let payload_len = payload.len() as u16;
    let checksum = frame_checksum(kind as u8, mode, payload_len, arg, payload);
    let mut header = [0u8; HEADER];
    header[0] = kind as u8;
    header[1] = mode;
    header[2..4].copy_from_slice(&payload_len.to_le_bytes());
    header[4..8].copy_from_slice(&checksum.to_le_bytes());
    header[8..16].copy_from_slice(&arg.to_le_bytes());
    out.reserve(HEADER + payload.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(payload);
}

/// Append the stream-opening Hello frame.
pub fn put_hello(out: &mut Vec<u8>, total_pages: u64, memory_bytes: u64) {
    let mut p = [0u8; 18];
    p[0..4].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
    p[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    p[6..10].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    p[10..18].copy_from_slice(&memory_bytes.to_le_bytes());
    put_frame(out, FrameKind::Hello, 0, total_pages, &p);
}

/// Append a raw page frame (copy-once from the borrowed page contents).
pub fn put_page_raw(out: &mut Vec<u8>, page: u64, contents: &[u8]) {
    put_frame(out, FrameKind::Page, MODE_RAW, page, contents);
}

/// Append a single zero-page marker frame (1-byte payload, matching the
/// direct path's 1-byte zero-marker accounting).
pub fn put_page_zero(out: &mut Vec<u8>, page: u64) {
    put_frame(out, FrameKind::Page, MODE_ZERO, page, &[0u8]);
}

/// Append an XBZRLE delta frame.
pub fn put_page_delta(out: &mut Vec<u8>, page: u64, delta: &[u8]) {
    put_frame(out, FrameKind::Page, MODE_DELTA, page, delta);
}

/// Append the frame for one compressed page.
pub fn put_wire_page(out: &mut Vec<u8>, page: u64, wire: &WirePage) {
    match wire {
        WirePage::Raw(bytes) => put_page_raw(out, page, bytes),
        WirePage::Zero => put_page_zero(out, page),
        WirePage::Delta(delta) => put_page_delta(out, page, delta),
    }
}

/// Append a run of `count` consecutive all-zero pages starting at
/// `first_page` as one frame (8-byte payload regardless of run length).
pub fn put_zero_run(out: &mut Vec<u8>, first_page: u64, count: u64) {
    put_frame(
        out,
        FrameKind::ZeroRun,
        MODE_ZERO,
        first_page,
        &count.to_le_bytes(),
    );
}

/// Append an end-of-round marker.
pub fn put_end_of_round(out: &mut Vec<u8>, round: u32) {
    put_frame(out, FrameKind::EndOfRound, 0, round as u64, &[]);
}

fn chunk_id_payload(fingerprint: u64, ordinal: u32) -> [u8; CHUNK_ID_BYTES as usize] {
    let mut p = [0u8; CHUNK_ID_BYTES as usize];
    p[0..8].copy_from_slice(&fingerprint.to_le_bytes());
    p[8..12].copy_from_slice(&ordinal.to_le_bytes());
    p
}

/// Append a chunk *reference* for `page`: the DR endpoint already stores
/// these bytes, only the 12-byte chunk id crosses the wire.
pub fn put_chunk_ref(out: &mut Vec<u8>, page: u64, fingerprint: u64, ordinal: u32) {
    put_frame(
        out,
        FrameKind::ChunkRef,
        MODE_RAW,
        page,
        &chunk_id_payload(fingerprint, ordinal),
    );
}

/// Append a novel chunk for `page`: chunk id followed by the page bytes.
pub fn put_chunk_data(out: &mut Vec<u8>, page: u64, fingerprint: u64, ordinal: u32, bytes: &[u8]) {
    let mut payload = Vec::with_capacity(CHUNK_ID_BYTES as usize + bytes.len());
    payload.extend_from_slice(&chunk_id_payload(fingerprint, ordinal));
    payload.extend_from_slice(bytes);
    put_frame(out, FrameKind::ChunkData, MODE_RAW, page, &payload);
}

/// Decode the chunk id of a [`FrameKind::ChunkRef`] or
/// [`FrameKind::ChunkData`] payload, returning `(fingerprint, ordinal)`.
pub fn decode_chunk_id(payload: &[u8]) -> Result<(u64, u32)> {
    if payload.len() < CHUNK_ID_BYTES as usize {
        return Err(Error::WireProtocol {
            detail: format!(
                "chunk id payload is {} bytes, need {CHUNK_ID_BYTES}",
                payload.len()
            ),
            offset: 0,
        });
    }
    Ok((
        read_u64(&payload[0..8]),
        u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")),
    ))
}

/// Decode a [`FrameKind::ChunkData`] payload into its chunk id and page
/// bytes.
pub fn decode_chunk_data(payload: &[u8]) -> Result<((u64, u32), &[u8])> {
    let id = decode_chunk_id(payload)?;
    Ok((id, &payload[CHUNK_ID_BYTES as usize..]))
}

/// Append one vCPU's state, zero-padded to the fixed modelled size.
pub fn put_vcpu_state(out: &mut Vec<u8>, index: u32, state: &VcpuState) {
    let mut p = [0u8; VCPU_STATE_PAYLOAD_BYTES];
    p[0..8].copy_from_slice(&state.pc.to_le_bytes());
    p[8..16].copy_from_slice(&state.ptbr.to_le_bytes());
    p[16] = match state.mode {
        PrivMode::User => 0,
        PrivMode::Supervisor => 1,
    };
    p[17] = NUM_REGS as u8;
    p[18] = NUM_CSRS as u8;
    let mut at = 19;
    for r in &state.regs {
        p[at..at + 8].copy_from_slice(&r.to_le_bytes());
        at += 8;
    }
    for c in &state.csrs {
        p[at..at + 8].copy_from_slice(&c.to_le_bytes());
        at += 8;
    }
    put_frame(out, FrameKind::VcpuState, 0, index as u64, &p);
}

fn read_u64(p: &[u8]) -> u64 {
    u64::from_le_bytes(p[..8].try_into().expect("8 bytes"))
}

/// Decode a vCPU state payload written by [`put_vcpu_state`].
pub fn decode_vcpu_state(payload: &[u8]) -> Result<VcpuState> {
    let need = 19 + 8 * (NUM_REGS + NUM_CSRS);
    if payload.len() < need {
        return Err(Error::WireProtocol {
            detail: format!("vCPU state payload is {} bytes, need {need}", payload.len()),
            offset: 0,
        });
    }
    if payload[17] as usize != NUM_REGS || payload[18] as usize != NUM_CSRS {
        return Err(Error::WireProtocol {
            detail: format!(
                "vCPU state register file shape {}x{} does not match {NUM_REGS}x{NUM_CSRS}",
                payload[17], payload[18]
            ),
            offset: 0,
        });
    }
    let mut state = VcpuState {
        pc: read_u64(&payload[0..8]),
        ptbr: read_u64(&payload[8..16]),
        mode: if payload[16] == 0 {
            PrivMode::User
        } else {
            PrivMode::Supervisor
        },
        ..VcpuState::default()
    };
    let mut at = 19;
    for r in &mut state.regs {
        *r = read_u64(&payload[at..at + 8]);
        at += 8;
    }
    for c in &mut state.csrs {
        *c = read_u64(&payload[at..at + 8]);
        at += 8;
    }
    Ok(state)
}

/// Sequential zero-copy frame reader over one received burst.
///
/// Every frame's checksum is verified **before** the frame is handed to the
/// caller, so a corrupted frame surfaces as a typed
/// [`Error::WireProtocol`] without any of its payload reaching guest
/// memory.
#[derive(Debug)]
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Read frames from `buf` (one transport burst).
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader { buf, pos: 0 }
    }

    /// Byte offset of the next unread frame within the burst.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    fn fault(&self, detail: String) -> Error {
        Error::WireProtocol {
            detail,
            offset: self.pos as u64,
        }
    }

    /// Decode the next frame, or `None` at the end of the burst.
    pub fn next_frame(&mut self) -> Result<Option<WireFrame<'a>>> {
        if self.pos == self.buf.len() {
            return Ok(None);
        }
        let rest = &self.buf[self.pos..];
        if rest.len() < HEADER {
            return Err(self.fault(format!(
                "truncated frame header: {} bytes left, need {HEADER}",
                rest.len()
            )));
        }
        let kind_raw = rest[0];
        let kind = FrameKind::from_u8(kind_raw)
            .ok_or_else(|| self.fault(format!("unknown frame kind {kind_raw}")))?;
        let mode = rest[1];
        let payload_len = u16::from_le_bytes([rest[2], rest[3]]);
        let stored_checksum = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let arg = read_u64(&rest[8..16]);
        let end = HEADER + payload_len as usize;
        if rest.len() < end {
            return Err(self.fault(format!(
                "frame payload of {payload_len} bytes runs past the burst end"
            )));
        }
        let payload = &rest[HEADER..end];
        let computed = frame_checksum(kind_raw, mode, payload_len, arg, payload);
        if computed != stored_checksum {
            return Err(self.fault(format!(
                "checksum mismatch on {kind:?} frame (arg {arg}): stored {stored_checksum:#010x}, computed {computed:#010x}"
            )));
        }
        self.pos += end;
        Ok(Some(WireFrame {
            header: FrameHeader {
                kind,
                mode,
                arg,
                payload_len,
            },
            payload,
        }))
    }
}

/// Decoded contents of a Hello frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Stream format version.
    pub version: u16,
    /// Page size of the source.
    pub page_size: u32,
    /// Total pages of the source guest.
    pub total_pages: u64,
    /// Total guest memory bytes of the source.
    pub memory_bytes: u64,
}

/// Validate and decode a Hello frame (magic and version are checked here;
/// geometry checks against the destination are the sink's job).
pub fn decode_hello(frame: &WireFrame<'_>) -> Result<Hello> {
    let err = |detail: String| Error::WireProtocol { detail, offset: 0 };
    if frame.header.kind != FrameKind::Hello {
        return Err(err(format!(
            "stream must open with a Hello frame, got {:?}",
            frame.header.kind
        )));
    }
    if frame.payload.len() < 18 {
        return Err(err("Hello payload truncated".into()));
    }
    let magic = u32::from_le_bytes(frame.payload[0..4].try_into().expect("4 bytes"));
    if magic != WIRE_MAGIC {
        return Err(err(format!(
            "bad stream magic {magic:#010x} (want {WIRE_MAGIC:#010x})"
        )));
    }
    let version = u16::from_le_bytes([frame.payload[4], frame.payload[5]]);
    if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
        return Err(err(format!(
            "unsupported wire version {version} (this build speaks {WIRE_VERSION_MIN}..={WIRE_VERSION})"
        )));
    }
    Ok(Hello {
        version,
        page_size: u32::from_le_bytes(frame.payload[6..10].try_into().expect("4 bytes")),
        total_pages: frame.header.arg,
        memory_bytes: read_u64(&frame.payload[10..18]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_all() -> Vec<u8> {
        let mut out = Vec::new();
        put_hello(&mut out, 64, 64 * PAGE_SIZE);
        put_page_raw(&mut out, 7, &[0xabu8; PAGE_SIZE as usize]);
        put_page_zero(&mut out, 8);
        put_zero_run(&mut out, 9, 5);
        put_page_delta(&mut out, 14, &[1, 0, 2, 0, 0xee, 0xff]);
        put_end_of_round(&mut out, 3);
        let mut state = VcpuState {
            pc: 0x1234,
            ptbr: 0x8000,
            ..VcpuState::default()
        };
        state.regs[5] = 42;
        state.csrs[3] = 99;
        put_vcpu_state(&mut out, 0, &state);
        out
    }

    #[test]
    fn frames_roundtrip_with_exact_accounting() {
        let buf = roundtrip_all();
        let expected_len = HELLO_WIRE_BYTES
            + (FRAME_HEADER_BYTES + PAGE_SIZE)
            + (FRAME_HEADER_BYTES + 1)
            + (FRAME_HEADER_BYTES + 8)
            + (FRAME_HEADER_BYTES + 6)
            + END_OF_ROUND_WIRE_BYTES
            + VCPU_STATE_WIRE_BYTES;
        assert_eq!(buf.len() as u64, expected_len);

        let mut r = FrameReader::new(&buf);
        let hello = r.next_frame().unwrap().unwrap();
        let h = decode_hello(&hello).unwrap();
        assert_eq!(h.total_pages, 64);
        assert_eq!(h.page_size as u64, PAGE_SIZE);
        assert_eq!(h.version, WIRE_VERSION);

        let raw = r.next_frame().unwrap().unwrap();
        assert_eq!(raw.header.kind, FrameKind::Page);
        assert_eq!(raw.header.mode, MODE_RAW);
        assert_eq!(raw.header.arg, 7);
        assert!(raw.payload.iter().all(|&b| b == 0xab));

        let zero = r.next_frame().unwrap().unwrap();
        assert_eq!(
            (zero.header.kind, zero.header.mode),
            (FrameKind::Page, MODE_ZERO)
        );
        let run = r.next_frame().unwrap().unwrap();
        assert_eq!(run.header.kind, FrameKind::ZeroRun);
        assert_eq!(run.header.arg, 9);
        assert_eq!(read_u64(run.payload), 5);

        let delta = r.next_frame().unwrap().unwrap();
        assert_eq!(delta.header.mode, MODE_DELTA);
        assert_eq!(delta.payload, &[1, 0, 2, 0, 0xee, 0xff]);

        let eor = r.next_frame().unwrap().unwrap();
        assert_eq!(eor.header.kind, FrameKind::EndOfRound);
        assert_eq!(eor.header.arg, 3);

        let vs = r.next_frame().unwrap().unwrap();
        assert_eq!(vs.header.kind, FrameKind::VcpuState);
        let state = decode_vcpu_state(vs.payload).unwrap();
        assert_eq!(state.pc, 0x1234);
        assert_eq!(state.regs[5], 42);
        assert_eq!(state.csrs[3], 99);
        assert_eq!(state.ptbr, 0x8000);
        assert_eq!(state.mode, PrivMode::Supervisor);

        assert!(r.next_frame().unwrap().is_none());
        assert_eq!(r.offset(), buf.len() as u64);
    }

    #[test]
    fn corruption_is_detected_before_delivery() {
        let clean = roundtrip_all();
        // Flip one byte in every position of the second frame (the raw
        // page): header corruption and payload corruption must both fail.
        let second_frame_start = HELLO_WIRE_BYTES as usize;
        for at in [
            second_frame_start,      // kind byte
            second_frame_start + 1,  // mode byte
            second_frame_start + 2,  // length
            second_frame_start + 9,  // arg
            second_frame_start + 20, // payload
            clean.len() - 1,         // last byte of the final frame
        ] {
            let mut buf = clean.clone();
            buf[at] ^= 0x40;
            let mut r = FrameReader::new(&buf);
            let mut result = Ok(());
            loop {
                match r.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            let err = result.expect_err("corruption must surface");
            assert!(
                matches!(err, Error::WireProtocol { .. }),
                "byte {at}: wrong error {err:?}"
            );
        }
    }

    #[test]
    fn truncated_bursts_fail_with_offsets() {
        let clean = roundtrip_all();
        // Cut mid-header and mid-payload of the second frame.
        for cut in [
            HELLO_WIRE_BYTES as usize + 4,
            HELLO_WIRE_BYTES as usize + HEADER + 100,
        ] {
            let buf = &clean[..cut];
            let mut r = FrameReader::new(buf);
            r.next_frame().unwrap().unwrap(); // hello is intact
            let err = r.next_frame().expect_err("truncation must surface");
            match err {
                Error::WireProtocol { offset, .. } => {
                    assert_eq!(offset, HELLO_WIRE_BYTES)
                }
                other => panic!("wrong error {other:?}"),
            }
        }
    }

    #[test]
    fn hello_rejects_bad_magic_and_version() {
        let mut out = Vec::new();
        put_hello(&mut out, 4, 4 * PAGE_SIZE);
        // Not a Hello at all.
        let mut page = Vec::new();
        put_page_zero(&mut page, 0);
        let mut r = FrameReader::new(&page);
        let f = r.next_frame().unwrap().unwrap();
        assert!(decode_hello(&f).is_err());

        // Corrupt magic / version, re-sealing the checksum so only the
        // semantic validation can catch it.
        for (at, detail) in [(HEADER, "magic"), (HEADER + 4, "version")] {
            let mut buf = out.clone();
            buf[at] ^= 0xff;
            let payload_len = u16::from_le_bytes([buf[2], buf[3]]);
            let arg = read_u64(&buf[8..16]);
            let checksum = frame_checksum(buf[0], buf[1], payload_len, arg, &buf[HEADER..]);
            buf[4..8].copy_from_slice(&checksum.to_le_bytes());
            let mut r = FrameReader::new(&buf);
            let f = r.next_frame().unwrap().unwrap();
            let err = decode_hello(&f).expect_err(detail);
            assert!(
                matches!(err, Error::WireProtocol { .. }),
                "{detail}: {err:?}"
            );
        }
    }

    #[test]
    fn dedup_backup_stream_matches_accounting() {
        // Encode a full dedup backup stream — 2 novel chunks, 3 references —
        // and pin the accounting function to the actual encoded length.
        let novel = [
            (4u64, 0x1111u64, 0u32, vec![0xaau8; PAGE_SIZE as usize]),
            (9, 0x2222, 1, vec![0xbbu8; PAGE_SIZE as usize]),
        ];
        let refs = [(0u64, 0x3333u64, 0u32), (1, 0x3333, 0), (2, 0x4444, 2)];
        let mut out = Vec::new();
        put_hello(&mut out, 64, 64 * PAGE_SIZE);
        for (page, fp, ord, bytes) in &novel {
            put_chunk_data(&mut out, *page, *fp, *ord, bytes);
        }
        for (page, fp, ord) in &refs {
            put_chunk_ref(&mut out, *page, *fp, *ord);
        }
        put_vcpu_state(&mut out, 0, &VcpuState::default());
        put_end_of_round(&mut out, 0);
        assert_eq!(out.len() as u64, dedup_backup_wire_bytes(2, 3, 1));

        let mut r = FrameReader::new(&out);
        let hello = r.next_frame().unwrap().unwrap();
        assert_eq!(decode_hello(&hello).unwrap().version, WIRE_VERSION);
        for (page, fp, ord, bytes) in &novel {
            let f = r.next_frame().unwrap().unwrap();
            assert_eq!(f.header.kind, FrameKind::ChunkData);
            assert_eq!(f.header.arg, *page);
            let (id, data) = decode_chunk_data(f.payload).unwrap();
            assert_eq!(id, (*fp, *ord));
            assert_eq!(data, &bytes[..]);
        }
        for (page, fp, ord) in &refs {
            let f = r.next_frame().unwrap().unwrap();
            assert_eq!(f.header.kind, FrameKind::ChunkRef);
            assert_eq!(f.header.arg, *page);
            assert_eq!(decode_chunk_id(f.payload).unwrap(), (*fp, *ord));
        }
        r.next_frame().unwrap().unwrap(); // vCPU state
        let eor = r.next_frame().unwrap().unwrap();
        assert_eq!(eor.header.kind, FrameKind::EndOfRound);
        assert!(r.next_frame().unwrap().is_none());

        // A truncated chunk id is a typed error, not a panic.
        assert!(decode_chunk_id(&[0u8; 4]).is_err());
        assert!(decode_chunk_data(&[0u8; 4]).is_err());
    }

    #[test]
    fn hello_accepts_the_decodable_version_range() {
        let mut out = Vec::new();
        put_hello(&mut out, 4, 4 * PAGE_SIZE);
        // Patch the announced version and re-seal the checksum, so only the
        // semantic version check decides.
        let with_version = |version: u16| {
            let mut buf = out.clone();
            buf[HEADER + 4..HEADER + 6].copy_from_slice(&version.to_le_bytes());
            let payload_len = u16::from_le_bytes([buf[2], buf[3]]);
            let arg = read_u64(&buf[8..16]);
            let checksum = frame_checksum(buf[0], buf[1], payload_len, arg, &buf[HEADER..]);
            buf[4..8].copy_from_slice(&checksum.to_le_bytes());
            buf
        };
        for version in [WIRE_VERSION_MIN, WIRE_VERSION] {
            let buf = with_version(version);
            let mut r = FrameReader::new(&buf);
            let f = r.next_frame().unwrap().unwrap();
            let h = decode_hello(&f).expect("in-range version must decode");
            assert_eq!(h.version, version);
        }
        for version in [1, WIRE_VERSION + 1] {
            let buf = with_version(version);
            let mut r = FrameReader::new(&buf);
            let f = r.next_frame().unwrap().unwrap();
            assert!(decode_hello(&f).is_err(), "version {version} must reject");
        }
    }

    #[test]
    fn vcpu_state_rejects_mismatched_register_shape() {
        let mut out = Vec::new();
        put_vcpu_state(&mut out, 0, &VcpuState::default());
        let mut r = FrameReader::new(&out);
        let f = r.next_frame().unwrap().unwrap();
        let mut payload = f.payload.to_vec();
        payload[17] = NUM_REGS as u8 + 1;
        assert!(decode_vcpu_state(&payload).is_err());
        assert!(decode_vcpu_state(&payload[..16]).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any sequence of page frames decodes back to exactly what was
            /// encoded, and the encoded size is the documented accounting.
            #[test]
            fn page_frames_roundtrip(
                pages in proptest::collection::vec(
                    (0u64..1 << 20, proptest::collection::vec(proptest::num::u8::ANY, 0..256)),
                    1..12
                ),
            ) {
                let mut out = Vec::new();
                let mut expected = 0u64;
                for (page, bytes) in &pages {
                    put_page_delta(&mut out, *page, bytes);
                    expected += FRAME_HEADER_BYTES + bytes.len() as u64;
                }
                prop_assert_eq!(out.len() as u64, expected);
                let mut r = FrameReader::new(&out);
                for (page, bytes) in &pages {
                    let f = r.next_frame().unwrap().unwrap();
                    prop_assert_eq!(f.header.kind, FrameKind::Page);
                    prop_assert_eq!(f.header.arg, *page);
                    prop_assert_eq!(f.payload, &bytes[..]);
                }
                prop_assert!(r.next_frame().unwrap().is_none());
            }

            /// Flipping any single byte of a one-frame burst either fails
            /// decoding or (for the checksum's own bytes) fails the
            /// checksum comparison — no corruption passes silently.
            #[test]
            fn single_byte_corruption_never_passes(
                at in 0usize..(HEADER + 64),
                flip in 1u8..=255,
            ) {
                let mut out = Vec::new();
                put_page_delta(&mut out, 3, &[7u8; 64]);
                out[at] ^= flip;
                let mut r = FrameReader::new(&out);
                let outcome = r.next_frame();
                prop_assert!(
                    outcome.is_err(),
                    "corrupting byte {at} passed: {outcome:?}"
                );
            }
        }
    }
}
