//! Models of guest memory-dirtying behaviour during migration.
//!
//! While a live migration round is in flight the guest keeps running and
//! keeps writing memory. How *fast* it writes — and over how large a working
//! set — determines whether pre-copy converges. [`DirtySource`] abstracts
//! that behaviour so the engines can be driven either by a real vCPU
//! (the VMM wires the guest's own dirty bitmap in) or by a synthetic rate
//! model (what the benchmarks sweep).

use rvisor_memory::GuestMemory;
use rvisor_types::{GuestAddress, Nanoseconds, Result, PAGE_SIZE};

/// Something that dirties guest memory while migration rounds are in flight.
pub trait DirtySource: Send {
    /// Simulate the guest running for `duration`, writing into `memory`
    /// (which records the dirt in its dirty bitmap). Returns the number of
    /// page-sized writes performed.
    fn run_for(&mut self, memory: &GuestMemory, duration: Nanoseconds) -> Result<u64>;

    /// The long-run dirty rate in bytes per second (used for reporting).
    fn dirty_rate_bytes_per_sec(&self) -> u64;
}

/// A guest that never writes (an idle or paused workload).
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleDirtier;

impl DirtySource for IdleDirtier {
    fn run_for(&mut self, _memory: &GuestMemory, _duration: Nanoseconds) -> Result<u64> {
        Ok(0)
    }

    fn dirty_rate_bytes_per_sec(&self) -> u64 {
        0
    }
}

/// A guest that dirties pages at a constant rate, cycling through a working
/// set starting at a configurable page offset.
#[derive(Debug, Clone)]
pub struct ConstantRateDirtier {
    /// Pages dirtied per simulated second.
    pages_per_sec: u64,
    /// First page of the working set.
    working_set_start: u64,
    /// Number of pages in the working set.
    working_set_pages: u64,
    /// Next page (relative to the working set) to dirty.
    cursor: u64,
    /// Accumulated fractional work in page-nanoseconds.
    carry_ns: u64,
}

impl ConstantRateDirtier {
    /// Create a dirtier writing `pages_per_sec` over
    /// `[working_set_start, working_set_start + working_set_pages)`.
    pub fn new(pages_per_sec: u64, working_set_start: u64, working_set_pages: u64) -> Self {
        ConstantRateDirtier {
            pages_per_sec,
            working_set_start,
            working_set_pages: working_set_pages.max(1),
            cursor: 0,
            carry_ns: 0,
        }
    }

    /// A dirtier expressed as a fraction of a link's bandwidth — the natural
    /// parameterisation for convergence experiments.
    pub fn from_bandwidth_fraction(
        link_bytes_per_sec: u64,
        fraction: f64,
        working_set_start: u64,
        working_set_pages: u64,
    ) -> Self {
        let bytes_per_sec = (link_bytes_per_sec as f64 * fraction).max(0.0) as u64;
        Self::new(
            bytes_per_sec / PAGE_SIZE,
            working_set_start,
            working_set_pages,
        )
    }
}

impl DirtySource for ConstantRateDirtier {
    fn run_for(&mut self, memory: &GuestMemory, duration: Nanoseconds) -> Result<u64> {
        // pages = rate * time, accumulated with a carry so short rounds still
        // add up to the right long-run rate.
        let total_ns = self.carry_ns + duration.as_nanos();
        let pages = self.pages_per_sec.saturating_mul(total_ns) / 1_000_000_000;
        self.carry_ns = total_ns - pages.saturating_mul(1_000_000_000) / self.pages_per_sec.max(1);
        let mut written = 0;
        for _ in 0..pages {
            let page = self.working_set_start + (self.cursor % self.working_set_pages);
            self.cursor = self.cursor.wrapping_add(1);
            if let Ok(addr) = memory.page_address(page) {
                memory.write_u64(GuestAddress(addr.0), self.cursor)?;
                written += 1;
            }
        }
        Ok(written)
    }

    fn dirty_rate_bytes_per_sec(&self) -> u64 {
        self.pages_per_sec * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_types::ByteSize;

    #[test]
    fn idle_dirtier_writes_nothing() {
        let mem = GuestMemory::flat(ByteSize::pages_of(8)).unwrap();
        let mut d = IdleDirtier;
        assert_eq!(d.run_for(&mem, Nanoseconds::from_secs(10)).unwrap(), 0);
        assert_eq!(mem.dirty_page_count(), 0);
        assert_eq!(d.dirty_rate_bytes_per_sec(), 0);
    }

    #[test]
    fn constant_rate_hits_target_over_time() {
        let mem = GuestMemory::flat(ByteSize::pages_of(64)).unwrap();
        let mut d = ConstantRateDirtier::new(1000, 8, 32);
        // 100 ms at 1000 pages/s = 100 page writes.
        let written = d.run_for(&mem, Nanoseconds::from_millis(100)).unwrap();
        assert_eq!(written, 100);
        // Working set is 32 pages, so at most 32 distinct pages are dirty.
        assert!(mem.dirty_page_count() <= 32);
        assert!(mem.dirty_pages().iter().all(|&p| (8..40).contains(&p)));
        assert_eq!(d.dirty_rate_bytes_per_sec(), 1000 * PAGE_SIZE);
    }

    #[test]
    fn short_rounds_accumulate_via_carry() {
        let mem = GuestMemory::flat(ByteSize::pages_of(16)).unwrap();
        let mut d = ConstantRateDirtier::new(100, 0, 8);
        // 100 pages/s means one page per 10 ms; 1 ms slices should still
        // produce ~100 pages over a second.
        let mut total = 0;
        for _ in 0..1000 {
            total += d.run_for(&mem, Nanoseconds::from_millis(1)).unwrap();
        }
        assert!((90..=110).contains(&total), "got {total}");
    }

    #[test]
    fn bandwidth_fraction_constructor() {
        let d = ConstantRateDirtier::from_bandwidth_fraction(125_000_000, 0.5, 0, 1024);
        // Half of 1 Gbit/s is 62.5 MB/s ≈ 15258 pages/s.
        let rate = d.dirty_rate_bytes_per_sec();
        assert!(rate > 60_000_000 && rate < 65_000_000, "rate {rate}");
        let zero = ConstantRateDirtier::from_bandwidth_fraction(125_000_000, 0.0, 0, 16);
        assert_eq!(zero.dirty_rate_bytes_per_sec(), 0);
    }

    #[test]
    fn out_of_range_working_set_is_tolerated() {
        let mem = GuestMemory::flat(ByteSize::pages_of(4)).unwrap();
        // Working set points past the end of memory: writes are skipped, not fatal.
        let mut d = ConstantRateDirtier::new(1000, 100, 8);
        let written = d.run_for(&mem, Nanoseconds::from_millis(10)).unwrap();
        assert_eq!(written, 0);
        assert_eq!(mem.dirty_page_count(), 0);
    }
}
