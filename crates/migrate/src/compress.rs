//! Page-transfer compression for live migration.
//!
//! Two complementary techniques, both lifted from production migration
//! stacks (QEMU calls them *zero-page detection* and *XBZRLE*):
//!
//! * **Zero-page detection** — a page that is entirely zero is sent as a
//!   marker instead of 4 KiB of zeros. Freshly booted guests and guests with
//!   lots of free memory are dominated by zero pages, so the first pre-copy
//!   round often shrinks dramatically.
//! * **XBZRLE delta encoding** — for a page that was *already sent* in an
//!   earlier pre-copy round, only the XOR difference against the
//!   previously-sent version needs to cross the wire, run-length encoded so
//!   unchanged byte runs cost almost nothing. Guests that repeatedly dirty
//!   the same pages with small writes (databases updating counters, kernels
//!   touching timer words) re-transfer a few hundred bytes instead of a full
//!   page.
//!
//! The encoder keeps a cache of the last version of each page it sent; the
//!   decoder applies deltas to the destination's current copy, which — by
//! construction of pre-copy — is exactly that last-sent version. Pages whose
//! delta would not fit (too many changed bytes) fall back to a raw transfer,
//! just like QEMU's implementation gives up when the encoded size exceeds
//! the page size.

use std::collections::HashMap;

use rvisor_types::{Error, Result};

/// Which compression the migration engines apply to page transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageCompression {
    /// Send every page raw (the baseline).
    #[default]
    None,
    /// Detect all-zero pages and send them as a marker.
    ZeroPages,
    /// Zero-page detection plus XBZRLE delta encoding against the
    /// previously-sent version of each page.
    Xbzrle,
}

impl PageCompression {
    /// All modes, for ablation sweeps.
    pub const ALL: [PageCompression; 3] = [
        PageCompression::None,
        PageCompression::ZeroPages,
        PageCompression::Xbzrle,
    ];

    /// A short name for benchmark labels.
    pub fn name(self) -> &'static str {
        match self {
            PageCompression::None => "raw",
            PageCompression::ZeroPages => "zero-detect",
            PageCompression::Xbzrle => "xbzrle",
        }
    }
}

/// How a single page crosses the migration link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePage {
    /// The full page contents.
    Raw(Vec<u8>),
    /// The page is entirely zero.
    Zero,
    /// An XBZRLE-encoded delta against the previously transferred version.
    Delta(Vec<u8>),
}

impl WirePage {
    /// Bytes this representation occupies on the wire (payload only; framing
    /// overhead is accounted separately by the engines).
    pub fn wire_len(&self) -> u64 {
        match self {
            WirePage::Raw(b) => b.len() as u64,
            WirePage::Zero => 1,
            WirePage::Delta(d) => d.len() as u64,
        }
    }
}

/// Returns true when every byte of the page is zero.
///
/// Delegates to the word-wise [`rvisor_memory::scan::is_zero`] kernel shared
/// with KSM's zero-page policy, so one scan implementation serves wire
/// encode, `ZeroRun` coalescing and the overcommit scanners alike.
pub fn is_zero_page(contents: &[u8]) -> bool {
    rvisor_memory::scan::is_zero(contents)
}

/// First index at or after `i` where `old` and `new` differ (or `len`).
///
/// Word-wise: whole u64 chunks are compared per step, the exact boundary
/// recovered from the XOR's lowest nonzero byte — byte-for-byte equivalent
/// to a naive scan (proptest-pinned against the byte-wise reference).
fn first_difference(old: &[u8], new: &[u8], mut i: usize) -> usize {
    let len = old.len();
    while i + 8 <= len {
        let a = u64::from_le_bytes(old[i..i + 8].try_into().expect("8-byte chunk"));
        let b = u64::from_le_bytes(new[i..i + 8].try_into().expect("8-byte chunk"));
        let x = a ^ b;
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < len && old[i] == new[i] {
        i += 1;
    }
    i
}

/// First index at or after `i` where `old` and `new` agree (or `len`).
///
/// Word-wise dual of [`first_difference`]: the zero-byte probe
/// (`(x - LO) & !x & HI`) flags the XOR's lowest zero byte exactly — bytes
/// below the first zero byte are nonzero, so no borrow reaches it and its
/// high bit is the lowest set flag.
fn first_match(old: &[u8], new: &[u8], mut i: usize) -> usize {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let len = old.len();
    while i + 8 <= len {
        let x = u64::from_le_bytes(old[i..i + 8].try_into().expect("8-byte chunk"))
            ^ u64::from_le_bytes(new[i..i + 8].try_into().expect("8-byte chunk"));
        let zeros = x.wrapping_sub(LO) & !x & HI;
        if zeros != 0 {
            return i + (zeros.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < len && old[i] != new[i] {
        i += 1;
    }
    i
}

/// XBZRLE-encode `new` against `old`.
///
/// The encoding is a sequence of `(skip, copy)` pairs over the XOR of the two
/// buffers: `skip` unchanged bytes (two-byte little-endian count), then
/// `copy` changed bytes (two-byte count followed by the new bytes verbatim).
/// Returns `None` when the encoded form would be at least as large as the
/// page itself (the caller then sends the page raw).
///
/// Run boundaries are found word-wise (8 bytes per step, exact byte
/// recovered from the XOR word), so sparse-change pages — the XBZRLE sweet
/// spot — scan at memory speed instead of a byte-compare per position.
pub fn xbzrle_encode(old: &[u8], new: &[u8]) -> Option<Vec<u8>> {
    if old.len() != new.len() {
        return None;
    }
    let mut out: Vec<u8> = Vec::new();
    let mut i = 0usize;
    let len = new.len();
    while i < len {
        // Count unchanged bytes.
        let run_start = i;
        i = first_difference(old, new, i);
        let mut skip = i - run_start;
        if i >= len {
            break;
        }
        // Count changed bytes.
        let changed_start = i;
        i = first_match(old, new, i);
        let changed = &new[changed_start..i];
        // Emit, splitting runs longer than u16::MAX (cannot happen for 4 KiB
        // pages, but keeps the encoding self-contained).
        while skip > u16::MAX as usize {
            out.extend_from_slice(&(u16::MAX).to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes());
            skip -= u16::MAX as usize;
        }
        out.extend_from_slice(&(skip as u16).to_le_bytes());
        out.extend_from_slice(&(changed.len() as u16).to_le_bytes());
        out.extend_from_slice(changed);
        if out.len() >= len {
            return None;
        }
    }
    if out.len() >= len {
        None
    } else {
        Some(out)
    }
}

/// Apply an XBZRLE delta directly onto `page` (the destination's current
/// copy of the page), patching only the changed runs — no intermediate
/// buffer.
///
/// On error the page may have been partially patched; callers treat a
/// failed migration transfer as fatal for the destination page anyway.
pub fn xbzrle_apply_in_place(page: &mut [u8], delta: &[u8]) -> Result<()> {
    let mut pos = 0usize; // position in `page`
    let mut i = 0usize; // position in `delta`
    while i < delta.len() {
        if i + 4 > delta.len() {
            return Err(Error::Migration("truncated xbzrle header".into()));
        }
        let skip = u16::from_le_bytes([delta[i], delta[i + 1]]) as usize;
        let copy = u16::from_le_bytes([delta[i + 2], delta[i + 3]]) as usize;
        i += 4;
        pos = pos
            .checked_add(skip)
            .ok_or_else(|| Error::Migration("xbzrle skip overflow".into()))?;
        if pos + copy > page.len() || i + copy > delta.len() {
            return Err(Error::Migration("xbzrle delta exceeds page bounds".into()));
        }
        page[pos..pos + copy].copy_from_slice(&delta[i..i + copy]);
        pos += copy;
        i += copy;
    }
    Ok(())
}

/// Apply an XBZRLE delta to `old`, producing the new page contents.
///
/// Allocating convenience wrapper over [`xbzrle_apply_in_place`].
pub fn xbzrle_decode(old: &[u8], delta: &[u8]) -> Result<Vec<u8>> {
    let mut out = old.to_vec();
    xbzrle_apply_in_place(&mut out, delta)?;
    Ok(out)
}

/// Counters describing what the compressor did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Pages sent raw (including XBZRLE fallbacks).
    pub pages_raw: u64,
    /// Pages sent as zero markers.
    pub pages_zero: u64,
    /// Pages sent as XBZRLE deltas.
    pub pages_delta: u64,
    /// Pages whose delta did not fit and fell back to raw.
    pub delta_overflows: u64,
    /// Uncompressed bytes handed to the compressor.
    pub bytes_in: u64,
    /// Bytes produced for the wire.
    pub bytes_out: u64,
}

impl CompressionStats {
    /// Total pages processed.
    pub fn pages_total(&self) -> u64 {
        self.pages_raw + self.pages_zero + self.pages_delta
    }

    /// Compression ratio `bytes_in / bytes_out` (1.0 when nothing was saved).
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            1.0
        } else {
            self.bytes_in as f64 / self.bytes_out as f64
        }
    }
}

/// Stateful page compressor used by the source side of a migration.
///
/// The destination does not need an explicit object: raw pages overwrite,
/// zero markers zero the page, and deltas are applied to the destination's
/// current copy via [`xbzrle_decode`].
#[derive(Debug)]
pub struct PageCompressor {
    mode: PageCompression,
    /// Last-sent contents per page index (bounded LRU).
    cache: HashMap<u64, Vec<u8>>,
    lru: Vec<u64>,
    capacity: usize,
    stats: CompressionStats,
}

impl PageCompressor {
    /// Default number of pages the XBZRLE cache remembers (QEMU's default
    /// cache is 64 MiB; ours is expressed in pages).
    pub const DEFAULT_CACHE_PAGES: usize = 16_384;

    /// Create a compressor for the given mode with the default cache size.
    pub fn new(mode: PageCompression) -> Self {
        Self::with_cache_capacity(mode, Self::DEFAULT_CACHE_PAGES)
    }

    /// Create a compressor with an explicit XBZRLE cache capacity (in pages).
    pub fn with_cache_capacity(mode: PageCompression, capacity: usize) -> Self {
        PageCompressor {
            mode,
            cache: HashMap::new(),
            lru: Vec::new(),
            capacity: capacity.max(1),
            stats: CompressionStats::default(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> PageCompression {
        self.mode
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CompressionStats {
        self.stats
    }

    /// Encode one page for the wire.
    pub fn compress(&mut self, page: u64, contents: &[u8]) -> WirePage {
        self.stats.bytes_in += contents.len() as u64;
        let encoded = match self.mode {
            PageCompression::None => WirePage::Raw(contents.to_vec()),
            PageCompression::ZeroPages => {
                if is_zero_page(contents) {
                    WirePage::Zero
                } else {
                    WirePage::Raw(contents.to_vec())
                }
            }
            PageCompression::Xbzrle => {
                if is_zero_page(contents) {
                    WirePage::Zero
                } else if let Some(old) = self.cache.get(&page) {
                    match xbzrle_encode(old, contents) {
                        Some(delta) => WirePage::Delta(delta),
                        None => {
                            self.stats.delta_overflows += 1;
                            WirePage::Raw(contents.to_vec())
                        }
                    }
                } else {
                    WirePage::Raw(contents.to_vec())
                }
            }
        };
        if self.mode == PageCompression::Xbzrle {
            self.remember(page, contents);
        }
        match &encoded {
            WirePage::Raw(_) => self.stats.pages_raw += 1,
            WirePage::Zero => self.stats.pages_zero += 1,
            WirePage::Delta(_) => self.stats.pages_delta += 1,
        }
        self.stats.bytes_out += encoded.wire_len();
        encoded
    }

    /// Apply a wire page directly onto the destination's current copy of the
    /// page — raw overwrite, in-place zeroing, or in-place delta patching.
    /// This is the zero-copy receive path: no per-page buffer is built.
    pub fn apply_in_place(current: &mut [u8], wire: &WirePage) -> Result<()> {
        match wire {
            WirePage::Raw(bytes) => {
                if bytes.len() != current.len() {
                    return Err(Error::Migration(format!(
                        "raw wire page is {} bytes but the page is {}",
                        bytes.len(),
                        current.len()
                    )));
                }
                current.copy_from_slice(bytes);
                Ok(())
            }
            WirePage::Zero => {
                current.fill(0);
                Ok(())
            }
            WirePage::Delta(delta) => xbzrle_apply_in_place(current, delta),
        }
    }

    /// Apply a wire page on the destination side, given the destination's
    /// current copy of the page. Returns the new page contents.
    ///
    /// Allocating convenience wrapper over [`Self::apply_in_place`].
    pub fn apply(current: &[u8], wire: &WirePage) -> Result<Vec<u8>> {
        let mut out = current.to_vec();
        Self::apply_in_place(&mut out, wire)?;
        Ok(out)
    }

    fn remember(&mut self, page: u64, contents: &[u8]) {
        if self.cache.insert(page, contents.to_vec()).is_none() {
            self.lru.push(page);
            if self.lru.len() > self.capacity {
                let evict = self.lru.remove(0);
                self.cache.remove(&evict);
            }
        } else if let Some(pos) = self.lru.iter().position(|&p| p == page) {
            let key = self.lru.remove(pos);
            self.lru.push(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_types::PAGE_SIZE;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE as usize]
    }

    #[test]
    fn zero_detection() {
        assert!(is_zero_page(&page_of(0)));
        let mut p = page_of(0);
        p[4095] = 1;
        assert!(!is_zero_page(&p));
    }

    #[test]
    fn xbzrle_roundtrip_small_change() {
        let old = page_of(7);
        let mut new = old.clone();
        new[100] = 42;
        new[2000..2010].fill(9);
        let delta = xbzrle_encode(&old, &new).expect("small change must compress");
        assert!(delta.len() < 64, "delta is {} bytes", delta.len());
        let decoded = xbzrle_decode(&old, &delta).unwrap();
        assert_eq!(decoded, new);
    }

    #[test]
    fn xbzrle_identical_pages_encode_to_nothing() {
        let old = page_of(3);
        let delta = xbzrle_encode(&old, &old).expect("no change compresses");
        assert!(delta.is_empty());
        assert_eq!(xbzrle_decode(&old, &delta).unwrap(), old);
    }

    #[test]
    fn xbzrle_gives_up_on_total_rewrite() {
        let old = page_of(0xaa);
        let new = page_of(0x55);
        assert!(xbzrle_encode(&old, &new).is_none());
    }

    #[test]
    fn xbzrle_rejects_length_mismatch_and_corrupt_delta() {
        assert!(xbzrle_encode(&page_of(1), &[0u8; 16]).is_none());
        // Truncated header.
        assert!(xbzrle_decode(&page_of(1), &[1, 0]).is_err());
        // Copy count runs past the page end.
        let mut bad = Vec::new();
        bad.extend_from_slice(&(4090u16).to_le_bytes());
        bad.extend_from_slice(&(100u16).to_le_bytes());
        bad.extend_from_slice(&[0u8; 100]);
        assert!(xbzrle_decode(&page_of(1), &bad).is_err());
    }

    #[test]
    fn compressor_zero_mode_shrinks_zero_pages_only() {
        let mut c = PageCompressor::new(PageCompression::ZeroPages);
        let wire = c.compress(0, &page_of(0));
        assert_eq!(wire, WirePage::Zero);
        assert_eq!(wire.wire_len(), 1);
        let wire = c.compress(1, &page_of(5));
        assert!(matches!(wire, WirePage::Raw(_)));
        let stats = c.stats();
        assert_eq!(stats.pages_zero, 1);
        assert_eq!(stats.pages_raw, 1);
        assert!(stats.ratio() > 1.9);
    }

    #[test]
    fn compressor_none_mode_never_saves() {
        let mut c = PageCompressor::new(PageCompression::None);
        c.compress(0, &page_of(0));
        c.compress(1, &page_of(9));
        let stats = c.stats();
        assert_eq!(stats.bytes_in, stats.bytes_out);
        assert!((stats.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compressor_xbzrle_second_send_is_delta() {
        let mut c = PageCompressor::new(PageCompression::Xbzrle);
        let v1 = page_of(1);
        let first = c.compress(7, &v1);
        assert!(matches!(first, WirePage::Raw(_)));

        let mut v2 = v1.clone();
        v2[17] = 99;
        let second = c.compress(7, &v2);
        match &second {
            WirePage::Delta(d) => assert!(d.len() < 16),
            other => panic!("expected delta, got {other:?}"),
        }
        // Destination applies the delta to the version it already holds.
        let rebuilt = PageCompressor::apply(&v1, &second).unwrap();
        assert_eq!(rebuilt, v2);
        assert_eq!(c.stats().pages_delta, 1);
    }

    #[test]
    fn compressor_cache_eviction_forces_raw_resend() {
        let mut c = PageCompressor::with_cache_capacity(PageCompression::Xbzrle, 2);
        let base = page_of(4);
        c.compress(0, &base);
        c.compress(1, &base);
        c.compress(2, &base); // evicts page 0
        let mut changed = base.clone();
        changed[0] = 1;
        let wire = c.compress(0, &changed);
        assert!(
            matches!(wire, WirePage::Raw(_)),
            "evicted page must be resent raw"
        );
    }

    #[test]
    fn apply_handles_all_wire_forms() {
        let current = page_of(2);
        assert_eq!(
            PageCompressor::apply(&current, &WirePage::Zero).unwrap(),
            page_of(0)
        );
        assert_eq!(
            PageCompressor::apply(&current, &WirePage::Raw(page_of(9))).unwrap(),
            page_of(9)
        );
        let mut new = current.clone();
        new[12] = 0xee;
        let delta = xbzrle_encode(&current, &new).unwrap();
        assert_eq!(
            PageCompressor::apply(&current, &WirePage::Delta(delta)).unwrap(),
            new
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_page() -> impl Strategy<Value = Vec<u8>> {
            proptest::collection::vec(proptest::num::u8::ANY, 256..=256)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Whenever the encoder produces a delta, decoding reproduces the
            /// new page exactly, and the delta is smaller than the page.
            #[test]
            fn xbzrle_roundtrip(old in arb_page(), mut new in arb_page(), keep in 0usize..256) {
                // Make `new` share a prefix with `old` so deltas are plausible.
                new[..keep].copy_from_slice(&old[..keep]);
                if let Some(delta) = xbzrle_encode(&old, &new) {
                    prop_assert!(delta.len() < new.len());
                    let decoded = xbzrle_decode(&old, &delta).unwrap();
                    prop_assert_eq!(decoded, new);
                }
            }

            /// The word-wise run scanners agree with a naive byte scan at
            /// every position, so the encoder's output cannot drift from the
            /// byte-wise original.
            #[test]
            fn word_wise_run_scan_matches_bytewise(
                old in arb_page(),
                mut new in arb_page(),
                keep in 0usize..256,
                start in 0usize..=256,
            ) {
                // A shared prefix makes both match and mismatch runs common.
                new[..keep].copy_from_slice(&old[..keep]);
                let mut diff = start;
                while diff < old.len() && old[diff] == new[diff] {
                    diff += 1;
                }
                prop_assert_eq!(first_difference(&old, &new, start), diff);
                let mut matched = start;
                while matched < old.len() && old[matched] != new[matched] {
                    matched += 1;
                }
                prop_assert_eq!(first_match(&old, &new, start), matched);
            }

            /// The compressor's byte accounting is exact for every mode.
            #[test]
            fn stats_accounting_is_exact(
                pages in proptest::collection::vec(arb_page(), 1..8),
                mode_idx in 0usize..3,
            ) {
                let mode = PageCompression::ALL[mode_idx];
                let mut c = PageCompressor::new(mode);
                let mut expected_in = 0u64;
                let mut expected_out = 0u64;
                for (i, p) in pages.iter().enumerate() {
                    let wire = c.compress(i as u64, p);
                    expected_in += p.len() as u64;
                    expected_out += wire.wire_len();
                }
                let stats = c.stats();
                prop_assert_eq!(stats.bytes_in, expected_in);
                prop_assert_eq!(stats.bytes_out, expected_out);
                prop_assert_eq!(stats.pages_total(), pages.len() as u64);
                prop_assert!(stats.bytes_out <= stats.bytes_in.max(pages.len() as u64));
            }
        }
    }
}
