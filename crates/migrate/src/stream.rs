//! Streaming migration: the engines split into a source-side encoder and a
//! destination-side sink connected by a [`Transport`].
//!
//! The direct engines in [`engines`](crate::engines) copy memory to memory
//! and merely *account* bytes. This module moves the same migrations as a
//! real byte stream: [`MigrationSource`] borrows guest pages through the
//! zero-copy views and encodes them as [`wire`] frames into the transport's
//! burst, the transport models the bytes crossing the network (loopback
//! link or shared fabric), and [`MigrationSink`] decodes the burst —
//! verifying every frame checksum before anything touches guest memory —
//! and applies pages in place on the destination.
//!
//! For a [`LoopbackTransport`](crate::transport::LoopbackTransport) the
//! streamed engines produce **`==`-equal [`MigrationReport`]s and
//! byte-identical destination memory** versus the direct engines (pinned by
//! proptest below) — the wire protocol is free at equal modelled bandwidth.
//! Over a [`FabricTransport`](crate::transport::FabricTransport) the same
//! stream pays NIC serialization, backbone contention and MTU chunk
//! framing, which is where wire migration earns its keep (experiment E17).

use rvisor_memory::GuestMemory;
use rvisor_obs::Trace;
use rvisor_types::{Error, Nanoseconds, Result, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

use crate::compress::{xbzrle_apply_in_place, PageCompression, PageCompressor, WirePage};
use crate::dirty::DirtySource;
use crate::engines::{check_same_size, MigrationConfig, PostCopy, PreCopy, StopAndCopy};
use crate::engines::{emit_migration_span, emit_round_span, PER_PAGE_OVERHEAD};
use crate::report::{MigrationKind, MigrationReport, RoundStat};
use crate::transport::Transport;
use crate::wire::{self, FrameKind, WireFrame, MODE_DELTA, MODE_RAW, MODE_ZERO};

/// The source (encode) half of a streamed migration.
///
/// Owns the page compressor; pages are borrowed in place from the source
/// memory and frames are encoded *directly into the transport's burst
/// buffer* ([`Transport::send_built`]), so a raw page crosses from guest
/// memory to the burst with a single copy and no per-page heap allocation
/// at steady state.
#[derive(Debug)]
pub struct MigrationSource<'m> {
    memory: &'m GuestMemory,
    compressor: Option<PageCompressor>,
    round: u32,
}

impl<'m> MigrationSource<'m> {
    /// An encoder sending every page raw (stop-and-copy / post-copy).
    pub fn raw(memory: &'m GuestMemory) -> Self {
        MigrationSource {
            memory,
            compressor: None,
            round: 0,
        }
    }

    /// An encoder honouring the configured page compression.
    pub fn with_config(memory: &'m GuestMemory, config: &MigrationConfig) -> Self {
        let compressor = match config.compression {
            PageCompression::None => None,
            mode => Some(PageCompressor::with_cache_capacity(
                mode,
                config.xbzrle_cache_pages,
            )),
        };
        MigrationSource {
            memory,
            compressor,
            round: 0,
        }
    }

    /// Send the stream-opening Hello (version + geometry handshake).
    pub fn send_hello(&mut self, transport: &mut dyn Transport) -> Result<()> {
        let total_pages = self.memory.total_pages();
        let memory_bytes = self.memory.total_size().as_u64();
        transport.send_built(&mut |out| wire::put_hello(out, total_pages, memory_bytes))
    }

    fn flush_zero_run(transport: &mut dyn Transport, run: Option<(u64, u64)>) -> Result<()> {
        let Some((first, count)) = run else {
            return Ok(());
        };
        if count == 1 {
            // A lone zero page costs the same 1-byte marker as the direct
            // path; run-length coding only pays for itself from two up.
            transport.send_built(&mut |out| wire::put_page_zero(out, first))
        } else {
            transport.send_built(&mut |out| wire::put_zero_run(out, first, count))
        }
    }

    /// Encode one round: every page in `pages` (in order), consecutive zero
    /// pages coalesced into run-length frames, terminated by an
    /// end-of-round marker. The transport accumulates the burst; the caller
    /// delivers it at the round boundary.
    pub fn encode_round(&mut self, pages: &[u64], transport: &mut dyn Transport) -> Result<()> {
        let memory = self.memory;
        let mut pending_zero: Option<(u64, u64)> = None;
        for &p in pages {
            match self.compressor.as_mut() {
                None => {
                    // Raw fast path: the page is framed straight into the
                    // burst under the source read lock — one copy total.
                    let mut read = Ok(());
                    transport.send_built(&mut |out| {
                        read = memory.with_page(p, |contents| wire::put_page_raw(out, p, contents));
                    })?;
                    read?;
                }
                Some(c) => {
                    let encoded = memory.with_page(p, |contents| c.compress(p, contents))?;
                    if let WirePage::Zero = encoded {
                        pending_zero = match pending_zero {
                            Some((first, count)) if first + count == p => Some((first, count + 1)),
                            other => {
                                Self::flush_zero_run(transport, other)?;
                                Some((p, 1))
                            }
                        };
                        continue;
                    }
                    Self::flush_zero_run(transport, pending_zero.take())?;
                    transport.send_built(&mut |out| wire::put_wire_page(out, p, &encoded))?;
                }
            }
        }
        Self::flush_zero_run(transport, pending_zero.take())?;
        let round = self.round;
        transport.send_built(&mut |out| wire::put_end_of_round(out, round))?;
        self.round += 1;
        Ok(())
    }

    /// Send the vCPU state frames (at least one, mirroring the engines'
    /// `max(1)` state accounting for vCPU-less shells).
    pub fn send_vcpu_states(
        &mut self,
        states: &[VcpuState],
        transport: &mut dyn Transport,
    ) -> Result<()> {
        let placeholder = [VcpuState::default()];
        let states = if states.is_empty() {
            &placeholder[..]
        } else {
            states
        };
        for (i, state) in states.iter().enumerate() {
            transport.send_built(&mut |out| wire::put_vcpu_state(out, i as u32, state))?;
        }
        Ok(())
    }

    /// Compression statistics accumulated so far (None when sending raw).
    pub fn compression_stats(&self) -> Option<crate::CompressionStats> {
        self.compressor.as_ref().map(|c| c.stats())
    }
}

/// The destination (apply) half of a streamed migration.
///
/// Decodes delivered bursts frame by frame; each frame's checksum was
/// already verified by the [`wire::FrameReader`] before its payload is
/// visible, so a corrupted frame aborts the stream *without* writing
/// anything from that frame into guest memory.
#[derive(Debug)]
pub struct MigrationSink<'m> {
    memory: &'m GuestMemory,
    hello: Option<wire::Hello>,
    pages_applied: u64,
    rounds_completed: u32,
    vcpu_states: Vec<VcpuState>,
}

impl<'m> MigrationSink<'m> {
    /// A sink applying onto `memory`.
    pub fn new(memory: &'m GuestMemory) -> Self {
        MigrationSink {
            memory,
            hello: None,
            pages_applied: 0,
            rounds_completed: 0,
            vcpu_states: Vec::new(),
        }
    }

    /// Pages applied (every page record counts, zero runs included).
    pub fn pages_applied(&self) -> u64 {
        self.pages_applied
    }

    /// End-of-round markers seen.
    pub fn rounds_completed(&self) -> u32 {
        self.rounds_completed
    }

    /// The vCPU states carried by the stream, in vCPU order.
    pub fn vcpu_states(&self) -> &[VcpuState] {
        &self.vcpu_states
    }

    /// Whether the stream's Hello was seen and validated.
    pub fn handshake_complete(&self) -> bool {
        self.hello.is_some()
    }

    fn wire_fault(offset: u64, detail: String) -> Error {
        Error::WireProtocol { detail, offset }
    }

    fn check_page_bounds(&self, offset: u64, first: u64, count: u64) -> Result<()> {
        let total = self.memory.total_pages();
        if first.checked_add(count).is_none_or(|end| end > total) {
            return Err(Self::wire_fault(
                offset,
                format!("page record {first}+{count} exceeds the guest's {total} pages"),
            ));
        }
        Ok(())
    }

    fn apply_frame(&mut self, frame: &WireFrame<'_>, offset: u64) -> Result<()> {
        if self.hello.is_none() {
            // First frame must be the handshake.
            let hello = wire::decode_hello(frame).map_err(|e| Self::rebase_offset(e, offset))?;
            if hello.page_size as u64 != PAGE_SIZE {
                return Err(Self::wire_fault(
                    offset,
                    format!("source page size {} != {PAGE_SIZE}", hello.page_size),
                ));
            }
            if hello.total_pages != self.memory.total_pages()
                || hello.memory_bytes != self.memory.total_size().as_u64()
            {
                return Err(Self::wire_fault(
                    offset,
                    format!(
                        "source geometry ({} pages, {} bytes) does not match destination ({} pages, {} bytes)",
                        hello.total_pages,
                        hello.memory_bytes,
                        self.memory.total_pages(),
                        self.memory.total_size().as_u64()
                    ),
                ));
            }
            self.hello = Some(hello);
            return Ok(());
        }
        match frame.header.kind {
            FrameKind::Hello => Err(Self::wire_fault(
                offset,
                "duplicate Hello mid-stream".into(),
            )),
            FrameKind::Page => {
                let page = frame.header.arg;
                self.check_page_bounds(offset, page, 1)?;
                match frame.header.mode {
                    MODE_RAW => {
                        if frame.payload.len() as u64 != PAGE_SIZE {
                            return Err(Self::wire_fault(
                                offset,
                                format!("raw page payload is {} bytes", frame.payload.len()),
                            ));
                        }
                        self.memory
                            .with_page_mut(page, |target| target.copy_from_slice(frame.payload))?;
                    }
                    MODE_ZERO => {
                        self.memory.with_page_mut(page, |target| target.fill(0))?;
                    }
                    MODE_DELTA => {
                        self.memory.with_page_mut(page, |target| {
                            xbzrle_apply_in_place(target, frame.payload)
                        })??;
                    }
                    other => {
                        return Err(Self::wire_fault(
                            offset,
                            format!("unknown page mode {other}"),
                        ))
                    }
                }
                self.pages_applied += 1;
                Ok(())
            }
            FrameKind::ZeroRun => {
                if frame.payload.len() != 8 {
                    return Err(Self::wire_fault(
                        offset,
                        format!("zero-run payload is {} bytes, want 8", frame.payload.len()),
                    ));
                }
                let first = frame.header.arg;
                let count = u64::from_le_bytes(frame.payload.try_into().expect("checked 8 bytes"));
                self.check_page_bounds(offset, first, count)?;
                for page in first..first + count {
                    self.memory.with_page_mut(page, |target| target.fill(0))?;
                }
                self.pages_applied += count;
                Ok(())
            }
            FrameKind::VcpuState => {
                let state = wire::decode_vcpu_state(frame.payload)
                    .map_err(|e| Self::rebase_offset(e, offset))?;
                self.vcpu_states.push(state);
                Ok(())
            }
            FrameKind::EndOfRound => {
                self.rounds_completed += 1;
                Ok(())
            }
            // The content-addressed chunk frames belong to the deduplicated
            // *backup* stream; a live-migration sink has no chunk store to
            // resolve references against.
            FrameKind::ChunkRef | FrameKind::ChunkData => Err(Self::wire_fault(
                offset,
                format!(
                    "{:?} frames are not valid in a migration stream",
                    frame.header.kind
                ),
            )),
        }
    }

    fn rebase_offset(e: Error, offset: u64) -> Error {
        match e {
            Error::WireProtocol { detail, .. } => Error::WireProtocol { detail, offset },
            other => other,
        }
    }

    /// Decode and apply one delivered burst. On error, the offending frame
    /// has written nothing to guest memory (checksums are verified before
    /// payloads are applied); frames earlier in the burst have been applied.
    pub fn apply_burst(&mut self, burst: &[u8]) -> Result<()> {
        let mut reader = wire::FrameReader::new(burst);
        loop {
            let offset = reader.offset();
            match reader.next_frame()? {
                Some(frame) => self.apply_frame(&frame, offset)?,
                None => return Ok(()),
            }
        }
    }
}

/// Shared phase driver: deliver the pending burst and apply it on the sink.
fn deliver_and_apply(
    transport: &mut dyn Transport,
    sink: &mut MigrationSink<'_>,
    now: Nanoseconds,
) -> Result<Nanoseconds> {
    let (done, burst) = transport.deliver(now)?;
    let applied = sink.apply_burst(&burst);
    transport.recycle(burst);
    applied?;
    Ok(done)
}

impl StopAndCopy {
    /// Run a stop-and-copy migration as a wire stream over `transport`.
    ///
    /// Byte- and nanosecond-equivalent to [`StopAndCopy::migrate`] when the
    /// transport is a loopback over the same link.
    pub fn migrate_over(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
    ) -> Result<MigrationReport> {
        Self::migrate_over_traced(source, dest, vcpus, transport, &Trace::off())
    }

    /// [`StopAndCopy::migrate_over`] with trace spans emitted into `trace`.
    pub fn migrate_over_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        check_same_size(source, dest)?;
        let start = transport.free_at();
        let bytes_before = transport.bytes_sent();
        let mut src = MigrationSource::raw(source);
        let mut sink = MigrationSink::new(dest);

        src.send_hello(transport)?;
        let after_hello = deliver_and_apply(transport, &mut sink, start)?;

        let all_pages: Vec<u64> = (0..source.total_pages()).collect();
        let round_bytes_before = transport.bytes_sent();
        src.encode_round(&all_pages, transport)?;
        let after_pages = deliver_and_apply(transport, &mut sink, after_hello)?;
        let round = RoundStat {
            pages: all_pages.len() as u64,
            bytes: transport.bytes_sent() - round_bytes_before,
            duration: after_pages.saturating_sub(after_hello),
        };
        emit_round_span(trace, "round", 1, round, after_hello, after_pages);

        src.send_vcpu_states(vcpus, transport)?;
        let done = deliver_and_apply(transport, &mut sink, after_pages)?;

        let elapsed = done.saturating_sub(start);
        let report = MigrationReport {
            kind: MigrationKind::StopAndCopy,
            downtime: elapsed,
            total_time: elapsed,
            rounds: 1,
            bytes_transferred: transport.bytes_sent() - bytes_before,
            pages_transferred: all_pages.len() as u64,
            memory_size: source.total_size(),
            converged: true,
            remote_faults: 0,
            avg_fault_latency: Nanoseconds::ZERO,
            rounds_breakdown: vec![round],
        };
        emit_migration_span(trace, &report, start, done, None);
        Ok(report)
    }
}

impl PreCopy {
    /// Run an iterative pre-copy migration as a wire stream over
    /// `transport`, while `dirty_source` keeps writing into the source.
    ///
    /// Byte- and nanosecond-equivalent to [`PreCopy::migrate`] over a
    /// loopback transport when compression is off; with zero-page or XBZRLE
    /// compression the run-length zero coding makes the stream *cheaper*
    /// than the direct path's per-page markers.
    pub fn migrate_over(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        dirty_source: &mut dyn DirtySource,
        config: &MigrationConfig,
    ) -> Result<MigrationReport> {
        Self::migrate_over_traced(
            source,
            dest,
            vcpus,
            transport,
            dirty_source,
            config,
            &Trace::off(),
        )
    }

    /// [`PreCopy::migrate_over`] with trace spans emitted into `trace`.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate_over_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        dirty_source: &mut dyn DirtySource,
        config: &MigrationConfig,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        config.validate()?;
        check_same_size(source, dest)?;
        let start = transport.free_at();
        let bytes_before = transport.bytes_sent();
        let mut src = MigrationSource::with_config(source, config);
        let mut sink = MigrationSink::new(dest);

        src.send_hello(transport)?;
        let mut now = deliver_and_apply(transport, &mut sink, start)?;

        let mut total_pages = 0u64;
        let mut rounds = 0u32;
        let mut converged = false;

        source.clear_dirty();
        let mut to_send: Vec<u64> = (0..source.total_pages()).collect();
        let mut harvest: Vec<u64> = Vec::new();
        // Sized up front so steady-state rounds never reallocate it.
        let mut breakdown: Vec<RoundStat> = Vec::with_capacity(config.max_rounds as usize + 1);

        loop {
            rounds += 1;
            let round_start = now;
            let round_bytes_before = transport.bytes_sent();
            src.encode_round(&to_send, transport)?;
            let done = deliver_and_apply(transport, &mut sink, now)?;
            total_pages += to_send.len() as u64;
            let round_duration = done.saturating_sub(round_start);
            let stat = RoundStat {
                pages: to_send.len() as u64,
                bytes: transport.bytes_sent() - round_bytes_before,
                duration: round_duration,
            };
            breakdown.push(stat);
            emit_round_span(trace, "round", rounds, stat, round_start, done);
            dirty_source.run_for(source, round_duration)?;
            now = done;

            source.drain_dirty_into(&mut harvest);
            std::mem::swap(&mut to_send, &mut harvest);
            if to_send.len() as u64 <= config.dirty_page_threshold {
                converged = true;
                break;
            }
            if rounds >= config.max_rounds {
                break;
            }
        }

        let pause_start = now;
        let stop_bytes_before = transport.bytes_sent();
        src.encode_round(&to_send, transport)?;
        let after_residual = deliver_and_apply(transport, &mut sink, now)?;
        total_pages += to_send.len() as u64;
        let stop_stat = RoundStat {
            pages: to_send.len() as u64,
            bytes: transport.bytes_sent() - stop_bytes_before,
            duration: after_residual.saturating_sub(pause_start),
        };
        breakdown.push(stop_stat);
        emit_round_span(
            trace,
            "stop-phase",
            rounds + 1,
            stop_stat,
            pause_start,
            after_residual,
        );
        src.send_vcpu_states(vcpus, transport)?;
        let done = deliver_and_apply(transport, &mut sink, after_residual)?;

        let report = MigrationReport {
            kind: MigrationKind::PreCopy,
            downtime: done.saturating_sub(pause_start),
            total_time: done.saturating_sub(start),
            rounds,
            bytes_transferred: transport.bytes_sent() - bytes_before,
            pages_transferred: total_pages,
            memory_size: source.total_size(),
            converged,
            remote_faults: 0,
            avg_fault_latency: Nanoseconds::ZERO,
            rounds_breakdown: breakdown,
        };
        emit_migration_span(trace, &report, start, done, src.compression_stats());
        Ok(report)
    }
}

impl PostCopy {
    /// Run a post-copy migration as a wire stream over `transport`.
    ///
    /// Byte- and nanosecond-equivalent to [`PostCopy::migrate`] over a
    /// loopback transport.
    pub fn migrate_over(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        config: &MigrationConfig,
    ) -> Result<MigrationReport> {
        Self::migrate_over_traced(source, dest, vcpus, transport, config, &Trace::off())
    }

    /// [`PostCopy::migrate_over`] with trace spans emitted into `trace`.
    pub fn migrate_over_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        config: &MigrationConfig,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        config.validate()?;
        check_same_size(source, dest)?;
        let start = transport.free_at();
        let bytes_before = transport.bytes_sent();
        let mut src = MigrationSource::raw(source);
        let mut sink = MigrationSink::new(dest);

        src.send_hello(transport)?;
        let after_hello = deliver_and_apply(transport, &mut sink, start)?;

        // Pause: only the vCPU/device state crosses before resume.
        src.send_vcpu_states(vcpus, transport)?;
        let resumed_at = deliver_and_apply(transport, &mut sink, after_hello)?;
        let downtime = resumed_at.saturating_sub(after_hello);

        let total_pages = source.total_pages();
        let fault_pages = ((total_pages as f64) * config.postcopy_fault_fraction).round() as u64;
        let fault_pages = fault_pages.min(total_pages);

        let all_pages: Vec<u64> = (0..total_pages).collect();
        let round_bytes_before = transport.bytes_sent();
        src.encode_round(&all_pages, transport)?;
        let after_pages = deliver_and_apply(transport, &mut sink, resumed_at)?;
        let round = RoundStat {
            pages: total_pages,
            bytes: transport.bytes_sent() - round_bytes_before,
            duration: after_pages.saturating_sub(resumed_at),
        };
        emit_round_span(trace, "round", 1, round, resumed_at, after_pages);

        let per_fault_latency = transport.transfer_time(PAGE_SIZE + PER_PAGE_OVERHEAD);
        let fault_penalty = Nanoseconds(transport.latency().as_nanos() * fault_pages);
        let done = after_pages.saturating_add(fault_penalty);

        let report = MigrationReport {
            kind: MigrationKind::PostCopy,
            downtime,
            total_time: done.saturating_sub(start),
            rounds: 1,
            bytes_transferred: transport.bytes_sent() - bytes_before,
            pages_transferred: total_pages,
            memory_size: source.total_size(),
            converged: true,
            remote_faults: fault_pages,
            avg_fault_latency: per_fault_latency.saturating_add(transport.latency()),
            rounds_breakdown: vec![round],
        };
        emit_migration_span(trace, &report, start, done, None);
        Ok(report)
    }

    /// Run a post-copy migration with an out-of-order demand-fault service
    /// lane: the demand-faulted pages ride a dedicated stream that
    /// *overtakes* the background sweep.
    ///
    /// Hello and vCPU-state phases are identical to
    /// [`PostCopy::migrate_over`] (same downtime). The page phase then
    /// splits in two rounds: the faulted pages are encoded and delivered
    /// first (the lane), the remaining pages follow as the background sweep.
    /// Because every fault is serviced by the lane's single burst, the
    /// sweep-ordered reference's serialized per-fault propagation penalty
    /// (`latency × faults` appended after the sweep) never accrues — total
    /// time is strictly lower whenever at least two pages fault, at the
    /// cost of exactly one extra end-of-round marker frame on the wire.
    ///
    /// The sweep-ordered serial engine stays the proptest-pinned reference;
    /// this path is selected per migration via
    /// [`FaultService::FaultLane`](crate::FaultService::FaultLane) in a
    /// [`MigrationPlan`](crate::MigrationPlan). See
    /// [`sweep_mean_fault_latency`](crate::sweep_mean_fault_latency) for
    /// how the two disciplines' mean fault service latencies compare.
    pub fn migrate_fault_lane_over(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        config: &MigrationConfig,
    ) -> Result<MigrationReport> {
        Self::migrate_fault_lane_over_traced(source, dest, vcpus, transport, config, &Trace::off())
    }

    /// [`PostCopy::migrate_fault_lane_over`] with trace spans emitted into
    /// `trace`.
    pub fn migrate_fault_lane_over_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        transport: &mut dyn Transport,
        config: &MigrationConfig,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        config.validate()?;
        check_same_size(source, dest)?;
        let start = transport.free_at();
        let bytes_before = transport.bytes_sent();
        let mut src = MigrationSource::raw(source);
        let mut sink = MigrationSink::new(dest);

        src.send_hello(transport)?;
        let after_hello = deliver_and_apply(transport, &mut sink, start)?;

        // Pause: only the vCPU/device state crosses before resume —
        // identical to the sweep-ordered reference, so downtime is too.
        src.send_vcpu_states(vcpus, transport)?;
        let resumed_at = deliver_and_apply(transport, &mut sink, after_hello)?;
        let downtime = resumed_at.saturating_sub(after_hello);

        let total_pages = source.total_pages();
        let fault_pages = ((total_pages as f64) * config.postcopy_fault_fraction).round() as u64;
        let fault_pages = fault_pages.min(total_pages);

        let all_pages: Vec<u64> = (0..total_pages).collect();
        let (lane_pages, sweep_pages) = all_pages.split_at(fault_pages as usize);

        // Round 1 — the fault lane: every demand-faulted page crosses in
        // one dedicated burst, ahead of the sweep.
        let lane_bytes_before = transport.bytes_sent();
        src.encode_round(lane_pages, transport)?;
        let after_lane = deliver_and_apply(transport, &mut sink, resumed_at)?;
        let lane_round = RoundStat {
            pages: lane_pages.len() as u64,
            bytes: transport.bytes_sent() - lane_bytes_before,
            duration: after_lane.saturating_sub(resumed_at),
        };
        emit_round_span(trace, "fault-lane", 1, lane_round, resumed_at, after_lane);

        // Round 2 — the background sweep over everything else.
        let sweep_bytes_before = transport.bytes_sent();
        src.encode_round(sweep_pages, transport)?;
        let after_sweep = deliver_and_apply(transport, &mut sink, after_lane)?;
        let sweep_round = RoundStat {
            pages: sweep_pages.len() as u64,
            bytes: transport.bytes_sent() - sweep_bytes_before,
            duration: after_sweep.saturating_sub(after_lane),
        };
        emit_round_span(trace, "sweep", 2, sweep_round, after_lane, after_sweep);

        // No serialized fault penalty: the lane serviced each fault with a
        // single propagation delay, already paid by the lane burst.
        let per_fault_latency = transport.transfer_time(PAGE_SIZE + PER_PAGE_OVERHEAD);
        let done = after_sweep;

        let report = MigrationReport {
            kind: MigrationKind::PostCopy,
            downtime,
            total_time: done.saturating_sub(start),
            rounds: 2,
            bytes_transferred: transport.bytes_sent() - bytes_before,
            pages_transferred: total_pages,
            memory_size: source.total_size(),
            converged: true,
            remote_faults: fault_pages,
            avg_fault_latency: per_fault_latency.saturating_add(transport.latency()),
            rounds_breakdown: vec![lane_round, sweep_round],
        };
        emit_migration_span(trace, &report, start, done, None);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirty::{ConstantRateDirtier, IdleDirtier};
    use crate::transport::{FabricTransport, LoopbackTransport};
    use rvisor_net::{Fabric, FabricParams, Link, LinkModel};
    use rvisor_types::{ByteSize, GuestAddress};

    fn memories(pages: u64) -> (GuestMemory, GuestMemory) {
        let src = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        let dst = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        for p in 0..pages {
            src.write_u64(GuestAddress(p * PAGE_SIZE), p * 7 + 1)
                .unwrap();
        }
        (src, dst)
    }

    fn region_bytes(mem: &GuestMemory) -> Vec<u8> {
        let mut out = Vec::new();
        for r in mem.regions() {
            r.with_bytes(|b| out.extend_from_slice(b));
        }
        out
    }

    fn direct_report(
        engine: usize,
        pages: u64,
        dirty_fraction: f64,
        config: &MigrationConfig,
    ) -> (MigrationReport, Vec<u8>) {
        let (src, dst) = memories(pages);
        let mut link = Link::new(LinkModel::gigabit());
        let vcpus = [VcpuState::default()];
        let report = match engine {
            0 => StopAndCopy::migrate(&src, &dst, &vcpus, &mut link).unwrap(),
            1 => {
                let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                    LinkModel::gigabit().bytes_per_second,
                    dirty_fraction,
                    0,
                    pages,
                );
                PreCopy::migrate(&src, &dst, &vcpus, &mut link, &mut dirtier, config).unwrap()
            }
            _ => PostCopy::migrate(&src, &dst, &vcpus, &mut link, config).unwrap(),
        };
        (report, region_bytes(&dst))
    }

    fn streamed_report(
        engine: usize,
        pages: u64,
        dirty_fraction: f64,
        config: &MigrationConfig,
    ) -> (MigrationReport, Vec<u8>) {
        let (src, dst) = memories(pages);
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let vcpus = [VcpuState::default()];
        let report = match engine {
            0 => StopAndCopy::migrate_over(&src, &dst, &vcpus, &mut transport).unwrap(),
            1 => {
                let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                    LinkModel::gigabit().bytes_per_second,
                    dirty_fraction,
                    0,
                    pages,
                );
                PreCopy::migrate_over(&src, &dst, &vcpus, &mut transport, &mut dirtier, config)
                    .unwrap()
            }
            _ => PostCopy::migrate_over(&src, &dst, &vcpus, &mut transport, config).unwrap(),
        };
        (report, region_bytes(&dst))
    }

    #[test]
    fn loopback_stream_matches_direct_for_every_engine() {
        let config = MigrationConfig::default();
        for engine in 0..3 {
            let (direct, direct_mem) = direct_report(engine, 256, 0.4, &config);
            let (streamed, streamed_mem) = streamed_report(engine, 256, 0.4, &config);
            assert_eq!(streamed, direct, "engine {engine} diverged");
            assert_eq!(streamed_mem, direct_mem, "engine {engine} memory diverged");
        }
    }

    #[test]
    fn fabric_stream_is_slower_than_loopback_but_moves_identical_bytes() {
        // Same nominal bandwidth/latency on both paths; the fabric
        // additionally pays MTU chunk framing, so it must be strictly
        // slower while landing the exact same memory image.
        let pages = 512u64;
        let config = MigrationConfig::default();
        // Idle guest: round timing cannot feed back into memory contents,
        // so the two paths must land the *same* image. (A rate dirtier
        // would dirty different pages under different round lengths.)
        let (loopback, loopback_mem) = streamed_report(1, pages, 0.0, &config);

        let run_fabric = || {
            let (src, dst) = memories(pages);
            let mut fabric = Fabric::new(2, FabricParams::office_lan()).unwrap();
            let mut transport = FabricTransport::new(&mut fabric, 0, 1).unwrap();
            let report = PreCopy::migrate_over(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &mut IdleDirtier,
                &config,
            )
            .unwrap();
            (report, region_bytes(&dst))
        };
        let (fabric_report, fabric_mem) = run_fabric();
        assert!(
            fabric_report.total_time > loopback.total_time,
            "fabric {:?} must be slower than loopback {:?}",
            fabric_report.total_time,
            loopback.total_time
        );
        assert_eq!(fabric_mem, loopback_mem);
        // Same-seed fabric runs replay identically.
        let (replay, replay_mem) = run_fabric();
        assert_eq!(replay, fabric_report);
        assert_eq!(replay_mem, fabric_mem);
    }

    #[test]
    fn compressed_streams_land_identical_memory_for_fewer_bytes() {
        // A sparse guest: long zero runs let the wire format undercut the
        // direct path's per-page zero markers.
        let pages = 1024u64;
        let make = || {
            let src = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
            let dst = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
            for p in (0..pages).step_by(64) {
                src.write_u64(GuestAddress(p * PAGE_SIZE), p + 1).unwrap();
            }
            (src, dst)
        };
        for compression in [PageCompression::ZeroPages, PageCompression::Xbzrle] {
            let config = MigrationConfig {
                compression,
                ..Default::default()
            };
            let (src, dst) = make();
            let mut link = Link::new(LinkModel::gigabit());
            let direct = PreCopy::migrate(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut link,
                &mut IdleDirtier,
                &config,
            )
            .unwrap();
            let direct_mem = region_bytes(&dst);

            let (src2, dst2) = make();
            let mut link2 = Link::new(LinkModel::gigabit());
            let mut transport = LoopbackTransport::new(&mut link2);
            let streamed = PreCopy::migrate_over(
                &src2,
                &dst2,
                &[VcpuState::default()],
                &mut transport,
                &mut IdleDirtier,
                &config,
            )
            .unwrap();
            assert_eq!(region_bytes(&dst2), direct_mem, "{compression:?}");
            assert!(
                streamed.bytes_transferred < direct.bytes_transferred,
                "{compression:?}: run-length zeros must save bytes \
                 ({} vs {})",
                streamed.bytes_transferred,
                direct.bytes_transferred
            );
            assert!(streamed.total_time <= direct.total_time);
        }
    }

    #[test]
    fn corrupted_frame_surfaces_as_typed_error_without_poisoning_the_destination() {
        let pages = 8u64;
        let (src, dst) = memories(pages);
        let mut source = MigrationSource::raw(&src);
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        source.send_hello(&mut transport).unwrap();
        source
            .encode_round(&(0..pages).collect::<Vec<_>>(), &mut transport)
            .unwrap();
        let (_, mut burst) = transport.deliver(Nanoseconds::ZERO).unwrap();

        // Corrupt the payload of the third page frame (page index 2).
        let frame = (wire::FRAME_HEADER_BYTES + PAGE_SIZE) as usize;
        let hello = wire::HELLO_WIRE_BYTES as usize;
        let victim_payload = hello + 2 * frame + wire::FRAME_HEADER_BYTES as usize + 17;
        burst[victim_payload] ^= 0xff;

        let dest_before = region_bytes(&dst);
        let mut sink = MigrationSink::new(&dst);
        let err = sink.apply_burst(&burst).expect_err("corruption must fail");
        match &err {
            Error::WireProtocol { offset, detail } => {
                assert_eq!(
                    *offset,
                    (hello + 2 * frame) as u64,
                    "offset names the frame"
                );
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("wrong error type: {other:?}"),
        }
        // Pages 0 and 1 (before the corrupt frame) were applied; the
        // corrupted frame wrote nothing — page 2 onward is untouched.
        assert_eq!(sink.pages_applied(), 2);
        let dest_after = region_bytes(&dst);
        let page = PAGE_SIZE as usize;
        assert_ne!(&dest_after[..2 * page], &dest_before[..2 * page]);
        assert_eq!(&dest_after[2 * page..], &dest_before[2 * page..]);
    }

    #[test]
    fn sink_rejects_geometry_and_protocol_violations() {
        let (src, _) = memories(4);
        let (_, small_dst) = memories(2);
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let mut source = MigrationSource::raw(&src);
        source.send_hello(&mut transport).unwrap();
        let (_, burst) = transport.deliver(Nanoseconds::ZERO).unwrap();
        // Hello geometry vs a smaller destination.
        let mut sink = MigrationSink::new(&small_dst);
        assert!(matches!(
            sink.apply_burst(&burst),
            Err(Error::WireProtocol { .. })
        ));
        // A stream that does not open with Hello.
        let mut no_hello = Vec::new();
        wire::put_page_zero(&mut no_hello, 0);
        let mut sink = MigrationSink::new(&small_dst);
        assert!(matches!(
            sink.apply_burst(&no_hello),
            Err(Error::WireProtocol { .. })
        ));
        // A page index past the end of the guest.
        transport.recycle(burst);
        let mut sink = MigrationSink::new(&small_dst);
        let mut bad = Vec::new();
        wire::put_hello(&mut bad, 2, 2 * PAGE_SIZE);
        wire::put_page_zero(&mut bad, 7);
        assert!(matches!(
            sink.apply_burst(&bad),
            Err(Error::WireProtocol { .. })
        ));
    }

    #[test]
    fn vcpu_states_survive_the_stream() {
        let (src, dst) = memories(4);
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let mut states = [VcpuState::default(), VcpuState::default()];
        states[0].pc = 0xabc;
        states[0].regs[3] = 7;
        states[1].pc = 0xdef;
        states[1].csrs[1] = 9;

        let mut source = MigrationSource::raw(&src);
        let mut sink = MigrationSink::new(&dst);
        source.send_hello(&mut transport).unwrap();
        source.send_vcpu_states(&states, &mut transport).unwrap();
        let (_, burst) = transport.deliver(Nanoseconds::ZERO).unwrap();
        sink.apply_burst(&burst).unwrap();
        assert_eq!(sink.vcpu_states(), &states[..]);
        assert!(sink.handshake_complete());
        assert_eq!(
            transport.bytes_sent(),
            wire::HELLO_WIRE_BYTES + wire::vcpu_state_wire_bytes(2)
        );
    }

    #[test]
    fn fault_lane_overtakes_the_sweep_reference() {
        let pages = 512u64;
        let config = MigrationConfig::default();
        let run = |lane: bool| {
            let (src, dst) = memories(pages);
            let mut link = Link::new(LinkModel::gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            let vcpus = [VcpuState::default()];
            let report = if lane {
                PostCopy::migrate_fault_lane_over(&src, &dst, &vcpus, &mut transport, &config)
                    .unwrap()
            } else {
                PostCopy::migrate_over(&src, &dst, &vcpus, &mut transport, &config).unwrap()
            };
            (report, region_bytes(&dst))
        };
        let (sweep, sweep_mem) = run(false);
        let (lane, lane_mem) = run(true);
        // Identical payload: same destination image, same pages, same
        // downtime, same fault count; the lane costs exactly one extra
        // end-of-round marker on the wire.
        assert_eq!(lane_mem, sweep_mem);
        assert_eq!(lane.downtime, sweep.downtime);
        assert_eq!(lane.pages_transferred, sweep.pages_transferred);
        assert_eq!(lane.remote_faults, sweep.remote_faults);
        assert!(lane.remote_faults >= 2, "need queueing for a strict win");
        assert_eq!(
            lane.bytes_transferred,
            sweep.bytes_transferred + wire::END_OF_ROUND_WIRE_BYTES
        );
        assert_eq!(lane.rounds, 2);
        // The lane removes the serialized fault penalty entirely.
        assert!(
            lane.total_time < sweep.total_time,
            "fault lane {:?} must overtake the sweep {:?}",
            lane.total_time,
            sweep.total_time
        );
        // Mean fault *service* latency: the lane's reported value is its
        // mean (no queueing); the sweep's mean includes the serialized
        // propagation queue and must be strictly higher.
        let model = LinkModel::gigabit();
        let per_fault = model.transfer_time(PAGE_SIZE + PER_PAGE_OVERHEAD);
        let sweep_mean =
            crate::engines::sweep_mean_fault_latency(per_fault, model.latency, sweep.remote_faults);
        assert_eq!(lane.avg_fault_latency, sweep.avg_fault_latency);
        assert!(
            lane.avg_fault_latency < sweep_mean,
            "lane mean {:?} must beat the sweep's queued mean {:?}",
            lane.avg_fault_latency,
            sweep_mean
        );
        // Same-seed fault-lane runs replay `==`.
        let (replay, replay_mem) = run(true);
        assert_eq!(replay, lane);
        assert_eq!(replay_mem, lane_mem);
    }

    #[test]
    fn fault_lane_handles_empty_and_full_lanes() {
        for fraction in [0.0, 1.0] {
            let pages = 64u64;
            let (src, dst) = memories(pages);
            let mut link = Link::new(LinkModel::gigabit());
            let mut transport = LoopbackTransport::new(&mut link);
            let config = MigrationConfig {
                postcopy_fault_fraction: fraction,
                ..Default::default()
            };
            let report = PostCopy::migrate_fault_lane_over(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut transport,
                &config,
            )
            .unwrap();
            assert_eq!(region_bytes(&dst), region_bytes(&src), "{fraction}");
            assert_eq!(report.rounds, 2);
            assert_eq!(
                report.remote_faults,
                ((pages as f64) * fraction).round() as u64
            );
            assert_eq!(report.pages_transferred, pages);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(10))]

            /// A loopback-transport migration is byte-identical and
            /// `MigrationReport`-equal to the direct in-memory path for all
            /// three engines (the raw protocol is cost-free at equal
            /// modelled bandwidth).
            #[test]
            fn loopback_stream_is_equivalent_to_the_direct_path(
                engine in 0usize..3,
                pages in 32u64..192,
                dirty_fraction_pct in 0u64..120,
            ) {
                let config = MigrationConfig {
                    max_rounds: 6,
                    dirty_page_threshold: 8,
                    ..Default::default()
                };
                let fraction = dirty_fraction_pct as f64 / 100.0;
                let (direct, direct_mem) = direct_report(engine, pages, fraction, &config);
                let (streamed, streamed_mem) = streamed_report(engine, pages, fraction, &config);
                prop_assert_eq!(streamed, direct);
                prop_assert_eq!(streamed_mem, direct_mem);
            }

            /// With compression on, the stream still lands byte-identical
            /// destination memory and never spends more bytes than the
            /// direct path (zero-run coalescing only saves). The direct
            /// comparison uses an idle guest — zero-run savings change
            /// round *timing*, and a rate dirtier would translate that into
            /// different memory contents; a dirtying compressed run is
            /// checked for source/destination agreement instead.
            #[test]
            fn compressed_loopback_stream_preserves_memory(
                pages in 32u64..128,
                dirty_fraction_pct in 0u64..100,
                mode_idx in 1usize..3,
                sparse_stride in 1u64..16,
            ) {
                let config = MigrationConfig {
                    max_rounds: 5,
                    dirty_page_threshold: 8,
                    compression: PageCompression::ALL[mode_idx],
                    ..Default::default()
                };
                let make = || {
                    let src = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
                    let dst = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
                    for p in (0..pages).step_by(sparse_stride as usize) {
                        src.write_u64(GuestAddress(p * PAGE_SIZE), p * 13 + 5).unwrap();
                    }
                    (src, dst)
                };

                let (src_a, dst_a) = make();
                let mut link_a = Link::new(LinkModel::gigabit());
                let direct = PreCopy::migrate(
                    &src_a, &dst_a, &[VcpuState::default()], &mut link_a,
                    &mut IdleDirtier, &config,
                ).unwrap();

                let (src_b, dst_b) = make();
                let mut link_b = Link::new(LinkModel::gigabit());
                let mut transport = LoopbackTransport::new(&mut link_b);
                let streamed = PreCopy::migrate_over(
                    &src_b, &dst_b, &[VcpuState::default()], &mut transport,
                    &mut IdleDirtier, &config,
                ).unwrap();

                prop_assert_eq!(region_bytes(&dst_b), region_bytes(&dst_a));
                prop_assert_eq!(region_bytes(&dst_b), region_bytes(&src_b));
                prop_assert!(streamed.bytes_transferred <= direct.bytes_transferred);

                // A dirtying compressed stream must still land the source's
                // final state on the destination.
                let (src_c, dst_c) = make();
                let mut link_c = Link::new(LinkModel::gigabit());
                let mut transport_c = LoopbackTransport::new(&mut link_c);
                let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                    LinkModel::gigabit().bytes_per_second,
                    dirty_fraction_pct as f64 / 100.0,
                    0,
                    pages,
                );
                PreCopy::migrate_over(
                    &src_c, &dst_c, &[VcpuState::default()], &mut transport_c,
                    &mut dirtier, &config,
                ).unwrap();
                prop_assert_eq!(region_bytes(&dst_c), region_bytes(&src_c));
            }
        }
    }
}
