//! The migration engines.
//!
//! All three engines move the contents of a *source* [`GuestMemory`] into a
//! *destination* [`GuestMemory`] across a [`Link`], accounting simulated
//! time as they go and letting a [`DirtySource`] keep writing into the
//! source while pre-copy rounds are in flight (that is what makes the
//! convergence behaviour real rather than assumed).

use std::num::NonZeroUsize;

use rvisor_memory::GuestMemory;
use rvisor_net::Link;
use rvisor_obs::{ArgValue, Trace};
use rvisor_types::{Error, Nanoseconds, Result, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

use crate::compress::{CompressionStats, PageCompression, PageCompressor};
use crate::dirty::DirtySource;
use crate::report::{MigrationKind, MigrationReport, RoundStat};
use crate::wire;

/// Bytes of metadata transferred per page: exactly one wire-format frame
/// header ([`wire::FRAME_HEADER_BYTES`]), so the direct engines charge the
/// same bytes the streaming path actually encodes.
pub(crate) const PER_PAGE_OVERHEAD: u64 = wire::FRAME_HEADER_BYTES;
/// Modelled on-wire size of one vCPU's non-memory state (registers, device
/// state), framing included — one [`wire::FrameKind::VcpuState`] frame.
pub(crate) const VCPU_STATE_BYTES: u64 = wire::VCPU_STATE_WIRE_BYTES;

/// Shared configuration for the engines.
#[derive(Debug, Clone, Copy)]
pub struct MigrationConfig {
    /// Pre-copy: maximum number of iterative rounds before forcing the stop phase.
    pub max_rounds: u32,
    /// Pre-copy: stop iterating once the dirty set is at most this many pages.
    pub dirty_page_threshold: u64,
    /// Post-copy: fraction of pages that are demand-faulted (the rest arrive
    /// via the background sweep before the guest touches them).
    pub postcopy_fault_fraction: f64,
    /// Pre-copy: how page contents are compressed before crossing the link
    /// (zero-page detection and/or XBZRLE delta encoding).
    pub compression: PageCompression,
    /// Pre-copy with XBZRLE: how many previously-sent pages the delta cache
    /// remembers. Pages evicted from the cache are retransmitted raw, so a
    /// cache smaller than the guest's write working set erases most of the
    /// technique's benefit (the ablation knob of E4e).
    pub xbzrle_cache_pages: usize,
    /// How many parallel migration streams the pipelined engine
    /// ([`crate::pipeline`]) shards the page-index space into (at most
    /// [`MAX_MIGRATION_STREAMS`]). Stripe `s` owns a fixed contiguous range
    /// of page indices, so a page always travels on the same stream and
    /// sink-side applies can never race. The serial engines ignore the
    /// knob; [`rvisor::Vmm::migrate_to_over`-style callers](crate::pipeline)
    /// route `streams > 1` migrations through the pipelined engine.
    pub streams: NonZeroUsize,
}

/// Upper bound on [`MigrationConfig::streams`]: beyond this, per-stream
/// framing overhead and thread fan-out cost more than they could ever buy.
pub const MAX_MIGRATION_STREAMS: usize = 64;

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            max_rounds: 30,
            dirty_page_threshold: 64,
            postcopy_fault_fraction: 0.1,
            compression: PageCompression::None,
            // 256 MiB of cached page versions, mirroring QEMU's default-ish
            // cache sizing scaled to the simulated guests.
            xbzrle_cache_pages: 65_536,
            streams: NonZeroUsize::MIN,
        }
    }
}

impl MigrationConfig {
    /// Validate the configuration. The engines call this on entry, so a
    /// nonsensical knob fails fast instead of silently shaping a run:
    ///
    /// * `postcopy_fault_fraction` must lie in `[0, 1]` (NaN is rejected) —
    ///   it is a fraction of the guest's pages;
    /// * `max_rounds` must be at least 1 (pre-copy needs its full first
    ///   round);
    /// * `xbzrle_cache_pages` must be non-zero when XBZRLE is selected;
    /// * `streams` must not exceed [`MAX_MIGRATION_STREAMS`].
    ///
    /// Network-side knobs (bandwidth, MTU) live in
    /// [`rvisor_net::FabricParams`] / [`rvisor_net::LinkModel`] and are
    /// validated by `FabricParams::validate` when the fabric is built.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.postcopy_fault_fraction) {
            return Err(Error::Migration(format!(
                "postcopy_fault_fraction must be within [0, 1], got {}",
                self.postcopy_fault_fraction
            )));
        }
        if self.max_rounds == 0 {
            return Err(Error::Migration(
                "max_rounds must be at least 1 (pre-copy needs its first round)".into(),
            ));
        }
        if self.compression == PageCompression::Xbzrle && self.xbzrle_cache_pages == 0 {
            return Err(Error::Migration(
                "xbzrle_cache_pages must be non-zero when XBZRLE is enabled".into(),
            ));
        }
        if self.streams.get() > MAX_MIGRATION_STREAMS {
            return Err(Error::Migration(format!(
                "streams must be at most {MAX_MIGRATION_STREAMS}, got {}",
                self.streams
            )));
        }
        Ok(())
    }
}

/// Emit the per-migration summary span, histogram samples and counters all
/// three data planes share. A no-op (no allocation, no formatting) when
/// `trace` is off.
pub(crate) fn emit_migration_span(
    trace: &Trace,
    report: &MigrationReport,
    start: Nanoseconds,
    end: Nanoseconds,
    stats: Option<CompressionStats>,
) {
    if !trace.is_on() {
        return;
    }
    let stats = stats.unwrap_or_default();
    trace.span(
        "migrate",
        report.kind.name(),
        start,
        end,
        &[
            ("pages", ArgValue::U64(report.pages_transferred)),
            ("bytes", ArgValue::U64(report.bytes_transferred)),
            ("rounds", ArgValue::U64(u64::from(report.rounds))),
            ("downtime_ns", ArgValue::U64(report.downtime.as_nanos())),
            ("converged", ArgValue::U64(u64::from(report.converged))),
            ("zero_pages", ArgValue::U64(stats.pages_zero)),
            ("delta_pages", ArgValue::U64(stats.pages_delta)),
            ("raw_pages", ArgValue::U64(stats.pages_raw)),
        ],
    );
    trace.observe("migration.downtime_ns", report.downtime.as_nanos());
    trace.observe("migration.duration_ns", report.total_time.as_nanos());
    trace.add("migrations", 1);
}

/// Emit one pre-copy round's sub-span and histogram samples.
pub(crate) fn emit_round_span(
    trace: &Trace,
    name: &'static str,
    round: u32,
    stat: RoundStat,
    start: Nanoseconds,
    end: Nanoseconds,
) {
    if !trace.is_on() {
        return;
    }
    trace.span(
        "migrate/round",
        name,
        start,
        end,
        &[
            ("round", ArgValue::U64(u64::from(round))),
            ("pages", ArgValue::U64(stat.pages)),
            ("bytes", ArgValue::U64(stat.bytes)),
        ],
    );
    trace.observe("migrate.round.pages", stat.pages);
    trace.observe("migrate.round.bytes", stat.bytes);
}

pub(crate) fn check_same_size(source: &GuestMemory, dest: &GuestMemory) -> Result<()> {
    if source.total_size() != dest.total_size() {
        return Err(Error::Migration(format!(
            "source has {} of RAM but destination has {}",
            source.total_size(),
            dest.total_size()
        )));
    }
    // The in-place receive path takes a destination write lock while the
    // wire page may alias the source's bytes; aliased source/destination
    // handles would make the transfer read its own partially-overwritten
    // output (and migrating a VM onto its own memory is meaningless), so
    // reject sharing up front.
    for (s, d) in source.regions().iter().zip(dest.regions().iter()) {
        if std::sync::Arc::ptr_eq(s, d) {
            return Err(Error::Migration(
                "source and destination share backing memory".into(),
            ));
        }
    }
    Ok(())
}

fn copy_pages(
    source: &GuestMemory,
    dest: &GuestMemory,
    pages: &[u64],
    link: &mut Link,
    now: Nanoseconds,
) -> Result<(Nanoseconds, u64)> {
    copy_pages_with(source, dest, pages, link, now, None)
}

/// Copy pages, optionally running them through a [`PageCompressor`].
///
/// Zero-copy on both sides: each source page is borrowed in place
/// ([`GuestMemory::with_page`]) and handed to the compressor as `&[u8]`, and
/// the destination reconstructs it *into its own page* (raw overwrite,
/// in-place zeroing, or in-place XBZRLE patching via
/// [`PageCompressor::apply_in_place`]), exactly as the real protocol would;
/// only the reconstructed bytes land, so memory equality at the end of a
/// migration proves the codec round-trips. The uncompressed path performs no
/// heap allocation per page (the guarantee pinned by the
/// `alloc_guard` integration test).
fn copy_pages_with(
    source: &GuestMemory,
    dest: &GuestMemory,
    pages: &[u64],
    link: &mut Link,
    now: Nanoseconds,
    mut compressor: Option<&mut PageCompressor>,
) -> Result<(Nanoseconds, u64)> {
    // Stack bounce buffer for the uncompressed path (initialized once per
    // call, overwritten in full per page): the source read lock is released
    // before the destination write lock is taken, so two concurrent
    // opposite-direction migrations over the same pair of memories can
    // never deadlock on lock order. Still zero heap allocations per page.
    let mut bounce = [0u8; PAGE_SIZE as usize];
    let mut bytes = 0u64;
    for &p in pages {
        match compressor.as_deref_mut() {
            Some(c) => {
                // Sequential, never nested: compress under the source read
                // lock, then apply under the destination write lock.
                let wire = source.with_page(p, |contents| c.compress(p, contents))?;
                dest.with_page_mut(p, |current| PageCompressor::apply_in_place(current, &wire))??;
                bytes += wire.wire_len() + PER_PAGE_OVERHEAD;
            }
            None => {
                source.with_page(p, |contents| bounce.copy_from_slice(contents))?;
                dest.with_page_mut(p, |target| target.copy_from_slice(&bounce))?;
                bytes += PAGE_SIZE + PER_PAGE_OVERHEAD;
            }
        }
    }
    // Every round's burst is terminated by an end-of-round marker frame on
    // the wire; the direct path charges it so both paths account alike.
    bytes += wire::END_OF_ROUND_WIRE_BYTES;
    let done = link.transmit(now, bytes);
    Ok((done, bytes))
}

/// Pause, copy all memory and state, resume on the destination.
#[derive(Debug, Default)]
pub struct StopAndCopy;

impl StopAndCopy {
    /// Run the migration. The guest is paused for the entire duration, so
    /// downtime equals total time.
    pub fn migrate(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        link: &mut Link,
    ) -> Result<MigrationReport> {
        Self::migrate_traced(source, dest, vcpus, link, &Trace::off())
    }

    /// [`StopAndCopy::migrate`] with trace spans emitted into `trace`.
    pub fn migrate_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        link: &mut Link,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        check_same_size(source, dest)?;
        let start = link.free_at();
        // Stream opener: version/geometry handshake (the guest is already
        // paused for a cold migration, so it counts toward downtime).
        let after_hello = link.transmit(start, wire::HELLO_WIRE_BYTES);
        let all_pages: Vec<u64> = (0..source.total_pages()).collect();
        let (after_pages, bytes) = copy_pages(source, dest, &all_pages, link, after_hello)?;
        let state_bytes = VCPU_STATE_BYTES * vcpus.len().max(1) as u64;
        let done = link.transmit(after_pages, state_bytes);
        let elapsed = done.saturating_sub(start);
        let round = RoundStat {
            pages: all_pages.len() as u64,
            bytes,
            duration: after_pages.saturating_sub(after_hello),
        };
        emit_round_span(trace, "round", 1, round, after_hello, after_pages);
        let report = MigrationReport {
            kind: MigrationKind::StopAndCopy,
            downtime: elapsed,
            total_time: elapsed,
            rounds: 1,
            bytes_transferred: wire::HELLO_WIRE_BYTES + bytes + state_bytes,
            pages_transferred: all_pages.len() as u64,
            memory_size: source.total_size(),
            converged: true,
            remote_faults: 0,
            avg_fault_latency: Nanoseconds::ZERO,
            rounds_breakdown: vec![round],
        };
        emit_migration_span(trace, &report, start, done, None);
        Ok(report)
    }
}

/// Iterative pre-copy.
#[derive(Debug, Default)]
pub struct PreCopy;

impl PreCopy {
    /// Run the migration while `dirty_source` keeps writing into the source.
    pub fn migrate(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        link: &mut Link,
        dirty_source: &mut dyn DirtySource,
        config: &MigrationConfig,
    ) -> Result<MigrationReport> {
        Self::migrate_traced(
            source,
            dest,
            vcpus,
            link,
            dirty_source,
            config,
            &Trace::off(),
        )
    }

    /// [`PreCopy::migrate`] with trace spans emitted into `trace`: one
    /// sub-span per iterative round plus the stop phase, and the
    /// per-migration summary span.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        link: &mut Link,
        dirty_source: &mut dyn DirtySource,
        config: &MigrationConfig,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        config.validate()?;
        check_same_size(source, dest)?;
        let start = link.free_at();
        // Stream opener (version/geometry handshake) while the guest runs.
        let mut now = link.transmit(start, wire::HELLO_WIRE_BYTES);
        let mut total_bytes = wire::HELLO_WIRE_BYTES;
        let mut total_pages = 0u64;
        let mut rounds = 0u32;
        let mut converged = false;
        let mut compressor = match config.compression {
            PageCompression::None => None,
            mode => Some(PageCompressor::with_cache_capacity(
                mode,
                config.xbzrle_cache_pages,
            )),
        };

        // Round 1: everything. Clear the dirty bitmap first so only writes
        // that happen *during* the transfer count for the next round.
        source.clear_dirty();
        let mut to_send: Vec<u64> = (0..source.total_pages()).collect();
        // One harvest buffer is swapped with `to_send` each round; once both
        // have grown to the working set, steady-state rounds allocate nothing.
        let mut harvest: Vec<u64> = Vec::new();
        // Sized for the worst case (max_rounds iterations + the stop phase)
        // up front, so pushes inside the loop never reallocate and the
        // steady-state round stays allocation-free (alloc-guard-pinned).
        let mut breakdown: Vec<RoundStat> = Vec::with_capacity(config.max_rounds as usize + 1);

        loop {
            rounds += 1;
            let round_start = now;
            let (done, bytes) =
                copy_pages_with(source, dest, &to_send, link, now, compressor.as_mut())?;
            total_bytes += bytes;
            total_pages += to_send.len() as u64;
            let round_duration = done.saturating_sub(round_start);
            let stat = RoundStat {
                pages: to_send.len() as u64,
                bytes,
                duration: round_duration,
            };
            breakdown.push(stat);
            emit_round_span(trace, "round", rounds, stat, round_start, done);
            // The guest ran (and dirtied memory) for the whole round.
            dirty_source.run_for(source, round_duration)?;
            now = done;

            source.drain_dirty_into(&mut harvest);
            std::mem::swap(&mut to_send, &mut harvest);
            if to_send.len() as u64 <= config.dirty_page_threshold {
                converged = true;
                break;
            }
            if rounds >= config.max_rounds {
                break;
            }
        }

        // Stop phase: the guest is paused; transfer the residual dirty set and state.
        let pause_start = now;
        let (after_residual, residual_bytes) =
            copy_pages_with(source, dest, &to_send, link, now, compressor.as_mut())?;
        total_bytes += residual_bytes;
        total_pages += to_send.len() as u64;
        let stop_stat = RoundStat {
            pages: to_send.len() as u64,
            bytes: residual_bytes,
            duration: after_residual.saturating_sub(pause_start),
        };
        breakdown.push(stop_stat);
        emit_round_span(
            trace,
            "stop-phase",
            rounds + 1,
            stop_stat,
            pause_start,
            after_residual,
        );
        let state_bytes = VCPU_STATE_BYTES * vcpus.len().max(1) as u64;
        let done = link.transmit(after_residual, state_bytes);
        total_bytes += state_bytes;

        let report = MigrationReport {
            kind: MigrationKind::PreCopy,
            downtime: done.saturating_sub(pause_start),
            total_time: done.saturating_sub(start),
            rounds,
            bytes_transferred: total_bytes,
            pages_transferred: total_pages,
            memory_size: source.total_size(),
            converged,
            remote_faults: 0,
            avg_fault_latency: Nanoseconds::ZERO,
            rounds_breakdown: breakdown,
        };
        emit_migration_span(trace, &report, start, done, compressor.map(|c| c.stats()));
        Ok(report)
    }
}

/// Post-copy with demand paging.
#[derive(Debug, Default)]
pub struct PostCopy;

impl PostCopy {
    /// Run the migration. The guest pauses only while vCPU state moves; all
    /// memory is pulled afterwards — a configurable fraction synchronously
    /// (demand faults, each paying a round trip) and the rest by the
    /// background sweep.
    pub fn migrate(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        link: &mut Link,
        config: &MigrationConfig,
    ) -> Result<MigrationReport> {
        Self::migrate_traced(source, dest, vcpus, link, config, &Trace::off())
    }

    /// [`PostCopy::migrate`] with trace spans emitted into `trace`.
    pub fn migrate_traced(
        source: &GuestMemory,
        dest: &GuestMemory,
        vcpus: &[VcpuState],
        link: &mut Link,
        config: &MigrationConfig,
        trace: &Trace,
    ) -> Result<MigrationReport> {
        config.validate()?;
        check_same_size(source, dest)?;
        let start = link.free_at();
        // Stream opener crosses before the pause (connection setup).
        let after_hello = link.transmit(start, wire::HELLO_WIRE_BYTES);
        // Downtime: only the vCPU/device state.
        let state_bytes = VCPU_STATE_BYTES * vcpus.len().max(1) as u64;
        let resumed_at = link.transmit(after_hello, state_bytes);
        let downtime = resumed_at.saturating_sub(after_hello);

        // All memory still has to cross the link; demand faults additionally pay
        // a propagation round trip each because the guest is blocked on them.
        let total_pages = source.total_pages();
        let fault_pages = ((total_pages as f64) * config.postcopy_fault_fraction).round() as u64;
        let fault_pages = fault_pages.min(total_pages);

        let all_pages: Vec<u64> = (0..total_pages).collect();
        let (after_pages, bytes) = copy_pages(source, dest, &all_pages, link, resumed_at)?;

        let per_fault_latency = link.model().transfer_time(PAGE_SIZE + PER_PAGE_OVERHEAD);
        // Demand faults serialize with the background stream; model their extra
        // cost as one additional propagation delay each (the request direction).
        let fault_penalty = Nanoseconds(link.model().latency.as_nanos() * fault_pages);
        let done = after_pages.saturating_add(fault_penalty);

        let round = RoundStat {
            pages: total_pages,
            bytes,
            duration: after_pages.saturating_sub(resumed_at),
        };
        emit_round_span(trace, "round", 1, round, resumed_at, after_pages);
        let report = MigrationReport {
            kind: MigrationKind::PostCopy,
            downtime,
            total_time: done.saturating_sub(start),
            rounds: 1,
            bytes_transferred: wire::HELLO_WIRE_BYTES + bytes + state_bytes,
            pages_transferred: total_pages,
            memory_size: source.total_size(),
            converged: true,
            remote_faults: fault_pages,
            avg_fault_latency: per_fault_latency.saturating_add(link.model().latency),
            rounds_breakdown: vec![round],
        };
        emit_migration_span(trace, &report, start, done, None);
        Ok(report)
    }
}

/// Mean demand-fault *service* latency under the sweep-ordered reference
/// discipline, for `faults` demand faults each costing `per_fault` transfer
/// time over a path with one-way propagation delay `latency`.
///
/// The sweep-ordered engines ([`PostCopy::migrate_traced`] and its streamed
/// and pipelined equivalents) charge their demand faults as one serialized
/// propagation delay each, appended after the background sweep
/// (`fault_penalty = latency × faults`); their reports' `avg_fault_latency`
/// records only the *per-fault transfer cost* (`per_fault + latency`) and
/// deliberately excludes that queueing. Under the serialized discipline the
/// k-th fault waits behind k propagation delays, so the mean service
/// latency over `faults ≥ 1` faults is
///
/// ```text
/// per_fault + latency × (faults + 1) / 2
/// ```
///
/// which is what this helper returns (`ZERO` for zero faults). A
/// fault-lane run
/// ([`PostCopy::migrate_fault_lane_over`](crate::PostCopy::migrate_fault_lane_over))
/// services every fault from a dedicated stream with no queueing, so its
/// reported `avg_fault_latency` (`per_fault + latency`) *is* its mean
/// service latency — strictly below the sweep's whenever two or more pages
/// fault.
pub fn sweep_mean_fault_latency(
    per_fault: Nanoseconds,
    latency: Nanoseconds,
    faults: u64,
) -> Nanoseconds {
    if faults == 0 {
        return Nanoseconds::ZERO;
    }
    let queueing = latency
        .as_nanos()
        .saturating_mul(faults + 1)
        .saturating_div(2);
    per_fault.saturating_add(Nanoseconds(queueing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirty::{ConstantRateDirtier, IdleDirtier};
    use rvisor_net::LinkModel;
    use rvisor_types::{ByteSize, GuestAddress};

    fn memories(pages: u64) -> (GuestMemory, GuestMemory) {
        let src = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        let dst = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        // Put a recognisable pattern into the source.
        for p in 0..pages {
            src.write_u64(GuestAddress(p * PAGE_SIZE), p * 7 + 1)
                .unwrap();
        }
        (src, dst)
    }

    fn link() -> Link {
        Link::new(LinkModel::gigabit())
    }

    #[test]
    fn stop_and_copy_moves_everything_with_downtime_equal_total() {
        let (src, dst) = memories(256);
        let mut l = link();
        let report = StopAndCopy::migrate(&src, &dst, &[VcpuState::default()], &mut l).unwrap();
        assert_eq!(report.kind, MigrationKind::StopAndCopy);
        assert_eq!(report.downtime, report.total_time);
        assert_eq!(report.pages_transferred, 256);
        assert_eq!(src.checksum(), dst.checksum());
        assert!(report.transfer_amplification() >= 1.0);
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let src = GuestMemory::flat(ByteSize::pages_of(8)).unwrap();
        let dst = GuestMemory::flat(ByteSize::pages_of(16)).unwrap();
        let mut l = link();
        assert!(StopAndCopy::migrate(&src, &dst, &[], &mut l).is_err());
        assert!(PostCopy::migrate(&src, &dst, &[], &mut l, &MigrationConfig::default()).is_err());
        assert!(PreCopy::migrate(
            &src,
            &dst,
            &[],
            &mut l,
            &mut IdleDirtier,
            &MigrationConfig::default()
        )
        .is_err());
    }

    #[test]
    fn precopy_with_idle_guest_has_tiny_downtime() {
        let (src, dst) = memories(1024);
        let mut l = link();
        let report = PreCopy::migrate(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut l,
            &mut IdleDirtier,
            &MigrationConfig::default(),
        )
        .unwrap();
        assert!(report.converged);
        assert_eq!(report.rounds, 1);
        assert_eq!(src.checksum(), dst.checksum());
        // Downtime is just the residual (empty) set + vCPU state: far below total.
        assert!(report.downtime.as_nanos() < report.total_time.as_nanos() / 10);
    }

    #[test]
    fn precopy_downtime_grows_with_dirty_rate() {
        let config = MigrationConfig::default();
        let mut downtimes = Vec::new();
        for fraction in [0.1, 0.5, 0.9] {
            let (src, dst) = memories(2048);
            let mut l = link();
            let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                l.model().bytes_per_second,
                fraction,
                0,
                2048,
            );
            let report = PreCopy::migrate(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut l,
                &mut dirtier,
                &config,
            )
            .unwrap();
            assert_eq!(
                src.checksum(),
                dst.checksum(),
                "memory must match at fraction {fraction}"
            );
            downtimes.push(report.downtime);
        }
        assert!(downtimes[0] < downtimes[1]);
        assert!(downtimes[1] < downtimes[2]);
    }

    #[test]
    fn precopy_gives_up_when_dirty_rate_exceeds_bandwidth() {
        let (src, dst) = memories(512);
        let mut l = Link::new(LinkModel {
            bytes_per_second: 10_000_000,
            latency: Nanoseconds::from_micros(100),
        });
        // Dirty at 3x the link bandwidth over a large working set: cannot converge.
        let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(10_000_000, 3.0, 0, 512);
        let config = MigrationConfig {
            max_rounds: 5,
            dirty_page_threshold: 4,
            ..Default::default()
        };
        let report = PreCopy::migrate(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut l,
            &mut dirtier,
            &config,
        )
        .unwrap();
        assert!(!report.converged);
        assert_eq!(report.rounds, 5);
        // It still finishes (forced stop-and-copy) and memory still matches.
        assert_eq!(src.checksum(), dst.checksum());
        assert!(report.transfer_amplification() > 1.5);
    }

    #[test]
    fn postcopy_downtime_is_independent_of_ram_size() {
        let mut downtimes = Vec::new();
        for pages in [256u64, 2048, 8192] {
            let (src, dst) = memories(pages);
            let mut l = link();
            let report = PostCopy::migrate(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut l,
                &MigrationConfig::default(),
            )
            .unwrap();
            assert_eq!(src.checksum(), dst.checksum());
            assert!(report.remote_faults > 0);
            assert!(report.avg_fault_latency > Nanoseconds::ZERO);
            downtimes.push(report.downtime);
        }
        assert_eq!(downtimes[0], downtimes[1]);
        assert_eq!(downtimes[1], downtimes[2]);
    }

    #[test]
    fn postcopy_downtime_below_stop_and_copy() {
        let (src, dst) = memories(4096);
        let mut l1 = link();
        let sc = StopAndCopy::migrate(&src, &dst, &[VcpuState::default()], &mut l1).unwrap();
        let (src2, dst2) = memories(4096);
        let mut l2 = link();
        let pc = PostCopy::migrate(
            &src2,
            &dst2,
            &[VcpuState::default()],
            &mut l2,
            &MigrationConfig::default(),
        )
        .unwrap();
        assert!(pc.downtime.as_nanos() * 100 < sc.downtime.as_nanos());
    }

    #[test]
    fn precopy_zero_page_compression_shrinks_a_sparse_guest() {
        // Only 1 in 16 pages has content; the rest are zero.
        let pages = 2048u64;
        let make = || {
            let src = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
            let dst = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
            for p in (0..pages).step_by(16) {
                src.write_u64(GuestAddress(p * PAGE_SIZE), p + 1).unwrap();
            }
            (src, dst)
        };

        let (src, dst) = make();
        let mut l = link();
        let raw = PreCopy::migrate(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut l,
            &mut IdleDirtier,
            &MigrationConfig::default(),
        )
        .unwrap();
        assert_eq!(src.checksum(), dst.checksum());

        let (src, dst) = make();
        let mut l = link();
        let config = MigrationConfig {
            compression: PageCompression::ZeroPages,
            ..Default::default()
        };
        let compressed = PreCopy::migrate(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut l,
            &mut IdleDirtier,
            &config,
        )
        .unwrap();
        assert_eq!(
            src.checksum(),
            dst.checksum(),
            "compression must not corrupt memory"
        );
        // 15/16 of the pages collapse to one-byte markers.
        assert!(compressed.bytes_transferred * 8 < raw.bytes_transferred);
        assert!(compressed.total_time < raw.total_time);
    }

    #[test]
    fn precopy_xbzrle_reduces_retransmission_under_dirtying() {
        let run = |compression: PageCompression| {
            let (src, dst) = memories(2048);
            let mut l = link();
            let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
                l.model().bytes_per_second,
                0.5,
                0,
                2048,
            );
            let config = MigrationConfig {
                compression,
                ..Default::default()
            };
            let report = PreCopy::migrate(
                &src,
                &dst,
                &[VcpuState::default()],
                &mut l,
                &mut dirtier,
                &config,
            )
            .unwrap();
            assert_eq!(
                src.checksum(),
                dst.checksum(),
                "memory mismatch with {compression:?}"
            );
            report
        };

        let raw = run(PageCompression::None);
        let xbzrle = run(PageCompression::Xbzrle);
        // The dirtier rewrites one u64 per page, so every retransmitted page
        // collapses to a tiny delta: far fewer bytes and faster completion.
        assert!(xbzrle.bytes_transferred < raw.bytes_transferred / 2);
        assert!(xbzrle.total_time < raw.total_time);
        assert!(xbzrle.downtime <= raw.downtime);
    }

    /// The seed (pre-refactor) data plane, kept as a reference: a fresh
    /// `Vec<u8>` per page touched, a fresh `Vec<u64>` per harvest. The
    /// zero-copy engine must be observably equivalent to it. (The only
    /// post-seed edits are the wire-framing constants — hello opener and
    /// end-of-round markers — which PR 4 added identically to both paths;
    /// the allocation structure under comparison is untouched.)
    mod seed_reference {
        use super::*;

        fn copy_pages_with_seed(
            source: &GuestMemory,
            dest: &GuestMemory,
            pages: &[u64],
            link: &mut Link,
            now: Nanoseconds,
            mut compressor: Option<&mut PageCompressor>,
        ) -> Result<(Nanoseconds, u64)> {
            let mut bytes = 0u64;
            for &p in pages {
                let contents = source.read_page(p)?;
                match compressor.as_deref_mut() {
                    Some(c) => {
                        let wire = c.compress(p, &contents);
                        let current = dest.read_page(p)?;
                        let rebuilt = PageCompressor::apply(&current, &wire)?;
                        dest.write_page(p, &rebuilt)?;
                        bytes += wire.wire_len() + PER_PAGE_OVERHEAD;
                    }
                    None => {
                        dest.write_page(p, &contents)?;
                        bytes += PAGE_SIZE + PER_PAGE_OVERHEAD;
                    }
                }
            }
            bytes += wire::END_OF_ROUND_WIRE_BYTES;
            let done = link.transmit(now, bytes);
            Ok((done, bytes))
        }

        /// The seed `PreCopy::migrate` loop, verbatim.
        pub fn precopy_migrate_seed(
            source: &GuestMemory,
            dest: &GuestMemory,
            vcpus: &[VcpuState],
            link: &mut Link,
            dirty_source: &mut dyn DirtySource,
            config: &MigrationConfig,
        ) -> Result<MigrationReport> {
            let start = link.free_at();
            let mut now = link.transmit(start, wire::HELLO_WIRE_BYTES);
            let mut total_bytes = wire::HELLO_WIRE_BYTES;
            let mut total_pages = 0u64;
            let mut rounds = 0u32;
            let mut converged = false;
            let mut compressor = match config.compression {
                PageCompression::None => None,
                mode => Some(PageCompressor::with_cache_capacity(
                    mode,
                    config.xbzrle_cache_pages,
                )),
            };

            source.clear_dirty();
            let all_pages: Vec<u64> = (0..source.total_pages()).collect();
            let mut to_send = all_pages;
            let mut breakdown: Vec<RoundStat> = Vec::new();

            loop {
                rounds += 1;
                let round_start = now;
                let (done, bytes) =
                    copy_pages_with_seed(source, dest, &to_send, link, now, compressor.as_mut())?;
                total_bytes += bytes;
                total_pages += to_send.len() as u64;
                let round_duration = done.saturating_sub(round_start);
                breakdown.push(RoundStat {
                    pages: to_send.len() as u64,
                    bytes,
                    duration: round_duration,
                });
                dirty_source.run_for(source, round_duration)?;
                now = done;

                let dirty = source.drain_dirty();
                if dirty.len() as u64 <= config.dirty_page_threshold {
                    converged = true;
                    to_send = dirty;
                    break;
                }
                if rounds >= config.max_rounds {
                    to_send = dirty;
                    break;
                }
                to_send = dirty;
            }

            let pause_start = now;
            let (after_residual, residual_bytes) =
                copy_pages_with_seed(source, dest, &to_send, link, now, compressor.as_mut())?;
            total_bytes += residual_bytes;
            total_pages += to_send.len() as u64;
            breakdown.push(RoundStat {
                pages: to_send.len() as u64,
                bytes: residual_bytes,
                duration: after_residual.saturating_sub(pause_start),
            });
            let state_bytes = VCPU_STATE_BYTES * vcpus.len().max(1) as u64;
            let done = link.transmit(after_residual, state_bytes);
            total_bytes += state_bytes;

            Ok(MigrationReport {
                kind: MigrationKind::PreCopy,
                downtime: done.saturating_sub(pause_start),
                total_time: done.saturating_sub(start),
                rounds,
                bytes_transferred: total_bytes,
                pages_transferred: total_pages,
                memory_size: source.total_size(),
                converged,
                remote_faults: 0,
                avg_fault_latency: Nanoseconds::ZERO,
                rounds_breakdown: breakdown,
            })
        }
    }

    fn region_bytes(mem: &GuestMemory) -> Vec<u8> {
        let mut out = Vec::new();
        for r in mem.regions() {
            r.with_bytes(|b| out.extend_from_slice(b));
        }
        out
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// A pre-copy run over the zero-copy data plane is observably
            /// equivalent to the seed (allocating) path: byte-identical
            /// destination memory and an equal [`MigrationReport`] for the
            /// same deterministic inputs.
            #[test]
            fn zero_copy_precopy_is_equivalent_to_the_seed_path(
                pages in 32u64..256,
                dirty_fraction_pct in 0u64..120,
                mode_idx in 0usize..3,
            ) {
                let config = MigrationConfig {
                    max_rounds: 6,
                    dirty_page_threshold: 8,
                    compression: PageCompression::ALL[mode_idx],
                    ..Default::default()
                };
                let make_dirtier = || {
                    ConstantRateDirtier::from_bandwidth_fraction(
                        LinkModel::gigabit().bytes_per_second,
                        dirty_fraction_pct as f64 / 100.0,
                        0,
                        pages,
                    )
                };

                let (src_a, dst_a) = memories(pages);
                let mut link_a = link();
                let seed_report = seed_reference::precopy_migrate_seed(
                    &src_a,
                    &dst_a,
                    &[VcpuState::default()],
                    &mut link_a,
                    &mut make_dirtier(),
                    &config,
                )
                .unwrap();

                let (src_b, dst_b) = memories(pages);
                let mut link_b = link();
                let zero_copy_report = PreCopy::migrate(
                    &src_b,
                    &dst_b,
                    &[VcpuState::default()],
                    &mut link_b,
                    &mut make_dirtier(),
                    &config,
                )
                .unwrap();

                prop_assert_eq!(zero_copy_report, seed_report);
                prop_assert_eq!(region_bytes(&dst_b), region_bytes(&dst_a));
                prop_assert_eq!(dst_b.checksum(), dst_a.checksum());
            }
        }
    }

    #[test]
    fn sweep_mean_fault_latency_accounts_for_the_serialized_queue() {
        let per_fault = Nanoseconds(1_000);
        let latency = Nanoseconds(100);
        assert_eq!(
            sweep_mean_fault_latency(per_fault, latency, 0),
            Nanoseconds::ZERO
        );
        // One fault pays exactly one propagation delay — the same number
        // the reports' `avg_fault_latency` field records.
        assert_eq!(
            sweep_mean_fault_latency(per_fault, latency, 1),
            Nanoseconds(1_100)
        );
        // The k-th fault queues k delays: mean = latency * (n + 1) / 2.
        assert_eq!(
            sweep_mean_fault_latency(per_fault, latency, 3),
            Nanoseconds(1_200)
        );
        assert!(
            sweep_mean_fault_latency(per_fault, latency, 51)
                > sweep_mean_fault_latency(per_fault, latency, 5)
        );
    }

    #[test]
    fn shared_backing_memory_is_rejected() {
        let src = GuestMemory::flat(ByteSize::pages_of(8)).unwrap();
        let aliased = src.clone();
        let mut l = link();
        let err = StopAndCopy::migrate(&src, &aliased, &[], &mut l);
        assert!(matches!(err, Err(Error::Migration(_))), "got {err:?}");
    }

    #[test]
    fn precopy_transfers_more_bytes_than_stop_and_copy_under_dirtying() {
        let (src, dst) = memories(1024);
        let mut l = link();
        let mut dirtier =
            ConstantRateDirtier::from_bandwidth_fraction(l.model().bytes_per_second, 0.6, 0, 1024);
        let pre = PreCopy::migrate(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut l,
            &mut dirtier,
            &MigrationConfig::default(),
        )
        .unwrap();
        let (src2, dst2) = memories(1024);
        let mut l2 = link();
        let sc = StopAndCopy::migrate(&src2, &dst2, &[VcpuState::default()], &mut l2).unwrap();
        assert!(pre.bytes_transferred > sc.bytes_transferred);
        assert!(pre.downtime < sc.downtime);
        assert!(pre.effective_bandwidth_bytes_per_sec() > 0.0);
    }
}
