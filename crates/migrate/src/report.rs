//! Migration outcome reports.

use serde::{Deserialize, Serialize};

use rvisor_types::{ByteSize, Nanoseconds};

/// Which engine produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationKind {
    /// Pause, copy everything, resume.
    StopAndCopy,
    /// Iterative pre-copy with a final stop-and-copy.
    PreCopy,
    /// Immediate switch-over with demand paging.
    PostCopy,
}

impl MigrationKind {
    /// A short name for benchmark labels.
    pub fn name(self) -> &'static str {
        match self {
            MigrationKind::StopAndCopy => "stop-and-copy",
            MigrationKind::PreCopy => "pre-copy",
            MigrationKind::PostCopy => "post-copy",
        }
    }
}

/// One memory-copy round of a migration: the iterative pre-copy rounds, the
/// final stop-phase copy, or the single bulk copy of the other engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStat {
    /// Pages carried this round.
    pub pages: u64,
    /// Bytes put on the wire this round (payload after compression, plus
    /// framing on the streamed paths).
    pub bytes: u64,
    /// Simulated time the round occupied the link.
    pub duration: Nanoseconds,
}

/// The metrics of one migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// Engine used.
    pub kind: MigrationKind,
    /// Time during which the guest was paused.
    pub downtime: Nanoseconds,
    /// Wall-clock (simulated) time from start to the destination owning the VM
    /// with all of its memory present.
    pub total_time: Nanoseconds,
    /// Number of pre-copy rounds performed (1 for stop-and-copy).
    pub rounds: u32,
    /// Total bytes moved over the migration link (including retransmitted dirty pages).
    pub bytes_transferred: u64,
    /// Pages transferred (including duplicates across rounds).
    pub pages_transferred: u64,
    /// Guest RAM size.
    pub memory_size: ByteSize,
    /// Whether pre-copy converged below its dirty-set threshold (always true
    /// for the other engines).
    pub converged: bool,
    /// Post-copy only: number of demand (remote) page faults served.
    pub remote_faults: u64,
    /// Post-copy only: average latency of a remote fault.
    pub avg_fault_latency: Nanoseconds,
    /// Per-round breakdown: one entry per memory-copy round, in order.
    /// Pre-copy appends a final entry for the paused stop-phase copy;
    /// stop-and-copy and post-copy record their single bulk copy. The
    /// serial, streamed and pipelined paths populate it identically
    /// (proptest-pinned).
    pub rounds_breakdown: Vec<RoundStat>,
}

impl MigrationReport {
    /// The overhead factor: bytes moved relative to the VM's RAM size
    /// (1.0 means every page moved exactly once).
    pub fn transfer_amplification(&self) -> f64 {
        if self.memory_size.as_u64() == 0 {
            0.0
        } else {
            self.bytes_transferred as f64 / self.memory_size.as_u64() as f64
        }
    }

    /// Effective throughput over the whole migration.
    pub fn effective_bandwidth_bytes_per_sec(&self) -> f64 {
        let secs = self.total_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes_transferred as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: std::collections::BTreeSet<_> = [
            MigrationKind::StopAndCopy,
            MigrationKind::PreCopy,
            MigrationKind::PostCopy,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn derived_metrics() {
        let r = MigrationReport {
            kind: MigrationKind::PreCopy,
            downtime: Nanoseconds::from_millis(50),
            total_time: Nanoseconds::from_secs(2),
            rounds: 3,
            bytes_transferred: 2 * (1 << 30),
            pages_transferred: 1 << 19,
            memory_size: ByteSize::gib(1),
            converged: true,
            remote_faults: 0,
            avg_fault_latency: Nanoseconds::ZERO,
            rounds_breakdown: vec![
                RoundStat {
                    pages: 1 << 18,
                    bytes: 1 << 30,
                    duration: Nanoseconds::from_secs(1),
                },
                RoundStat {
                    pages: 1 << 18,
                    bytes: 1 << 30,
                    duration: Nanoseconds::from_secs(1),
                },
            ],
        };
        assert!((r.transfer_amplification() - 2.0).abs() < 1e-9);
        assert!((r.effective_bandwidth_bytes_per_sec() - (1 << 30) as f64).abs() < 1.0);

        let degenerate = MigrationReport {
            memory_size: ByteSize::ZERO,
            total_time: Nanoseconds::ZERO,
            ..r
        };
        assert_eq!(degenerate.transfer_amplification(), 0.0);
        assert_eq!(degenerate.effective_bandwidth_bytes_per_sec(), 0.0);
    }
}
