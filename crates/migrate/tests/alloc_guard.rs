//! Allocation guard for the zero-copy migration data plane.
//!
//! A dedicated integration-test binary with a counting `#[global_allocator]`
//! pinning the property the zero-copy refactor bought: a steady-state
//! pre-copy round (harvest the dirty set into a reused buffer, stream the
//! pages through the in-place views) performs **zero per-page heap
//! allocations**. If someone reintroduces a `Vec` per page or per harvest,
//! this test fails — the property cannot silently regress.
//!
//! The binary contains a single `#[test]` so no concurrent test can perturb
//! the global counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use std::num::NonZeroUsize;

use rvisor_memory::GuestMemory;
use rvisor_migrate::{ConstantRateDirtier, LoopbackTransport, MigrationConfig, PreCopy};
use rvisor_net::{Link, LinkModel};
use rvisor_obs::Trace;
use rvisor_types::{ByteSize, GuestAddress, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

/// Counts every allocation (and reallocation) passed to the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_precopy_round_is_allocation_free() {
    const PAGES: u64 = 4096;
    const DIRTY_PER_ROUND: u64 = 1024;

    let source = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
    let dest = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
    for p in 0..PAGES {
        source
            .write_u64(GuestAddress(p * PAGE_SIZE), p.wrapping_mul(31) + 1)
            .unwrap();
    }

    // ---- Part 1: the data-plane round itself, measured exactly. ----
    //
    // Warm up: one full harvest+copy cycle (the pattern writes above left
    // every page dirty, so this is the round-1 full copy) grows the harvest
    // buffer to the working set. From then on a round is: dirty pages
    // appear, the harvest drains them into the reused buffer, each page
    // streams source→dest through the in-place views. None of that may
    // allocate.
    let mut harvest: Vec<u64> = Vec::new();
    source.drain_dirty_into(&mut harvest);
    assert_eq!(harvest.len() as u64, PAGES);
    for &p in &harvest {
        source
            .with_page(p, |bytes| {
                dest.with_page_mut(p, |target| target.copy_from_slice(bytes))
            })
            .unwrap()
            .unwrap();
    }

    // Steady-state round, with the allocator counter bracketing it.
    for p in 0..DIRTY_PER_ROUND {
        source
            .write_u64(GuestAddress(p * PAGE_SIZE), p ^ 0x55)
            .unwrap();
    }
    let before = allocations();
    source.drain_dirty_into(&mut harvest);
    assert_eq!(harvest.len() as u64, DIRTY_PER_ROUND);
    for &p in &harvest {
        source
            .with_page(p, |bytes| {
                dest.with_page_mut(p, |target| target.copy_from_slice(bytes))
            })
            .unwrap()
            .unwrap();
    }
    let round_allocations = allocations() - before;
    assert_eq!(
        round_allocations, 0,
        "a steady-state harvest+copy round over {DIRTY_PER_ROUND} pages \
         must not touch the heap, but performed {round_allocations} allocations"
    );
    assert_eq!(source.checksum(), dest.checksum());

    // ---- Part 2: the full engine, bounded end to end. ----
    //
    // A complete pre-copy migration (several rounds over PAGES pages with a
    // guest dirtying at half link bandwidth) is allowed its setup costs —
    // the initial page list, the link, the report — but nothing per page:
    // total allocations must stay orders of magnitude below the page count.
    let (src2, dst2) = (
        GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap(),
        GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap(),
    );
    for p in 0..PAGES {
        src2.write_u64(GuestAddress(p * PAGE_SIZE), p * 7 + 3)
            .unwrap();
    }
    let mut link = Link::new(LinkModel::gigabit());
    let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
        LinkModel::gigabit().bytes_per_second,
        0.5,
        0,
        PAGES,
    );
    let config = MigrationConfig {
        max_rounds: 8,
        dirty_page_threshold: 32,
        ..Default::default()
    };
    let before = allocations();
    let report = PreCopy::migrate(
        &src2,
        &dst2,
        &[VcpuState::default()],
        &mut link,
        &mut dirtier,
        &config,
    )
    .unwrap();
    let migration_allocations = allocations() - before;

    assert_eq!(src2.checksum(), dst2.checksum());
    assert!(
        report.pages_transferred >= PAGES,
        "expected at least one full pass, got {}",
        report.pages_transferred
    );
    // Generous fixed budget: page-list growth amortizes to O(log n) reallocs,
    // everything else is per-round or per-migration. 4096+ transferred pages
    // at zero allocations each must fit far under it.
    const BUDGET: u64 = 64;
    assert!(
        migration_allocations <= BUDGET,
        "a full pre-copy migration of {} pages performed {} allocations \
         (budget {BUDGET}); the per-page paths have regressed",
        report.pages_transferred,
        migration_allocations
    );

    // ---- Part 3: the pipelined multi-stream engine, bounded end to end. ----
    //
    // A pipelined migration is allowed its setup: thread spawns, channel
    // construction, and warm-up growth of the per-stripe burst buffers and
    // page lists (the cycling dirtier shifts load between stripes, so the
    // buffer pool takes a few rounds to reach its high-water capacities).
    // From then on the bounded channel of recycled buffers must actually
    // recycle: comparing a 12-round against a 28-round migration of the
    // same non-converging guest, the marginal cost of the 16 extra
    // steady-state rounds (each harvesting and streaming ~thousands of
    // pages through 4 stripes and the sink thread) must stay within a tiny
    // fixed budget — nothing per page, nothing per round beyond channel
    // noise.
    let pipelined = |max_rounds: u32| -> u64 {
        let src = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
        let dst = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
        for p in 0..PAGES {
            src.write_u64(GuestAddress(p * PAGE_SIZE), p * 13 + 5)
                .unwrap();
        }
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        // Dirtying at 90% of link bandwidth: the dirty set shrinks too
        // slowly to converge, so the round count is exactly `max_rounds`.
        let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
            LinkModel::gigabit().bytes_per_second,
            0.9,
            0,
            PAGES,
        );
        let config = MigrationConfig {
            max_rounds,
            dirty_page_threshold: 32,
            streams: NonZeroUsize::new(4).unwrap(),
            ..Default::default()
        };
        let before = allocations();
        let report = PreCopy::migrate_pipelined(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut transport,
            &mut dirtier,
            &config,
        )
        .unwrap();
        let spent = allocations() - before;
        assert_eq!(report.rounds, max_rounds, "guest must not converge");
        assert_eq!(src.checksum(), dst.checksum());
        spent
    };
    let allocs_short = pipelined(12);
    let allocs_long = pipelined(28);
    let extra = allocs_long.saturating_sub(allocs_short);
    const PER_ROUND_BUDGET: u64 = 4;
    assert!(
        extra <= 16 * PER_ROUND_BUDGET,
        "16 extra steady-state pipelined rounds cost {extra} allocations \
         (budget {}); the channel/buffer recycling has regressed",
        16 * PER_ROUND_BUDGET
    );
    // The whole pipelined migration — threads, channels, pools, dozens of
    // rounds over thousands of pages — stays within a fixed setup budget.
    const PIPELINE_BUDGET: u64 = 1024;
    assert!(
        allocs_long <= PIPELINE_BUDGET,
        "a 28-round pipelined migration performed {allocs_long} allocations \
         (budget {PIPELINE_BUDGET})"
    );

    // ---- Part 4: tracing off costs nothing on the hot path. ----
    //
    // The observability plane promises that a disabled `Trace` is free: the
    // instrumented engine entry points bail out on `is_on()` before
    // formatting a single argument. Pin the allocation half of that promise
    // through the *traced* serial entry point with `Trace::off()`: compare a
    // 12-round against a 28-round migration of the same non-converging
    // guest. The 16 extra steady-state rounds — each of which would emit a
    // round span if tracing were on — must perform **exactly zero** heap
    // allocations. Setup costs (the round-breakdown vector is sized by
    // `max_rounds`, buffers grow to their high-water marks in early rounds)
    // are identical in both runs and cancel out.
    let traced_off = |max_rounds: u32| -> u64 {
        let src = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
        let dst = GuestMemory::flat(ByteSize::pages_of(PAGES)).unwrap();
        for p in 0..PAGES {
            src.write_u64(GuestAddress(p * PAGE_SIZE), p * 17 + 9)
                .unwrap();
        }
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let mut dirtier = ConstantRateDirtier::from_bandwidth_fraction(
            LinkModel::gigabit().bytes_per_second,
            0.9,
            0,
            PAGES,
        );
        let config = MigrationConfig {
            max_rounds,
            dirty_page_threshold: 32,
            ..Default::default()
        };
        let trace = Trace::off();
        let before = allocations();
        let report = PreCopy::migrate_over_traced(
            &src,
            &dst,
            &[VcpuState::default()],
            &mut transport,
            &mut dirtier,
            &config,
            &trace,
        )
        .unwrap();
        let spent = allocations() - before;
        assert_eq!(report.rounds, max_rounds, "guest must not converge");
        assert_eq!(src.checksum(), dst.checksum());
        spent
    };
    let off_short = traced_off(12);
    let off_long = traced_off(28);
    // `with_capacity(max_rounds + 1)` makes the breakdown allocation the
    // same *count* in both runs; everything else is recycled. Any nonzero
    // difference means the disabled-trace path touched the heap per round.
    let off_extra = off_long.saturating_sub(off_short);
    assert_eq!(
        off_extra, 0,
        "16 extra steady-state rounds through the traced entry point with \
         tracing off cost {off_extra} allocations; a disabled Trace must be \
         free on the hot path"
    );
}
