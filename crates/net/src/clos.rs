//! A two-tier Clos (leaf/spine) fabric with ECMP-striped transfers.
//!
//! [`Fabric`] deliberately models the worst case: one shared
//! backbone, so disjoint host pairs contend and multi-stream migration never
//! wins simulated time. [`ClosFabric`] models the topology real datacenters
//! use instead: hosts live in racks behind leaf switches, leaves connect to
//! `spines` independent spine switches, and a striped burst hashes its
//! streams ECMP-style across the live spines so cross-rack streams ride
//! *independent* paths and genuinely complete earlier in simulated time.
//!
//! # Model parameters and assumptions
//!
//! Following *On Heuristic Models, Assumptions, and Parameters*, every
//! assumption is a named [`ClosParams`] field:
//!
//! * **Per-host NIC capacity** (`nic_bytes_per_second`) — as in the
//!   single-spine model, a host serializes all of its traffic through one
//!   NIC.
//! * **Per-rack leaf capacity** (`leaf_uplink_bytes_per_second`) — each rack
//!   owns one leaf switch whose backplane and uplink share a single busy
//!   mark: rack-local *and* cross-rack traffic both occupy the rack's leaf.
//!   This shared-backplane assumption is what makes a 1-rack/1-spine
//!   configuration *exactly* the old single-spine fabric (the leaf plays the
//!   backbone's role).
//! * **Independent spine paths** (`spines`, `spine_bytes_per_second`) —
//!   cross-rack traffic crosses exactly one spine per stream, chosen by a
//!   deterministic ECMP hash of the endpoint pair and the stream index.
//!   Streams mapped to different spines serialize concurrently; the burst
//!   completes when its slowest component does. The hash is load-oblivious,
//!   as real ECMP is: it never peeks at spine occupancy.
//! * **Two latency classes** (`rack_latency`, `cross_latency`) — rack-local
//!   bursts pay the leaf hop, cross-rack bursts pay the full
//!   leaf-spine-leaf path; each is paid once per burst, as in the
//!   single-spine model.
//! * **MTU chunking and store-and-forward occupancy** — identical formulas
//!   to [`FabricParams`]: per-stream
//!   `ceil(payload / mtu)` chunks each pay `chunk_overhead` framing bytes,
//!   and a burst occupies every resource it touches (both NICs, both
//!   leaves, every chosen spine) until its *last* byte has serialized.
//!   Whole-burst occupancy is deliberately conservative: a one-stream burst
//!   and a one-element striped burst leave identical marks.
//! * **Spine failure degrades, never partitions** —
//!   [`ClosFabric::fail_spine`] removes one spine's capacity and the ECMP
//!   hash re-spreads over the survivors; the last live spine cannot be
//!   failed, so every endpoint pair always has a path.
//!
//! All timing is `u128` integer-nanosecond arithmetic stored as
//! [`Nanoseconds`]; same-seed simulations replay `==`-identically.

use serde::{Deserialize, Serialize};

use rvisor_obs::{ArgValue, Trace};
use rvisor_types::{Error, Nanoseconds, Result};

use crate::fabric::{Fabric, FabricParams, DEFAULT_CHUNK_OVERHEAD};

/// Static per-spine wire-byte counter names (obs counter names must be
/// `&'static str`). Spines beyond index 7 clamp onto the last name; the
/// per-spine [`ClosFabric::spine_wire_bytes`] accessor stays exact.
const SPINE_COUNTER_NAMES: [&str; 8] = [
    "fabric.spine0.wire_bytes",
    "fabric.spine1.wire_bytes",
    "fabric.spine2.wire_bytes",
    "fabric.spine3.wire_bytes",
    "fabric.spine4.wire_bytes",
    "fabric.spine5.wire_bytes",
    "fabric.spine6.wire_bytes",
    "fabric.spine7.wire_bytes",
];

/// The abstract contract every fabric topology provides: deterministic
/// integer-nanosecond transfers between dense endpoints, rack/spine
/// topology queries, and spine degradation.
///
/// [`Fabric`] implements it as the 1-rack/1-spine degenerate case (its
/// backbone is "spine 0"); [`ClosFabric`] is the general two-tier case.
/// Transport plumbing ([`FabricTransport`](../../rvisor_migrate) and the
/// orchestrator's cluster) is generic over this trait, so the single-spine
/// equivalence proptests from earlier PRs keep running unchanged.
pub trait FabricModel {
    /// Number of endpoints.
    fn endpoints(&self) -> usize;
    /// Number of racks (1 for the single-spine fabric).
    fn racks(&self) -> usize;
    /// The rack an endpoint lives in (0 for the single-spine fabric).
    fn rack_of(&self, endpoint: usize) -> usize;
    /// Number of spines the fabric was built with (live or failed).
    fn spines(&self) -> usize;
    /// Number of spines still carrying traffic.
    fn live_spines(&self) -> usize;
    /// Busy-until mark of spine `spine`, or `None` if it is failed or out
    /// of range.
    fn spine_free_at(&self, spine: usize) -> Option<Nanoseconds>;
    /// Earliest instant the fabric's least-loaded live core path is free:
    /// the single-spine backbone mark, or a Clos fabric's least-busy live
    /// spine. This is the coarse occupancy signal the adaptive migration
    /// planner consumes — `free_at().saturating_sub(now)` is the core
    /// backlog a new migration would queue behind.
    fn free_at(&self) -> Nanoseconds;
    /// Remove spine `spine` from service. Fails if the spine is out of
    /// range, already failed, or the last live spine (the fabric degrades,
    /// it never partitions).
    fn fail_spine(&mut self, spine: usize) -> Result<()>;
    /// One-way propagation latency between two endpoints.
    fn latency(&self, from: usize, to: usize) -> Nanoseconds;
    /// Time for `payload` bytes to cross an idle path `from -> to`.
    fn transfer_time(&self, from: usize, to: usize, payload: u64) -> Nanoseconds;
    /// Earliest instant a single-stream transfer between `from` and `to`
    /// could start.
    fn path_free_at(&self, from: usize, to: usize) -> Result<Nanoseconds>;
    /// Move `payload` bytes `from -> to` starting no earlier than `now`;
    /// returns the simulated arrival time.
    fn transfer(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        payload: u64,
    ) -> Result<Nanoseconds>;
    /// Move a striped burst of parallel streams `from -> to`; `stripes[i]`
    /// is stream `i`'s payload bytes. Returns the whole burst's arrival.
    fn transfer_striped(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        stripes: &[u64],
    ) -> Result<Nanoseconds>;
    /// Attach a trace for transfer spans and occupancy counters.
    fn set_trace(&mut self, trace: Trace);
}

impl FabricModel for Fabric {
    fn endpoints(&self) -> usize {
        Fabric::endpoints(self)
    }
    fn racks(&self) -> usize {
        1
    }
    fn rack_of(&self, _endpoint: usize) -> usize {
        0
    }
    fn spines(&self) -> usize {
        1
    }
    fn live_spines(&self) -> usize {
        1
    }
    fn spine_free_at(&self, spine: usize) -> Option<Nanoseconds> {
        (spine == 0).then(|| self.backbone_free_at())
    }
    fn free_at(&self) -> Nanoseconds {
        self.backbone_free_at()
    }
    fn fail_spine(&mut self, _spine: usize) -> Result<()> {
        Err(Error::Net(
            "cannot fail the last live spine: the single-spine fabric would partition".into(),
        ))
    }
    fn latency(&self, _from: usize, _to: usize) -> Nanoseconds {
        self.params().latency
    }
    fn transfer_time(&self, _from: usize, _to: usize, payload: u64) -> Nanoseconds {
        self.params().transfer_time(payload)
    }
    fn path_free_at(&self, from: usize, to: usize) -> Result<Nanoseconds> {
        Fabric::path_free_at(self, from, to)
    }
    fn transfer(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        payload: u64,
    ) -> Result<Nanoseconds> {
        Fabric::transfer(self, from, to, now, payload)
    }
    fn transfer_striped(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        stripes: &[u64],
    ) -> Result<Nanoseconds> {
        Fabric::transfer_striped(self, from, to, now, stripes)
    }
    fn set_trace(&mut self, trace: Trace) {
        Fabric::set_trace(self, trace)
    }
}

/// Named, validated parameters of a [`ClosFabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClosParams {
    /// Number of racks (each with one leaf switch).
    pub racks: usize,
    /// Hosts per rack under the contiguous assignment of
    /// [`ClosFabric::new`] (endpoint `e` lives in rack `e / hosts_per_rack`).
    pub hosts_per_rack: usize,
    /// Line rate of every host NIC, in bytes per second.
    pub nic_bytes_per_second: u64,
    /// Capacity of each rack's leaf switch, in bytes per second. The leaf
    /// backplane and uplink share this single capacity (see module docs).
    pub leaf_uplink_bytes_per_second: u64,
    /// Number of independent spine switches.
    pub spines: usize,
    /// Capacity of one spine path, in bytes per second.
    pub spine_bytes_per_second: u64,
    /// One-way latency for rack-local transfers (one leaf hop).
    pub rack_latency: Nanoseconds,
    /// One-way latency for cross-rack transfers (leaf-spine-leaf).
    pub cross_latency: Nanoseconds,
    /// Maximum payload bytes per on-wire chunk (the MTU).
    pub mtu: u64,
    /// Framing overhead added to every chunk.
    pub chunk_overhead: u64,
}

impl ClosParams {
    /// A jumbo-frame datacenter Clos: 10 Gbit/s NICs, 20 Gbit/s leaves and
    /// four 5 Gbit/s spines — deliberately oversubscribed per spine so a
    /// single cross-rack stream is spine-bound (625 MB/s) while two or more
    /// ECMP-spread streams are NIC-bound (1.25 GB/s): a genuine 2× striping
    /// win in simulated time.
    pub fn datacenter(racks: usize, hosts_per_rack: usize) -> Self {
        ClosParams {
            racks,
            hosts_per_rack,
            nic_bytes_per_second: 1_250_000_000,
            leaf_uplink_bytes_per_second: 2_500_000_000,
            spines: 4,
            spine_bytes_per_second: 625_000_000,
            rack_latency: Nanoseconds::from_micros(10),
            cross_latency: Nanoseconds::from_micros(50),
            mtu: 9000,
            chunk_overhead: DEFAULT_CHUNK_OVERHEAD,
        }
    }

    /// A gigabit office LAN folded into a tiny Clos: 1 Gbit/s NICs and
    /// leaves, two 500 Mbit/s spines, standard 1500-byte MTU.
    pub fn office_lan(racks: usize, hosts_per_rack: usize) -> Self {
        ClosParams {
            racks,
            hosts_per_rack,
            nic_bytes_per_second: 125_000_000,
            leaf_uplink_bytes_per_second: 125_000_000,
            spines: 2,
            spine_bytes_per_second: 62_500_000,
            rack_latency: Nanoseconds::from_micros(100),
            cross_latency: Nanoseconds::from_micros(200),
            mtu: 1500,
            chunk_overhead: DEFAULT_CHUNK_OVERHEAD,
        }
    }

    /// A 100 Mbit/s WAN-edge Clos with two 50 Mbit/s spines and 5 ms
    /// cross-rack latency (cross-site DR traffic).
    pub fn wan(racks: usize, hosts_per_rack: usize) -> Self {
        ClosParams {
            racks,
            hosts_per_rack,
            nic_bytes_per_second: 12_500_000,
            leaf_uplink_bytes_per_second: 12_500_000,
            spines: 2,
            spine_bytes_per_second: 6_250_000,
            rack_latency: Nanoseconds::from_micros(200),
            cross_latency: Nanoseconds::from_millis(5),
            mtu: 1500,
            chunk_overhead: DEFAULT_CHUNK_OVERHEAD,
        }
    }

    /// The degenerate 1-rack/1-spine configuration that reproduces a
    /// single-spine [`Fabric`] of `fp` *exactly*: the leaf takes the
    /// backbone's capacity and every transfer is rack-local at the
    /// backbone's latency. Pinned `==`-equal by proptest.
    pub fn degenerate(fp: FabricParams, endpoints: usize) -> Self {
        ClosParams {
            racks: 1,
            hosts_per_rack: endpoints,
            nic_bytes_per_second: fp.nic_bytes_per_second,
            leaf_uplink_bytes_per_second: fp.backbone_bytes_per_second,
            spines: 1,
            spine_bytes_per_second: fp.backbone_bytes_per_second,
            rack_latency: fp.latency,
            cross_latency: fp.latency,
            mtu: fp.mtu,
            chunk_overhead: fp.chunk_overhead,
        }
    }

    /// Validate the parameters: counts and bandwidths must be non-zero and
    /// the MTU must exceed the per-chunk overhead.
    pub fn validate(&self) -> Result<()> {
        if self.racks == 0 {
            return Err(Error::Net("a Clos fabric needs at least one rack".into()));
        }
        if self.hosts_per_rack == 0 {
            return Err(Error::Net(
                "a Clos fabric needs at least one host per rack".into(),
            ));
        }
        if self.spines == 0 {
            return Err(Error::Net("a Clos fabric needs at least one spine".into()));
        }
        if self.nic_bytes_per_second == 0 {
            return Err(Error::Net("Clos NIC bandwidth must be non-zero".into()));
        }
        if self.leaf_uplink_bytes_per_second == 0 {
            return Err(Error::Net("Clos leaf bandwidth must be non-zero".into()));
        }
        if self.spine_bytes_per_second == 0 {
            return Err(Error::Net("Clos spine bandwidth must be non-zero".into()));
        }
        if self.mtu == 0 {
            return Err(Error::Net("Clos MTU must be non-zero".into()));
        }
        if self.chunk_overhead >= self.mtu {
            return Err(Error::Net(format!(
                "chunk overhead ({}) must be smaller than the MTU ({})",
                self.chunk_overhead, self.mtu
            )));
        }
        Ok(())
    }

    /// Bytes that actually cross the wire for a `payload`-byte stream: same
    /// formula as [`FabricParams::wire_bytes`].
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        let chunks = payload.div_ceil(self.mtu.max(1));
        payload.saturating_add(chunks.saturating_mul(self.chunk_overhead))
    }

    /// The rate a rack-local transfer serializes at: the slower of a NIC
    /// and the rack's leaf.
    pub fn local_bytes_per_second(&self) -> u64 {
        self.nic_bytes_per_second
            .min(self.leaf_uplink_bytes_per_second)
    }

    /// The rate a *single-stream* cross-rack transfer serializes at: the
    /// slowest of a NIC, a leaf and one spine path. Striped bursts can beat
    /// this by spreading streams over several spines.
    pub fn cross_bytes_per_second(&self) -> u64 {
        self.local_bytes_per_second()
            .min(self.spine_bytes_per_second)
    }

    /// Time for `payload` bytes to cross an idle rack-local path.
    pub fn local_transfer_time(&self, payload: u64) -> Nanoseconds {
        self.rack_latency.saturating_add(serialization(
            self.wire_bytes(payload),
            self.local_bytes_per_second(),
        ))
    }

    /// Time for `payload` bytes to cross an idle cross-rack path as one
    /// stream.
    pub fn cross_transfer_time(&self, payload: u64) -> Nanoseconds {
        self.cross_latency.saturating_add(serialization(
            self.wire_bytes(payload),
            self.cross_bytes_per_second(),
        ))
    }
}

/// Integer-nanosecond serialization time of `wire` bytes at `rate`
/// bytes/second — the same `u128` formula as
/// [`FabricParams::serialization_time_wire`].
fn serialization(wire: u64, rate: u64) -> Nanoseconds {
    Nanoseconds(((wire as u128 * 1_000_000_000) / rate.max(1) as u128) as u64)
}

/// SplitMix64 finalizer over the endpoint pair: the deterministic seed of
/// the ECMP stream-to-spine mapping. Stream `i` of pair `(from, to)` takes
/// live-spine slot `(pair_hash + i) % live_spines` — round-robin from a
/// pair-specific offset, so any `n >= live_spines` streams spread perfectly.
fn pair_hash(from: usize, to: usize) -> u64 {
    let mut z = ((from as u64) << 32) ^ (to as u64) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One endpoint's NIC: a busy-until mark plus traffic counters.
#[derive(Debug, Clone, Copy, Default)]
struct Mark {
    free_at: Nanoseconds,
    bytes_sent: u64,
    bytes_received: u64,
}

/// A two-tier leaf/spine fabric connecting dense endpoints `0..n`.
///
/// Rack-local transfers cross the source NIC, the rack's leaf and the
/// destination NIC; cross-rack transfers additionally cross one ECMP-chosen
/// spine per stream. All state is integer nanoseconds: a run's transfer
/// timeline is a pure function of the call sequence.
#[derive(Debug, Clone)]
pub struct ClosFabric {
    params: ClosParams,
    nics: Vec<Mark>,
    rack_of: Vec<usize>,
    leaf_free_at: Vec<Nanoseconds>,
    spine_free_at: Vec<Nanoseconds>,
    spine_live: Vec<bool>,
    spine_wire_bytes: Vec<u64>,
    bytes_carried: u64,
    wire_bytes_carried: u64,
    transfers: u64,
    scratch_wire: Vec<u64>,
    trace: Trace,
}

impl ClosFabric {
    /// Create a Clos fabric with `endpoints` idle NICs assigned to racks
    /// contiguously: endpoint `e` lives in rack `e / hosts_per_rack`.
    /// Requires `2 <= endpoints <= racks * hosts_per_rack`.
    pub fn new(endpoints: usize, params: ClosParams) -> Result<Self> {
        if endpoints > params.racks.saturating_mul(params.hosts_per_rack) {
            return Err(Error::Net(format!(
                "{endpoints} endpoints exceed {} racks x {} hosts",
                params.racks, params.hosts_per_rack
            )));
        }
        let racks_of = (0..endpoints)
            .map(|e| e / params.hosts_per_rack.max(1))
            .collect();
        Self::with_rack_assignment(params, racks_of)
    }

    /// Create a Clos fabric with an explicit endpoint-to-rack assignment
    /// (`racks_of[e]` is endpoint `e`'s rack, each `< params.racks`). The
    /// orchestrator uses this to give the DR endpoint its own rack.
    pub fn with_rack_assignment(params: ClosParams, racks_of: Vec<usize>) -> Result<Self> {
        params.validate()?;
        if racks_of.len() < 2 {
            return Err(Error::Net("a fabric needs at least two endpoints".into()));
        }
        if let Some(&bad) = racks_of.iter().find(|&&r| r >= params.racks) {
            return Err(Error::Net(format!(
                "endpoint rack {bad} out of range: fabric has {} racks",
                params.racks
            )));
        }
        Ok(ClosFabric {
            params,
            nics: vec![Mark::default(); racks_of.len()],
            rack_of: racks_of,
            leaf_free_at: vec![Nanoseconds::ZERO; params.racks],
            spine_free_at: vec![Nanoseconds::ZERO; params.spines],
            spine_live: vec![true; params.spines],
            spine_wire_bytes: vec![0; params.spines],
            bytes_carried: 0,
            wire_bytes_carried: 0,
            transfers: 0,
            scratch_wire: vec![0; params.spines],
            trace: Trace::off(),
        })
    }

    /// The fabric's parameters.
    pub fn params(&self) -> ClosParams {
        self.params
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> usize {
        self.nics.len()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.params.racks
    }

    /// The rack endpoint `e` lives in (panics if out of range).
    pub fn rack_of(&self, e: usize) -> usize {
        self.rack_of[e]
    }

    /// Number of spines the fabric was built with (live or failed).
    pub fn spines(&self) -> usize {
        self.spine_live.len()
    }

    /// Number of spines still carrying traffic.
    pub fn live_spines(&self) -> usize {
        self.spine_live.iter().filter(|&&l| l).count()
    }

    /// Busy-until mark of spine `spine`, or `None` if failed/out of range.
    pub fn spine_free_at(&self, spine: usize) -> Option<Nanoseconds> {
        (self.spine_live.get(spine) == Some(&true)).then(|| self.spine_free_at[spine])
    }

    /// The earliest busy-until mark over all live spines — the
    /// orchestrator's "is any spine cool" occupancy query.
    pub fn min_live_spine_free_at(&self) -> Nanoseconds {
        self.spine_free_at
            .iter()
            .zip(&self.spine_live)
            .filter(|&(_, &live)| live)
            .map(|(&t, _)| t)
            .min()
            .unwrap_or(Nanoseconds::ZERO)
    }

    /// Wire bytes carried by spine `spine` so far (0 if out of range).
    pub fn spine_wire_bytes(&self, spine: usize) -> u64 {
        self.spine_wire_bytes.get(spine).copied().unwrap_or(0)
    }

    /// Remove spine `spine` from service: its capacity is gone and the
    /// ECMP hash re-spreads over the survivors. The fabric degrades, it
    /// never partitions — failing the last live spine is an error.
    pub fn fail_spine(&mut self, spine: usize) -> Result<()> {
        match self.spine_live.get(spine) {
            None => Err(Error::Net(format!(
                "spine {spine} out of range: fabric has {} spines",
                self.spine_live.len()
            ))),
            Some(false) => Err(Error::Net(format!("spine {spine} is already failed"))),
            Some(true) if self.live_spines() == 1 => Err(Error::Net(
                "cannot fail the last live spine: the fabric would partition".into(),
            )),
            Some(true) => {
                self.spine_live[spine] = false;
                Ok(())
            }
        }
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total on-wire bytes carried (payload plus chunk framing).
    pub fn wire_bytes_carried(&self) -> u64 {
        self.wire_bytes_carried
    }

    /// Number of transfers performed (a striped burst counts each active
    /// stream, exactly as [`Fabric::transfers`] does).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Payload bytes sent by endpoint `i`.
    pub fn bytes_sent_by(&self, i: usize) -> u64 {
        self.nics.get(i).map_or(0, |n| n.bytes_sent)
    }

    /// Payload bytes received by endpoint `i`.
    pub fn bytes_received_by(&self, i: usize) -> u64 {
        self.nics.get(i).map_or(0, |n| n.bytes_received)
    }

    /// Attach a trace: transfers emit spans on the `fabric` track plus
    /// per-spine wire-byte counters and a `fabric.stripe_speedup`
    /// histogram (percent; 200 = the striped burst finished twice as fast
    /// as one aggregate cross-rack stream would have).
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The attached trace (off by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn check_pair(&self, from: usize, to: usize) -> Result<()> {
        if from == to {
            return Err(Error::Net(format!(
                "fabric transfer from endpoint {from} to itself"
            )));
        }
        if from >= self.nics.len() || to >= self.nics.len() {
            return Err(Error::Net(format!(
                "fabric endpoint out of range: {from} -> {to} with {} endpoints",
                self.nics.len()
            )));
        }
        Ok(())
    }

    /// The `slot`-th live spine (slot counted over live spines only).
    fn nth_live(&self, slot: usize) -> usize {
        let mut seen = 0;
        for (i, &live) in self.spine_live.iter().enumerate() {
            if live {
                if seen == slot {
                    return i;
                }
                seen += 1;
            }
        }
        // Unreachable while at least one spine is live and
        // slot < live_spines(); fall back to spine 0 defensively.
        0
    }

    /// The spine stream `stream` of pair `(from, to)` crosses right now.
    fn spine_for(&self, from: usize, to: usize, stream: usize) -> usize {
        let live = self.live_spines().max(1);
        let slot = ((pair_hash(from, to) as usize).wrapping_add(stream)) % live;
        self.nth_live(slot)
    }

    /// One-way propagation latency between two endpoints.
    pub fn latency(&self, from: usize, to: usize) -> Nanoseconds {
        if self.rack_of.get(from) == self.rack_of.get(to) {
            self.params.rack_latency
        } else {
            self.params.cross_latency
        }
    }

    /// Time for `payload` bytes to cross an idle path `from -> to` as one
    /// stream.
    pub fn transfer_time(&self, from: usize, to: usize, payload: u64) -> Nanoseconds {
        if self.rack_of.get(from) == self.rack_of.get(to) {
            self.params.local_transfer_time(payload)
        } else {
            self.params.cross_transfer_time(payload)
        }
    }

    /// Earliest instant a single-stream transfer between `from` and `to`
    /// could start: both NICs, both leaves and (cross-rack) the stream-0
    /// ECMP spine must be free. A multi-stream burst may start later if its
    /// other spines are busier — this is still a valid floor.
    pub fn path_free_at(&self, from: usize, to: usize) -> Result<Nanoseconds> {
        self.check_pair(from, to)?;
        let (rf, rt) = (self.rack_of[from], self.rack_of[to]);
        let mut free = self.nics[from]
            .free_at
            .max(self.nics[to].free_at)
            .max(self.leaf_free_at[rf]);
        if rf != rt {
            free = free
                .max(self.leaf_free_at[rt])
                .max(self.spine_free_at[self.spine_for(from, to, 0)]);
        }
        Ok(free)
    }

    /// Move `payload` bytes from `from` to `to`, starting no earlier than
    /// `now`; returns the simulated arrival time. Exactly
    /// `transfer_striped(&[payload])`.
    pub fn transfer(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        payload: u64,
    ) -> Result<Nanoseconds> {
        self.burst(from, to, now, &[payload], "transfer")
    }

    /// Move a striped burst of parallel streams from `from` to `to`,
    /// starting no earlier than `now`; `stripes[i]` is stream `i`'s payload
    /// bytes. Returns the arrival time of the *whole* burst.
    ///
    /// Rack-local bursts share the NIC/leaf path exactly as the
    /// single-spine model shares its backbone — striping is never faster
    /// inside a rack. Cross-rack, each stream crosses the spine chosen by
    /// the deterministic ECMP hash; streams on different spines serialize
    /// concurrently, so a burst whose streams spread over `k` spines can
    /// finish up to `k` times sooner than one aggregate stream on an
    /// oversubscribed spine tier — the simulated-time payoff of
    /// `migration_streams` on a real topology.
    pub fn transfer_striped(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        stripes: &[u64],
    ) -> Result<Nanoseconds> {
        self.burst(from, to, now, stripes, "transfer-striped")
    }

    fn burst(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        stripes: &[u64],
        span_name: &'static str,
    ) -> Result<Nanoseconds> {
        self.check_pair(from, to)?;
        let (rf, rt) = (self.rack_of[from], self.rack_of[to]);
        let mut payload_total = 0u64;
        let mut wire_total = 0u64;
        let mut active_streams = 0u64;
        for &payload in stripes {
            payload_total = payload_total.saturating_add(payload);
            wire_total = wire_total.saturating_add(self.params.wire_bytes(payload));
            if payload > 0 {
                active_streams += 1;
            }
        }

        let (start, busy_until, arrival) = if rf == rt {
            // Rack-local: NICs + the shared leaf, single fair-shared window.
            let start = now
                .max(self.nics[from].free_at)
                .max(self.nics[to].free_at)
                .max(self.leaf_free_at[rf]);
            let busy_until = start.saturating_add(serialization(
                wire_total,
                self.params.local_bytes_per_second(),
            ));
            self.nics[from].free_at = busy_until;
            self.nics[to].free_at = busy_until;
            self.leaf_free_at[rf] = busy_until;
            (
                start,
                busy_until,
                busy_until.saturating_add(self.params.rack_latency),
            )
        } else {
            // Cross-rack: group each stream's wire bytes onto its ECMP spine.
            self.scratch_wire.iter_mut().for_each(|w| *w = 0);
            for (i, &payload) in stripes.iter().enumerate() {
                if payload > 0 {
                    let g = self.spine_for(from, to, i);
                    self.scratch_wire[g] =
                        self.scratch_wire[g].saturating_add(self.params.wire_bytes(payload));
                }
            }
            // Empty bursts still pin a spine so the start instant (and the
            // busy marks they refresh) match the single-stream path.
            if active_streams == 0 {
                let g = self.spine_for(from, to, 0);
                self.scratch_wire[g] = 0;
            }
            let mut start = now
                .max(self.nics[from].free_at)
                .max(self.nics[to].free_at)
                .max(self.leaf_free_at[rf])
                .max(self.leaf_free_at[rt]);
            let touched_zero = active_streams == 0;
            for (g, &w) in self.scratch_wire.iter().enumerate() {
                if w > 0 || (touched_zero && g == self.spine_for(from, to, 0)) {
                    start = start.max(self.spine_free_at[g]);
                }
            }
            // Shared-path window (NICs and leaves serialize every byte) vs
            // the slowest spine's window; the burst ends at the later one.
            let shared = serialization(wire_total, self.params.local_bytes_per_second());
            let mut slowest_spine = Nanoseconds::ZERO;
            for &w in &self.scratch_wire {
                if w > 0 {
                    slowest_spine =
                        slowest_spine.max(serialization(w, self.params.spine_bytes_per_second));
                }
            }
            let busy_until = start.saturating_add(shared.max(slowest_spine));
            self.nics[from].free_at = busy_until;
            self.nics[to].free_at = busy_until;
            self.leaf_free_at[rf] = busy_until;
            self.leaf_free_at[rt] = busy_until;
            for g in 0..self.scratch_wire.len() {
                let w = self.scratch_wire[g];
                if w > 0 || (touched_zero && g == self.spine_for(from, to, 0)) {
                    self.spine_free_at[g] = busy_until;
                }
                self.spine_wire_bytes[g] = self.spine_wire_bytes[g].saturating_add(w);
            }
            (
                start,
                busy_until,
                busy_until.saturating_add(self.params.cross_latency),
            )
        };

        self.nics[from].bytes_sent += payload_total;
        self.nics[to].bytes_received += payload_total;
        self.bytes_carried = self.bytes_carried.saturating_add(payload_total);
        self.wire_bytes_carried = self.wire_bytes_carried.saturating_add(wire_total);
        self.transfers += active_streams.max(1);

        if self.trace.is_on() {
            self.emit_burst_trace(
                span_name,
                from,
                to,
                now,
                start,
                busy_until,
                arrival,
                payload_total,
                wire_total,
                active_streams.max(1),
                rf != rt,
            );
        }
        Ok(arrival)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_burst_trace(
        &self,
        name: &'static str,
        from: usize,
        to: usize,
        now: Nanoseconds,
        start: Nanoseconds,
        busy_until: Nanoseconds,
        arrival: Nanoseconds,
        payload: u64,
        wire: u64,
        streams: u64,
        cross_rack: bool,
    ) {
        let queue_wait = start.saturating_sub(now);
        let serialization_ns = busy_until.saturating_sub(start);
        self.trace.span(
            "fabric",
            name,
            now,
            arrival,
            &[
                ("from", ArgValue::U64(from as u64)),
                ("to", ArgValue::U64(to as u64)),
                ("payload", ArgValue::U64(payload)),
                ("wire", ArgValue::U64(wire)),
                ("streams", ArgValue::U64(streams)),
                ("cross_rack", ArgValue::U64(cross_rack as u64)),
                ("queue_wait_ns", ArgValue::U64(queue_wait.as_nanos())),
                (
                    "serialization_ns",
                    ArgValue::U64(serialization_ns.as_nanos()),
                ),
            ],
        );
        self.trace
            .observe("fabric.queue_wait_ns", queue_wait.as_nanos());
        self.trace
            .observe("fabric.serialization_ns", serialization_ns.as_nanos());
        self.trace.add("fabric.transfers", 1);
        self.trace.add("fabric.payload_bytes", payload);
        self.trace.add("fabric.wire_bytes", wire);
        if cross_rack {
            for (g, &w) in self.scratch_wire.iter().enumerate() {
                if w > 0 {
                    self.trace
                        .add(SPINE_COUNTER_NAMES[g.min(SPINE_COUNTER_NAMES.len() - 1)], w);
                }
            }
            // Stripe speedup: how much sooner this burst serialized than
            // one aggregate stream through a single spine would have
            // (percent; 100 = parity, 200 = twice as fast).
            if wire > 0 && serialization_ns.as_nanos() > 0 {
                let single = serialization(wire, self.params.cross_bytes_per_second());
                self.trace.observe(
                    "fabric.stripe_speedup",
                    single.as_nanos().saturating_mul(100) / serialization_ns.as_nanos(),
                );
            }
        }
        self.trace
            .counter("fabric", "bytes_carried", arrival, self.bytes_carried);
        self.trace.counter(
            "fabric",
            "wire_bytes_carried",
            arrival,
            self.wire_bytes_carried,
        );
    }

    /// Reset all busy-time marks and counters; failed spines come back to
    /// life (between benchmark runs).
    pub fn reset(&mut self) {
        for nic in &mut self.nics {
            *nic = Mark::default();
        }
        self.leaf_free_at
            .iter_mut()
            .for_each(|t| *t = Nanoseconds::ZERO);
        self.spine_free_at
            .iter_mut()
            .for_each(|t| *t = Nanoseconds::ZERO);
        self.spine_live.iter_mut().for_each(|l| *l = true);
        self.spine_wire_bytes.iter_mut().for_each(|w| *w = 0);
        self.bytes_carried = 0;
        self.wire_bytes_carried = 0;
        self.transfers = 0;
    }
}

impl FabricModel for ClosFabric {
    fn endpoints(&self) -> usize {
        ClosFabric::endpoints(self)
    }
    fn racks(&self) -> usize {
        ClosFabric::racks(self)
    }
    fn rack_of(&self, endpoint: usize) -> usize {
        ClosFabric::rack_of(self, endpoint)
    }
    fn spines(&self) -> usize {
        ClosFabric::spines(self)
    }
    fn live_spines(&self) -> usize {
        ClosFabric::live_spines(self)
    }
    fn spine_free_at(&self, spine: usize) -> Option<Nanoseconds> {
        ClosFabric::spine_free_at(self, spine)
    }
    fn free_at(&self) -> Nanoseconds {
        ClosFabric::min_live_spine_free_at(self)
    }
    fn fail_spine(&mut self, spine: usize) -> Result<()> {
        ClosFabric::fail_spine(self, spine)
    }
    fn latency(&self, from: usize, to: usize) -> Nanoseconds {
        ClosFabric::latency(self, from, to)
    }
    fn transfer_time(&self, from: usize, to: usize, payload: u64) -> Nanoseconds {
        ClosFabric::transfer_time(self, from, to, payload)
    }
    fn path_free_at(&self, from: usize, to: usize) -> Result<Nanoseconds> {
        ClosFabric::path_free_at(self, from, to)
    }
    fn transfer(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        payload: u64,
    ) -> Result<Nanoseconds> {
        ClosFabric::transfer(self, from, to, now, payload)
    }
    fn transfer_striped(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        stripes: &[u64],
    ) -> Result<Nanoseconds> {
        ClosFabric::transfer_striped(self, from, to, now, stripes)
    }
    fn set_trace(&mut self, trace: Trace) {
        ClosFabric::set_trace(self, trace)
    }
}

/// A fabric of either topology behind one concrete type, so the
/// orchestrator's `Cluster` can hold a single-spine or Clos fabric without
/// generics leaking into its public API.
#[derive(Debug, Clone)]
pub enum AnyFabric {
    /// The single-spine worst-case fabric.
    Single(Fabric),
    /// The two-tier leaf/spine fabric.
    Clos(ClosFabric),
}

macro_rules! any_delegate {
    ($self:ident, $f:ident => $e:expr, $c:ident => $e2:expr) => {
        match $self {
            AnyFabric::Single($f) => $e,
            AnyFabric::Clos($c) => $e2,
        }
    };
}

impl AnyFabric {
    /// Number of endpoints.
    pub fn endpoints(&self) -> usize {
        any_delegate!(self, f => f.endpoints(), c => c.endpoints())
    }

    /// Number of racks (1 for the single-spine fabric).
    pub fn racks(&self) -> usize {
        any_delegate!(self, _f => 1, c => c.racks())
    }

    /// The rack an endpoint lives in (0 for the single-spine fabric).
    pub fn rack_of(&self, endpoint: usize) -> usize {
        any_delegate!(self, _f => { let _ = endpoint; 0 }, c => c.rack_of(endpoint))
    }

    /// Number of spines the fabric was built with.
    pub fn spines(&self) -> usize {
        any_delegate!(self, _f => 1, c => c.spines())
    }

    /// Number of spines still carrying traffic.
    pub fn live_spines(&self) -> usize {
        any_delegate!(self, _f => 1, c => c.live_spines())
    }

    /// Busy-until mark of spine `spine`, or `None` if failed/out of range.
    pub fn spine_free_at(&self, spine: usize) -> Option<Nanoseconds> {
        any_delegate!(self, f => (spine == 0).then(|| f.backbone_free_at()),
                      c => c.spine_free_at(spine))
    }

    /// The earliest busy-until mark over all live spines.
    pub fn min_live_spine_free_at(&self) -> Nanoseconds {
        any_delegate!(self, f => f.backbone_free_at(), c => c.min_live_spine_free_at())
    }

    /// Earliest instant the least-loaded live core path is free; see
    /// [`FabricModel::free_at`].
    pub fn free_at(&self) -> Nanoseconds {
        self.min_live_spine_free_at()
    }

    /// Remove a spine from service; see [`ClosFabric::fail_spine`]. The
    /// single-spine fabric always refuses (it would partition).
    pub fn fail_spine(&mut self, spine: usize) -> Result<()> {
        any_delegate!(self, f => FabricModel::fail_spine(f, spine), c => c.fail_spine(spine))
    }

    /// One-way propagation latency between two endpoints.
    pub fn latency(&self, from: usize, to: usize) -> Nanoseconds {
        any_delegate!(self, f => { let _ = (from, to); f.params().latency },
                      c => c.latency(from, to))
    }

    /// Time for `payload` bytes to cross an idle path `from -> to`.
    pub fn transfer_time(&self, from: usize, to: usize, payload: u64) -> Nanoseconds {
        any_delegate!(self, f => { let _ = (from, to); f.params().transfer_time(payload) },
                      c => c.transfer_time(from, to, payload))
    }

    /// Earliest instant a transfer between `from` and `to` could start.
    pub fn path_free_at(&self, from: usize, to: usize) -> Result<Nanoseconds> {
        any_delegate!(self, f => f.path_free_at(from, to), c => c.path_free_at(from, to))
    }

    /// Move `payload` bytes `from -> to`; returns the arrival time.
    pub fn transfer(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        payload: u64,
    ) -> Result<Nanoseconds> {
        any_delegate!(self, f => f.transfer(from, to, now, payload),
                      c => c.transfer(from, to, now, payload))
    }

    /// Move a striped burst `from -> to`; returns the whole burst's arrival.
    pub fn transfer_striped(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        stripes: &[u64],
    ) -> Result<Nanoseconds> {
        any_delegate!(self, f => f.transfer_striped(from, to, now, stripes),
                      c => c.transfer_striped(from, to, now, stripes))
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        any_delegate!(self, f => f.bytes_carried(), c => c.bytes_carried())
    }

    /// Total on-wire bytes carried.
    pub fn wire_bytes_carried(&self) -> u64 {
        any_delegate!(self, f => f.wire_bytes_carried(), c => c.wire_bytes_carried())
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        any_delegate!(self, f => f.transfers(), c => c.transfers())
    }

    /// Payload bytes sent by endpoint `i`.
    pub fn bytes_sent_by(&self, i: usize) -> u64 {
        any_delegate!(self, f => f.bytes_sent_by(i), c => c.bytes_sent_by(i))
    }

    /// Payload bytes received by endpoint `i`.
    pub fn bytes_received_by(&self, i: usize) -> u64 {
        any_delegate!(self, f => f.bytes_received_by(i), c => c.bytes_received_by(i))
    }

    /// Attach a trace.
    pub fn set_trace(&mut self, trace: Trace) {
        any_delegate!(self, f => f.set_trace(trace), c => c.set_trace(trace))
    }
}

impl FabricModel for AnyFabric {
    fn endpoints(&self) -> usize {
        AnyFabric::endpoints(self)
    }
    fn racks(&self) -> usize {
        AnyFabric::racks(self)
    }
    fn rack_of(&self, endpoint: usize) -> usize {
        AnyFabric::rack_of(self, endpoint)
    }
    fn spines(&self) -> usize {
        AnyFabric::spines(self)
    }
    fn live_spines(&self) -> usize {
        AnyFabric::live_spines(self)
    }
    fn spine_free_at(&self, spine: usize) -> Option<Nanoseconds> {
        AnyFabric::spine_free_at(self, spine)
    }
    fn free_at(&self) -> Nanoseconds {
        AnyFabric::free_at(self)
    }
    fn fail_spine(&mut self, spine: usize) -> Result<()> {
        AnyFabric::fail_spine(self, spine)
    }
    fn latency(&self, from: usize, to: usize) -> Nanoseconds {
        AnyFabric::latency(self, from, to)
    }
    fn transfer_time(&self, from: usize, to: usize, payload: u64) -> Nanoseconds {
        AnyFabric::transfer_time(self, from, to, payload)
    }
    fn path_free_at(&self, from: usize, to: usize) -> Result<Nanoseconds> {
        AnyFabric::path_free_at(self, from, to)
    }
    fn transfer(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        payload: u64,
    ) -> Result<Nanoseconds> {
        AnyFabric::transfer(self, from, to, now, payload)
    }
    fn transfer_striped(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        stripes: &[u64],
    ) -> Result<Nanoseconds> {
        AnyFabric::transfer_striped(self, from, to, now, stripes)
    }
    fn set_trace(&mut self, trace: Trace) {
        AnyFabric::set_trace(self, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MB: u64 = 1_000_000;

    fn dc(racks: usize, hosts: usize) -> ClosFabric {
        ClosFabric::new(racks * hosts, ClosParams::datacenter(racks, hosts)).unwrap()
    }

    #[test]
    fn params_validation_rejects_degenerate_values() {
        assert!(ClosParams::datacenter(4, 8).validate().is_ok());
        assert!(ClosParams::office_lan(2, 4).validate().is_ok());
        assert!(ClosParams::wan(2, 2).validate().is_ok());
        for tweak in [
            |p: &mut ClosParams| p.racks = 0,
            |p: &mut ClosParams| p.hosts_per_rack = 0,
            |p: &mut ClosParams| p.spines = 0,
            |p: &mut ClosParams| p.nic_bytes_per_second = 0,
            |p: &mut ClosParams| p.leaf_uplink_bytes_per_second = 0,
            |p: &mut ClosParams| p.spine_bytes_per_second = 0,
            |p: &mut ClosParams| p.mtu = 0,
            |p: &mut ClosParams| p.chunk_overhead = p.mtu,
        ] {
            let mut p = ClosParams::datacenter(4, 8);
            tweak(&mut p);
            assert!(p.validate().is_err());
        }
        // Too many endpoints for the rack plan, too few endpoints, bad rack.
        assert!(ClosFabric::new(33, ClosParams::datacenter(4, 8)).is_err());
        assert!(ClosFabric::new(1, ClosParams::datacenter(4, 8)).is_err());
        assert!(
            ClosFabric::with_rack_assignment(ClosParams::datacenter(2, 2), vec![0, 2]).is_err()
        );
    }

    #[test]
    fn rack_assignment_is_contiguous_by_default() {
        let f = dc(3, 4);
        assert_eq!(f.endpoints(), 12);
        assert_eq!(f.racks(), 3);
        assert_eq!(f.rack_of(0), 0);
        assert_eq!(f.rack_of(3), 0);
        assert_eq!(f.rack_of(4), 1);
        assert_eq!(f.rack_of(11), 2);
        let g =
            ClosFabric::with_rack_assignment(ClosParams::datacenter(3, 4), vec![2, 0, 1]).unwrap();
        assert_eq!(g.rack_of(0), 2);
        assert_eq!(g.rack_of(2), 1);
    }

    #[test]
    fn four_streams_cross_rack_beat_one_stream_with_multiple_spines() {
        // The ISSUE 8 acceptance criterion, at the fabric level: on a
        // >= 2-spine Clos, a 4-stream cross-rack burst completes strictly
        // earlier in simulated time than the same bytes as one stream.
        let total = 64 * MB;
        let mut one = dc(4, 8);
        let mut four = dc(4, 8);
        let single = one
            .transfer_striped(0, 8, Nanoseconds::ZERO, &[total])
            .unwrap();
        let split = [total / 4, total / 4, total / 4, total - 3 * (total / 4)];
        let striped = four
            .transfer_striped(0, 8, Nanoseconds::ZERO, &split)
            .unwrap();
        assert!(
            striped < single,
            "4 ECMP-spread streams must beat 1 spine-bound stream: {striped:?} vs {single:?}"
        );
        // The datacenter preset is NIC-bound at >= 2 streams and
        // spine-bound at 1: the win is the full 2x (modulo framing).
        let gain = single.as_nanos() as f64 / striped.as_nanos() as f64;
        assert!(gain > 1.9, "expected ~2x, got {gain}");
        // Same payload either way.
        assert_eq!(one.bytes_carried(), four.bytes_carried());
        assert_eq!(four.transfers(), 4);
    }

    #[test]
    fn rack_local_striping_is_invariant() {
        // Inside a rack there is no spine to spread over: striping pays
        // framing and shares the leaf, exactly like the single-spine model.
        let total = 16 * MB;
        let mut one = dc(4, 8);
        let mut four = dc(4, 8);
        let single = one
            .transfer_striped(0, 1, Nanoseconds::ZERO, &[total])
            .unwrap();
        let split = [total / 4; 4];
        let striped = four
            .transfer_striped(0, 1, Nanoseconds::ZERO, &split)
            .unwrap();
        assert!(striped >= single, "rack-local striping must never win");
    }

    #[test]
    fn ecmp_spreads_streams_over_all_spines() {
        let mut f = dc(4, 8);
        f.transfer_striped(0, 8, Nanoseconds::ZERO, &[MB, MB, MB, MB])
            .unwrap();
        for s in 0..4 {
            assert!(
                f.spine_wire_bytes(s) > 0,
                "round-robin-from-offset must touch every spine"
            );
        }
    }

    #[test]
    fn spine_failure_degrades_but_never_partitions() {
        let mut f = dc(4, 8);
        let healthy = f
            .clone()
            .transfer_striped(0, 8, Nanoseconds::ZERO, &[16 * MB; 4])
            .unwrap();
        f.fail_spine(1).unwrap();
        assert_eq!(f.live_spines(), 3);
        assert!(f.spine_free_at(1).is_none());
        assert!(f.fail_spine(1).is_err(), "double failure is an error");
        assert!(f.fail_spine(9).is_err(), "out of range");
        // One spine down: the hot spine now carries 2 of 4 streams, which on
        // the datacenter preset exactly matches the shared NIC window — the
        // burst must not get *faster*, and usually gets slower.
        let degraded = f
            .clone()
            .transfer_striped(0, 8, Nanoseconds::ZERO, &[16 * MB; 4])
            .unwrap();
        assert!(degraded >= healthy);
        // Traffic still flows, and the last spine is protected.
        f.fail_spine(0).unwrap();
        f.fail_spine(2).unwrap();
        assert!(f.fail_spine(3).is_err(), "last live spine must survive");
        assert_eq!(f.live_spines(), 1);
        // All four streams now squeeze through the one surviving spine:
        // strictly slower than the healthy ECMP spread.
        let one_spine = f
            .clone()
            .transfer_striped(0, 8, Nanoseconds::ZERO, &[16 * MB; 4])
            .unwrap();
        assert!(
            one_spine > healthy,
            "one surviving spine must slow a 4-stream burst: {one_spine:?} vs {healthy:?}"
        );
        assert!(f.transfer(0, 8, Nanoseconds::ZERO, MB).is_ok());
        // Reset revives failed spines.
        f.reset();
        assert_eq!(f.live_spines(), 4);
        assert_eq!(f.bytes_carried(), 0);
    }

    #[test]
    fn path_free_at_matches_single_stream_start() {
        let mut f = dc(4, 8);
        // Occupy the pair's stream-0 spine with other-rack traffic.
        f.transfer(16, 24, Nanoseconds::ZERO, 8 * MB).unwrap();
        let free = f.path_free_at(0, 8).unwrap();
        let idle_time = f.transfer_time(0, 8, MB);
        let arrival = f.transfer(0, 8, Nanoseconds::ZERO, MB).unwrap();
        assert_eq!(arrival, free.saturating_add(idle_time));
    }

    #[test]
    fn single_spine_fabric_implements_the_model() {
        let mut f = Fabric::new(4, FabricParams::datacenter()).unwrap();
        let m: &mut dyn FabricModel = &mut f;
        assert_eq!(m.racks(), 1);
        assert_eq!(m.spines(), 1);
        assert_eq!(m.live_spines(), 1);
        assert_eq!(m.rack_of(3), 0);
        assert_eq!(m.spine_free_at(0), Some(Nanoseconds::ZERO));
        assert_eq!(m.spine_free_at(1), None);
        assert!(m.fail_spine(0).is_err());
        assert_eq!(m.latency(0, 1), FabricParams::datacenter().latency);
        let t = m.transfer(0, 1, Nanoseconds::ZERO, MB).unwrap();
        assert_eq!(
            m.spine_free_at(0),
            Some(t.saturating_sub(FabricParams::datacenter().latency))
        );
    }

    #[test]
    fn any_fabric_delegates_both_ways() {
        let mut s = AnyFabric::Single(Fabric::new(4, FabricParams::datacenter()).unwrap());
        let mut c = AnyFabric::Clos(dc(4, 8));
        assert_eq!(s.racks(), 1);
        assert_eq!(c.racks(), 4);
        assert_eq!(s.rack_of(3), 0);
        assert_eq!(c.rack_of(9), 1);
        assert!(s.fail_spine(0).is_err());
        assert!(c.fail_spine(0).is_ok());
        assert_eq!(c.live_spines(), 3);
        let a = s.transfer(0, 1, Nanoseconds::ZERO, MB).unwrap();
        let b = c.transfer(0, 1, Nanoseconds::ZERO, MB).unwrap();
        assert!(a > Nanoseconds::ZERO && b > Nanoseconds::ZERO);
        assert_eq!(s.bytes_carried(), MB);
        assert_eq!(c.bytes_carried(), MB);
        assert!(s.min_live_spine_free_at() > Nanoseconds::ZERO);
        // Clos rack-local transfer leaves every spine cold.
        assert_eq!(c.min_live_spine_free_at(), Nanoseconds::ZERO);
    }

    proptest! {
        /// The ISSUE 8 degenerate-equivalence pin: a 1-rack/1-spine
        /// `ClosFabric` built from any valid `FabricParams` produces `==`
        /// completion times and counters to the original `Fabric` across
        /// random payload sequences, stream splits and start instants.
        #[test]
        fn one_rack_one_spine_clos_equals_single_spine_fabric(
            nic in 1_000u64..10_000_000_000,
            backbone in 1_000u64..10_000_000_000,
            latency_ns in 0u64..10_000_000,
            endpoints in 2usize..6,
            bursts in proptest::collection::vec(
                (
                    0usize..6, 0usize..6,            // from/to (mod endpoints, skip equal)
                    0u64..50_000_000,                 // start instant
                    proptest::collection::vec(0u64..10_000_000, 1..5), // stripes
                ),
                1..12,
            ),
        ) {
            let fp = FabricParams {
                nic_bytes_per_second: nic,
                backbone_bytes_per_second: backbone,
                latency: Nanoseconds(latency_ns),
                mtu: 1500,
                chunk_overhead: 90,
            };
            let mut single = Fabric::new(endpoints, fp).unwrap();
            let mut clos =
                ClosFabric::new(endpoints, ClosParams::degenerate(fp, endpoints)).unwrap();
            for (from, to, start, stripes) in &bursts {
                let (from, to) = (from % endpoints, to % endpoints);
                if from == to {
                    continue;
                }
                let now = Nanoseconds(*start);
                let a = single.transfer_striped(from, to, now, stripes).unwrap();
                let b = clos.transfer_striped(from, to, now, stripes).unwrap();
                prop_assert_eq!(a, b);
                prop_assert_eq!(
                    single.path_free_at(from, to).unwrap(),
                    clos.path_free_at(from, to).unwrap()
                );
            }
            prop_assert_eq!(single.bytes_carried(), clos.bytes_carried());
            prop_assert_eq!(single.wire_bytes_carried(), clos.wire_bytes_carried());
            prop_assert_eq!(single.transfers(), clos.transfers());
        }

        /// Clos arrival times are monotone per pair and deterministic.
        #[test]
        fn clos_transfers_are_monotonic_and_deterministic(
            sizes in proptest::collection::vec(0u64..10_000_000, 1..16)
        ) {
            let run = || {
                let mut f = dc(4, 8);
                let mut times = Vec::new();
                for &s in &sizes {
                    times.push(f.transfer(0, 8, Nanoseconds::ZERO, s).unwrap());
                }
                times
            };
            let first = run();
            for w in first.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
            prop_assert_eq!(&first, &run());
        }

        /// Disjoint cross-rack pairs on disjoint spines genuinely overlap:
        /// neither pair's arrival depends on whether the other pair also
        /// transferred, as long as they hash to different spines.
        #[test]
        fn striping_never_loses_to_the_aggregate_cross_rack(
            total in 1u64..100_000_000, n in 1usize..8
        ) {
            let mut one = dc(4, 8);
            let mut many = dc(4, 8);
            let single = one.transfer_striped(0, 8, Nanoseconds::ZERO, &[total]).unwrap();
            let per = total / n as u64;
            let mut split = vec![per; n];
            split[0] = total - per * (n as u64 - 1);
            let striped = many.transfer_striped(0, 8, Nanoseconds::ZERO, &split).unwrap();
            // The shared NIC/leaf window plus per-stream framing bounds the
            // win; the spine spread bounds the loss. Striping cross-rack
            // can tie or win but must never lose by more than the framing
            // of the extra streams.
            let framing_slack = serialization(
                (n as u64) * one.params().chunk_overhead * 2,
                one.params().cross_bytes_per_second(),
            );
            prop_assert!(striped <= single.saturating_add(framing_slack));
        }
    }
}
