//! Point-to-point link models.
//!
//! Live migration moves gigabytes of memory across a network whose bandwidth
//! is the single most important parameter of the experiment: pre-copy
//! converges only if the guest dirties memory slower than the link can carry
//! it. [`LinkModel`] captures bandwidth + propagation latency;
//! [`Link`] adds a running clock so sequential transfers queue behind each
//! other the way they would on a real NIC.

use serde::{Deserialize, Serialize};

use rvisor_types::Nanoseconds;

/// A bandwidth/latency description of a point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Usable bandwidth in bytes per second.
    pub bytes_per_second: u64,
    /// One-way propagation latency added to every transfer.
    pub latency: Nanoseconds,
}

impl LinkModel {
    /// A 1 Gbit/s link with 200 µs latency (the deck's office LAN).
    pub fn gigabit() -> Self {
        LinkModel {
            bytes_per_second: 125_000_000,
            latency: Nanoseconds::from_micros(200),
        }
    }

    /// A 10 Gbit/s datacenter link with 50 µs latency.
    pub fn ten_gigabit() -> Self {
        LinkModel {
            bytes_per_second: 1_250_000_000,
            latency: Nanoseconds::from_micros(50),
        }
    }

    /// A 100 Mbit/s WAN-ish link with 5 ms latency (cross-site DR traffic).
    pub fn wan() -> Self {
        LinkModel {
            bytes_per_second: 12_500_000,
            latency: Nanoseconds::from_millis(5),
        }
    }

    /// Construct from a bandwidth expressed in megabits per second.
    pub fn from_mbps(mbps: u64, latency: Nanoseconds) -> Self {
        LinkModel {
            bytes_per_second: mbps * 1_000_000 / 8,
            latency,
        }
    }

    /// Time to push `bytes` through the link (serialization + propagation).
    pub fn transfer_time(&self, bytes: u64) -> Nanoseconds {
        let serialization = if self.bytes_per_second == 0 {
            0
        } else {
            // bytes * 1e9 / bw, computed in u128 to avoid overflow on large transfers.
            ((bytes as u128 * 1_000_000_000) / self.bytes_per_second as u128) as u64
        };
        self.latency.saturating_add(Nanoseconds(serialization))
    }

    /// The highest sustained dirty rate (bytes/s) that pre-copy can outrun on
    /// this link — anything above it and migration cannot converge.
    pub fn max_convergent_dirty_rate(&self) -> u64 {
        self.bytes_per_second
    }
}

/// A link with a running busy-time account, so back-to-back transfers queue.
#[derive(Debug, Clone)]
pub struct Link {
    model: LinkModel,
    /// Simulated instant at which the link becomes free.
    free_at: Nanoseconds,
    bytes_carried: u64,
    transfers: u64,
}

impl Link {
    /// Create an idle link with the given model.
    pub fn new(model: LinkModel) -> Self {
        Link {
            model,
            free_at: Nanoseconds::ZERO,
            bytes_carried: 0,
            transfers: 0,
        }
    }

    /// The link's model.
    pub fn model(&self) -> LinkModel {
        self.model
    }

    /// Total bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// When the link next becomes idle.
    pub fn free_at(&self) -> Nanoseconds {
        self.free_at
    }

    /// Schedule a transfer of `bytes` starting no earlier than `now`;
    /// returns the simulated completion time.
    pub fn transmit(&mut self, now: Nanoseconds, bytes: u64) -> Nanoseconds {
        let start = if now > self.free_at {
            now
        } else {
            self.free_at
        };
        let done = start.saturating_add(self.model.transfer_time(bytes));
        self.free_at = done;
        self.bytes_carried += bytes;
        self.transfers += 1;
        done
    }

    /// Reset the busy-time account (e.g. between benchmark iterations).
    pub fn reset(&mut self) {
        self.free_at = Nanoseconds::ZERO;
        self.bytes_carried = 0;
        self.transfers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = LinkModel {
            bytes_per_second: 1_000_000,
            latency: Nanoseconds::from_micros(10),
        };
        assert_eq!(link.transfer_time(0), Nanoseconds::from_micros(10));
        // 1 MB at 1 MB/s = 1 s + latency.
        assert_eq!(
            link.transfer_time(1_000_000),
            Nanoseconds(1_000_000_000 + 10_000)
        );
        let zero = LinkModel {
            bytes_per_second: 0,
            latency: Nanoseconds::from_micros(1),
        };
        assert_eq!(zero.transfer_time(123), Nanoseconds::from_micros(1));
    }

    #[test]
    fn presets_and_conversions() {
        assert_eq!(LinkModel::gigabit().bytes_per_second, 125_000_000);
        assert!(LinkModel::ten_gigabit().bytes_per_second > LinkModel::gigabit().bytes_per_second);
        assert!(LinkModel::wan().latency > LinkModel::gigabit().latency);
        let m = LinkModel::from_mbps(1000, Nanoseconds::ZERO);
        assert_eq!(m.bytes_per_second, 125_000_000);
        assert_eq!(m.max_convergent_dirty_rate(), 125_000_000);
    }

    #[test]
    fn large_transfers_do_not_overflow() {
        let link = LinkModel::gigabit();
        // 1 TiB over gigabit: ~ 8796 seconds; must not overflow.
        let t = link.transfer_time(1 << 40);
        assert!(t.as_secs_f64() > 8000.0 && t.as_secs_f64() < 10_000.0);
    }

    #[test]
    fn sequential_transfers_queue() {
        let mut link = Link::new(LinkModel {
            bytes_per_second: 1_000_000,
            latency: Nanoseconds::ZERO,
        });
        let t1 = link.transmit(Nanoseconds::ZERO, 500_000); // 0.5 s
        assert_eq!(t1, Nanoseconds::from_millis(500));
        // Submitted "earlier" than the link frees up: queues behind.
        let t2 = link.transmit(Nanoseconds::from_millis(100), 500_000);
        assert_eq!(t2, Nanoseconds::from_secs(1));
        // Submitted after an idle gap: starts immediately.
        let t3 = link.transmit(Nanoseconds::from_secs(2), 1_000_000);
        assert_eq!(t3, Nanoseconds::from_secs(3));
        assert_eq!(link.bytes_carried(), 2_000_000);
        assert_eq!(link.transfers(), 3);
        assert_eq!(link.free_at(), Nanoseconds::from_secs(3));
        link.reset();
        assert_eq!(link.bytes_carried(), 0);
        assert_eq!(link.free_at(), Nanoseconds::ZERO);
        assert_eq!(link.model().bytes_per_second, 1_000_000);
    }

    proptest! {
        #[test]
        fn completion_times_are_monotonic(
            sizes in proptest::collection::vec(1u64..10_000_000, 1..20)
        ) {
            let mut link = Link::new(LinkModel::gigabit());
            let mut last = Nanoseconds::ZERO;
            for s in sizes {
                let done = link.transmit(Nanoseconds::ZERO, s);
                prop_assert!(done >= last);
                last = done;
            }
        }

        #[test]
        fn transfer_time_is_monotonic_in_bytes(a in 0u64..1 << 30, b in 0u64..1 << 30) {
            let link = LinkModel::gigabit();
            let (small, large) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(link.transfer_time(small) <= link.transfer_time(large));
        }
    }
}
