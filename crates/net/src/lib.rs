//! # rvisor-net
//!
//! The virtual network substrate: Ethernet-style frames, a learning L2
//! switch connecting VM network endpoints, and bandwidth/latency link models.
//!
//! Two consumers drive the design:
//!
//! * **virtio-net** (`rvisor-virtio`) attaches each VM's NIC to a
//!   [`VirtualSwitch`] port and exchanges [`Frame`]s with its peers;
//! * **live migration** (`rvisor-migrate`) pushes memory pages through a
//!   [`Link`], whose bandwidth model determines round lengths and downtime —
//!   exactly the quantity experiment E4 sweeps, or through a shared
//!   [`Fabric`] when whole fleets contend for the network (experiment E17).
//!
//! ## The fabric model
//!
//! [`Fabric`] upgrades the private point-to-point [`Link`] to a shared
//! datacenter network: every endpoint owns a NIC of
//! [`FabricParams::nic_bytes_per_second`], all NICs feed one backbone of
//! [`FabricParams::backbone_bytes_per_second`], and payloads are chunked
//! into [`FabricParams::mtu`]-sized packets each paying
//! [`FabricParams::chunk_overhead`] bytes of framing. Timing is pure
//! integer-nanosecond arithmetic — transfers between the same or disjoint
//! host pairs queue deterministically on the busy-until marks of the NICs
//! and the backbone — so orchestrator runs over a fabric replay
//! `==`-identically. Every modelling assumption (single-spine worst-case
//! contention, store-and-forward occupancy, once-per-burst latency) is
//! documented on the [`fabric`] module with the parameter that controls it.
//!
//! ## The Clos model
//!
//! [`ClosFabric`] generalizes the single-spine fabric to the two-tier
//! leaf/spine topology real datacenters run: racks of hosts behind leaf
//! switches of [`ClosParams::leaf_uplink_bytes_per_second`], connected by
//! [`ClosParams::spines`] independent spine paths. Striped transfers hash
//! their streams ECMP-style across the live spines, so cross-rack
//! multi-stream migration genuinely completes earlier in simulated time,
//! while rack-local traffic skips the spine tier entirely. Both topologies
//! sit behind the [`FabricModel`] trait ([`AnyFabric`] erases the choice),
//! and a 1-rack/1-spine [`ClosFabric`] is proptest-pinned `==`-equal to the
//! original [`Fabric`].

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod clos;
pub mod fabric;
pub mod frame;
pub mod link;
pub mod switch;

pub use clos::{AnyFabric, ClosFabric, ClosParams, FabricModel};
pub use fabric::{Fabric, FabricParams, DEFAULT_CHUNK_OVERHEAD};
pub use frame::{Frame, MacAddr, ETHERTYPE_IPV4, MAX_FRAME_SIZE, MIN_FRAME_SIZE};
pub use link::{Link, LinkModel};
pub use switch::{SwitchPort, SwitchStats, VirtualSwitch};
