//! # rvisor-net
//!
//! The virtual network substrate: Ethernet-style frames, a learning L2
//! switch connecting VM network endpoints, and bandwidth/latency link models.
//!
//! Two consumers drive the design:
//!
//! * **virtio-net** (`rvisor-virtio`) attaches each VM's NIC to a
//!   [`VirtualSwitch`] port and exchanges [`Frame`]s with its peers;
//! * **live migration** (`rvisor-migrate`) pushes memory pages through a
//!   [`Link`], whose bandwidth model determines round lengths and downtime —
//!   exactly the quantity experiment E4 sweeps.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod frame;
pub mod link;
pub mod switch;

pub use frame::{Frame, MacAddr, ETHERTYPE_IPV4, MAX_FRAME_SIZE, MIN_FRAME_SIZE};
pub use link::{Link, LinkModel};
pub use switch::{SwitchPort, SwitchStats, VirtualSwitch};
