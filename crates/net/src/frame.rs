//! Ethernet-style frames and MAC addresses.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimum frame size (header + minimal payload), matching Ethernet's 64 bytes.
pub const MIN_FRAME_SIZE: usize = 64;
/// Maximum frame size (standard MTU plus header).
pub const MAX_FRAME_SIZE: usize = 1518;
/// Ethertype used for the synthetic IPv4-ish traffic in tests and benches.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally administered unicast address derived from an index —
    /// convenient for giving each VM a unique, predictable MAC.
    pub fn local(index: u32) -> Self {
        let b = index.to_be_bytes();
        MacAddr([0x02, 0x52, b[0], b[1], b[2], b[3]])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Whether this is a multicast address (lowest bit of the first octet).
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// A network frame exchanged between endpoints on a [`crate::VirtualSwitch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Ethertype.
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Frame {
    /// Build a frame. The payload is not padded; [`Frame::wire_len`] accounts
    /// for minimum frame size the way a real NIC would.
    pub fn new(src: MacAddr, dst: MacAddr, ethertype: u16, payload: impl Into<Bytes>) -> Self {
        Frame {
            dst,
            src,
            ethertype,
            payload: payload.into(),
        }
    }

    /// A broadcast frame.
    pub fn broadcast(src: MacAddr, ethertype: u16, payload: impl Into<Bytes>) -> Self {
        Self::new(src, MacAddr::BROADCAST, ethertype, payload)
    }

    /// The size this frame occupies on the wire (header + payload, padded to
    /// the Ethernet minimum).
    pub fn wire_len(&self) -> usize {
        (14 + self.payload.len()).max(MIN_FRAME_SIZE)
    }

    /// Whether the frame exceeds the maximum frame size.
    pub fn oversized(&self) -> bool {
        14 + self.payload.len() > MAX_FRAME_SIZE
    }

    /// Serialize to a flat byte vector (header then payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14 + self.payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a frame from its flat byte representation.
    pub fn from_bytes(data: &[u8]) -> Option<Frame> {
        if data.len() < 14 {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]);
        Some(Frame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: Bytes::copy_from_slice(&data[14..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mac_helpers() {
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        assert_ne!(a, b);
        assert!(!a.is_broadcast());
        assert!(!a.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert_eq!(
            MacAddr([0xde, 0xad, 0xbe, 0xef, 0, 1]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }

    #[test]
    fn wire_len_respects_minimum() {
        let f = Frame::new(
            MacAddr::local(0),
            MacAddr::local(1),
            ETHERTYPE_IPV4,
            vec![0u8; 10],
        );
        assert_eq!(f.wire_len(), MIN_FRAME_SIZE);
        let f = Frame::new(
            MacAddr::local(0),
            MacAddr::local(1),
            ETHERTYPE_IPV4,
            vec![0u8; 1500],
        );
        assert_eq!(f.wire_len(), 1514);
        assert!(!f.oversized());
        let f = Frame::new(
            MacAddr::local(0),
            MacAddr::local(1),
            ETHERTYPE_IPV4,
            vec![0u8; 1600],
        );
        assert!(f.oversized());
    }

    #[test]
    fn broadcast_constructor() {
        let f = Frame::broadcast(MacAddr::local(3), ETHERTYPE_IPV4, vec![1, 2, 3]);
        assert!(f.dst.is_broadcast());
        assert_eq!(f.src, MacAddr::local(3));
    }

    #[test]
    fn serialization_roundtrip() {
        let f = Frame::new(MacAddr::local(7), MacAddr::local(9), 0x86dd, vec![9u8; 100]);
        let bytes = f.to_bytes();
        let back = Frame::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        assert!(Frame::from_bytes(&bytes[..10]).is_none());
    }

    proptest! {
        #[test]
        fn roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..1500), et in any::<u16>()) {
            let f = Frame::new(MacAddr::local(1), MacAddr::local(2), et, payload);
            prop_assert_eq!(Frame::from_bytes(&f.to_bytes()).unwrap(), f);
        }
    }
}
