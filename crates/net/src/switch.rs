//! A learning layer-2 virtual switch.
//!
//! Each VM NIC plugs into a [`SwitchPort`]. Frames sent on a port are
//! forwarded to the port owning the destination MAC (learned from source
//! addresses, as a real switch does) or flooded to all other ports for
//! broadcasts and unknown destinations. Every port has a bounded receive
//! queue; frames arriving at a full queue are dropped and counted, which is
//! what lets the virtio-net benchmark observe backpressure.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::frame::{Frame, MacAddr};

/// Default per-port receive queue depth.
pub const DEFAULT_RX_QUEUE: usize = 1024;

/// Switch-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Frames forwarded to a single learned port.
    pub forwarded: u64,
    /// Frames flooded to all ports (broadcast or unknown destination).
    pub flooded: u64,
    /// Frames dropped because a receive queue was full.
    pub dropped: u64,
    /// Total payload+header bytes accepted from endpoints.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct PortState {
    rx: VecDeque<Frame>,
    rx_capacity: usize,
    dropped: u64,
}

#[derive(Debug, Default)]
struct SwitchInner {
    ports: Vec<PortState>,
    mac_table: HashMap<MacAddr, usize>,
    stats: SwitchStats,
}

/// A shareable virtual L2 switch.
#[derive(Debug, Clone, Default)]
pub struct VirtualSwitch {
    inner: Arc<Mutex<SwitchInner>>,
}

impl VirtualSwitch {
    /// Create a switch with no ports.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a port with the default receive-queue depth.
    pub fn add_port(&self) -> SwitchPort {
        self.add_port_with_queue(DEFAULT_RX_QUEUE)
    }

    /// Add a port with an explicit receive-queue depth.
    pub fn add_port_with_queue(&self, rx_capacity: usize) -> SwitchPort {
        let mut inner = self.inner.lock();
        let index = inner.ports.len();
        inner.ports.push(PortState {
            rx: VecDeque::new(),
            rx_capacity: rx_capacity.max(1),
            dropped: 0,
        });
        SwitchPort {
            switch: self.clone(),
            index,
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.inner.lock().ports.len()
    }

    /// Switch-wide statistics.
    pub fn stats(&self) -> SwitchStats {
        self.inner.lock().stats
    }

    /// The port index a MAC address has been learned on, if any.
    pub fn learned_port(&self, mac: MacAddr) -> Option<usize> {
        self.inner.lock().mac_table.get(&mac).copied()
    }

    fn transmit(&self, from_port: usize, frame: Frame) {
        let mut inner = self.inner.lock();
        inner.stats.bytes += frame.wire_len() as u64;
        // Learn the source.
        inner.mac_table.insert(frame.src, from_port);

        let dst_port = if frame.dst.is_broadcast() || frame.dst.is_multicast() {
            None
        } else {
            inner.mac_table.get(&frame.dst).copied()
        };

        match dst_port {
            Some(p) if p != from_port => {
                inner.stats.forwarded += 1;
                Self::deliver(&mut inner, p, frame);
            }
            Some(_) => {
                // Destination is the sender itself; real switches drop this.
                inner.stats.forwarded += 1;
            }
            None => {
                inner.stats.flooded += 1;
                let targets: Vec<usize> =
                    (0..inner.ports.len()).filter(|&p| p != from_port).collect();
                for p in targets {
                    Self::deliver(&mut inner, p, frame.clone());
                }
            }
        }
    }

    fn deliver(inner: &mut SwitchInner, port: usize, frame: Frame) {
        let state = &mut inner.ports[port];
        if state.rx.len() >= state.rx_capacity {
            state.dropped += 1;
            inner.stats.dropped += 1;
        } else {
            state.rx.push_back(frame);
        }
    }

    fn receive(&self, port: usize) -> Option<Frame> {
        self.inner.lock().ports[port].rx.pop_front()
    }

    fn pending(&self, port: usize) -> usize {
        self.inner.lock().ports[port].rx.len()
    }

    fn port_dropped(&self, port: usize) -> u64 {
        self.inner.lock().ports[port].dropped
    }
}

/// One port of a [`VirtualSwitch`]; owned by a VM NIC or a host-side endpoint.
#[derive(Debug, Clone)]
pub struct SwitchPort {
    switch: VirtualSwitch,
    index: usize,
}

impl SwitchPort {
    /// The port's index on its switch.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Transmit a frame into the switch.
    pub fn send(&self, frame: Frame) {
        self.switch.transmit(self.index, frame);
    }

    /// Receive the next queued frame, if any.
    pub fn recv(&self) -> Option<Frame> {
        self.switch.receive(self.index)
    }

    /// Number of frames waiting in this port's receive queue.
    pub fn pending(&self) -> usize {
        self.switch.pending(self.index)
    }

    /// Frames dropped at this port because its queue was full.
    pub fn dropped(&self) -> u64 {
        self.switch.port_dropped(self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ETHERTYPE_IPV4;

    fn frame(src: u32, dst: MacAddr, len: usize) -> Frame {
        Frame::new(MacAddr::local(src), dst, ETHERTYPE_IPV4, vec![0u8; len])
    }

    #[test]
    fn unknown_destination_floods() {
        let sw = VirtualSwitch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        let c = sw.add_port();
        a.send(frame(0, MacAddr::local(9), 100));
        assert_eq!(b.pending(), 1);
        assert_eq!(c.pending(), 1);
        assert_eq!(a.pending(), 0);
        assert_eq!(sw.stats().flooded, 1);
    }

    #[test]
    fn learning_directs_subsequent_frames() {
        let sw = VirtualSwitch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        let c = sw.add_port();

        // b announces itself by sending anything.
        b.send(frame(1, MacAddr::BROADCAST, 64));
        assert_eq!(sw.learned_port(MacAddr::local(1)), Some(b.index()));
        // Drain the flood.
        while a.recv().is_some() {}
        while c.recv().is_some() {}

        a.send(frame(0, MacAddr::local(1), 200));
        assert_eq!(b.pending(), 1);
        assert_eq!(c.pending(), 0);
        assert_eq!(sw.stats().forwarded, 1);
        let received = b.recv().unwrap();
        assert_eq!(received.src, MacAddr::local(0));
        assert_eq!(received.payload.len(), 200);
    }

    #[test]
    fn broadcast_reaches_all_but_sender() {
        let sw = VirtualSwitch::new();
        let ports: Vec<_> = (0..4).map(|_| sw.add_port()).collect();
        ports[0].send(Frame::broadcast(
            MacAddr::local(0),
            ETHERTYPE_IPV4,
            vec![1u8; 50],
        ));
        assert_eq!(ports[0].pending(), 0);
        for p in &ports[1..] {
            assert_eq!(p.pending(), 1);
        }
    }

    #[test]
    fn full_queue_drops_and_counts() {
        let sw = VirtualSwitch::new();
        let a = sw.add_port_with_queue(2);
        let b = sw.add_port_with_queue(2);
        // Teach the switch where a is.
        a.send(frame(0, MacAddr::BROADCAST, 64));
        let _ = b.recv();
        for _ in 0..5 {
            b.send(frame(1, MacAddr::local(0), 64));
        }
        assert_eq!(a.pending(), 2);
        assert_eq!(a.dropped(), 3);
        assert_eq!(sw.stats().dropped, 3);
    }

    #[test]
    fn frame_to_self_is_dropped_silently() {
        let sw = VirtualSwitch::new();
        let a = sw.add_port();
        let _b = sw.add_port();
        a.send(frame(0, MacAddr::BROADCAST, 64)); // learn a
        a.send(frame(0, MacAddr::local(0), 64)); // to itself
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn stats_count_bytes() {
        let sw = VirtualSwitch::new();
        let a = sw.add_port();
        let _b = sw.add_port();
        a.send(frame(0, MacAddr::BROADCAST, 1000));
        a.send(frame(0, MacAddr::BROADCAST, 10));
        assert_eq!(sw.stats().bytes, 1014 + 64);
        assert_eq!(sw.port_count(), 2);
    }
}
