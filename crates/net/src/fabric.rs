//! A modelled datacenter network fabric for migration and DR traffic.
//!
//! [`Link`](crate::Link) models one private point-to-point pipe; real
//! migration traffic crosses a *shared* fabric: each host hangs off its own
//! NIC, every NIC feeds one aggregate backbone, and big transfers are
//! chunked into MTU-sized packets that each pay framing overhead. [`Fabric`]
//! models exactly that, with deterministic integer-nanosecond timing so
//! orchestrator runs replay bit-identically.
//!
//! # Model parameters and assumptions
//!
//! Following *On Heuristic Models, Assumptions, and Parameters*, every
//! assumption is a named [`FabricParams`] field rather than an implicit
//! constant:
//!
//! * **Per-host NIC capacity** (`nic_bytes_per_second`) — a host serializes
//!   all of its migration/DR traffic through one NIC; two transfers
//!   touching the same host queue behind each other.
//! * **Shared backbone** (`backbone_bytes_per_second`) — all hosts share
//!   one aggregate uplink; transfers between *disjoint* host pairs still
//!   contend here. This is the worst-case single-spine assumption, kept as
//!   the conservative upper bound on contention: the two-tier
//!   [`ClosFabric`](crate::ClosFabric) models the leaf/spine topology real
//!   datacenters use, where disjoint rack pairs ride independent spine
//!   paths, and reproduces this model `==`-exactly in its 1-rack/1-spine
//!   degenerate configuration (proptest-pinned).
//! * **MTU chunking** (`mtu`, `chunk_overhead`) — a payload of `n` bytes
//!   crosses the wire as `ceil(n / mtu)` chunks, each carrying
//!   `chunk_overhead` bytes of framing (Ethernet + IP + TCP headers), so
//!   small MTUs visibly tax big memory streams.
//! * **Propagation latency** (`latency`) — one-way, paid once per
//!   [`Fabric::transfer`] call (a transfer models one batched burst, not one
//!   packet; intra-burst pipelining hides per-packet latency).
//! * **Store-and-forward occupancy** — a transfer occupies the source NIC,
//!   the backbone and the destination NIC for its whole serialization time
//!   (no cut-through credit), which is what makes contention conservative
//!   and the timing a simple max over `free_at` marks.
//! * **Parallel chunk streams** ([`Fabric::transfer_striped`]) — a
//!   multi-stream migration presents its per-stripe payloads together and
//!   the streams *fairly share* the source NIC, the backbone and the
//!   destination NIC. Because one bottleneck serializes every stream's
//!   bytes, the striped burst completes exactly when a single stream
//!   carrying the aggregate would — except that each stream pays its own
//!   MTU chunk framing (`ceil(payload / mtu)` per stream), so parallelism
//!   is never *faster* in simulated time **on this single-spine model** —
//!   a property of the topology, not of striping itself. On a multi-spine
//!   [`ClosFabric`](crate::ClosFabric), ECMP-spread streams cross
//!   independent spine paths and a cross-rack striped burst genuinely
//!   completes earlier (regression-pinned in `clos.rs`). What parallel
//!   streams buy *here* is host-CPU overlap (encode and apply proceed
//!   concurrently), which is wall-clock, not guest-visible simulated time;
//!   per-stream completion instants inside a burst are deliberately not
//!   modelled.
//!
//! All timing is computed in `u128` nanosecond arithmetic and stored as
//! [`Nanoseconds`]; no floats are involved, so same-seed simulations replay
//! `==`-identically on any host.

use serde::{Deserialize, Serialize};

use rvisor_obs::{ArgValue, Trace};
use rvisor_types::{Error, Nanoseconds, Result};

/// Default per-chunk framing overhead: Ethernet (14) + IPv4 (20) + TCP (32,
/// with timestamps) + FCS (4) + preamble/IFG (8 + 12) ≈ 90 bytes per MTU.
pub const DEFAULT_CHUNK_OVERHEAD: u64 = 90;

/// Named, validated parameters of a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricParams {
    /// Line rate of every host NIC, in bytes per second.
    pub nic_bytes_per_second: u64,
    /// Aggregate bandwidth of the shared backbone, in bytes per second.
    pub backbone_bytes_per_second: u64,
    /// One-way propagation latency between any two endpoints.
    pub latency: Nanoseconds,
    /// Maximum payload bytes per on-wire chunk (the MTU).
    pub mtu: u64,
    /// Framing overhead added to every chunk.
    pub chunk_overhead: u64,
}

impl FabricParams {
    /// A 10 Gbit/s-NIC datacenter with a 40 Gbit/s backbone, 50 µs latency
    /// and jumbo frames.
    pub fn datacenter() -> Self {
        FabricParams {
            nic_bytes_per_second: 1_250_000_000,
            backbone_bytes_per_second: 5_000_000_000,
            latency: Nanoseconds::from_micros(50),
            mtu: 9000,
            chunk_overhead: DEFAULT_CHUNK_OVERHEAD,
        }
    }

    /// A gigabit office LAN: 1 Gbit/s NICs sharing a 1 Gbit/s uplink,
    /// 200 µs latency, standard 1500-byte MTU.
    pub fn office_lan() -> Self {
        FabricParams {
            nic_bytes_per_second: 125_000_000,
            backbone_bytes_per_second: 125_000_000,
            latency: Nanoseconds::from_micros(200),
            mtu: 1500,
            chunk_overhead: DEFAULT_CHUNK_OVERHEAD,
        }
    }

    /// A 100 Mbit/s WAN with 5 ms latency (cross-site DR traffic).
    pub fn wan() -> Self {
        FabricParams {
            nic_bytes_per_second: 12_500_000,
            backbone_bytes_per_second: 12_500_000,
            latency: Nanoseconds::from_millis(5),
            mtu: 1500,
            chunk_overhead: DEFAULT_CHUNK_OVERHEAD,
        }
    }

    /// Validate the parameters: bandwidths and MTU must be non-zero, and the
    /// MTU must exceed the per-chunk overhead (otherwise goodput is zero or
    /// negative and transfer times diverge).
    pub fn validate(&self) -> Result<()> {
        if self.nic_bytes_per_second == 0 {
            return Err(Error::Net("fabric NIC bandwidth must be non-zero".into()));
        }
        if self.backbone_bytes_per_second == 0 {
            return Err(Error::Net(
                "fabric backbone bandwidth must be non-zero".into(),
            ));
        }
        if self.mtu == 0 {
            return Err(Error::Net("fabric MTU must be non-zero".into()));
        }
        if self.chunk_overhead >= self.mtu {
            return Err(Error::Net(format!(
                "chunk overhead ({}) must be smaller than the MTU ({})",
                self.chunk_overhead, self.mtu
            )));
        }
        Ok(())
    }

    /// The bottleneck rate a single transfer serializes at: the slower of a
    /// NIC and the backbone (both endpoints' NICs are identical).
    pub fn bottleneck_bytes_per_second(&self) -> u64 {
        self.nic_bytes_per_second
            .min(self.backbone_bytes_per_second)
    }

    /// Bytes that actually cross the wire for a `payload`-byte transfer:
    /// payload plus per-chunk framing for `ceil(payload / mtu)` chunks.
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        let chunks = payload.div_ceil(self.mtu.max(1));
        payload.saturating_add(chunks.saturating_mul(self.chunk_overhead))
    }

    /// Time for `payload` bytes to cross an idle fabric (chunked
    /// serialization at the bottleneck rate, plus one propagation latency).
    pub fn transfer_time(&self, payload: u64) -> Nanoseconds {
        self.latency
            .saturating_add(self.serialization_time(payload))
    }

    /// Serialization component of [`Self::transfer_time`] (no propagation).
    pub fn serialization_time(&self, payload: u64) -> Nanoseconds {
        self.serialization_time_wire(self.wire_bytes(payload))
    }

    /// Time for `wire` already-framed bytes to serialize at the bottleneck
    /// rate (the striped-transfer path sums per-stream framing first).
    pub fn serialization_time_wire(&self, wire: u64) -> Nanoseconds {
        let rate = self.bottleneck_bytes_per_second().max(1);
        Nanoseconds(((wire as u128 * 1_000_000_000) / rate as u128) as u64)
    }
}

/// One endpoint's NIC: a busy-until mark plus traffic counters.
#[derive(Debug, Clone, Copy, Default)]
struct Nic {
    free_at: Nanoseconds,
    bytes_sent: u64,
    bytes_received: u64,
}

/// A shared datacenter fabric connecting `n` endpoints.
///
/// Endpoints are dense indices `0..n` (the orchestrator maps host ids onto
/// them; by convention the DR target rides along as one extra endpoint).
/// All state is integer nanoseconds, so a run's transfer timeline is a pure
/// function of the call sequence — deterministic replay for free.
#[derive(Debug, Clone)]
pub struct Fabric {
    params: FabricParams,
    nics: Vec<Nic>,
    backbone_free_at: Nanoseconds,
    bytes_carried: u64,
    wire_bytes_carried: u64,
    transfers: u64,
    trace: Trace,
}

impl Fabric {
    /// Create a fabric with `endpoints` idle NICs.
    pub fn new(endpoints: usize, params: FabricParams) -> Result<Self> {
        params.validate()?;
        if endpoints < 2 {
            return Err(Error::Net("a fabric needs at least two endpoints".into()));
        }
        Ok(Fabric {
            params,
            nics: vec![Nic::default(); endpoints],
            backbone_free_at: Nanoseconds::ZERO,
            bytes_carried: 0,
            wire_bytes_carried: 0,
            transfers: 0,
            trace: Trace::off(),
        })
    }

    /// Attach a trace: every subsequent transfer emits a span on the
    /// `fabric` track splitting queueing delay (NIC/backbone busy-wait)
    /// from serialization time, plus occupancy counter samples.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The attached trace (off by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_transfer_span(
        &self,
        name: &'static str,
        from: usize,
        to: usize,
        now: Nanoseconds,
        start: Nanoseconds,
        busy_until: Nanoseconds,
        arrival: Nanoseconds,
        payload: u64,
        wire: u64,
        streams: u64,
    ) {
        if !self.trace.is_on() {
            return;
        }
        let queue_wait = start.saturating_sub(now);
        let serialization = busy_until.saturating_sub(start);
        self.trace.span(
            "fabric",
            name,
            now,
            arrival,
            &[
                ("from", ArgValue::U64(from as u64)),
                ("to", ArgValue::U64(to as u64)),
                ("payload", ArgValue::U64(payload)),
                ("wire", ArgValue::U64(wire)),
                ("streams", ArgValue::U64(streams)),
                ("queue_wait_ns", ArgValue::U64(queue_wait.as_nanos())),
                ("serialization_ns", ArgValue::U64(serialization.as_nanos())),
            ],
        );
        self.trace
            .observe("fabric.queue_wait_ns", queue_wait.as_nanos());
        self.trace
            .observe("fabric.serialization_ns", serialization.as_nanos());
        self.trace.add("fabric.transfers", 1);
        self.trace.add("fabric.payload_bytes", payload);
        self.trace.add("fabric.wire_bytes", wire);
        self.trace
            .counter("fabric", "bytes_carried", arrival, self.bytes_carried);
        self.trace.counter(
            "fabric",
            "wire_bytes_carried",
            arrival,
            self.wire_bytes_carried,
        );
    }

    /// The fabric's parameters.
    pub fn params(&self) -> FabricParams {
        self.params
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> usize {
        self.nics.len()
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total on-wire bytes carried (payload plus chunk framing).
    pub fn wire_bytes_carried(&self) -> u64 {
        self.wire_bytes_carried
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Busy-until mark of the shared backbone (the single spine of the
    /// degenerate topology — see [`FabricModel`](crate::FabricModel)).
    pub fn backbone_free_at(&self) -> Nanoseconds {
        self.backbone_free_at
    }

    /// Payload bytes sent by endpoint `i`.
    pub fn bytes_sent_by(&self, i: usize) -> u64 {
        self.nics.get(i).map_or(0, |n| n.bytes_sent)
    }

    /// Payload bytes received by endpoint `i`.
    pub fn bytes_received_by(&self, i: usize) -> u64 {
        self.nics.get(i).map_or(0, |n| n.bytes_received)
    }

    fn check_pair(&self, from: usize, to: usize) -> Result<()> {
        if from == to {
            return Err(Error::Net(format!(
                "fabric transfer from endpoint {from} to itself"
            )));
        }
        if from >= self.nics.len() || to >= self.nics.len() {
            return Err(Error::Net(format!(
                "fabric endpoint out of range: {from} -> {to} with {} endpoints",
                self.nics.len()
            )));
        }
        Ok(())
    }

    /// Earliest instant a transfer between `from` and `to` could start:
    /// both NICs and the backbone must be free.
    pub fn path_free_at(&self, from: usize, to: usize) -> Result<Nanoseconds> {
        self.check_pair(from, to)?;
        Ok(self.nics[from]
            .free_at
            .max(self.nics[to].free_at)
            .max(self.backbone_free_at))
    }

    /// Move `payload` bytes from endpoint `from` to endpoint `to`, starting
    /// no earlier than `now`; returns the simulated arrival time.
    ///
    /// The transfer occupies the source NIC, the backbone and the
    /// destination NIC for its whole serialization window (store-and-forward
    /// occupancy — see the module docs), then pays one propagation latency.
    pub fn transfer(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        payload: u64,
    ) -> Result<Nanoseconds> {
        self.check_pair(from, to)?;
        let start = now.max(self.path_free_at(from, to)?);
        let busy_until = start.saturating_add(self.params.serialization_time(payload));
        let wire = self.params.wire_bytes(payload);
        self.nics[from].free_at = busy_until;
        self.nics[to].free_at = busy_until;
        self.backbone_free_at = busy_until;
        self.nics[from].bytes_sent += payload;
        self.nics[to].bytes_received += payload;
        self.bytes_carried += payload;
        self.wire_bytes_carried += wire;
        self.transfers += 1;
        let arrival = busy_until.saturating_add(self.params.latency);
        self.emit_transfer_span(
            "transfer", from, to, now, start, busy_until, arrival, payload, wire, 1,
        );
        Ok(arrival)
    }

    /// Move a striped burst of parallel chunk streams from `from` to `to`,
    /// starting no earlier than `now`; `stripes[i]` is stream `i`'s payload
    /// bytes. Returns the arrival time of the *whole* burst.
    ///
    /// The streams fairly share the path (see the module docs): the burst
    /// occupies both NICs and the backbone until the *sum* of every
    /// stream's wire bytes has serialized at the bottleneck rate, then pays
    /// one propagation latency. Each stream is framed separately
    /// (`ceil(payload / mtu)` chunks per stream), so **on this single-spine
    /// model** splitting a burst never makes it faster and usually makes it
    /// marginally slower — the honest cost of multi-stream migration when
    /// every stream shares one backbone. On the multi-spine
    /// [`ClosFabric`](crate::ClosFabric) the same call *is* faster
    /// cross-rack, because ECMP hashing spreads the streams over
    /// independent spine paths.
    ///
    /// `transfer_striped(&[b])` is exactly [`Fabric::transfer`] of `b`.
    pub fn transfer_striped(
        &mut self,
        from: usize,
        to: usize,
        now: Nanoseconds,
        stripes: &[u64],
    ) -> Result<Nanoseconds> {
        self.check_pair(from, to)?;
        let start = now.max(self.path_free_at(from, to)?);
        let mut payload_total = 0u64;
        let mut wire_total = 0u64;
        let mut active_streams = 0u64;
        for &payload in stripes {
            payload_total = payload_total.saturating_add(payload);
            wire_total = wire_total.saturating_add(self.params.wire_bytes(payload));
            if payload > 0 {
                active_streams += 1;
            }
        }
        let busy_until = start.saturating_add(self.params.serialization_time_wire(wire_total));
        self.nics[from].free_at = busy_until;
        self.nics[to].free_at = busy_until;
        self.backbone_free_at = busy_until;
        self.nics[from].bytes_sent += payload_total;
        self.nics[to].bytes_received += payload_total;
        self.bytes_carried += payload_total;
        self.wire_bytes_carried += wire_total;
        self.transfers += active_streams.max(1);
        let arrival = busy_until.saturating_add(self.params.latency);
        self.emit_transfer_span(
            "transfer-striped",
            from,
            to,
            now,
            start,
            busy_until,
            arrival,
            payload_total,
            wire_total,
            active_streams.max(1),
        );
        Ok(arrival)
    }

    /// Reset all busy-time marks and counters (between benchmark runs).
    pub fn reset(&mut self) {
        for nic in &mut self.nics {
            *nic = Nic::default();
        }
        self.backbone_free_at = Nanoseconds::ZERO;
        self.bytes_carried = 0;
        self.wire_bytes_carried = 0;
        self.transfers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flat_params(bps: u64, mtu: u64) -> FabricParams {
        FabricParams {
            nic_bytes_per_second: bps,
            backbone_bytes_per_second: bps,
            latency: Nanoseconds::ZERO,
            mtu,
            chunk_overhead: 100,
        }
    }

    #[test]
    fn params_validation_rejects_degenerate_values() {
        assert!(FabricParams::datacenter().validate().is_ok());
        assert!(FabricParams::office_lan().validate().is_ok());
        assert!(FabricParams::wan().validate().is_ok());
        let mut p = FabricParams::datacenter();
        p.nic_bytes_per_second = 0;
        assert!(p.validate().is_err());
        let mut p = FabricParams::datacenter();
        p.backbone_bytes_per_second = 0;
        assert!(p.validate().is_err());
        let mut p = FabricParams::datacenter();
        p.mtu = 0;
        assert!(p.validate().is_err());
        let mut p = FabricParams::datacenter();
        p.chunk_overhead = p.mtu;
        assert!(p.validate().is_err());
        assert!(Fabric::new(1, FabricParams::datacenter()).is_err());
        assert!(Fabric::new(0, FabricParams::datacenter()).is_err());
    }

    #[test]
    fn mtu_chunking_taxes_transfers() {
        // 1 MB at 1 MB/s: exactly 1 s of payload plus chunk framing.
        let p = flat_params(1_000_000, 1000);
        // 1000 chunks x 100 overhead = 100_000 extra bytes = 0.1 s.
        assert_eq!(p.wire_bytes(1_000_000), 1_100_000);
        assert_eq!(p.transfer_time(1_000_000), Nanoseconds(1_100_000_000));
        // Jumbo frames shrink the tax.
        let jumbo = flat_params(1_000_000, 9000);
        assert!(jumbo.transfer_time(1_000_000) < p.transfer_time(1_000_000));
        // Zero payload still needs no chunks.
        assert_eq!(p.wire_bytes(0), 0);
    }

    #[test]
    fn shared_backbone_serializes_disjoint_pairs() {
        let mut f = Fabric::new(4, flat_params(1_000_000, 1_000_000)).unwrap();
        // 0->1 and 2->3 share no NIC, but do share the backbone.
        let a = f.transfer(0, 1, Nanoseconds::ZERO, 500_000).unwrap();
        let b = f.transfer(2, 3, Nanoseconds::ZERO, 500_000).unwrap();
        assert!(b > a, "disjoint pairs must still contend on the backbone");
        assert_eq!(f.transfers(), 2);
        assert_eq!(f.bytes_carried(), 1_000_000);
        assert!(f.wire_bytes_carried() > f.bytes_carried());
        assert_eq!(f.bytes_sent_by(0), 500_000);
        assert_eq!(f.bytes_received_by(3), 500_000);
    }

    #[test]
    fn wider_backbone_still_serializes_nic_sharers() {
        let mut params = flat_params(1_000_000, 1_000_000);
        params.backbone_bytes_per_second = 100_000_000;
        let mut f = Fabric::new(3, params).unwrap();
        let a = f.transfer(0, 1, Nanoseconds::ZERO, 500_000).unwrap();
        // Same source NIC: must queue even though the backbone is fast.
        let b = f.transfer(0, 2, Nanoseconds::ZERO, 500_000).unwrap();
        assert!(b > a);
    }

    #[test]
    fn invalid_endpoints_are_rejected() {
        let mut f = Fabric::new(2, flat_params(1_000_000, 1500)).unwrap();
        assert!(f.transfer(0, 0, Nanoseconds::ZERO, 1).is_err());
        assert!(f.transfer(0, 2, Nanoseconds::ZERO, 1).is_err());
        assert!(f.path_free_at(5, 0).is_err());
        f.transfer(0, 1, Nanoseconds::ZERO, 123).unwrap();
        f.reset();
        assert_eq!(f.bytes_carried(), 0);
        assert_eq!(f.path_free_at(0, 1).unwrap(), Nanoseconds::ZERO);
    }

    #[test]
    fn striped_transfer_matches_single_stream_for_one_stripe() {
        let params = FabricParams::office_lan();
        let mut a = Fabric::new(2, params).unwrap();
        let mut b = Fabric::new(2, params).unwrap();
        let single = a.transfer(0, 1, Nanoseconds::ZERO, 3_000_000).unwrap();
        let striped = b
            .transfer_striped(0, 1, Nanoseconds::ZERO, &[3_000_000])
            .unwrap();
        assert_eq!(single, striped);
        assert_eq!(a.bytes_carried(), b.bytes_carried());
        assert_eq!(a.wire_bytes_carried(), b.wire_bytes_carried());
        assert_eq!(a.transfers(), b.transfers());
    }

    #[test]
    fn striping_pays_per_stream_framing_and_never_beats_one_stream() {
        let params = FabricParams::office_lan();
        let mut one = Fabric::new(2, params).unwrap();
        let mut four = Fabric::new(2, params).unwrap();
        let total = 4_000_001u64; // deliberately not a multiple of 4 or MTU
        let single = one
            .transfer_striped(0, 1, Nanoseconds::ZERO, &[total])
            .unwrap();
        let split = [total / 4, total / 4, total / 4, total - 3 * (total / 4)];
        let striped = four
            .transfer_striped(0, 1, Nanoseconds::ZERO, &split)
            .unwrap();
        assert!(
            striped >= single,
            "fair-share striping must not beat the aggregate stream"
        );
        // Same payload, more framing on the wire.
        assert_eq!(one.bytes_carried(), four.bytes_carried());
        assert!(four.wire_bytes_carried() >= one.wire_bytes_carried());
        assert_eq!(four.transfers(), 4);
        // The striped burst leaves the same kind of busy marks: later
        // traffic queues behind it.
        let later = four.transfer(0, 1, Nanoseconds::ZERO, 1).unwrap();
        assert!(later > striped.saturating_sub(params.latency));
        // Empty stripes contribute nothing but the call still counts once.
        let mut empty = Fabric::new(2, params).unwrap();
        let done = empty
            .transfer_striped(0, 1, Nanoseconds::ZERO, &[0, 0])
            .unwrap();
        assert_eq!(done, params.latency);
        assert!(empty
            .transfer_striped(0, 0, Nanoseconds::ZERO, &[1])
            .is_err());
    }

    proptest! {
        /// Arrival times are monotone along any call sequence on one pair,
        /// and replaying the same sequence reproduces identical times.
        #[test]
        fn transfers_are_monotonic_and_deterministic(
            sizes in proptest::collection::vec(0u64..10_000_000, 1..16)
        ) {
            let run = || {
                let mut f = Fabric::new(2, FabricParams::office_lan()).unwrap();
                let mut times = Vec::new();
                for &s in &sizes {
                    times.push(f.transfer(0, 1, Nanoseconds::ZERO, s).unwrap());
                }
                times
            };
            let first = run();
            for w in first.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
            prop_assert_eq!(&first, &run());
        }

        /// The fabric is never faster than a bare link of the bottleneck
        /// bandwidth: chunk framing only adds time.
        #[test]
        fn fabric_never_beats_the_bare_link(bytes in 1u64..(1 << 28)) {
            let p = FabricParams::office_lan();
            let bare = crate::LinkModel {
                bytes_per_second: p.bottleneck_bytes_per_second(),
                latency: p.latency,
            };
            prop_assert!(p.transfer_time(bytes) >= bare.transfer_time(bytes));
        }
    }
}
