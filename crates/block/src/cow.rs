//! Copy-on-write overlays.
//!
//! A [`CowOverlay`] presents a writable disk whose unmodified sectors are
//! served from a shared, read-only *base* image; written sectors are stored
//! in a private overlay map. This is the mechanism behind:
//!
//! * instant VM provisioning from golden templates (experiment E9) — the
//!   clone costs O(1) instead of O(image size);
//! * disk snapshots — freeze the current overlay as a new base and stack a
//!   fresh overlay on top.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rvisor_types::{Error, Result};

use crate::backend::{validate_request, BlockBackend, BlockStats, SECTOR_SIZE};

/// A copy-on-write overlay over a shared base backend.
pub struct CowOverlay {
    base: Arc<Mutex<dyn BlockBackend>>,
    overlay: BTreeMap<u64, Box<[u8]>>,
    capacity_sectors: u64,
    stats: BlockStats,
}

impl std::fmt::Debug for CowOverlay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CowOverlay")
            .field("capacity_sectors", &self.capacity_sectors)
            .field("overlay_sectors", &self.overlay.len())
            .finish()
    }
}

impl CowOverlay {
    /// Create an overlay on top of `base`. The overlay inherits the base's capacity.
    pub fn new(base: Arc<Mutex<dyn BlockBackend>>) -> Self {
        let capacity_sectors = base.lock().capacity_sectors();
        CowOverlay {
            base,
            overlay: BTreeMap::new(),
            capacity_sectors,
            stats: BlockStats::default(),
        }
    }

    /// Number of sectors that have been privately written (overlay footprint).
    pub fn overlay_sectors(&self) -> u64 {
        self.overlay.len() as u64
    }

    /// Bytes of private overlay storage in use.
    pub fn overlay_bytes(&self) -> u64 {
        self.overlay_sectors() * SECTOR_SIZE
    }

    /// Whether a sector has been privately written.
    pub fn is_sector_dirty(&self, sector: u64) -> bool {
        self.overlay.contains_key(&sector)
    }

    /// Discard all private writes, reverting to the base image.
    pub fn revert(&mut self) {
        self.overlay.clear();
    }

    /// Flatten the overlay into a standalone [`crate::RamDisk`]-style byte
    /// image (base plus private writes), e.g. for exporting a template.
    pub fn flatten(&mut self) -> Result<Vec<u8>> {
        let mut out = vec![0u8; (self.capacity_sectors * SECTOR_SIZE) as usize];
        {
            let mut base = self.base.lock();
            base.read_sectors(0, &mut out)?;
        }
        for (&sector, data) in &self.overlay {
            let off = (sector * SECTOR_SIZE) as usize;
            out[off..off + SECTOR_SIZE as usize].copy_from_slice(data);
        }
        Ok(out)
    }
}

impl BlockBackend for CowOverlay {
    fn capacity_sectors(&self) -> u64 {
        self.capacity_sectors
    }

    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<()> {
        validate_request(self.capacity_sectors, sector, buf.len())?;
        let sectors = buf.len() as u64 / SECTOR_SIZE;
        for i in 0..sectors {
            let s = sector + i;
            let chunk = &mut buf[(i * SECTOR_SIZE) as usize..((i + 1) * SECTOR_SIZE) as usize];
            if let Some(data) = self.overlay.get(&s) {
                chunk.copy_from_slice(data);
            } else {
                self.base.lock().read_sectors(s, chunk)?;
            }
        }
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    fn write_sectors(&mut self, sector: u64, buf: &[u8]) -> Result<()> {
        validate_request(self.capacity_sectors, sector, buf.len())?;
        let sectors = buf.len() as u64 / SECTOR_SIZE;
        for i in 0..sectors {
            let s = sector + i;
            let chunk = &buf[(i * SECTOR_SIZE) as usize..((i + 1) * SECTOR_SIZE) as usize];
            self.overlay.insert(s, chunk.to_vec().into_boxed_slice());
        }
        self.stats.record_write(buf.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.stats.record_flush();
        Ok(())
    }

    fn stats(&self) -> BlockStats {
        self.stats
    }
}

/// A convenience constructor: wrap a backend in `Arc<Mutex<...>>` for sharing
/// between several overlays.
pub fn share<B: BlockBackend + 'static>(backend: B) -> Arc<Mutex<dyn BlockBackend>> {
    Arc::new(Mutex::new(backend))
}

/// Validate that a stack of overlays does not exceed a sane depth.
///
/// Deep overlay chains degrade read performance linearly; the image library
/// refuses to build chains deeper than this.
pub const MAX_OVERLAY_DEPTH: usize = 16;

/// Error helper for overlay-depth violations.
pub fn depth_error(depth: usize) -> Error {
    Error::Block(format!(
        "overlay chain depth {depth} exceeds the maximum of {MAX_OVERLAY_DEPTH}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ram::RamDisk;
    use rvisor_types::ByteSize;

    fn base_with_pattern() -> Arc<Mutex<dyn BlockBackend>> {
        let mut disk = RamDisk::new(ByteSize::kib(8));
        disk.write_sectors(0, &vec![0x11u8; 512]).unwrap();
        disk.write_sectors(5, &vec![0x55u8; 512]).unwrap();
        share(disk)
    }

    #[test]
    fn reads_fall_through_to_base() {
        let base = base_with_pattern();
        let mut cow = CowOverlay::new(Arc::clone(&base));
        let mut buf = vec![0u8; 512];
        cow.read_sectors(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x11));
        cow.read_sectors(5, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x55));
        assert_eq!(cow.overlay_sectors(), 0);
    }

    #[test]
    fn writes_stay_private() {
        let base = base_with_pattern();
        let mut cow_a = CowOverlay::new(Arc::clone(&base));
        let mut cow_b = CowOverlay::new(Arc::clone(&base));

        cow_a.write_sectors(0, &vec![0xaau8; 512]).unwrap();
        let mut buf = vec![0u8; 512];
        cow_a.read_sectors(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xaa));
        // The sibling overlay and the base are unaffected.
        cow_b.read_sectors(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x11));
        base.lock().read_sectors(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x11));

        assert_eq!(cow_a.overlay_sectors(), 1);
        assert_eq!(cow_a.overlay_bytes(), 512);
        assert!(cow_a.is_sector_dirty(0));
        assert!(!cow_a.is_sector_dirty(1));
    }

    #[test]
    fn multi_sector_requests_split_correctly() {
        let base = base_with_pattern();
        let mut cow = CowOverlay::new(base);
        // Write only the middle sector of a 3-sector read range.
        cow.write_sectors(1, &vec![0x22u8; 512]).unwrap();
        let mut buf = vec![0u8; 3 * 512];
        cow.read_sectors(0, &mut buf).unwrap();
        assert!(buf[..512].iter().all(|&b| b == 0x11)); // from base
        assert!(buf[512..1024].iter().all(|&b| b == 0x22)); // from overlay
        assert!(buf[1024..].iter().all(|&b| b == 0x00)); // base zeroes
    }

    #[test]
    fn revert_discards_private_writes() {
        let base = base_with_pattern();
        let mut cow = CowOverlay::new(base);
        cow.write_sectors(0, &vec![0xffu8; 1024]).unwrap();
        assert_eq!(cow.overlay_sectors(), 2);
        cow.revert();
        assert_eq!(cow.overlay_sectors(), 0);
        let mut buf = vec![0u8; 512];
        cow.read_sectors(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x11));
    }

    #[test]
    fn flatten_merges_base_and_overlay() {
        let base = base_with_pattern();
        let mut cow = CowOverlay::new(base);
        cow.write_sectors(2, &vec![0x99u8; 512]).unwrap();
        let flat = cow.flatten().unwrap();
        assert_eq!(flat.len(), 8 * 1024);
        assert!(flat[..512].iter().all(|&b| b == 0x11));
        assert!(flat[2 * 512..3 * 512].iter().all(|&b| b == 0x99));
        assert!(flat[5 * 512..6 * 512].iter().all(|&b| b == 0x55));
    }

    #[test]
    fn bounds_respected_and_stats() {
        let base = base_with_pattern();
        let mut cow = CowOverlay::new(base);
        assert!(cow.write_sectors(100, &[0u8; 512]).is_err());
        cow.write_sectors(0, &[1u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        cow.read_sectors(0, &mut buf).unwrap();
        cow.flush().unwrap();
        let s = cow.stats();
        assert_eq!((s.reads, s.writes, s.flushes), (1, 1, 1));
        assert!(format!("{cow:?}").contains("overlay_sectors"));
    }

    #[test]
    fn stacked_overlays_compose() {
        let base = base_with_pattern();
        let mut level1 = CowOverlay::new(base);
        level1.write_sectors(3, &vec![0x33u8; 512]).unwrap();
        let shared1 = share(level1);
        let mut level2 = CowOverlay::new(shared1);
        level2.write_sectors(4, &vec![0x44u8; 512]).unwrap();

        let mut buf = vec![0u8; 512];
        level2.read_sectors(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x33)); // from level1
        level2.read_sectors(4, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x44)); // from level2
        level2.read_sectors(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x11)); // from base
    }
}
