//! The block-backend trait and shared I/O statistics.

use serde::{Deserialize, Serialize};

use rvisor_types::{Error, Result};

/// Sector size in bytes. Everything in the block layer is sector-addressed.
pub const SECTOR_SIZE: u64 = 512;

/// Cumulative I/O counters kept by every backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Flush requests.
    pub flushes: u64,
}

impl BlockStats {
    /// Record a read of `bytes`.
    pub fn record_read(&mut self, bytes: u64) {
        self.reads += 1;
        self.bytes_read += bytes;
    }

    /// Record a write of `bytes`.
    pub fn record_write(&mut self, bytes: u64) {
        self.writes += 1;
        self.bytes_written += bytes;
    }

    /// Record a flush.
    pub fn record_flush(&mut self) {
        self.flushes += 1;
    }
}

/// A sector-addressed block device backend.
///
/// Requests must be whole sectors; the device models (virtio-blk, the
/// emulated programmed-I/O disk) are responsible for assembling guest
/// requests into sector-aligned operations.
pub trait BlockBackend: Send {
    /// Capacity in sectors.
    fn capacity_sectors(&self) -> u64;

    /// Read `buf.len()` bytes (a whole number of sectors) starting at `sector`.
    ///
    /// **Contract:** on `Ok`, every byte of `buf` has been overwritten —
    /// sparse or hole-punching implementations must explicitly zero-fill
    /// unmapped ranges rather than skip them. Device models rely on this to
    /// reuse bounce buffers without re-zeroing between requests (virtio-blk
    /// does); a backend that leaves bytes untouched on success would leak a
    /// previous request's payload into the guest.
    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` (a whole number of sectors) starting at `sector`.
    fn write_sectors(&mut self, sector: u64, buf: &[u8]) -> Result<()>;

    /// Persist outstanding writes.
    fn flush(&mut self) -> Result<()>;

    /// I/O counters.
    fn stats(&self) -> BlockStats;

    /// Whether the backend rejects writes.
    fn is_read_only(&self) -> bool {
        false
    }

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.capacity_sectors() * SECTOR_SIZE
    }
}

/// Validate that a request is sector-aligned and inside the device.
///
/// Shared by every backend implementation so they all reject malformed
/// requests identically.
pub fn validate_request(capacity_sectors: u64, sector: u64, len: usize) -> Result<()> {
    if len == 0 || !(len as u64).is_multiple_of(SECTOR_SIZE) {
        return Err(Error::Block(format!(
            "request length {len} is not a positive multiple of the sector size"
        )));
    }
    let sectors = len as u64 / SECTOR_SIZE;
    match sector.checked_add(sectors) {
        Some(end) if end <= capacity_sectors => Ok(()),
        _ => Err(Error::Block(format!(
            "request for {sectors} sectors at sector {sector} exceeds capacity {capacity_sectors}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = BlockStats::default();
        s.record_read(512);
        s.record_read(1024);
        s.record_write(2048);
        s.record_flush();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 1536);
        assert_eq!(s.bytes_written, 2048);
        assert_eq!(s.flushes, 1);
    }

    #[test]
    fn request_validation() {
        assert!(validate_request(100, 0, 512).is_ok());
        assert!(validate_request(100, 99, 512).is_ok());
        assert!(validate_request(100, 0, 100 * 512).is_ok());
        assert!(validate_request(100, 100, 512).is_err());
        assert!(validate_request(100, 99, 1024).is_err());
        assert!(validate_request(100, 0, 0).is_err());
        assert!(validate_request(100, 0, 100).is_err());
        assert!(validate_request(100, u64::MAX, 512).is_err());
    }
}
