//! A host-file-backed block device.
//!
//! Used by the examples that want disk contents to survive the process, and
//! by the provisioning experiment to measure full-image copies against real
//! file I/O. The file is created sparse and extended to the requested size.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rvisor_types::{ByteSize, Error, Result};

use crate::backend::{validate_request, BlockBackend, BlockStats, SECTOR_SIZE};

/// A block device stored in a host file.
#[derive(Debug)]
pub struct FileDisk {
    file: File,
    path: PathBuf,
    capacity_sectors: u64,
    stats: BlockStats,
}

impl FileDisk {
    /// Create (or truncate) a disk image at `path` of `size` bytes.
    pub fn create(path: impl AsRef<Path>, size: ByteSize) -> Result<Self> {
        let sectors = size.as_u64().div_ceil(SECTOR_SIZE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        file.set_len(sectors * SECTOR_SIZE)?;
        Ok(FileDisk {
            file,
            path: path.as_ref().to_path_buf(),
            capacity_sectors: sectors,
            stats: BlockStats::default(),
        })
    }

    /// Open an existing disk image.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        if len % SECTOR_SIZE != 0 {
            return Err(Error::Block(format!(
                "image {} has length {len}, not a multiple of the sector size",
                path.as_ref().display()
            )));
        }
        Ok(FileDisk {
            file,
            path: path.as_ref().to_path_buf(),
            capacity_sectors: len / SECTOR_SIZE,
            stats: BlockStats::default(),
        })
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl BlockBackend for FileDisk {
    fn capacity_sectors(&self) -> u64 {
        self.capacity_sectors
    }

    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<()> {
        validate_request(self.capacity_sectors, sector, buf.len())?;
        self.file.seek(SeekFrom::Start(sector * SECTOR_SIZE))?;
        self.file.read_exact(buf)?;
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    fn write_sectors(&mut self, sector: u64, buf: &[u8]) -> Result<()> {
        validate_request(self.capacity_sectors, sector, buf.len())?;
        self.file.seek(SeekFrom::Start(sector * SECTOR_SIZE))?;
        self.file.write_all(buf)?;
        self.stats.record_write(buf.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.stats.record_flush();
        Ok(())
    }

    fn stats(&self) -> BlockStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rvisor-filedisk-{}-{name}.img", std::process::id()));
        p
    }

    #[test]
    fn create_write_reopen_read() {
        let path = temp_path("roundtrip");
        {
            let mut disk = FileDisk::create(&path, ByteSize::kib(8)).unwrap();
            assert_eq!(disk.capacity_sectors(), 16);
            disk.write_sectors(3, &vec![0x7fu8; 512]).unwrap();
            disk.flush().unwrap();
            assert_eq!(disk.path(), path.as_path());
        }
        {
            let mut disk = FileDisk::open(&path).unwrap();
            let mut buf = vec![0u8; 512];
            disk.read_sectors(3, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0x7f));
            // Untouched sectors read back as zero.
            disk.read_sectors(0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_missing_file_fails() {
        assert!(FileDisk::open("/nonexistent/rvisor-disk.img").is_err());
    }

    #[test]
    fn open_misaligned_file_fails() {
        let path = temp_path("misaligned");
        std::fs::write(&path, vec![0u8; 700]).unwrap();
        assert!(FileDisk::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bounds_enforced() {
        let path = temp_path("bounds");
        let mut disk = FileDisk::create(&path, ByteSize::kib(1)).unwrap();
        assert!(disk.write_sectors(2, &[0u8; 512]).is_err());
        assert!(disk.read_sectors(0, &mut [0u8; 513]).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
