//! Storage service-time modelling.
//!
//! The virtio-vs-emulated-device experiments need both device models to sit
//! on top of *identical* storage behaviour, so the difference they measure is
//! purely the cost of the I/O path (exits, descriptor processing,
//! notification suppression). [`ThrottledDisk`] wraps any backend with a
//! simple service-time model — fixed per-request latency plus a bandwidth
//! term — and accounts the simulated busy time without ever sleeping.

use serde::{Deserialize, Serialize};

use rvisor_types::{Nanoseconds, Result};

use crate::backend::{BlockBackend, BlockStats};

/// A storage service-time model: `latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageModel {
    /// Fixed per-request latency.
    pub per_request: Nanoseconds,
    /// Sustained bandwidth in bytes per second.
    pub bytes_per_second: u64,
}

impl StorageModel {
    /// A model resembling a SATA SSD: 80 µs per request, 500 MB/s.
    pub fn ssd() -> Self {
        StorageModel {
            per_request: Nanoseconds::from_micros(80),
            bytes_per_second: 500_000_000,
        }
    }

    /// A model resembling a 7200 RPM disk: 6 ms per request, 150 MB/s.
    pub fn hdd() -> Self {
        StorageModel {
            per_request: Nanoseconds::from_millis(6),
            bytes_per_second: 150_000_000,
        }
    }

    /// A model resembling an NVMe device: 12 µs per request, 3 GB/s.
    pub fn nvme() -> Self {
        StorageModel {
            per_request: Nanoseconds::from_micros(12),
            bytes_per_second: 3_000_000_000,
        }
    }

    /// Service time for a request of `bytes`.
    pub fn service_time(&self, bytes: u64) -> Nanoseconds {
        let transfer_ns = bytes
            .saturating_mul(1_000_000_000)
            .checked_div(self.bytes_per_second)
            .unwrap_or(0);
        self.per_request.saturating_add(Nanoseconds(transfer_ns))
    }
}

/// A backend wrapper that accounts simulated service time for each request.
pub struct ThrottledDisk<B: BlockBackend> {
    inner: B,
    model: StorageModel,
    busy: Nanoseconds,
    requests: u64,
}

impl<B: BlockBackend> std::fmt::Debug for ThrottledDisk<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThrottledDisk")
            .field("model", &self.model)
            .field("busy", &self.busy)
            .field("requests", &self.requests)
            .finish()
    }
}

impl<B: BlockBackend> ThrottledDisk<B> {
    /// Wrap `inner` with `model`.
    pub fn new(inner: B, model: StorageModel) -> Self {
        ThrottledDisk {
            inner,
            model,
            busy: Nanoseconds::ZERO,
            requests: 0,
        }
    }

    /// Total simulated time the storage device has spent servicing requests.
    pub fn busy_time(&self) -> Nanoseconds {
        self.busy
    }

    /// Number of requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The service-time model in use.
    pub fn model(&self) -> StorageModel {
        self.model
    }

    /// Access the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn account(&mut self, bytes: u64) {
        self.busy = self.busy.saturating_add(self.model.service_time(bytes));
        self.requests += 1;
    }
}

impl<B: BlockBackend> BlockBackend for ThrottledDisk<B> {
    fn capacity_sectors(&self) -> u64 {
        self.inner.capacity_sectors()
    }

    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_sectors(sector, buf)?;
        self.account(buf.len() as u64);
        Ok(())
    }

    fn write_sectors(&mut self, sector: u64, buf: &[u8]) -> Result<()> {
        self.inner.write_sectors(sector, buf)?;
        self.account(buf.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        self.account(0);
        Ok(())
    }

    fn stats(&self) -> BlockStats {
        self.inner.stats()
    }

    fn is_read_only(&self) -> bool {
        self.inner.is_read_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ram::RamDisk;
    use rvisor_types::ByteSize;

    #[test]
    fn service_time_components() {
        let m = StorageModel {
            per_request: Nanoseconds::from_micros(100),
            bytes_per_second: 1_000_000,
        };
        // 1000 bytes at 1 MB/s = 1 ms transfer + 100 µs latency.
        assert_eq!(m.service_time(1000), Nanoseconds::from_micros(1100));
        assert_eq!(m.service_time(0), Nanoseconds::from_micros(100));
        let zero_bw = StorageModel {
            per_request: Nanoseconds::from_micros(5),
            bytes_per_second: 0,
        };
        assert_eq!(zero_bw.service_time(4096), Nanoseconds::from_micros(5));
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        assert!(StorageModel::nvme().per_request < StorageModel::ssd().per_request);
        assert!(StorageModel::ssd().per_request < StorageModel::hdd().per_request);
        assert!(StorageModel::nvme().bytes_per_second > StorageModel::hdd().bytes_per_second);
    }

    #[test]
    fn busy_time_accumulates() {
        let model = StorageModel {
            per_request: Nanoseconds::from_micros(10),
            bytes_per_second: 512_000_000,
        };
        let mut disk = ThrottledDisk::new(RamDisk::new(ByteSize::kib(64)), model);
        let buf = vec![0u8; 4096];
        for i in 0..8 {
            disk.write_sectors(i * 8, &buf).unwrap();
        }
        assert_eq!(disk.requests(), 8);
        let expected_per_req = model.service_time(4096);
        assert_eq!(
            disk.busy_time(),
            Nanoseconds(expected_per_req.as_nanos() * 8)
        );
        assert_eq!(disk.stats().writes, 8);
        assert_eq!(disk.model(), model);
        assert_eq!(disk.capacity_sectors(), 128);
        assert!(!disk.is_read_only());
        assert!(format!("{disk:?}").contains("requests"));
    }

    #[test]
    fn errors_do_not_consume_service_time() {
        let mut disk = ThrottledDisk::new(RamDisk::new(ByteSize::kib(1)), StorageModel::ssd());
        assert!(disk.write_sectors(1000, &[0u8; 512]).is_err());
        assert_eq!(disk.busy_time(), Nanoseconds::ZERO);
        assert_eq!(disk.requests(), 0);
        disk.flush().unwrap();
        assert_eq!(disk.requests(), 1);
        assert!(disk.inner().stats().flushes == 1);
    }
}
