//! A fault-injecting block backend for failure-path testing.
//!
//! Storage fails: disks develop bad sectors, controllers time out, RAID
//! rebuilds surface latent read errors. A VMM's device models and the guests
//! above them have to surface those failures cleanly (an I/O error completion
//! in the virtqueue used ring) rather than corrupting data or wedging the
//! queue. [`FaultyDisk`] wraps any [`BlockBackend`] and injects failures
//! according to a deterministic [`FaultPlan`], so the failure paths of the
//! virtio-blk device, the emulated disk and the snapshot/backup code can be
//! exercised in ordinary unit tests and in the failure-injection suite.
//!
//! Determinism matters: a probabilistic fault is driven by a seeded
//! linear-congruential generator, so a failing test case reproduces exactly.

use crate::backend::{BlockBackend, BlockStats, SECTOR_SIZE};
use rvisor_types::{Error, Result};

/// Which operations a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Only reads fail.
    Read,
    /// Only writes fail.
    Write,
    /// Reads and writes fail (flushes are never failed by range rules).
    Any,
}

impl FaultKind {
    fn matches(self, is_write: bool) -> bool {
        match self {
            FaultKind::Read => !is_write,
            FaultKind::Write => is_write,
            FaultKind::Any => true,
        }
    }
}

/// A deterministic description of which requests fail.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail every request touching any sector in these inclusive ranges
    /// (models bad sectors / a failed stripe).
    bad_ranges: Vec<(u64, u64, FaultKind)>,
    /// Fail the n-th request (1-based, counted across reads and writes).
    fail_on_request: Vec<u64>,
    /// Probability (0.0–1.0) that any given request fails transiently.
    transient_rate: f64,
    /// Seed for the transient-failure generator.
    seed: u64,
    /// After this many failures the disk "recovers" and stops injecting
    /// (0 = never recovers).
    recover_after_failures: u64,
}

impl FaultPlan {
    /// A plan that never fails anything.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fail every request overlapping `[first_sector, last_sector]`.
    pub fn with_bad_range(mut self, first_sector: u64, last_sector: u64, kind: FaultKind) -> Self {
        self.bad_ranges
            .push((first_sector, last_sector.max(first_sector), kind));
        self
    }

    /// Fail the `n`-th request (1-based) regardless of its target.
    pub fn with_failure_on_request(mut self, n: u64) -> Self {
        self.fail_on_request.push(n);
        self
    }

    /// Fail requests at random with probability `rate`, driven by `seed`.
    pub fn with_transient_rate(mut self, rate: f64, seed: u64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self.seed = seed;
        self
    }

    /// Stop injecting after `n` failures (models a transient outage that heals).
    pub fn with_recovery_after(mut self, n: u64) -> Self {
        self.recover_after_failures = n;
        self
    }
}

/// Counters describing injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests that were allowed through to the inner backend.
    pub passed: u64,
    /// Requests failed by a bad-sector range rule.
    pub range_failures: u64,
    /// Requests failed by an n-th-request rule.
    pub scheduled_failures: u64,
    /// Requests failed by the transient-rate rule.
    pub transient_failures: u64,
}

impl FaultStats {
    /// Total injected failures.
    pub fn total_failures(&self) -> u64 {
        self.range_failures + self.scheduled_failures + self.transient_failures
    }
}

/// A [`BlockBackend`] wrapper that injects failures per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyDisk<B: BlockBackend> {
    inner: B,
    plan: FaultPlan,
    requests_seen: u64,
    rng_state: u64,
    stats: FaultStats,
}

impl<B: BlockBackend> FaultyDisk<B> {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let rng_state = plan.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        FaultyDisk {
            inner,
            plan,
            requests_seen: 0,
            rng_state,
            stats: FaultStats::default(),
        }
    }

    /// Injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// Access the wrapped backend (e.g. to verify its contents in tests).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Consume the wrapper and return the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn healed(&self) -> bool {
        self.plan.recover_after_failures > 0
            && self.stats.total_failures() >= self.plan.recover_after_failures
    }

    fn next_random_unit(&mut self) -> f64 {
        // Numerical Recipes LCG: deterministic, good enough for fault injection.
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng_state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide whether this request fails; updates counters.
    fn check(&mut self, sector: u64, len: usize, is_write: bool) -> Result<()> {
        self.requests_seen += 1;
        if self.healed() {
            self.stats.passed += 1;
            return Ok(());
        }
        let sectors = (len as u64).div_ceil(SECTOR_SIZE).max(1);
        let last = sector + sectors - 1;
        for &(first, range_last, kind) in &self.plan.bad_ranges {
            if kind.matches(is_write) && sector <= range_last && last >= first {
                self.stats.range_failures += 1;
                return Err(Error::Block(format!(
                    "injected medium error: sectors {first}..={range_last}"
                )));
            }
        }
        if self.plan.fail_on_request.contains(&self.requests_seen) {
            self.stats.scheduled_failures += 1;
            return Err(Error::Block(format!(
                "injected failure on request #{}",
                self.requests_seen
            )));
        }
        if self.plan.transient_rate > 0.0 && self.next_random_unit() < self.plan.transient_rate {
            self.stats.transient_failures += 1;
            return Err(Error::Block("injected transient I/O error".into()));
        }
        self.stats.passed += 1;
        Ok(())
    }
}

impl<B: BlockBackend> BlockBackend for FaultyDisk<B> {
    fn capacity_sectors(&self) -> u64 {
        self.inner.capacity_sectors()
    }

    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<()> {
        self.check(sector, buf.len(), false)?;
        self.inner.read_sectors(sector, buf)
    }

    fn write_sectors(&mut self, sector: u64, buf: &[u8]) -> Result<()> {
        self.check(sector, buf.len(), true)?;
        self.inner.write_sectors(sector, buf)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn stats(&self) -> BlockStats {
        self.inner.stats()
    }

    fn is_read_only(&self) -> bool {
        self.inner.is_read_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ram::RamDisk;
    use rvisor_types::ByteSize;

    fn disk() -> RamDisk {
        RamDisk::new(ByteSize::mib(1))
    }

    #[test]
    fn no_plan_is_transparent() {
        let mut d = FaultyDisk::new(disk(), FaultPlan::none());
        let data = vec![7u8; 512];
        d.write_sectors(10, &data).unwrap();
        let mut out = vec![0u8; 512];
        d.read_sectors(10, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(d.fault_stats().total_failures(), 0);
        assert_eq!(d.fault_stats().passed, 2);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn bad_range_fails_overlapping_requests_only() {
        let plan = FaultPlan::none().with_bad_range(100, 103, FaultKind::Any);
        let mut d = FaultyDisk::new(disk(), plan);
        let buf = vec![1u8; 1024];

        // Entirely before / after the bad range: fine.
        d.write_sectors(98, &buf[..512]).unwrap();
        d.write_sectors(104, &buf[..512]).unwrap();
        // Overlapping: fails, and the inner disk never sees the request.
        assert!(d.write_sectors(99, &buf).is_err());
        assert!(d.write_sectors(103, &buf[..512]).is_err());
        let mut out = vec![0u8; 512];
        assert!(d.read_sectors(101, &mut out).is_err());
        assert_eq!(d.fault_stats().range_failures, 3);
        assert_eq!(
            d.stats().writes,
            2,
            "failed writes must not reach the inner backend"
        );
    }

    #[test]
    fn read_only_and_write_only_fault_kinds() {
        let plan = FaultPlan::none().with_bad_range(0, 0, FaultKind::Read);
        let mut d = FaultyDisk::new(disk(), plan);
        let buf = vec![3u8; 512];
        d.write_sectors(0, &buf).unwrap();
        let mut out = vec![0u8; 512];
        assert!(d.read_sectors(0, &mut out).is_err());

        let plan = FaultPlan::none().with_bad_range(0, 0, FaultKind::Write);
        let mut d = FaultyDisk::new(disk(), plan);
        assert!(d.write_sectors(0, &buf).is_err());
        d.read_sectors(0, &mut out).unwrap();
    }

    #[test]
    fn scheduled_failure_hits_exactly_the_nth_request() {
        let plan = FaultPlan::none().with_failure_on_request(3);
        let mut d = FaultyDisk::new(disk(), plan);
        let buf = vec![9u8; 512];
        d.write_sectors(0, &buf).unwrap();
        d.write_sectors(1, &buf).unwrap();
        assert!(d.write_sectors(2, &buf).is_err());
        d.write_sectors(3, &buf).unwrap();
        assert_eq!(d.fault_stats().scheduled_failures, 1);
    }

    #[test]
    fn transient_failures_are_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::none().with_transient_rate(0.3, seed);
            let mut d = FaultyDisk::new(disk(), plan);
            let buf = vec![5u8; 512];
            let mut outcomes = Vec::new();
            for s in 0..64 {
                outcomes.push(d.write_sectors(s, &buf).is_ok());
            }
            (outcomes, d.fault_stats().transient_failures)
        };
        let (a, fa) = run(42);
        let (b, fb) = run(42);
        let (c, _) = run(43);
        assert_eq!(a, b, "same seed must give the same fault pattern");
        assert_eq!(fa, fb);
        assert_ne!(a, c, "different seeds should give different patterns");
        assert!(
            fa > 0,
            "a 30% rate over 64 requests should fail at least once"
        );
        assert!(fa < 40, "a 30% rate should not fail most requests");
    }

    #[test]
    fn recovery_stops_injection() {
        let plan = FaultPlan::none()
            .with_bad_range(0, u64::MAX, FaultKind::Any)
            .with_recovery_after(2);
        let mut d = FaultyDisk::new(disk(), plan);
        let buf = vec![1u8; 512];
        assert!(d.write_sectors(0, &buf).is_err());
        assert!(d.write_sectors(0, &buf).is_err());
        // Healed: everything passes from now on.
        d.write_sectors(0, &buf).unwrap();
        d.write_sectors(1, &buf).unwrap();
        assert_eq!(d.fault_stats().total_failures(), 2);
        assert_eq!(d.fault_stats().passed, 2);
    }

    #[test]
    fn data_written_around_faults_is_intact() {
        let plan = FaultPlan::none().with_bad_range(50, 59, FaultKind::Any);
        let mut d = FaultyDisk::new(disk(), plan);
        for s in 0..100u64 {
            let buf = vec![s as u8; 512];
            let _ = d.write_sectors(s, &buf);
        }
        // Everything outside the bad range is readable and correct.
        for s in (0..50u64).chain(60..100) {
            let mut out = vec![0u8; 512];
            d.read_sectors(s, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == s as u8), "sector {s} corrupted");
        }
        assert_eq!(d.fault_stats().range_failures, 10);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Whatever the fault plan, a successful read returns exactly what
            /// a successful write stored, and failed requests never corrupt
            /// neighbouring sectors.
            #[test]
            fn successful_io_is_always_correct(
                rate in 0.0f64..0.9,
                seed in 0u64..1000,
                sectors in proptest::collection::vec(0u64..128, 1..40),
            ) {
                let plan = FaultPlan::none().with_transient_rate(rate, seed);
                let mut d = FaultyDisk::new(RamDisk::new(ByteSize::kib(128)), plan);
                let mut expected: std::collections::HashMap<u64, u8> = Default::default();
                for (i, &s) in sectors.iter().enumerate() {
                    let value = (i % 251) as u8;
                    if d.write_sectors(s, &vec![value; 512]).is_ok() {
                        expected.insert(s, value);
                    }
                }
                for (&s, &value) in &expected {
                    let mut out = vec![0u8; 512];
                    if d.read_sectors(s, &mut out).is_ok() {
                        prop_assert!(out.iter().all(|&b| b == value));
                    }
                }
                let fs = d.fault_stats();
                prop_assert_eq!(
                    fs.passed + fs.total_failures(),
                    sectors.len() as u64 + expected.len() as u64
                );
            }
        }
    }
}
