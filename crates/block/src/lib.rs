//! # rvisor-block
//!
//! Block-storage substrate for the VMM: the backends a virtio-blk or emulated
//! disk device reads and writes through.
//!
//! * [`RamDisk`] — an in-memory disk, the workhorse of tests and benchmarks.
//! * [`FileDisk`] — a host-file-backed disk for persistence across runs.
//! * [`CowOverlay`] — a copy-on-write overlay on top of any backend; the
//!   mechanism behind instant template cloning (experiment E9) and disk
//!   snapshots.
//! * [`ThrottledDisk`] — wraps a backend with a bandwidth/latency model so
//!   I/O experiments measure device-model overhead against a fixed storage
//!   service time.
//! * [`FaultyDisk`] — wraps a backend with deterministic failure injection
//!   (bad sector ranges, n-th-request failures, seeded transient errors) for
//!   exercising the error paths of the device models and backup code.
//! * [`ImageLibrary`] — a small template store modelling the "golden image"
//!   provisioning workflow (clone-from-template vs full-copy install).
//!
//! All backends implement [`BlockBackend`] and speak 512-byte sectors.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod cow;
pub mod faulty;
pub mod file;
pub mod image;
pub mod ram;
pub mod throttle;

pub use backend::{BlockBackend, BlockStats, SECTOR_SIZE};
pub use cow::CowOverlay;
pub use faulty::{FaultKind, FaultPlan, FaultStats, FaultyDisk};
pub use file::FileDisk;
pub use image::{synthetic_os_image, CloneStrategy, DiskImage, ImageFormat, ImageLibrary};
pub use ram::RamDisk;
pub use throttle::{StorageModel, ThrottledDisk};
