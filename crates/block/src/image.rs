//! Golden images and template-based provisioning.
//!
//! The operational claim behind experiment E9 is that provisioning a new
//! server from a template is dramatically faster than installing it from
//! scratch (a full image copy). [`ImageLibrary`] models both paths:
//!
//! * [`CloneStrategy::FullCopy`] duplicates every byte of the template into a
//!   fresh [`RamDisk`] — cost proportional to image size;
//! * [`CloneStrategy::CopyOnWrite`] stacks a [`CowOverlay`] on the shared
//!   template — cost proportional to *nothing* (a handful of allocations).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use rvisor_types::{ByteSize, Error, Result};

use crate::backend::{BlockBackend, SECTOR_SIZE};
use crate::cow::{share, CowOverlay};
use crate::ram::RamDisk;

/// On-"disk" format of an image in the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImageFormat {
    /// A flat raw image.
    Raw,
    /// A copy-on-write overlay referencing a base template.
    CowOverlay,
}

/// How to materialise a new disk from a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloneStrategy {
    /// Copy every byte of the template (a "full install").
    FullCopy,
    /// Stack a copy-on-write overlay on the shared template (an "instant clone").
    CopyOnWrite,
}

/// Metadata describing an image in the library.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskImage {
    /// Unique image name (e.g. `"win2003-template"`).
    pub name: String,
    /// Logical size.
    pub size: ByteSize,
    /// Storage format.
    pub format: ImageFormat,
    /// A free-form description (OS, role), mirroring an OVF annotation.
    pub description: String,
}

/// A library of golden template images plus the disks cloned from them.
pub struct ImageLibrary {
    templates: BTreeMap<String, (DiskImage, Arc<Mutex<dyn BlockBackend>>)>,
    clones_created: u64,
    bytes_copied: u64,
}

impl std::fmt::Debug for ImageLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImageLibrary")
            .field("templates", &self.templates.keys().collect::<Vec<_>>())
            .field("clones_created", &self.clones_created)
            .finish()
    }
}

impl Default for ImageLibrary {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageLibrary {
    /// Create an empty library.
    pub fn new() -> Self {
        ImageLibrary {
            templates: BTreeMap::new(),
            clones_created: 0,
            bytes_copied: 0,
        }
    }

    /// Register a template built from raw contents. The template is stored
    /// read-only; clones never modify it.
    pub fn add_template(&mut self, name: &str, description: &str, contents: Vec<u8>) -> Result<()> {
        if self.templates.contains_key(name) {
            return Err(Error::Config(format!("template `{name}` already exists")));
        }
        let mut disk = RamDisk::from_data(contents);
        disk.set_read_only(true);
        let image = DiskImage {
            name: name.to_string(),
            size: ByteSize::new(disk.capacity_bytes()),
            format: ImageFormat::Raw,
            description: description.to_string(),
        };
        self.templates
            .insert(name.to_string(), (image, share(disk)));
        Ok(())
    }

    /// Register a zero-filled template of `size` (e.g. an empty data disk).
    pub fn add_blank_template(
        &mut self,
        name: &str,
        description: &str,
        size: ByteSize,
    ) -> Result<()> {
        let mut disk = RamDisk::new(size);
        disk.set_read_only(true);
        if self.templates.contains_key(name) {
            return Err(Error::Config(format!("template `{name}` already exists")));
        }
        let image = DiskImage {
            name: name.to_string(),
            size: ByteSize::new(disk.capacity_bytes()),
            format: ImageFormat::Raw,
            description: description.to_string(),
        };
        self.templates
            .insert(name.to_string(), (image, share(disk)));
        Ok(())
    }

    /// Names of the registered templates.
    pub fn template_names(&self) -> Vec<String> {
        self.templates.keys().cloned().collect()
    }

    /// Metadata for a template.
    pub fn template(&self, name: &str) -> Option<&DiskImage> {
        self.templates.get(name).map(|(img, _)| img)
    }

    /// Number of clones created so far.
    pub fn clones_created(&self) -> u64 {
        self.clones_created
    }

    /// Bytes physically copied by full-copy clones (CoW clones copy none).
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Materialise a new disk from template `name` using `strategy`.
    pub fn clone_from(
        &mut self,
        name: &str,
        strategy: CloneStrategy,
    ) -> Result<Box<dyn BlockBackend>> {
        let (image, backend) = self
            .templates
            .get(name)
            .ok_or_else(|| Error::Config(format!("unknown template `{name}`")))?;
        let disk: Box<dyn BlockBackend> = match strategy {
            CloneStrategy::FullCopy => {
                let capacity = image.size.as_u64();
                let mut contents = vec![0u8; capacity as usize];
                backend.lock().read_sectors(0, &mut contents)?;
                self.bytes_copied += capacity;
                Box::new(RamDisk::from_data(contents))
            }
            CloneStrategy::CopyOnWrite => Box::new(CowOverlay::new(Arc::clone(backend))),
        };
        self.clones_created += 1;
        Ok(disk)
    }
}

/// Build a synthetic "installed OS" image of `size` with a recognisable
/// pattern, standing in for a real golden image.
pub fn synthetic_os_image(size: ByteSize) -> Vec<u8> {
    let sectors = size.as_u64().div_ceil(SECTOR_SIZE);
    let mut data = vec![0u8; (sectors * SECTOR_SIZE) as usize];
    for (i, chunk) in data.chunks_mut(SECTOR_SIZE as usize).enumerate() {
        // A boot-sector-ish header then a per-sector tag, so clones can be verified.
        chunk[0] = 0x55;
        chunk[1] = 0xaa;
        chunk[2..10].copy_from_slice(&(i as u64).to_le_bytes());
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library_with_template(size: ByteSize) -> ImageLibrary {
        let mut lib = ImageLibrary::new();
        lib.add_template(
            "win2003",
            "Windows 2003 application server",
            synthetic_os_image(size),
        )
        .unwrap();
        lib
    }

    #[test]
    fn template_registration_and_lookup() {
        let lib = library_with_template(ByteSize::kib(64));
        assert_eq!(lib.template_names(), vec!["win2003".to_string()]);
        let img = lib.template("win2003").unwrap();
        assert_eq!(img.size, ByteSize::kib(64));
        assert_eq!(img.format, ImageFormat::Raw);
        assert!(lib.template("missing").is_none());
        assert!(format!("{lib:?}").contains("win2003"));
    }

    #[test]
    fn duplicate_template_rejected() {
        let mut lib = library_with_template(ByteSize::kib(4));
        assert!(lib.add_template("win2003", "dup", vec![0u8; 512]).is_err());
        assert!(lib
            .add_blank_template("win2003", "dup", ByteSize::kib(4))
            .is_err());
        assert!(lib
            .add_blank_template("data", "empty data disk", ByteSize::kib(4))
            .is_ok());
    }

    #[test]
    fn full_copy_clone_is_independent() {
        let mut lib = library_with_template(ByteSize::kib(16));
        let mut clone = lib.clone_from("win2003", CloneStrategy::FullCopy).unwrap();
        let mut buf = vec![0u8; 512];
        clone.read_sectors(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0x55);
        assert_eq!(u64::from_le_bytes(buf[2..10].try_into().unwrap()), 1);
        // Writing to the clone must not affect a later clone.
        clone.write_sectors(1, &vec![0u8; 512]).unwrap();
        let mut clone2 = lib.clone_from("win2003", CloneStrategy::FullCopy).unwrap();
        clone2.read_sectors(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0x55);
        assert_eq!(lib.clones_created(), 2);
        assert_eq!(lib.bytes_copied(), 2 * 16 * 1024);
    }

    #[test]
    fn cow_clone_copies_nothing_up_front() {
        let mut lib = library_with_template(ByteSize::mib(1));
        let mut clone = lib
            .clone_from("win2003", CloneStrategy::CopyOnWrite)
            .unwrap();
        assert_eq!(lib.bytes_copied(), 0);
        let mut buf = vec![0u8; 512];
        clone.read_sectors(7, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf[2..10].try_into().unwrap()), 7);
        clone.write_sectors(7, &vec![0x77u8; 512]).unwrap();
        // Template still pristine for the next clone.
        let mut clone2 = lib
            .clone_from("win2003", CloneStrategy::CopyOnWrite)
            .unwrap();
        clone2.read_sectors(7, &mut buf).unwrap();
        assert_eq!(buf[0], 0x55);
    }

    #[test]
    fn unknown_template_clone_fails() {
        let mut lib = ImageLibrary::new();
        assert!(lib.clone_from("ghost", CloneStrategy::FullCopy).is_err());
    }

    #[test]
    fn synthetic_image_is_sector_tagged() {
        let img = synthetic_os_image(ByteSize::kib(2));
        assert_eq!(img.len(), 2048);
        assert_eq!(img[0], 0x55);
        assert_eq!(img[1], 0xaa);
        assert_eq!(
            u64::from_le_bytes(img[512 + 2..512 + 10].try_into().unwrap()),
            1
        );
    }
}
