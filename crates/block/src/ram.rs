//! An in-memory block device.

use rvisor_types::{ByteSize, Result};

use crate::backend::{validate_request, BlockBackend, BlockStats, SECTOR_SIZE};

/// A RAM-backed disk. Fast, deterministic, and the default backend in tests
/// and benchmarks.
#[derive(Debug, Clone)]
pub struct RamDisk {
    data: Vec<u8>,
    stats: BlockStats,
    read_only: bool,
}

impl RamDisk {
    /// Create a zero-filled disk of `size` (rounded up to whole sectors).
    pub fn new(size: ByteSize) -> Self {
        let sectors = size.as_u64().div_ceil(SECTOR_SIZE);
        RamDisk {
            data: vec![0u8; (sectors * SECTOR_SIZE) as usize],
            stats: BlockStats::default(),
            read_only: false,
        }
    }

    /// Create a disk initialised with `data` (padded to whole sectors).
    pub fn from_data(mut data: Vec<u8>) -> Self {
        let sectors = (data.len() as u64).div_ceil(SECTOR_SIZE).max(1);
        data.resize((sectors * SECTOR_SIZE) as usize, 0);
        RamDisk {
            data,
            stats: BlockStats::default(),
            read_only: false,
        }
    }

    /// Mark the disk read-only (e.g. a golden template image).
    pub fn set_read_only(&mut self, ro: bool) {
        self.read_only = ro;
    }

    /// A view of the raw contents (tests and image cloning).
    pub fn contents(&self) -> &[u8] {
        &self.data
    }
}

impl BlockBackend for RamDisk {
    fn capacity_sectors(&self) -> u64 {
        self.data.len() as u64 / SECTOR_SIZE
    }

    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<()> {
        validate_request(self.capacity_sectors(), sector, buf.len())?;
        let off = (sector * SECTOR_SIZE) as usize;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    fn write_sectors(&mut self, sector: u64, buf: &[u8]) -> Result<()> {
        validate_request(self.capacity_sectors(), sector, buf.len())?;
        if self.read_only {
            return Err(rvisor_types::Error::Block("write to read-only disk".into()));
        }
        let off = (sector * SECTOR_SIZE) as usize;
        self.data[off..off + buf.len()].copy_from_slice(buf);
        self.stats.record_write(buf.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.stats.record_flush();
        Ok(())
    }

    fn stats(&self) -> BlockStats {
        self.stats
    }

    fn is_read_only(&self) -> bool {
        self.read_only
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_and_capacity() {
        let mut disk = RamDisk::new(ByteSize::kib(4));
        assert_eq!(disk.capacity_sectors(), 8);
        assert_eq!(disk.capacity_bytes(), 4096);

        let pattern = vec![0xabu8; 1024];
        disk.write_sectors(2, &pattern).unwrap();
        let mut back = vec![0u8; 1024];
        disk.read_sectors(2, &mut back).unwrap();
        assert_eq!(back, pattern);
        disk.flush().unwrap();

        let s = disk.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 1024);
        assert_eq!(s.flushes, 1);
    }

    #[test]
    fn bounds_and_alignment_enforced() {
        let mut disk = RamDisk::new(ByteSize::kib(1));
        let mut buf = vec![0u8; 512];
        assert!(disk.read_sectors(2, &mut buf).is_err());
        assert!(disk.read_sectors(0, &mut [0u8; 100]).is_err());
        assert!(disk.write_sectors(1, &[0u8; 1024]).is_err());
    }

    #[test]
    fn size_rounds_up_to_sectors() {
        let disk = RamDisk::new(ByteSize::new(513));
        assert_eq!(disk.capacity_sectors(), 2);
        let disk = RamDisk::from_data(vec![1, 2, 3]);
        assert_eq!(disk.capacity_sectors(), 1);
        assert_eq!(&disk.contents()[..3], &[1, 2, 3]);
    }

    #[test]
    fn read_only_rejects_writes() {
        let mut disk = RamDisk::new(ByteSize::kib(1));
        disk.set_read_only(true);
        assert!(disk.is_read_only());
        assert!(disk.write_sectors(0, &[0u8; 512]).is_err());
        let mut buf = vec![0u8; 512];
        assert!(disk.read_sectors(0, &mut buf).is_ok());
    }

    proptest! {
        #[test]
        fn random_sector_writes_read_back(
            ops in proptest::collection::vec((0u64..64, any::<u8>()), 1..50)
        ) {
            let mut disk = RamDisk::new(ByteSize::new(64 * SECTOR_SIZE));
            let mut reference = std::collections::HashMap::new();
            for (sector, fill) in ops {
                let buf = vec![fill; SECTOR_SIZE as usize];
                disk.write_sectors(sector, &buf).unwrap();
                reference.insert(sector, fill);
            }
            for (sector, fill) in reference {
                let mut buf = vec![0u8; SECTOR_SIZE as usize];
                disk.read_sectors(sector, &mut buf).unwrap();
                prop_assert!(buf.iter().all(|&b| b == fill));
            }
        }
    }
}
