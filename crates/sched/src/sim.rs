//! The host scheduling simulation.
//!
//! Drives a [`Scheduler`] over a set of vCPU entities for a configurable
//! number of quanta and reports who got how much CPU, how fair that was, and
//! how much switching it cost — the rows of the scheduler experiment (E5).

use std::collections::BTreeMap;

use rvisor_types::Nanoseconds;

use crate::entity::{EntityId, VcpuEntity};
use crate::metrics::{fairness_index, weighted_share_error};
use crate::schedulers::Scheduler;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of physical CPUs on the host.
    pub pcpus: usize,
    /// Number of scheduling quanta to simulate.
    pub quanta: u64,
    /// Length of one quantum in simulated time (Xen's default is 30 ms).
    pub quantum: Nanoseconds,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            pcpus: 4,
            quanta: 1000,
            quantum: Nanoseconds::from_millis(30),
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Quanta each entity ran.
    pub runtime_quanta: BTreeMap<EntityId, u64>,
    /// Simulated CPU time each entity received.
    pub cpu_time: BTreeMap<EntityId, Nanoseconds>,
    /// Number of times a pCPU switched from one entity to a different one
    /// between consecutive quanta.
    pub context_switches: u64,
    /// Jain's fairness index over runtime (1.0 = perfectly even).
    pub jain_index: f64,
    /// Maximum relative deviation from the weight-entitled share.
    pub weighted_error: f64,
    /// Fraction of pCPU-quanta that had something scheduled on them.
    pub utilization: f64,
    /// Total quanta simulated.
    pub quanta: u64,
}

impl SimReport {
    /// CPU time received by one entity.
    pub fn cpu_time_of(&self, id: EntityId) -> Nanoseconds {
        self.cpu_time.get(&id).copied().unwrap_or(Nanoseconds::ZERO)
    }

    /// The share of total delivered CPU an entity received (0..=1).
    pub fn share_of(&self, id: EntityId) -> f64 {
        let total: u64 = self.runtime_quanta.values().sum();
        if total == 0 {
            0.0
        } else {
            *self.runtime_quanta.get(&id).unwrap_or(&0) as f64 / total as f64
        }
    }
}

/// Runs a scheduler over a workload.
#[derive(Debug)]
pub struct HostSim {
    config: SimConfig,
    entities: Vec<VcpuEntity>,
}

impl HostSim {
    /// Create a simulation with the given host configuration.
    pub fn new(config: SimConfig) -> Self {
        HostSim {
            config,
            entities: Vec::new(),
        }
    }

    /// Add a vCPU entity to the workload.
    pub fn add_entity(&mut self, entity: VcpuEntity) -> &mut Self {
        self.entities.push(entity);
        self
    }

    /// Add several entities.
    pub fn add_entities(&mut self, entities: &[VcpuEntity]) -> &mut Self {
        self.entities.extend_from_slice(entities);
        self
    }

    /// The configured entities.
    pub fn entities(&self) -> &[VcpuEntity] {
        &self.entities
    }

    /// Run `scheduler` over the workload and produce a report.
    pub fn run(&self, scheduler: &mut dyn Scheduler) -> SimReport {
        for e in &self.entities {
            scheduler.add_entity(*e);
        }
        let mut runtime: BTreeMap<EntityId, u64> =
            self.entities.iter().map(|e| (e.id, 0)).collect();
        let mut last_assignment: Vec<Option<EntityId>> = vec![None; self.config.pcpus];
        let mut context_switches = 0u64;
        let mut busy_pcpu_quanta = 0u64;

        for q in 0..self.config.quanta {
            let runnable: Vec<EntityId> = self
                .entities
                .iter()
                .filter(|e| e.runnable.is_runnable(q))
                .map(|e| e.id)
                .collect();
            let picked = scheduler.pick(self.config.pcpus, &runnable, q);
            for (slot, id) in picked.iter().enumerate() {
                scheduler.charge(*id, q);
                *runtime.entry(*id).or_insert(0) += 1;
                busy_pcpu_quanta += 1;
                if slot < last_assignment.len() {
                    if let Some(prev) = last_assignment[slot] {
                        if prev != *id {
                            context_switches += 1;
                        }
                    }
                    last_assignment[slot] = Some(*id);
                }
            }
            for slot in last_assignment
                .iter_mut()
                .take(self.config.pcpus)
                .skip(picked.len())
            {
                *slot = None;
            }
        }

        let allocations: Vec<f64> = self
            .entities
            .iter()
            .map(|e| runtime[&e.id] as f64)
            .collect();
        let weights: Vec<u32> = self.entities.iter().map(|e| e.weight).collect();
        let cpu_time = runtime
            .iter()
            .map(|(&id, &quanta)| (id, Nanoseconds(self.config.quantum.as_nanos() * quanta)))
            .collect();

        SimReport {
            scheduler: scheduler.name(),
            jain_index: fairness_index(&allocations),
            weighted_error: weighted_share_error(&allocations, &weights),
            runtime_quanta: runtime,
            cpu_time,
            context_switches,
            utilization: if self.config.quanta == 0 || self.config.pcpus == 0 {
                0.0
            } else {
                busy_pcpu_quanta as f64 / (self.config.quanta * self.config.pcpus as u64) as f64
            },
            quanta: self.config.quanta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::{CreditScheduler, RoundRobin, StrideScheduler};
    use rvisor_types::{VcpuId, VmId};

    fn id(vm: u32) -> EntityId {
        EntityId::new(VmId::new(vm), VcpuId::new(0))
    }

    fn sim(pcpus: usize, quanta: u64) -> HostSim {
        HostSim::new(SimConfig {
            pcpus,
            quanta,
            quantum: Nanoseconds::from_millis(30),
        })
    }

    #[test]
    fn equal_weights_are_fair_under_all_schedulers() {
        let mut s = sim(2, 2000);
        for vm in 0..4 {
            s.add_entity(VcpuEntity::cpu_bound(id(vm)));
        }
        for report in [
            s.run(&mut RoundRobin::new()),
            s.run(&mut CreditScheduler::new()),
            s.run(&mut StrideScheduler::new()),
        ] {
            assert!(
                report.jain_index > 0.99,
                "{}: jain {}",
                report.scheduler,
                report.jain_index
            );
            assert!(
                report.weighted_error < 0.05,
                "{}: err {}",
                report.scheduler,
                report.weighted_error
            );
            assert!((report.utilization - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn credit_weighted_error_beats_round_robin_with_unequal_weights() {
        let mut s = sim(1, 4000);
        s.add_entity(VcpuEntity::cpu_bound(id(0)).with_weight(100));
        s.add_entity(VcpuEntity::cpu_bound(id(1)).with_weight(200));
        s.add_entity(VcpuEntity::cpu_bound(id(2)).with_weight(400));
        let rr = s.run(&mut RoundRobin::new());
        let credit = s.run(&mut CreditScheduler::new());
        let stride = s.run(&mut StrideScheduler::new());
        assert!(credit.weighted_error < rr.weighted_error);
        assert!(stride.weighted_error < rr.weighted_error);
        assert!(
            credit.weighted_error < 0.15,
            "credit err {}",
            credit.weighted_error
        );
        assert!(
            stride.weighted_error < 0.05,
            "stride err {}",
            stride.weighted_error
        );
    }

    #[test]
    fn report_accessors() {
        let mut s = sim(1, 100);
        s.add_entity(VcpuEntity::cpu_bound(id(0)));
        s.add_entity(VcpuEntity::cpu_bound(id(1)));
        let r = s.run(&mut RoundRobin::new());
        assert_eq!(r.quanta, 100);
        assert!((r.share_of(id(0)) - 0.5).abs() < 0.02);
        assert_eq!(r.cpu_time_of(id(0)), Nanoseconds::from_millis(30 * 50));
        assert_eq!(r.cpu_time_of(id(9)), Nanoseconds::ZERO);
        assert_eq!(r.share_of(id(9)), 0.0);
        assert_eq!(s.entities().len(), 2);
    }

    #[test]
    fn idle_host_has_zero_utilization() {
        let mut s = sim(2, 100);
        s.add_entity(VcpuEntity::cpu_bound(id(0)).with_duty_cycle(0, 10));
        let r = s.run(&mut CreditScheduler::new());
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.context_switches, 0);
        assert_eq!(r.runtime_quanta[&id(0)], 0);
    }

    #[test]
    fn context_switches_counted_between_different_entities() {
        let mut s = sim(1, 100);
        s.add_entity(VcpuEntity::cpu_bound(id(0)));
        s.add_entity(VcpuEntity::cpu_bound(id(1)));
        let rr = s.run(&mut RoundRobin::new());
        // Alternating every quantum on one pCPU: ~one switch per quantum.
        assert!(rr.context_switches >= 95);

        let mut solo = sim(1, 100);
        solo.add_entity(VcpuEntity::cpu_bound(id(0)));
        let r = solo.run(&mut RoundRobin::new());
        assert_eq!(r.context_switches, 0);
    }

    #[test]
    fn oversubscription_shares_capacity() {
        // 8 always-runnable vCPUs on 2 pCPUs: each gets ~25% of a pCPU.
        let mut s = sim(2, 4000);
        let ents: Vec<VcpuEntity> = (0..8).map(|vm| VcpuEntity::cpu_bound(id(vm))).collect();
        s.add_entities(&ents);
        let r = s.run(&mut CreditScheduler::new());
        let total: u64 = r.runtime_quanta.values().sum();
        assert_eq!(total, 2 * 4000);
        for e in &ents {
            let share = r.runtime_quanta[&e.id] as f64 / 4000.0; // fraction of one pCPU
            assert!((share - 0.25).abs() < 0.05, "share {share}");
        }
    }
}
