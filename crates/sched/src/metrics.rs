//! Fairness metrics for scheduler evaluation.

/// Jain's fairness index over per-entity allocations.
///
/// 1.0 means perfectly equal; `1/n` means one entity got everything.
///
/// ```
/// use rvisor_sched::fairness_index;
/// assert!((fairness_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// assert!(fairness_index(&[1.0, 0.0, 0.0]) < 0.34);
/// ```
pub fn fairness_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|a| a * a).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocations.len() as f64 * sum_sq)
}

/// The maximum relative error between each entity's achieved share and the
/// share its weight entitles it to.
///
/// `allocations[i]` is CPU time received, `weights[i]` the configured weight.
/// Returns 0.0 for perfect weighted fairness. Entities that received no
/// entitlement (zero total weight) yield 0.0.
pub fn weighted_share_error(allocations: &[f64], weights: &[u32]) -> f64 {
    assert_eq!(
        allocations.len(),
        weights.len(),
        "allocations and weights must align"
    );
    let total_alloc: f64 = allocations.iter().sum();
    let total_weight: f64 = weights.iter().map(|&w| w as f64).sum();
    if total_alloc == 0.0 || total_weight == 0.0 {
        return 0.0;
    }
    allocations
        .iter()
        .zip(weights)
        .map(|(&a, &w)| {
            let achieved = a / total_alloc;
            let entitled = w as f64 / total_weight;
            if entitled == 0.0 {
                0.0
            } else {
                ((achieved - entitled) / entitled).abs()
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jain_index_extremes() {
        assert_eq!(fairness_index(&[]), 1.0);
        assert_eq!(fairness_index(&[0.0, 0.0]), 1.0);
        assert!((fairness_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = fairness_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_error_zero_for_proportional_allocation() {
        let err = weighted_share_error(&[100.0, 200.0, 400.0], &[1, 2, 4]);
        assert!(err < 1e-12);
        let err = weighted_share_error(&[100.0, 100.0], &[1, 3]);
        assert!(err > 0.4); // first got 50% but deserved 25% -> error 1.0; second 0.33
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(weighted_share_error(&[], &[]), 0.0);
        assert_eq!(weighted_share_error(&[0.0, 0.0], &[1, 1]), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        weighted_share_error(&[1.0], &[1, 2]);
    }

    proptest! {
        #[test]
        fn jain_index_is_bounded(allocs in proptest::collection::vec(0.0f64..1000.0, 1..20)) {
            let j = fairness_index(&allocs);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&j));
        }

        #[test]
        fn proportional_allocations_have_zero_error(
            weights in proptest::collection::vec(1u32..100, 1..10),
            scale in 0.1f64..100.0,
        ) {
            let allocs: Vec<f64> = weights.iter().map(|&w| w as f64 * scale).collect();
            prop_assert!(weighted_share_error(&allocs, &weights) < 1e-9);
        }
    }
}
