//! The scheduler implementations.

use std::collections::{BTreeMap, VecDeque};

use crate::entity::{EntityId, VcpuEntity};

/// A vCPU scheduler for one host.
///
/// The simulation loop ([`crate::HostSim`]) calls [`Scheduler::pick`] once
/// per quantum with the set of runnable entities and then
/// [`Scheduler::charge`] for each entity that actually ran.
pub trait Scheduler: Send {
    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Register an entity.
    fn add_entity(&mut self, entity: VcpuEntity);

    /// Remove an entity (e.g. the VM migrated away).
    fn remove_entity(&mut self, id: EntityId);

    /// Choose up to `pcpus` entities to run next quantum, out of `runnable`.
    fn pick(&mut self, pcpus: usize, runnable: &[EntityId], quantum: u64) -> Vec<EntityId>;

    /// Account one quantum of CPU time to `id`.
    fn charge(&mut self, id: EntityId, quantum: u64);
}

/// The no-frills baseline: a rotating queue, one quantum each, no weights, no caps.
#[derive(Debug, Default)]
pub struct RoundRobin {
    queue: VecDeque<EntityId>,
}

impl RoundRobin {
    /// Create an empty round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn add_entity(&mut self, entity: VcpuEntity) {
        if !self.queue.contains(&entity.id) {
            self.queue.push_back(entity.id);
        }
    }

    fn remove_entity(&mut self, id: EntityId) {
        self.queue.retain(|&e| e != id);
    }

    fn pick(&mut self, pcpus: usize, runnable: &[EntityId], _quantum: u64) -> Vec<EntityId> {
        let mut picked = Vec::with_capacity(pcpus);
        let mut inspected = 0;
        let len = self.queue.len();
        while picked.len() < pcpus && inspected < len {
            if let Some(id) = self.queue.pop_front() {
                if runnable.contains(&id) && !picked.contains(&id) {
                    picked.push(id);
                }
                self.queue.push_back(id);
            }
            inspected += 1;
        }
        picked
    }

    fn charge(&mut self, _id: EntityId, _quantum: u64) {}
}

/// Credits granted per pCPU per accounting period (Xen uses 300 per 30 ms).
const CREDITS_PER_PCPU_PER_PERIOD: i64 = 300;
/// Quanta per accounting period.
const QUANTA_PER_PERIOD: u64 = 10;
/// Credit cost of running for one quantum.
const CREDIT_COST_PER_QUANTUM: i64 = CREDITS_PER_PCPU_PER_PERIOD / QUANTA_PER_PERIOD as i64;

#[derive(Debug, Clone)]
struct CreditAccount {
    entity: VcpuEntity,
    credits: i64,
    ran_this_period: u64,
}

/// A scheduler modelled on Xen's credit scheduler.
///
/// Every accounting period each entity receives credits in proportion to its
/// weight; running costs credits. Entities with positive credits (UNDER) are
/// preferred over those that have overdrawn (OVER), which is what delivers
/// weighted proportional fairness. A per-entity *cap* bounds how many quanta
/// it may run per period regardless of spare capacity.
#[derive(Debug, Default)]
pub struct CreditScheduler {
    accounts: BTreeMap<EntityId, CreditAccount>,
    pcpus_hint: usize,
}

impl CreditScheduler {
    /// Create an empty credit scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current credit balance of an entity (for tests/inspection).
    pub fn credits(&self, id: EntityId) -> Option<i64> {
        self.accounts.get(&id).map(|a| a.credits)
    }

    fn replenish(&mut self, pcpus: usize) {
        let total_weight: u64 = self.accounts.values().map(|a| a.entity.weight as u64).sum();
        if total_weight == 0 {
            return;
        }
        let pool = CREDITS_PER_PCPU_PER_PERIOD * pcpus as i64;
        for acct in self.accounts.values_mut() {
            let share = pool * acct.entity.weight as i64 / total_weight as i64;
            acct.credits += share;
            // Don't let credits accumulate without bound (idle entities would
            // otherwise starve everyone when they wake).
            acct.credits = acct.credits.min(2 * pool);
            acct.ran_this_period = 0;
        }
    }

    fn cap_quanta(entity: &VcpuEntity) -> Option<u64> {
        entity
            .cap_percent
            .map(|cap| (cap as u64 * QUANTA_PER_PERIOD) / 100)
    }
}

impl Scheduler for CreditScheduler {
    fn name(&self) -> &'static str {
        "credit"
    }

    fn add_entity(&mut self, entity: VcpuEntity) {
        self.accounts.entry(entity.id).or_insert(CreditAccount {
            entity,
            credits: 0,
            ran_this_period: 0,
        });
    }

    fn remove_entity(&mut self, id: EntityId) {
        self.accounts.remove(&id);
    }

    fn pick(&mut self, pcpus: usize, runnable: &[EntityId], quantum: u64) -> Vec<EntityId> {
        self.pcpus_hint = pcpus;
        if quantum.is_multiple_of(QUANTA_PER_PERIOD) {
            self.replenish(pcpus);
        }
        let mut candidates: Vec<&CreditAccount> = runnable
            .iter()
            .filter_map(|id| self.accounts.get(id))
            .filter(|acct| match Self::cap_quanta(&acct.entity) {
                Some(cap) => acct.ran_this_period < cap,
                None => true,
            })
            .collect();
        // UNDER (positive credits) before OVER, then by credit balance.
        candidates.sort_by_key(|acct| (acct.credits <= 0, -acct.credits));
        candidates
            .into_iter()
            .take(pcpus)
            .map(|acct| acct.entity.id)
            .collect()
    }

    fn charge(&mut self, id: EntityId, _quantum: u64) {
        if let Some(acct) = self.accounts.get_mut(&id) {
            acct.credits -= CREDIT_COST_PER_QUANTUM;
            acct.ran_this_period += 1;
        }
    }
}

/// Stride-scheduling constant (any large number works).
const STRIDE1: u64 = 1 << 20;

#[derive(Debug, Clone)]
struct StrideAccount {
    entity: VcpuEntity,
    stride: u64,
    pass: u64,
}

/// Proportional-share scheduling via strides: each entity advances its `pass`
/// by `STRIDE1 / weight` per quantum it runs; the scheduler always picks the
/// runnable entities with the smallest pass values.
#[derive(Debug, Default)]
pub struct StrideScheduler {
    accounts: BTreeMap<EntityId, StrideAccount>,
}

impl StrideScheduler {
    /// Create an empty stride scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for StrideScheduler {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn add_entity(&mut self, entity: VcpuEntity) {
        let stride = STRIDE1 / entity.weight.max(1) as u64;
        // New entities start at the current minimum pass so they don't get a
        // huge burst of back-pay.
        let min_pass = self.accounts.values().map(|a| a.pass).min().unwrap_or(0);
        self.accounts.entry(entity.id).or_insert(StrideAccount {
            entity,
            stride,
            pass: min_pass,
        });
    }

    fn remove_entity(&mut self, id: EntityId) {
        self.accounts.remove(&id);
    }

    fn pick(&mut self, pcpus: usize, runnable: &[EntityId], _quantum: u64) -> Vec<EntityId> {
        let mut candidates: Vec<&StrideAccount> = runnable
            .iter()
            .filter_map(|id| self.accounts.get(id))
            .collect();
        candidates.sort_by_key(|a| (a.pass, a.entity.id));
        candidates
            .into_iter()
            .take(pcpus)
            .map(|a| a.entity.id)
            .collect()
    }

    fn charge(&mut self, id: EntityId, _quantum: u64) {
        if let Some(acct) = self.accounts.get_mut(&id) {
            acct.pass = acct.pass.saturating_add(acct.stride);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_types::{VcpuId, VmId};

    fn id(vm: u32) -> EntityId {
        EntityId::new(VmId::new(vm), VcpuId::new(0))
    }

    fn entities(weights: &[u32]) -> Vec<VcpuEntity> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| VcpuEntity::cpu_bound(id(i as u32)).with_weight(w))
            .collect()
    }

    fn run(
        scheduler: &mut dyn Scheduler,
        ents: &[VcpuEntity],
        pcpus: usize,
        quanta: u64,
    ) -> BTreeMap<EntityId, u64> {
        for e in ents {
            scheduler.add_entity(*e);
        }
        let mut runtime: BTreeMap<EntityId, u64> = ents.iter().map(|e| (e.id, 0)).collect();
        for q in 0..quanta {
            let runnable: Vec<EntityId> = ents
                .iter()
                .filter(|e| e.runnable.is_runnable(q))
                .map(|e| e.id)
                .collect();
            let picked = scheduler.pick(pcpus, &runnable, q);
            assert!(picked.len() <= pcpus);
            for p in &picked {
                scheduler.charge(*p, q);
                *runtime.get_mut(p).unwrap() += 1;
            }
        }
        runtime
    }

    #[test]
    fn round_robin_is_equal_share() {
        let ents = entities(&[256, 256, 256, 256]);
        let mut rr = RoundRobin::new();
        let runtime = run(&mut rr, &ents, 2, 1000);
        for &t in runtime.values() {
            assert_eq!(t, 500);
        }
        assert_eq!(rr.name(), "round-robin");
    }

    #[test]
    fn round_robin_ignores_weights() {
        let ents = entities(&[100, 400]);
        let runtime = run(&mut RoundRobin::new(), &ents, 1, 1000);
        assert_eq!(runtime[&id(0)], 500);
        assert_eq!(runtime[&id(1)], 500);
    }

    #[test]
    fn credit_respects_weights() {
        let ents = entities(&[100, 200, 400]);
        let runtime = run(&mut CreditScheduler::new(), &ents, 1, 7000);
        let total: u64 = runtime.values().sum();
        assert_eq!(total, 7000);
        let share0 = runtime[&id(0)] as f64 / total as f64;
        let share1 = runtime[&id(1)] as f64 / total as f64;
        let share2 = runtime[&id(2)] as f64 / total as f64;
        assert!((share0 - 1.0 / 7.0).abs() < 0.05, "share0 = {share0}");
        assert!((share1 - 2.0 / 7.0).abs() < 0.05, "share1 = {share1}");
        assert!((share2 - 4.0 / 7.0).abs() < 0.05, "share2 = {share2}");
        assert_eq!(CreditScheduler::new().name(), "credit");
    }

    #[test]
    fn credit_enforces_caps() {
        // One capped entity and one uncapped on a single pCPU.
        let capped = VcpuEntity::cpu_bound(id(0)).with_weight(256).with_cap(20);
        let uncapped = VcpuEntity::cpu_bound(id(1)).with_weight(256);
        let runtime = run(&mut CreditScheduler::new(), &[capped, uncapped], 1, 2000);
        let capped_share = runtime[&id(0)] as f64 / 2000.0;
        assert!(capped_share <= 0.22, "capped entity got {capped_share}");
        assert!(runtime[&id(1)] > runtime[&id(0)]);
    }

    #[test]
    fn credit_cap_binds_even_with_idle_capacity() {
        // A single capped entity alone on the host still cannot exceed its cap.
        let capped = VcpuEntity::cpu_bound(id(0)).with_weight(256).with_cap(50);
        let runtime = run(&mut CreditScheduler::new(), &[capped], 1, 1000);
        let share = runtime[&id(0)] as f64 / 1000.0;
        assert!(share <= 0.52, "capped-alone share {share}");
        assert!(share >= 0.45);
    }

    #[test]
    fn credit_work_conserving_without_caps() {
        let ents = entities(&[256, 256]);
        let runtime = run(&mut CreditScheduler::new(), &ents, 4, 500);
        // Two runnable entities on four pCPUs: both run every quantum.
        assert_eq!(runtime[&id(0)], 500);
        assert_eq!(runtime[&id(1)], 500);
    }

    #[test]
    fn stride_respects_weights() {
        let ents = entities(&[100, 300]);
        let runtime = run(&mut StrideScheduler::new(), &ents, 1, 4000);
        let share1 = runtime[&id(1)] as f64 / 4000.0;
        assert!((share1 - 0.75).abs() < 0.02, "share1 = {share1}");
        assert_eq!(StrideScheduler::new().name(), "stride");
    }

    #[test]
    fn stride_new_entity_does_not_get_backpay() {
        let mut s = StrideScheduler::new();
        let a = VcpuEntity::cpu_bound(id(0));
        s.add_entity(a);
        for q in 0..1000 {
            let picked = s.pick(1, &[a.id], q);
            for p in picked {
                s.charge(p, q);
            }
        }
        // Now add a second entity: it should not monopolise the CPU to "catch up".
        let b = VcpuEntity::cpu_bound(id(1));
        s.add_entity(b);
        let mut b_run = 0;
        for q in 1000..1200 {
            let picked = s.pick(1, &[a.id, b.id], q);
            for p in picked {
                s.charge(p, q);
                if p == b.id {
                    b_run += 1;
                }
            }
        }
        assert!(b_run <= 110, "late joiner got {b_run} of 200 quanta");
    }

    #[test]
    fn duty_cycled_entity_only_runs_when_runnable() {
        let interactive = VcpuEntity::cpu_bound(id(0)).with_duty_cycle(1, 10);
        let batch = VcpuEntity::cpu_bound(id(1));
        let runtime = run(&mut CreditScheduler::new(), &[interactive, batch], 1, 1000);
        assert!(runtime[&id(0)] <= 100);
        assert_eq!(runtime[&id(0)] + runtime[&id(1)], 1000);
    }

    #[test]
    fn removal_stops_scheduling() {
        let ents = entities(&[256, 256]);
        for sched in [
            &mut RoundRobin::new() as &mut dyn Scheduler,
            &mut CreditScheduler::new(),
            &mut StrideScheduler::new(),
        ] {
            sched.add_entity(ents[0]);
            sched.add_entity(ents[1]);
            sched.remove_entity(ents[0].id);
            let picked = sched.pick(2, &[ents[0].id, ents[1].id], 0);
            assert_eq!(picked, vec![ents[1].id], "{}", sched.name());
        }
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let e = VcpuEntity::cpu_bound(id(0));
        let mut rr = RoundRobin::new();
        rr.add_entity(e);
        rr.add_entity(e);
        assert_eq!(rr.pick(4, &[e.id], 0), vec![e.id]);
        let mut cs = CreditScheduler::new();
        cs.add_entity(e);
        cs.charge(e.id, 0);
        let before = cs.credits(e.id).unwrap();
        cs.add_entity(e);
        assert_eq!(cs.credits(e.id), Some(before));
    }

    #[test]
    fn empty_runnable_set_picks_nothing() {
        let ents = entities(&[256]);
        let mut cs = CreditScheduler::new();
        cs.add_entity(ents[0]);
        assert!(cs.pick(4, &[], 0).is_empty());
        assert!(RoundRobin::new().pick(1, &[], 0).is_empty());
        assert!(StrideScheduler::new().pick(1, &[], 0).is_empty());
    }
}
