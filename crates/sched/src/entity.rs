//! Schedulable entities: vCPUs with weights, caps and runnability models.

use serde::{Deserialize, Serialize};

use rvisor_types::{VcpuId, VmId};

/// Identifies one vCPU of one VM within a host's scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId {
    /// The VM the vCPU belongs to.
    pub vm: VmId,
    /// The vCPU within the VM.
    pub vcpu: VcpuId,
}

impl EntityId {
    /// Construct an entity id.
    pub fn new(vm: VmId, vcpu: VcpuId) -> Self {
        EntityId { vm, vcpu }
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.vm, self.vcpu)
    }
}

/// When an entity wants to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunnableModel {
    /// CPU-bound: always wants the CPU.
    Always,
    /// Runs `active` quanta out of every `period` (an interactive/periodic guest).
    DutyCycle {
        /// Quanta per period during which the entity is runnable.
        active: u32,
        /// Period length in quanta.
        period: u32,
    },
}

impl RunnableModel {
    /// Whether the entity is runnable in quantum number `quantum`.
    pub fn is_runnable(&self, quantum: u64) -> bool {
        match *self {
            RunnableModel::Always => true,
            RunnableModel::DutyCycle { active, period } => {
                if period == 0 {
                    return false;
                }
                (quantum % period as u64) < active as u64
            }
        }
    }

    /// The long-run fraction of time the entity wants the CPU.
    pub fn demand_fraction(&self) -> f64 {
        match *self {
            RunnableModel::Always => 1.0,
            RunnableModel::DutyCycle { active, period } => {
                if period == 0 {
                    0.0
                } else {
                    (active as f64 / period as f64).min(1.0)
                }
            }
        }
    }
}

/// A schedulable vCPU and its scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcpuEntity {
    /// Identity.
    pub id: EntityId,
    /// Proportional-share weight (Xen default is 256).
    pub weight: u32,
    /// Optional cap as a percentage of one pCPU (e.g. 50 = half a core);
    /// `None` means uncapped.
    pub cap_percent: Option<u32>,
    /// When the entity wants to run.
    pub runnable: RunnableModel,
}

impl VcpuEntity {
    /// A CPU-bound entity with the default weight and no cap.
    pub fn cpu_bound(id: EntityId) -> Self {
        VcpuEntity {
            id,
            weight: 256,
            cap_percent: None,
            runnable: RunnableModel::Always,
        }
    }

    /// Set the weight (builder style).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Set a cap (builder style).
    pub fn with_cap(mut self, cap_percent: u32) -> Self {
        self.cap_percent = Some(cap_percent);
        self
    }

    /// Set a duty cycle (builder style).
    pub fn with_duty_cycle(mut self, active: u32, period: u32) -> Self {
        self.runnable = RunnableModel::DutyCycle { active, period };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(vm: u32) -> EntityId {
        EntityId::new(VmId::new(vm), VcpuId::new(0))
    }

    #[test]
    fn entity_display_and_ordering() {
        let a = id(1);
        let b = id(2);
        assert!(a < b);
        assert_eq!(a.to_string(), "vm-1/vcpu-0");
    }

    #[test]
    fn builders() {
        let e = VcpuEntity::cpu_bound(id(3))
            .with_weight(512)
            .with_cap(50)
            .with_duty_cycle(1, 4);
        assert_eq!(e.weight, 512);
        assert_eq!(e.cap_percent, Some(50));
        assert_eq!(
            e.runnable,
            RunnableModel::DutyCycle {
                active: 1,
                period: 4
            }
        );
        // Weight of zero is clamped to one.
        assert_eq!(VcpuEntity::cpu_bound(id(1)).with_weight(0).weight, 1);
    }

    #[test]
    fn duty_cycle_runnability() {
        let m = RunnableModel::DutyCycle {
            active: 2,
            period: 5,
        };
        let runnable: Vec<bool> = (0..10).map(|q| m.is_runnable(q)).collect();
        assert_eq!(
            runnable,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
        assert!((m.demand_fraction() - 0.4).abs() < 1e-12);
        assert!(RunnableModel::Always.is_runnable(123));
        assert_eq!(RunnableModel::Always.demand_fraction(), 1.0);
        let degenerate = RunnableModel::DutyCycle {
            active: 1,
            period: 0,
        };
        assert!(!degenerate.is_runnable(0));
        assert_eq!(degenerate.demand_fraction(), 0.0);
    }
}
