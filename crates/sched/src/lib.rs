//! # rvisor-sched
//!
//! vCPU scheduling on simulated hosts.
//!
//! A physical host has a handful of pCPUs and potentially many more vCPUs
//! (that is the whole point of consolidation). The scheduler decides which
//! vCPUs run each quantum. Three schedulers are provided:
//!
//! * [`RoundRobin`] — the baseline: equal turns, no weights, no caps.
//! * [`CreditScheduler`] — modelled on Xen's credit scheduler: each vCPU
//!   earns credits proportional to its weight every accounting period,
//!   spends them while running, and is sorted into UNDER/OVER priority
//!   bands; optional caps bound the CPU a vCPU may consume even when idle
//!   capacity exists.
//! * [`StrideScheduler`] — proportional-share via stride scheduling, the
//!   deterministic counterpart to lottery scheduling.
//!
//! [`HostSim`] drives any of them over a workload of always-runnable or
//! duty-cycled vCPUs and reports per-vCPU CPU time, fairness metrics and
//! context-switch counts — the quantities experiment E5 sweeps.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod entity;
pub mod metrics;
pub mod schedulers;
pub mod sim;

pub use entity::{EntityId, RunnableModel, VcpuEntity};
pub use metrics::{fairness_index, weighted_share_error};
pub use schedulers::{CreditScheduler, RoundRobin, Scheduler, StrideScheduler};
pub use sim::{HostSim, SimConfig, SimReport};
