//! Point-in-time VM state captures.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rvisor_memory::GuestMemory;
use rvisor_types::{ByteSize, Error, Nanoseconds, Result, VmId, PAGE_SIZE};
use rvisor_vcpu::VcpuState;

/// Identifies a snapshot within a [`crate::SnapshotStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SnapshotId(pub u64);

impl std::fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snap-{}", self.0)
    }
}

/// Whether a snapshot carries all memory or only the pages dirtied since its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotKind {
    /// Every page of guest memory is included.
    Full,
    /// Only pages dirtied since the parent snapshot are included.
    Incremental,
}

/// The memory portion of a snapshot: a sparse set of page contents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySnapshot {
    /// Total guest memory size the snapshot describes.
    pub total_size: ByteSize,
    /// `(global page index, page contents)` pairs, ascending by index.
    pub pages: Vec<(u64, Vec<u8>)>,
}

impl MemorySnapshot {
    /// Capture every page of `memory`. The record's own `Vec<u8>` is the
    /// only allocation per page.
    pub fn capture_full(memory: &GuestMemory) -> Result<Self> {
        let total_pages = memory.total_pages();
        let mut pages = Vec::with_capacity(total_pages as usize);
        for p in 0..total_pages {
            pages.push((p, memory.read_page(p)?));
        }
        Ok(MemorySnapshot {
            total_size: memory.total_size(),
            pages,
        })
    }

    /// Capture only the listed pages of `memory` (any order, duplicates
    /// tolerated).
    pub fn capture_pages(memory: &GuestMemory, page_indices: &[u64]) -> Result<Self> {
        let mut sorted: Vec<u64> = page_indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut pages = Vec::with_capacity(sorted.len());
        for &p in &sorted {
            pages.push((p, memory.read_page(p)?));
        }
        Ok(MemorySnapshot {
            total_size: memory.total_size(),
            pages,
        })
    }

    /// Number of pages stored.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Bytes of page data stored (the dominant component of snapshot size).
    pub fn data_size(&self) -> ByteSize {
        ByteSize::new(self.page_count() * PAGE_SIZE)
    }

    /// Write the stored pages back into `memory`.
    pub fn apply(&self, memory: &GuestMemory) -> Result<()> {
        if memory.total_size() != self.total_size {
            return Err(Error::Snapshot(format!(
                "snapshot describes {} of memory but the target VM has {}",
                self.total_size,
                memory.total_size()
            )));
        }
        for (index, contents) in &self.pages {
            memory.write_page(*index, contents)?;
        }
        Ok(())
    }
}

/// A complete VM snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmSnapshot {
    /// Identifier assigned by the store (zero until stored).
    pub id: SnapshotId,
    /// The VM this snapshot belongs to.
    pub vm: VmId,
    /// Human-readable name ("before-upgrade", "nightly-backup", ...).
    pub name: String,
    /// Full or incremental.
    pub kind: SnapshotKind,
    /// The parent snapshot an incremental capture is relative to.
    pub parent: Option<SnapshotId>,
    /// Simulated time at which the snapshot was taken.
    pub taken_at: Nanoseconds,
    /// Architectural state of every vCPU.
    pub vcpus: Vec<VcpuState>,
    /// Guest memory contents (sparse for incremental snapshots).
    pub memory: MemorySnapshot,
    /// Opaque per-device state blobs keyed by device name.
    pub device_state: BTreeMap<String, Vec<u8>>,
    /// Additive checksum of guest memory at capture time (integrity check).
    pub memory_checksum: u64,
}

impl VmSnapshot {
    /// Capture a full snapshot.
    pub fn capture_full(
        vm: VmId,
        name: &str,
        taken_at: Nanoseconds,
        memory: &GuestMemory,
        vcpus: Vec<VcpuState>,
        device_state: BTreeMap<String, Vec<u8>>,
    ) -> Result<Self> {
        Ok(VmSnapshot {
            id: SnapshotId(0),
            vm,
            name: name.to_string(),
            kind: SnapshotKind::Full,
            parent: None,
            taken_at,
            vcpus,
            memory: MemorySnapshot::capture_full(memory)?,
            device_state,
            memory_checksum: memory.checksum(),
        })
    }

    /// Capture an incremental snapshot containing only the pages dirtied
    /// since the dirty bitmap was last cleared (typically at the parent
    /// snapshot). The dirty bitmap is drained by this call.
    ///
    /// Page records are built by the batched harvesting traversal
    /// ([`GuestMemory::drain_dirty_pages_with`]): no page-index buffer, one
    /// region lock acquisition per 64-page bitmap word instead of one per
    /// page, and each word's bits are atomically fetched-and-cleared before
    /// its pages are read — a page written concurrently with the capture
    /// stays dirty for the next epoch rather than being silently lost.
    pub fn capture_incremental(
        vm: VmId,
        name: &str,
        taken_at: Nanoseconds,
        parent: SnapshotId,
        memory: &GuestMemory,
        vcpus: Vec<VcpuState>,
        device_state: BTreeMap<String, Vec<u8>>,
    ) -> Result<Self> {
        let mut pages: Vec<(u64, Vec<u8>)> = Vec::new();
        memory.drain_dirty_pages_with(|page, bytes| {
            pages.push((page, bytes.to_vec()));
            Ok::<(), Error>(())
        })?;
        Ok(VmSnapshot {
            id: SnapshotId(0),
            vm,
            name: name.to_string(),
            kind: SnapshotKind::Incremental,
            parent: Some(parent),
            taken_at,
            vcpus,
            memory: MemorySnapshot {
                total_size: memory.total_size(),
                pages,
            },
            device_state,
            memory_checksum: memory.checksum(),
        })
    }

    /// Approximate serialized size: page data + vCPU state + device blobs.
    pub fn approx_size(&self) -> ByteSize {
        let devices: u64 = self.device_state.values().map(|b| b.len() as u64).sum();
        let vcpus = self.vcpus.len() as u64 * std::mem::size_of::<VcpuState>() as u64;
        ByteSize::new(self.memory.data_size().as_u64() + devices + vcpus)
    }

    /// Verify that `memory` currently matches the checksum recorded at capture.
    pub fn verify_against(&self, memory: &GuestMemory) -> bool {
        memory.checksum() == self.memory_checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_types::GuestAddress;

    fn memory() -> GuestMemory {
        GuestMemory::flat(ByteSize::pages_of(16)).unwrap()
    }

    #[test]
    fn full_capture_and_apply_roundtrip() {
        let mem = memory();
        mem.write_u64(GuestAddress(0x100), 0xabcdef).unwrap();
        mem.write_u64(GuestAddress(8 * PAGE_SIZE + 8), 77).unwrap();
        let snap = MemorySnapshot::capture_full(&mem).unwrap();
        assert_eq!(snap.page_count(), 16);
        assert_eq!(snap.data_size(), ByteSize::pages_of(16));

        let target = memory();
        snap.apply(&target).unwrap();
        assert_eq!(target.read_u64(GuestAddress(0x100)).unwrap(), 0xabcdef);
        assert_eq!(
            target.read_u64(GuestAddress(8 * PAGE_SIZE + 8)).unwrap(),
            77
        );
        assert_eq!(target.checksum(), mem.checksum());
    }

    #[test]
    fn apply_to_wrong_size_memory_fails() {
        let mem = memory();
        let snap = MemorySnapshot::capture_full(&mem).unwrap();
        let small = GuestMemory::flat(ByteSize::pages_of(8)).unwrap();
        assert!(snap.apply(&small).is_err());
    }

    #[test]
    fn capture_pages_deduplicates_and_sorts() {
        let mem = memory();
        mem.write_u64(GuestAddress(3 * PAGE_SIZE), 3).unwrap();
        mem.write_u64(GuestAddress(5 * PAGE_SIZE), 5).unwrap();
        let snap = MemorySnapshot::capture_pages(&mem, &[5, 3, 5, 3]).unwrap();
        assert_eq!(snap.page_count(), 2);
        assert_eq!(snap.pages[0].0, 3);
        assert_eq!(snap.pages[1].0, 5);
        assert!(MemorySnapshot::capture_pages(&mem, &[100]).is_err());
    }

    #[test]
    fn incremental_captures_only_dirty_pages() {
        let mem = memory();
        mem.write_u64(GuestAddress(0), 1).unwrap();
        mem.clear_dirty();
        let full = VmSnapshot::capture_full(
            VmId::new(1),
            "base",
            Nanoseconds::ZERO,
            &mem,
            vec![VcpuState::default()],
            BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(full.kind, SnapshotKind::Full);
        assert_eq!(full.memory.page_count(), 16);

        // Dirty two pages after the full snapshot.
        mem.write_u64(GuestAddress(2 * PAGE_SIZE), 22).unwrap();
        mem.write_u64(GuestAddress(9 * PAGE_SIZE), 99).unwrap();
        let incr = VmSnapshot::capture_incremental(
            VmId::new(1),
            "delta",
            Nanoseconds::from_secs(60),
            SnapshotId(1),
            &mem,
            vec![VcpuState::default()],
            BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(incr.kind, SnapshotKind::Incremental);
        assert_eq!(incr.memory.page_count(), 2);
        assert_eq!(incr.parent, Some(SnapshotId(1)));
        assert!(incr.approx_size() < full.approx_size());
        // The dirty bitmap was drained by the capture.
        assert_eq!(mem.dirty_page_count(), 0);
    }

    #[test]
    fn checksum_verification() {
        let mem = memory();
        mem.write_u64(GuestAddress(64), 42).unwrap();
        let snap = VmSnapshot::capture_full(
            VmId::new(2),
            "check",
            Nanoseconds::ZERO,
            &mem,
            vec![],
            BTreeMap::new(),
        )
        .unwrap();
        assert!(snap.verify_against(&mem));
        mem.write_u64(GuestAddress(64), 43).unwrap();
        assert!(!snap.verify_against(&mem));
    }

    #[test]
    fn snapshot_id_display() {
        assert_eq!(SnapshotId(7).to_string(), "snap-7");
    }
}
