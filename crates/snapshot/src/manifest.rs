//! Portable export manifests.
//!
//! One of the operational requirements in the source material is an *open,
//! non-proprietary* export format (the OVA/OVF family). [`ExportManifest`]
//! is a minimal envelope in that spirit: a plain-text, line-oriented
//! description of an exported VM — name, hardware shape, disk references and
//! integrity checksums — that any tool can parse without rvisor.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rvisor_types::{ByteSize, Error, Result};

/// A description of an exported VM appliance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportManifest {
    /// Appliance name.
    pub name: String,
    /// Number of vCPUs.
    pub vcpus: u32,
    /// Guest memory size.
    pub memory: ByteSize,
    /// Disk name -> size in bytes.
    pub disks: BTreeMap<String, u64>,
    /// Integrity checksums: item name -> checksum value.
    pub checksums: BTreeMap<String, u64>,
    /// Free-form annotations (OS type, role, owner).
    pub annotations: BTreeMap<String, String>,
}

impl ExportManifest {
    /// Create a manifest for a VM with the given hardware shape.
    pub fn new(name: &str, vcpus: u32, memory: ByteSize) -> Self {
        ExportManifest {
            name: name.to_string(),
            vcpus,
            memory,
            disks: BTreeMap::new(),
            checksums: BTreeMap::new(),
            annotations: BTreeMap::new(),
        }
    }

    /// Add a disk reference.
    pub fn with_disk(mut self, name: &str, size_bytes: u64) -> Self {
        self.disks.insert(name.to_string(), size_bytes);
        self
    }

    /// Add an integrity checksum.
    pub fn with_checksum(mut self, item: &str, value: u64) -> Self {
        self.checksums.insert(item.to_string(), value);
        self
    }

    /// Add an annotation.
    pub fn with_annotation(mut self, key: &str, value: &str) -> Self {
        self.annotations.insert(key.to_string(), value.to_string());
        self
    }

    /// Render the manifest in its line-oriented text form.
    ///
    /// ```text
    /// rvisor-appliance: 1
    /// name: mail-server
    /// vcpus: 2
    /// memory-bytes: 2147483648
    /// disk: system 42949672960
    /// checksum: memory 12345
    /// annotation: os RedHat 5.4 x64
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("rvisor-appliance: 1\n");
        out.push_str(&format!("name: {}\n", self.name));
        out.push_str(&format!("vcpus: {}\n", self.vcpus));
        out.push_str(&format!("memory-bytes: {}\n", self.memory.as_u64()));
        for (disk, size) in &self.disks {
            out.push_str(&format!("disk: {disk} {size}\n"));
        }
        for (item, value) in &self.checksums {
            out.push_str(&format!("checksum: {item} {value}\n"));
        }
        for (key, value) in &self.annotations {
            out.push_str(&format!("annotation: {key} {value}\n"));
        }
        out
    }

    /// Parse a manifest from its text form.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut name = None;
        let mut vcpus = None;
        let mut memory = None;
        let mut disks = BTreeMap::new();
        let mut checksums = BTreeMap::new();
        let mut annotations = BTreeMap::new();
        let mut versioned = false;

        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once(':').ok_or_else(|| {
                Error::Snapshot(format!("manifest line {} is malformed: {line}", lineno + 1))
            })?;
            let value = value.trim();
            match key.trim() {
                "rvisor-appliance" => versioned = true,
                "name" => name = Some(value.to_string()),
                "vcpus" => {
                    vcpus =
                        Some(value.parse::<u32>().map_err(|_| {
                            Error::Snapshot(format!("invalid vcpus value `{value}`"))
                        })?)
                }
                "memory-bytes" => {
                    memory = Some(ByteSize::new(value.parse::<u64>().map_err(|_| {
                        Error::Snapshot(format!("invalid memory value `{value}`"))
                    })?))
                }
                "disk" => {
                    let (disk_name, size) = value
                        .rsplit_once(' ')
                        .ok_or_else(|| Error::Snapshot(format!("invalid disk line `{value}`")))?;
                    disks.insert(
                        disk_name.trim().to_string(),
                        size.parse::<u64>()
                            .map_err(|_| Error::Snapshot(format!("invalid disk size `{size}`")))?,
                    );
                }
                "checksum" => {
                    let (item, v) = value.rsplit_once(' ').ok_or_else(|| {
                        Error::Snapshot(format!("invalid checksum line `{value}`"))
                    })?;
                    checksums.insert(
                        item.trim().to_string(),
                        v.parse::<u64>()
                            .map_err(|_| Error::Snapshot(format!("invalid checksum `{v}`")))?,
                    );
                }
                "annotation" => {
                    let (k, v) = value.split_once(' ').unwrap_or((value, ""));
                    annotations.insert(k.to_string(), v.to_string());
                }
                other => {
                    return Err(Error::Snapshot(format!("unknown manifest key `{other}`")));
                }
            }
        }
        if !versioned {
            return Err(Error::Snapshot(
                "missing rvisor-appliance version line".into(),
            ));
        }
        Ok(ExportManifest {
            name: name.ok_or_else(|| Error::Snapshot("manifest missing name".into()))?,
            vcpus: vcpus.ok_or_else(|| Error::Snapshot("manifest missing vcpus".into()))?,
            memory: memory.ok_or_else(|| Error::Snapshot("manifest missing memory".into()))?,
            disks,
            checksums,
            annotations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExportManifest {
        ExportManifest::new("mail-server", 2, ByteSize::gib(2))
            .with_disk("system", 40 * 1024 * 1024 * 1024)
            .with_disk("data", 100 * 1024 * 1024 * 1024)
            .with_checksum("memory", 123456)
            .with_annotation("os", "RedHat 5.4 x64")
            .with_annotation("role", "zimbra email suite")
    }

    #[test]
    fn text_roundtrip() {
        let m = sample();
        let text = m.to_text();
        assert!(text.starts_with("rvisor-appliance: 1\n"));
        assert!(text.contains("name: mail-server"));
        assert!(text.contains("disk: data 107374182400"));
        let back = ExportManifest::from_text(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "# exported by rvisor\n\nrvisor-appliance: 1\nname: x\nvcpus: 1\nmemory-bytes: 1024\n";
        let m = ExportManifest::from_text(text).unwrap();
        assert_eq!(m.name, "x");
        assert_eq!(m.vcpus, 1);
        assert_eq!(m.memory, ByteSize::new(1024));
        assert!(m.disks.is_empty());
    }

    #[test]
    fn malformed_manifests_rejected() {
        assert!(ExportManifest::from_text("").is_err());
        assert!(ExportManifest::from_text("name: x\nvcpus: 1\nmemory-bytes: 10\n").is_err()); // no version
        assert!(ExportManifest::from_text("rvisor-appliance: 1\nname x\n").is_err()); // missing colon
        assert!(ExportManifest::from_text(
            "rvisor-appliance: 1\nname: x\nvcpus: many\nmemory-bytes: 1\n"
        )
        .is_err());
        assert!(ExportManifest::from_text(
            "rvisor-appliance: 1\nname: x\nvcpus: 1\nmemory-bytes: 1\nbogus: 1\n"
        )
        .is_err());
        assert!(
            ExportManifest::from_text("rvisor-appliance: 1\nvcpus: 1\nmemory-bytes: 1\n").is_err()
        ); // no name
        assert!(
            ExportManifest::from_text("rvisor-appliance: 1\nname: x\nmemory-bytes: 1\n").is_err()
        ); // no vcpus
        assert!(ExportManifest::from_text("rvisor-appliance: 1\nname: x\nvcpus: 1\n").is_err()); // no memory
        assert!(ExportManifest::from_text(
            "rvisor-appliance: 1\nname: x\nvcpus: 1\nmemory-bytes: 1\ndisk: nosize\n"
        )
        .is_err());
        assert!(ExportManifest::from_text(
            "rvisor-appliance: 1\nname: x\nvcpus: 1\nmemory-bytes: 1\nchecksum: mem abc\n"
        )
        .is_err());
    }

    #[test]
    fn annotations_with_spaces_survive() {
        let m = sample();
        let back = ExportManifest::from_text(&m.to_text()).unwrap();
        assert_eq!(back.annotations["os"], "RedHat 5.4 x64");
        assert_eq!(back.annotations["role"], "zimbra email suite");
    }
}
