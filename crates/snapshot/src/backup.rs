//! Backup scheduling and disaster-recovery planning on top of snapshots.
//!
//! "Snapshots – backup features – DR services" is one of the stated goals of
//! the virtualization roadmap in the source material. Operationally that
//! means a *policy* (how often a full backup is taken, how often an
//! incremental one) and two numbers the policy must meet:
//!
//! * **RPO** (recovery point objective) — the most data, measured in time,
//!   that can be lost: at worst one backup interval.
//! * **RTO** (recovery time objective) — how long a restore takes: fetching
//!   the full backup plus every incremental after it and replaying the chain.
//!
//! [`BackupPolicy`] captures the cadence, [`BackupSimulator`] actually runs
//! it against a live [`GuestMemory`] using real [`VmSnapshot`] captures (so
//! the storage numbers come from the same code path the VMM uses), and
//! [`BackupReport`] summarises storage consumption, achieved RPO and
//! worst-case RTO for the E14 experiment.

use std::collections::BTreeMap;

use rvisor_memory::GuestMemory;
use rvisor_types::{ByteSize, Error, Nanoseconds, Result, VmId};
use rvisor_vcpu::VcpuState;

use crate::snapshot::{SnapshotId, SnapshotKind, VmSnapshot};
use crate::store::SnapshotStore;

/// How often full and incremental backups are taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackupPolicy {
    /// Interval between backups (full or incremental).
    pub interval: Nanoseconds,
    /// A full backup is taken every `fulls_every` intervals; the rest are
    /// incrementals chained to the most recent full. `1` means every backup
    /// is a full one.
    pub fulls_every: u32,
}

impl BackupPolicy {
    /// The classic "weekly full, daily incremental" policy.
    pub fn weekly_full_daily_incremental() -> Self {
        BackupPolicy {
            interval: Nanoseconds::from_secs(24 * 3600),
            fulls_every: 7,
        }
    }

    /// Nightly full backups (the pre-virtualization tape habit).
    pub fn nightly_full() -> Self {
        BackupPolicy {
            interval: Nanoseconds::from_secs(24 * 3600),
            fulls_every: 1,
        }
    }

    /// Hourly incrementals with a nightly full — an aggressive-RPO policy.
    pub fn hourly_incremental() -> Self {
        BackupPolicy {
            interval: Nanoseconds::from_secs(3600),
            fulls_every: 24,
        }
    }

    /// Validate the policy.
    pub fn validate(&self) -> Result<()> {
        if self.interval == Nanoseconds::ZERO {
            return Err(Error::Config("backup interval must be non-zero".into()));
        }
        if self.fulls_every == 0 {
            return Err(Error::Config("fulls_every must be at least 1".into()));
        }
        Ok(())
    }

    /// The worst-case recovery point objective this policy can achieve:
    /// everything written since the last completed backup is lost.
    pub fn rpo(&self) -> Nanoseconds {
        self.interval
    }
}

/// Performance assumptions of the backup target (a NAS, tape library or
/// object store) used to convert sizes into times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackupTarget {
    /// Sustained write bandwidth when storing a backup.
    pub write_bytes_per_sec: u64,
    /// Sustained read bandwidth when restoring.
    pub read_bytes_per_sec: u64,
    /// Fixed per-restore overhead (locating media, booting the restored VM).
    pub restore_setup: Nanoseconds,
}

impl Default for BackupTarget {
    fn default() -> Self {
        // A modest NAS over gigabit Ethernet.
        BackupTarget {
            write_bytes_per_sec: 110 * 1024 * 1024,
            read_bytes_per_sec: 110 * 1024 * 1024,
            restore_setup: Nanoseconds::from_secs(60),
        }
    }
}

impl BackupTarget {
    /// Time to write `size` to the target.
    pub fn write_time(&self, size: ByteSize) -> Nanoseconds {
        Nanoseconds(
            (size.as_u64() as u128 * 1_000_000_000 / self.write_bytes_per_sec.max(1) as u128)
                as u64,
        )
    }

    /// Time to read `size` back from the target.
    pub fn read_time(&self, size: ByteSize) -> Nanoseconds {
        Nanoseconds(
            (size.as_u64() as u128 * 1_000_000_000 / self.read_bytes_per_sec.max(1) as u128) as u64,
        )
    }
}

/// One entry in the simulated backup history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackupRecord {
    /// The stored snapshot.
    pub id: SnapshotId,
    /// Full or incremental.
    pub kind: SnapshotKind,
    /// When (simulated) it was taken.
    pub taken_at: Nanoseconds,
    /// Bytes written to the backup target.
    pub size: ByteSize,
}

/// Summary of a simulated backup schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackupReport {
    /// Backups taken (full + incremental).
    pub backups_taken: u32,
    /// Of which full.
    pub fulls_taken: u32,
    /// Total bytes written to the backup target over the horizon.
    pub bytes_stored: ByteSize,
    /// Bytes a nightly-full policy would have written over the same horizon
    /// (the denominator of the storage-saving claim).
    pub full_equivalent_bytes: ByteSize,
    /// Worst-case recovery point objective (time between backups).
    pub rpo: Nanoseconds,
    /// Worst-case recovery time objective: restoring the longest chain.
    pub worst_rto: Nanoseconds,
    /// Longest chain length (1 = a lone full snapshot).
    pub longest_chain: u32,
}

impl BackupReport {
    /// Storage saved relative to taking a full backup every interval.
    pub fn storage_saving_fraction(&self) -> f64 {
        if self.full_equivalent_bytes.as_u64() == 0 {
            0.0
        } else {
            1.0 - self.bytes_stored.as_u64() as f64 / self.full_equivalent_bytes.as_u64() as f64
        }
    }
}

/// Runs a [`BackupPolicy`] against a live guest, taking real snapshots.
#[derive(Debug)]
pub struct BackupSimulator {
    vm: VmId,
    policy: BackupPolicy,
    target: BackupTarget,
    store: SnapshotStore,
    history: Vec<BackupRecord>,
    last_full: Option<SnapshotId>,
    now: Nanoseconds,
    backups_taken: u32,
}

impl BackupSimulator {
    /// Create a simulator for one VM.
    pub fn new(vm: VmId, policy: BackupPolicy, target: BackupTarget) -> Result<Self> {
        policy.validate()?;
        Ok(BackupSimulator {
            vm,
            policy,
            target,
            store: SnapshotStore::new(),
            history: Vec::new(),
            last_full: None,
            now: Nanoseconds::ZERO,
            backups_taken: 0,
        })
    }

    /// The snapshot store accumulating the backups.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The backup history so far.
    pub fn history(&self) -> &[BackupRecord] {
        &self.history
    }

    /// Advance simulated time by one policy interval and take the backup the
    /// policy calls for. `memory` should already contain (and have dirty
    /// tracking for) whatever the guest wrote during the interval.
    pub fn run_interval(
        &mut self,
        memory: &GuestMemory,
        vcpus: &[VcpuState],
    ) -> Result<BackupRecord> {
        self.now = self.now.saturating_add(self.policy.interval);
        let take_full =
            self.last_full.is_none() || self.backups_taken.is_multiple_of(self.policy.fulls_every);
        let snapshot = if take_full {
            VmSnapshot::capture_full(
                self.vm,
                &format!("backup-{}", self.backups_taken),
                self.now,
                memory,
                vcpus.to_vec(),
                BTreeMap::new(),
            )?
        } else {
            VmSnapshot::capture_incremental(
                self.vm,
                &format!("backup-{}", self.backups_taken),
                self.now,
                self.last_snapshot_id()
                    .expect("incremental always has a predecessor"),
                memory,
                vcpus.to_vec(),
                BTreeMap::new(),
            )?
        };
        // A full backup resets dirty tracking so the next incremental only
        // carries what is written after it.
        if take_full {
            memory.clear_dirty();
        }
        let size = snapshot.approx_size();
        let kind = snapshot.kind;
        let id = self.store.insert(snapshot)?;
        if kind == SnapshotKind::Full {
            self.last_full = Some(id);
        }
        self.backups_taken += 1;
        let record = BackupRecord {
            id,
            kind,
            taken_at: self.now,
            size,
        };
        self.history.push(record);
        Ok(record)
    }

    /// The id of the most recent backup (full or incremental).
    pub fn last_snapshot_id(&self) -> Option<SnapshotId> {
        self.history.last().map(|r| r.id)
    }

    /// Restore the most recent backup into `memory` (a disaster-recovery
    /// drill). Returns the restored vCPU state and the simulated restore time.
    pub fn restore_latest(&self, memory: &GuestMemory) -> Result<(Vec<VcpuState>, Nanoseconds)> {
        let id = self
            .last_snapshot_id()
            .ok_or_else(|| Error::Snapshot("no backups have been taken yet".into()))?;
        let chain_bytes = self.chain_size(id)?;
        let (vcpus, _) = self.store.restore(id, memory)?;
        let rto = self
            .target
            .restore_setup
            .saturating_add(self.target.read_time(chain_bytes));
        Ok((vcpus, rto))
    }

    /// Summarise the schedule so far.
    pub fn report(&self) -> BackupReport {
        let bytes_stored = ByteSize::new(self.history.iter().map(|r| r.size.as_u64()).sum::<u64>());
        let fulls_taken = self
            .history
            .iter()
            .filter(|r| r.kind == SnapshotKind::Full)
            .count() as u32;
        let full_size = self
            .history
            .iter()
            .filter(|r| r.kind == SnapshotKind::Full)
            .map(|r| r.size.as_u64())
            .max()
            .unwrap_or(0);
        let full_equivalent_bytes = ByteSize::new(full_size * self.history.len() as u64);

        let mut worst_rto = Nanoseconds::ZERO;
        let mut longest_chain = 0u32;
        for record in &self.history {
            if let Ok(size) = self.chain_size(record.id) {
                let rto = self
                    .target
                    .restore_setup
                    .saturating_add(self.target.read_time(size));
                if rto > worst_rto {
                    worst_rto = rto;
                }
            }
            if let Ok(chain) = self.store.chain_of(record.id) {
                longest_chain = longest_chain.max(chain.len() as u32);
            }
        }
        BackupReport {
            backups_taken: self.backups_taken,
            fulls_taken,
            bytes_stored,
            full_equivalent_bytes,
            rpo: self.policy.rpo(),
            worst_rto,
            longest_chain,
        }
    }

    /// Total bytes that must be read back to restore `id` (its whole chain).
    fn chain_size(&self, id: SnapshotId) -> Result<ByteSize> {
        let chain = self.store.chain_of(id)?;
        Ok(ByteSize::new(
            chain.iter().map(|s| s.approx_size().as_u64()).sum(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_types::{GuestAddress, PAGE_SIZE};

    fn guest(pages: u64) -> GuestMemory {
        let mem = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        for p in 0..pages {
            mem.write_u64(GuestAddress(p * PAGE_SIZE), p + 1).unwrap();
        }
        mem.clear_dirty();
        mem
    }

    fn dirty_pages(mem: &GuestMemory, pages: &[u64]) {
        for &p in pages {
            mem.write_u64(GuestAddress(p * PAGE_SIZE), 0xd1d1_0000 + p)
                .unwrap();
        }
    }

    #[test]
    fn policy_validation() {
        assert!(BackupPolicy::weekly_full_daily_incremental()
            .validate()
            .is_ok());
        assert!(BackupPolicy {
            interval: Nanoseconds::ZERO,
            fulls_every: 1
        }
        .validate()
        .is_err());
        assert!(BackupPolicy {
            interval: Nanoseconds::from_secs(60),
            fulls_every: 0
        }
        .validate()
        .is_err());
        assert!(BackupSimulator::new(
            VmId::new(0),
            BackupPolicy {
                interval: Nanoseconds::ZERO,
                fulls_every: 1
            },
            BackupTarget::default()
        )
        .is_err());
    }

    #[test]
    fn first_backup_is_always_full() {
        let mem = guest(64);
        let mut sim = BackupSimulator::new(
            VmId::new(1),
            BackupPolicy::hourly_incremental(),
            BackupTarget::default(),
        )
        .unwrap();
        let record = sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
        assert_eq!(record.kind, SnapshotKind::Full);
        assert!(record.size >= ByteSize::pages_of(64));
    }

    #[test]
    fn incrementals_track_only_dirtied_pages() {
        let mem = guest(256);
        let mut sim = BackupSimulator::new(
            VmId::new(1),
            BackupPolicy::weekly_full_daily_incremental(),
            BackupTarget::default(),
        )
        .unwrap();
        let full = sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
        assert_eq!(full.kind, SnapshotKind::Full);

        dirty_pages(&mem, &[1, 2, 3]);
        let inc = sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
        assert_eq!(inc.kind, SnapshotKind::Incremental);
        assert!(inc.size < ByteSize::pages_of(8));
        assert!(inc.size >= ByteSize::pages_of(3));

        // An interval with no writes produces an (almost) empty incremental.
        let idle = sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
        assert_eq!(idle.kind, SnapshotKind::Incremental);
        assert!(idle.size < ByteSize::pages_of(1));
    }

    #[test]
    fn weekly_policy_takes_a_full_every_seventh_backup() {
        let mem = guest(64);
        let mut sim = BackupSimulator::new(
            VmId::new(1),
            BackupPolicy::weekly_full_daily_incremental(),
            BackupTarget::default(),
        )
        .unwrap();
        for day in 0..14 {
            dirty_pages(&mem, &[day as u64 % 64]);
            sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
        }
        let report = sim.report();
        assert_eq!(report.backups_taken, 14);
        assert_eq!(report.fulls_taken, 2);
        assert_eq!(report.longest_chain, 7);
        assert_eq!(report.rpo, Nanoseconds::from_secs(24 * 3600));
        // Incrementals of a lightly-written guest store far less than
        // re-writing the full image every day.
        assert!(
            report.storage_saving_fraction() > 0.7,
            "saving {}",
            report.storage_saving_fraction()
        );
    }

    #[test]
    fn restore_recovers_the_latest_state_exactly() {
        let mem = guest(128);
        let mut sim = BackupSimulator::new(
            VmId::new(2),
            BackupPolicy::weekly_full_daily_incremental(),
            BackupTarget::default(),
        )
        .unwrap();
        sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
        dirty_pages(&mem, &[10, 20, 30]);
        sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
        dirty_pages(&mem, &[40]);
        sim.run_interval(&mem, &[VcpuState::default()]).unwrap();

        let expected = mem.checksum();
        // Disaster: the replacement host starts from empty memory.
        let replacement = GuestMemory::flat(ByteSize::pages_of(128)).unwrap();
        let (vcpus, rto) = sim.restore_latest(&replacement).unwrap();
        assert_eq!(replacement.checksum(), expected);
        assert_eq!(vcpus.len(), 1);
        assert!(rto >= BackupTarget::default().restore_setup);
    }

    #[test]
    fn restore_without_backups_is_an_error() {
        let sim = BackupSimulator::new(
            VmId::new(3),
            BackupPolicy::nightly_full(),
            BackupTarget::default(),
        )
        .unwrap();
        let mem = guest(8);
        assert!(sim.restore_latest(&mem).is_err());
    }

    #[test]
    fn nightly_full_has_shorter_chains_but_more_storage() {
        let run = |policy: BackupPolicy| {
            let mem = guest(512);
            let mut sim =
                BackupSimulator::new(VmId::new(4), policy, BackupTarget::default()).unwrap();
            for day in 0..10u64 {
                dirty_pages(&mem, &[day, day + 100, day + 200]);
                sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
            }
            sim.report()
        };
        let nightly = run(BackupPolicy::nightly_full());
        let weekly = run(BackupPolicy::weekly_full_daily_incremental());
        assert_eq!(nightly.longest_chain, 1);
        assert!(weekly.longest_chain > 1);
        assert!(weekly.bytes_stored < nightly.bytes_stored);
        assert!(nightly.worst_rto <= weekly.worst_rto);
        assert!(weekly.storage_saving_fraction() > nightly.storage_saving_fraction());
    }

    #[test]
    fn backup_target_times_scale_with_size() {
        let target = BackupTarget::default();
        let small = target.write_time(ByteSize::mib(100));
        let large = target.write_time(ByteSize::gib(1));
        assert!(large > small);
        let restore = target.read_time(ByteSize::gib(1));
        assert!(restore.as_secs_f64() > 8.0 && restore.as_secs_f64() < 12.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// For any write pattern, restoring the latest backup reproduces
            /// the guest exactly as it was at that backup, and the report's
            /// accounting is internally consistent.
            #[test]
            fn restore_is_always_faithful(
                writes in proptest::collection::vec(
                    proptest::collection::vec(0u64..64, 0..6), 1..8),
                fulls_every in 1u32..5,
            ) {
                let mem = guest(64);
                let policy = BackupPolicy {
                    interval: Nanoseconds::from_secs(3600),
                    fulls_every,
                };
                let mut sim =
                    BackupSimulator::new(VmId::new(9), policy, BackupTarget::default()).unwrap();
                for interval_writes in &writes {
                    dirty_pages(&mem, interval_writes);
                    sim.run_interval(&mem, &[VcpuState::default()]).unwrap();
                }
                let expected = mem.checksum();
                let replacement = GuestMemory::flat(ByteSize::pages_of(64)).unwrap();
                let (_, rto) = sim.restore_latest(&replacement).unwrap();
                prop_assert_eq!(replacement.checksum(), expected);
                prop_assert!(rto >= BackupTarget::default().restore_setup);

                let report = sim.report();
                prop_assert_eq!(report.backups_taken as usize, writes.len());
                prop_assert!(report.fulls_taken >= 1);
                prop_assert!(report.longest_chain <= fulls_every.max(1));
                prop_assert!(report.bytes_stored <= report.full_equivalent_bytes);
            }
        }
    }
}
