//! The snapshot store: chains of full and incremental snapshots.

use std::collections::BTreeMap;

use rvisor_memory::GuestMemory;
use rvisor_types::{ByteSize, Error, Result, VmId};
use rvisor_vcpu::VcpuState;

use crate::snapshot::{SnapshotId, SnapshotKind, VmSnapshot};

/// Maximum length of an incremental chain before the store demands a new full
/// snapshot (long chains make restores slow and fragile).
pub const MAX_CHAIN_LENGTH: usize = 32;

/// Holds snapshots and resolves incremental chains for restore.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    snapshots: BTreeMap<SnapshotId, VmSnapshot>,
    next_id: u64,
}

impl SnapshotStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Total approximate bytes held across all snapshots.
    pub fn total_size(&self) -> ByteSize {
        ByteSize::new(
            self.snapshots
                .values()
                .map(|s| s.approx_size().as_u64())
                .sum(),
        )
    }

    /// Insert a snapshot, assigning it an id. Incremental snapshots must name
    /// an existing parent and must not exceed [`MAX_CHAIN_LENGTH`].
    pub fn insert(&mut self, mut snapshot: VmSnapshot) -> Result<SnapshotId> {
        if snapshot.kind == SnapshotKind::Incremental {
            let parent = snapshot
                .parent
                .ok_or_else(|| Error::Snapshot("incremental snapshot without a parent".into()))?;
            if !self.snapshots.contains_key(&parent) {
                return Err(Error::Snapshot(format!("parent {parent} does not exist")));
            }
            if self.chain_of(parent)?.len() >= MAX_CHAIN_LENGTH {
                return Err(Error::Snapshot(format!(
                    "chain rooted at {parent} already has {MAX_CHAIN_LENGTH} links; take a full snapshot"
                )));
            }
        }
        self.next_id += 1;
        let id = SnapshotId(self.next_id);
        snapshot.id = id;
        self.snapshots.insert(id, snapshot);
        Ok(id)
    }

    /// Look up a snapshot.
    pub fn get(&self, id: SnapshotId) -> Option<&VmSnapshot> {
        self.snapshots.get(&id)
    }

    /// All snapshots of a VM, oldest first.
    pub fn snapshots_of(&self, vm: VmId) -> Vec<&VmSnapshot> {
        self.snapshots.values().filter(|s| s.vm == vm).collect()
    }

    /// Delete a snapshot. Fails if another snapshot depends on it.
    pub fn delete(&mut self, id: SnapshotId) -> Result<()> {
        if self.snapshots.values().any(|s| s.parent == Some(id)) {
            return Err(Error::Snapshot(format!(
                "{id} has dependent incremental snapshots"
            )));
        }
        self.snapshots
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| Error::Snapshot(format!("{id} does not exist")))
    }

    /// The chain from the full ancestor down to `id`, in application order.
    pub fn chain_of(&self, id: SnapshotId) -> Result<Vec<&VmSnapshot>> {
        let mut chain = Vec::new();
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let snap = self
                .snapshots
                .get(&cur)
                .ok_or_else(|| Error::Snapshot(format!("{cur} missing from the store")))?;
            chain.push(snap);
            if chain.len() > MAX_CHAIN_LENGTH + 1 {
                return Err(Error::Snapshot("snapshot chain too long or cyclic".into()));
            }
            cursor = snap.parent;
        }
        if chain.last().map(|s| s.kind) != Some(SnapshotKind::Full) {
            return Err(Error::Snapshot(format!(
                "chain of {id} does not end in a full snapshot"
            )));
        }
        chain.reverse();
        Ok(chain)
    }

    /// Restore the VM state captured by `id` into `memory`, returning the
    /// vCPU states and the number of pages written.
    pub fn restore(&self, id: SnapshotId, memory: &GuestMemory) -> Result<(Vec<VcpuState>, u64)> {
        let chain = self.chain_of(id)?;
        let mut pages_written = 0u64;
        for snap in &chain {
            snap.memory.apply(memory)?;
            pages_written += snap.memory.page_count();
        }
        let target = chain.last().expect("chain is never empty");
        // After applying the whole chain the memory must match the checksum
        // recorded when the target snapshot was taken.
        if !target.verify_against(memory) {
            return Err(Error::Snapshot(format!(
                "restored memory does not match the checksum of {id} (corrupt chain?)"
            )));
        }
        Ok((target.vcpus.clone(), pages_written))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::MemorySnapshot;
    use rvisor_types::{GuestAddress, Nanoseconds, PAGE_SIZE};
    use std::collections::BTreeMap;

    fn memory() -> GuestMemory {
        GuestMemory::flat(ByteSize::pages_of(8)).unwrap()
    }

    fn full(vm: u32, mem: &GuestMemory) -> VmSnapshot {
        VmSnapshot::capture_full(
            VmId::new(vm),
            "full",
            Nanoseconds::ZERO,
            mem,
            vec![VcpuState::default()],
            BTreeMap::new(),
        )
        .unwrap()
    }

    #[test]
    fn full_then_incremental_chain_restores() {
        let mem = memory();
        let mut store = SnapshotStore::new();

        mem.write_u64(GuestAddress(0), 1).unwrap();
        mem.clear_dirty();
        let base_id = store.insert(full(1, &mem)).unwrap();

        mem.write_u64(GuestAddress(3 * PAGE_SIZE), 333).unwrap();
        let inc1 = VmSnapshot::capture_incremental(
            VmId::new(1),
            "inc1",
            Nanoseconds::from_secs(10),
            base_id,
            &mem,
            vec![VcpuState::default()],
            BTreeMap::new(),
        )
        .unwrap();
        let inc1_id = store.insert(inc1).unwrap();

        mem.write_u64(GuestAddress(5 * PAGE_SIZE), 555).unwrap();
        let inc2 = VmSnapshot::capture_incremental(
            VmId::new(1),
            "inc2",
            Nanoseconds::from_secs(20),
            inc1_id,
            &mem,
            vec![VcpuState::default()],
            BTreeMap::new(),
        )
        .unwrap();
        let inc2_id = store.insert(inc2).unwrap();

        // Restore the latest point into a fresh memory.
        let target = memory();
        let (vcpus, pages) = store.restore(inc2_id, &target).unwrap();
        assert_eq!(vcpus.len(), 1);
        assert_eq!(pages, 8 + 1 + 1);
        assert_eq!(target.read_u64(GuestAddress(0)).unwrap(), 1);
        assert_eq!(target.read_u64(GuestAddress(3 * PAGE_SIZE)).unwrap(), 333);
        assert_eq!(target.read_u64(GuestAddress(5 * PAGE_SIZE)).unwrap(), 555);

        // Restoring the intermediate point excludes later writes.
        let target_mid = memory();
        store.restore(inc1_id, &target_mid).unwrap();
        assert_eq!(
            target_mid.read_u64(GuestAddress(3 * PAGE_SIZE)).unwrap(),
            333
        );
        assert_eq!(target_mid.read_u64(GuestAddress(5 * PAGE_SIZE)).unwrap(), 0);

        assert_eq!(store.len(), 3);
        assert!(store.total_size().as_u64() > 0);
        assert_eq!(store.snapshots_of(VmId::new(1)).len(), 3);
        assert!(store.snapshots_of(VmId::new(9)).is_empty());
    }

    #[test]
    fn incremental_without_parent_rejected() {
        let mem = memory();
        let mut store = SnapshotStore::new();
        let mut snap = full(1, &mem);
        snap.kind = SnapshotKind::Incremental;
        snap.parent = None;
        assert!(store.insert(snap).is_err());

        let mut snap = full(1, &mem);
        snap.kind = SnapshotKind::Incremental;
        snap.parent = Some(SnapshotId(99));
        assert!(store.insert(snap).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn delete_respects_dependencies() {
        let mem = memory();
        let mut store = SnapshotStore::new();
        mem.clear_dirty();
        let base = store.insert(full(1, &mem)).unwrap();
        mem.write_u64(GuestAddress(0), 5).unwrap();
        let inc = VmSnapshot::capture_incremental(
            VmId::new(1),
            "inc",
            Nanoseconds::ZERO,
            base,
            &mem,
            vec![],
            BTreeMap::new(),
        )
        .unwrap();
        let inc_id = store.insert(inc).unwrap();
        assert!(store.delete(base).is_err());
        store.delete(inc_id).unwrap();
        store.delete(base).unwrap();
        assert!(store.delete(base).is_err());
    }

    #[test]
    fn restore_detects_corrupt_chain() {
        let mem = memory();
        let mut store = SnapshotStore::new();
        mem.write_u64(GuestAddress(100), 7).unwrap();
        mem.clear_dirty();
        let base = store.insert(full(1, &mem)).unwrap();
        mem.write_u64(GuestAddress(2 * PAGE_SIZE), 2).unwrap();
        let inc = VmSnapshot::capture_incremental(
            VmId::new(1),
            "inc",
            Nanoseconds::ZERO,
            base,
            &mem,
            vec![],
            BTreeMap::new(),
        )
        .unwrap();
        let inc_id = store.insert(inc).unwrap();
        // Corrupt the base snapshot's stored pages.
        if let Some(snap) = store.snapshots.get_mut(&base) {
            snap.memory = MemorySnapshot {
                total_size: snap.memory.total_size,
                pages: vec![],
            };
        }
        let target = memory();
        assert!(store.restore(inc_id, &target).is_err());
    }

    #[test]
    fn missing_snapshot_errors() {
        let store = SnapshotStore::new();
        let mem = memory();
        assert!(store.restore(SnapshotId(1), &mem).is_err());
        assert!(store.chain_of(SnapshotId(1)).is_err());
        assert!(store.get(SnapshotId(1)).is_none());
    }

    #[test]
    fn chain_length_is_bounded() {
        let mem = memory();
        let mut store = SnapshotStore::new();
        mem.clear_dirty();
        let mut parent = store.insert(full(1, &mem)).unwrap();
        for i in 0..MAX_CHAIN_LENGTH {
            mem.write_u64(GuestAddress(0), i as u64).unwrap();
            let inc = VmSnapshot::capture_incremental(
                VmId::new(1),
                "inc",
                Nanoseconds::ZERO,
                parent,
                &mem,
                vec![],
                BTreeMap::new(),
            )
            .unwrap();
            match store.insert(inc) {
                Ok(id) => parent = id,
                Err(_) => {
                    assert!(i >= MAX_CHAIN_LENGTH - 2, "chain refused too early at {i}");
                    return;
                }
            }
        }
        // One more must fail.
        mem.write_u64(GuestAddress(0), 999).unwrap();
        let inc = VmSnapshot::capture_incremental(
            VmId::new(1),
            "inc",
            Nanoseconds::ZERO,
            parent,
            &mem,
            vec![],
            BTreeMap::new(),
        )
        .unwrap();
        assert!(store.insert(inc).is_err());
    }
}
