//! Content-addressed chunk store and manifest-based restore for
//! deduplicated disaster recovery.
//!
//! The DR endpoint stores guest pages as *chunks* keyed by the word-wise
//! [`fingerprint`] kernel. Chunks are write-once and refcounted: interning a
//! page whose bytes are already stored bumps a refcount instead of storing a
//! second copy, and releasing the last reference garbage-collects the entry.
//! A fingerprint collision (two different pages hashing alike) is detected by
//! a full-page byte compare against the stored bytes and degrades to a fresh
//! chunk under a new ordinal — never to corruption.
//!
//! A [`Manifest`] records one backup epoch: every field of the captured
//! [`VmSnapshot`] except the page bytes, which it holds as
//! `(page index, chunk id)` references. [`CasStore::reconstruct`] rebuilds
//! the original snapshot byte-identically, and [`CasStore::restore`] applies
//! a manifest chain (full parent plus incremental children) directly to
//! guest memory with the same checksum verification as
//! [`crate::SnapshotStore::restore`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rvisor_memory::{fingerprint, GuestMemory};
use rvisor_types::{ByteSize, Error, Nanoseconds, Result, VmId};
use rvisor_vcpu::VcpuState;

use crate::snapshot::{MemorySnapshot, SnapshotId, SnapshotKind, VmSnapshot};
use crate::store::MAX_CHAIN_LENGTH;

/// Identifies a chunk in a [`ChunkStore`].
///
/// The fingerprint alone is not the identity: two distinct pages may collide
/// on it, in which case they are stored under distinct `ordinal`s. Ordinals
/// are never reused, even after the chunk they named is garbage-collected,
/// so a stale `ChunkId` can never silently resolve to different bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId {
    /// Word-wise FNV-1a fingerprint of the chunk bytes.
    pub fingerprint: u64,
    /// Disambiguates fingerprint collisions; 0 for the first chunk stored
    /// under a fingerprint.
    pub ordinal: u32,
}

impl std::fmt::Display for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chunk-{:016x}.{}", self.fingerprint, self.ordinal)
    }
}

#[derive(Debug)]
struct ChunkEntry {
    bytes: Vec<u8>,
    refs: u64,
}

#[derive(Debug, Default)]
struct ChunkSlot {
    entries: BTreeMap<u32, ChunkEntry>,
    /// Next ordinal to assign under this fingerprint. Monotonic — GC removes
    /// entries but never rewinds this, so chunk ids are never recycled.
    next_ordinal: u32,
}

/// Write-once, refcounted, fingerprint-keyed page store.
#[derive(Debug, Default)]
pub struct ChunkStore {
    slots: BTreeMap<u64, ChunkSlot>,
    stored_bytes: u64,
    chunk_count: u64,
    total_refs: u64,
}

impl ChunkStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `bytes`, returning the chunk id and whether the bytes were
    /// *novel* (stored by this call) or deduplicated against an existing
    /// chunk. Either way the returned id holds one new reference.
    pub fn intern(&mut self, bytes: &[u8]) -> (ChunkId, bool) {
        self.intern_keyed(fingerprint(bytes), bytes)
    }

    /// [`intern`](Self::intern) with the fingerprint supplied by the caller.
    /// Split out so tests can force two different byte strings into the same
    /// fingerprint slot and exercise the collision path, which real FNV-1a
    /// inputs cannot practically produce.
    fn intern_keyed(&mut self, fp: u64, bytes: &[u8]) -> (ChunkId, bool) {
        let slot = self.slots.entry(fp).or_default();
        for (ordinal, entry) in slot.entries.iter_mut() {
            if entry.bytes == bytes {
                entry.refs += 1;
                self.total_refs += 1;
                return (
                    ChunkId {
                        fingerprint: fp,
                        ordinal: *ordinal,
                    },
                    false,
                );
            }
        }
        // Fingerprint miss or collision: store fresh bytes under the next
        // ordinal. A collision costs one extra stored copy, nothing else.
        let ordinal = slot.next_ordinal;
        slot.next_ordinal += 1;
        slot.entries.insert(
            ordinal,
            ChunkEntry {
                bytes: bytes.to_vec(),
                refs: 1,
            },
        );
        self.stored_bytes += bytes.len() as u64;
        self.chunk_count += 1;
        self.total_refs += 1;
        (
            ChunkId {
                fingerprint: fp,
                ordinal,
            },
            true,
        )
    }

    /// The stored bytes of a chunk.
    pub fn get(&self, id: ChunkId) -> Option<&[u8]> {
        self.slots
            .get(&id.fingerprint)
            .and_then(|s| s.entries.get(&id.ordinal))
            .map(|e| e.bytes.as_slice())
    }

    /// Drop one reference to `id`; the entry is garbage-collected when the
    /// last reference goes. Errors on an unknown id (double release).
    pub fn release(&mut self, id: ChunkId) -> Result<()> {
        let slot = self
            .slots
            .get_mut(&id.fingerprint)
            .ok_or_else(|| Error::Snapshot(format!("release of unknown {id}")))?;
        let entry = slot
            .entries
            .get_mut(&id.ordinal)
            .ok_or_else(|| Error::Snapshot(format!("release of unknown {id}")))?;
        entry.refs -= 1;
        self.total_refs -= 1;
        if entry.refs == 0 {
            let len = entry.bytes.len() as u64;
            slot.entries.remove(&id.ordinal);
            self.stored_bytes -= len;
            self.chunk_count -= 1;
        }
        Ok(())
    }

    /// Number of distinct chunks stored.
    pub fn chunks(&self) -> u64 {
        self.chunk_count
    }

    /// Bytes of chunk payload stored (each unique page counted once).
    pub fn stored_bytes(&self) -> ByteSize {
        ByteSize::new(self.stored_bytes)
    }

    /// Total outstanding references across all chunks (each page slot of
    /// each live manifest counts one).
    pub fn total_refs(&self) -> u64 {
        self.total_refs
    }
}

/// Identifies a manifest within a [`CasStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ManifestId(pub u64);

impl std::fmt::Display for ManifestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manifest-{}", self.0)
    }
}

/// One backup epoch of one VM: every [`VmSnapshot`] field, with page bytes
/// replaced by chunk references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Identifier assigned by the store (zero until stored).
    pub id: ManifestId,
    /// The manifest chain parent (the epoch an incremental is relative to).
    pub parent: Option<ManifestId>,
    /// `id` field of the ingested snapshot, preserved for byte-identical
    /// reconstruction.
    pub snapshot_id: SnapshotId,
    /// `parent` field of the ingested snapshot, preserved likewise.
    pub snapshot_parent: Option<SnapshotId>,
    /// The VM this epoch belongs to.
    pub vm: VmId,
    /// Human-readable snapshot name.
    pub name: String,
    /// Full or incremental.
    pub kind: SnapshotKind,
    /// Simulated time of capture.
    pub taken_at: Nanoseconds,
    /// Architectural state of every vCPU.
    pub vcpus: Vec<VcpuState>,
    /// Total guest memory size the epoch describes.
    pub total_size: ByteSize,
    /// `(global page index, chunk id)` pairs, ascending by index.
    pub pages: Vec<(u64, ChunkId)>,
    /// Opaque per-device state blobs keyed by device name.
    pub device_state: BTreeMap<String, Vec<u8>>,
    /// Additive checksum of guest memory at capture time.
    pub memory_checksum: u64,
}

/// Per-ingest dedup accounting, the numbers the wire path ships by.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Pages whose bytes were not yet stored — these must cross the wire.
    pub chunks_novel: u64,
    /// Pages deduplicated against an already-stored chunk — only a
    /// reference crosses the wire.
    pub chunks_deduped: u64,
    /// Payload bytes of the novel chunks.
    pub bytes_novel: u64,
    /// Payload bytes the dedup avoided storing (and shipping).
    pub bytes_deduped: u64,
}

/// A content-addressed DR store: a [`ChunkStore`] plus the manifests that
/// reference into it.
#[derive(Debug, Default)]
pub struct CasStore {
    chunks: ChunkStore,
    manifests: BTreeMap<ManifestId, Manifest>,
    next_id: u64,
}

impl CasStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a captured snapshot: intern every page, record a manifest.
    /// `parent` is the manifest of the previous epoch for incremental
    /// captures (chain rules mirror [`crate::SnapshotStore::insert`]).
    pub fn ingest(
        &mut self,
        snapshot: &VmSnapshot,
        parent: Option<ManifestId>,
    ) -> Result<(ManifestId, IngestStats)> {
        let parent = match snapshot.kind {
            SnapshotKind::Full => None,
            SnapshotKind::Incremental => {
                let p = parent.ok_or_else(|| {
                    Error::Snapshot("incremental manifest without a parent".into())
                })?;
                if !self.manifests.contains_key(&p) {
                    return Err(Error::Snapshot(format!("parent {p} does not exist")));
                }
                if self.chain_of(p)?.len() >= MAX_CHAIN_LENGTH {
                    return Err(Error::Snapshot(format!(
                        "chain rooted at {p} already has {MAX_CHAIN_LENGTH} links; take a full snapshot"
                    )));
                }
                Some(p)
            }
        };
        let mut stats = IngestStats::default();
        let mut pages = Vec::with_capacity(snapshot.memory.pages.len());
        for (index, bytes) in &snapshot.memory.pages {
            let (id, novel) = self.chunks.intern(bytes);
            if novel {
                stats.chunks_novel += 1;
                stats.bytes_novel += bytes.len() as u64;
            } else {
                stats.chunks_deduped += 1;
                stats.bytes_deduped += bytes.len() as u64;
            }
            pages.push((*index, id));
        }
        self.next_id += 1;
        let id = ManifestId(self.next_id);
        self.manifests.insert(
            id,
            Manifest {
                id,
                parent,
                snapshot_id: snapshot.id,
                snapshot_parent: snapshot.parent,
                vm: snapshot.vm,
                name: snapshot.name.clone(),
                kind: snapshot.kind,
                taken_at: snapshot.taken_at,
                vcpus: snapshot.vcpus.clone(),
                total_size: snapshot.memory.total_size,
                pages,
                device_state: snapshot.device_state.clone(),
                memory_checksum: snapshot.memory_checksum,
            },
        );
        Ok((id, stats))
    }

    /// Look up a manifest.
    pub fn get(&self, id: ManifestId) -> Option<&Manifest> {
        self.manifests.get(&id)
    }

    /// Rebuild the ingested [`VmSnapshot`] byte-identically from a manifest.
    pub fn reconstruct(&self, id: ManifestId) -> Result<VmSnapshot> {
        let manifest = self
            .manifests
            .get(&id)
            .ok_or_else(|| Error::Snapshot(format!("{id} missing from the store")))?;
        let mut pages = Vec::with_capacity(manifest.pages.len());
        for (index, chunk) in &manifest.pages {
            let bytes = self.chunks.get(*chunk).ok_or_else(|| {
                Error::Snapshot(format!("{id} references missing {chunk} (page {index})"))
            })?;
            pages.push((*index, bytes.to_vec()));
        }
        Ok(VmSnapshot {
            id: manifest.snapshot_id,
            vm: manifest.vm,
            name: manifest.name.clone(),
            kind: manifest.kind,
            parent: manifest.snapshot_parent,
            taken_at: manifest.taken_at,
            vcpus: manifest.vcpus.clone(),
            memory: MemorySnapshot {
                total_size: manifest.total_size,
                pages,
            },
            device_state: manifest.device_state.clone(),
            memory_checksum: manifest.memory_checksum,
        })
    }

    /// The chain from the full ancestor down to `id`, in application order.
    pub fn chain_of(&self, id: ManifestId) -> Result<Vec<&Manifest>> {
        let mut chain = Vec::new();
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let manifest = self
                .manifests
                .get(&cur)
                .ok_or_else(|| Error::Snapshot(format!("{cur} missing from the store")))?;
            chain.push(manifest);
            if chain.len() > MAX_CHAIN_LENGTH + 1 {
                return Err(Error::Snapshot("manifest chain too long or cyclic".into()));
            }
            cursor = manifest.parent;
        }
        if chain.last().map(|m| m.kind) != Some(SnapshotKind::Full) {
            return Err(Error::Snapshot(format!(
                "chain of {id} does not end in a full manifest"
            )));
        }
        chain.reverse();
        Ok(chain)
    }

    /// Restore the epoch captured by `id` into `memory`, returning the vCPU
    /// states and the number of pages written. Applies the whole manifest
    /// chain oldest-first and verifies the target epoch's memory checksum,
    /// exactly like [`crate::SnapshotStore::restore`].
    pub fn restore(&self, id: ManifestId, memory: &GuestMemory) -> Result<(Vec<VcpuState>, u64)> {
        let chain: Vec<ManifestId> = self.chain_of(id)?.iter().map(|m| m.id).collect();
        let mut pages_written = 0u64;
        let mut target = None;
        for link in chain {
            let snap = self.reconstruct(link)?;
            snap.memory.apply(memory)?;
            pages_written += snap.memory.page_count();
            target = Some(snap);
        }
        let target = target.expect("chain is never empty");
        if !target.verify_against(memory) {
            return Err(Error::Snapshot(format!(
                "restored memory does not match the checksum of {id} (corrupt chain?)"
            )));
        }
        Ok((target.vcpus, pages_written))
    }

    /// Bytes that must be read back to restore the epoch `id`: the page
    /// data, vCPU state and device blobs of every link in its chain.
    pub fn chain_restore_size(&self, id: ManifestId) -> Result<ByteSize> {
        let mut total = 0u64;
        for manifest in self.chain_of(id)? {
            let devices: u64 = manifest.device_state.values().map(|b| b.len() as u64).sum();
            let vcpus = manifest.vcpus.len() as u64 * std::mem::size_of::<VcpuState>() as u64;
            let pages: u64 = manifest
                .pages
                .iter()
                .map(|(_, c)| self.chunks.get(*c).map_or(0, |b| b.len() as u64))
                .sum();
            total += pages + vcpus + devices;
        }
        Ok(ByteSize::new(total))
    }

    /// Retire an epoch: drop the manifest and release every chunk reference
    /// it holds (unreferenced chunks are garbage-collected). Fails if a
    /// dependent incremental manifest still exists.
    pub fn retire(&mut self, id: ManifestId) -> Result<()> {
        if self.manifests.values().any(|m| m.parent == Some(id)) {
            return Err(Error::Snapshot(format!("{id} has dependent manifests")));
        }
        let manifest = self
            .manifests
            .remove(&id)
            .ok_or_else(|| Error::Snapshot(format!("{id} does not exist")))?;
        for (_, chunk) in &manifest.pages {
            self.chunks.release(*chunk)?;
        }
        Ok(())
    }

    /// Retire the epoch `id` and every ancestor in its chain, newest first —
    /// the GC path for a lost or departed VM.
    pub fn retire_chain(&mut self, id: ManifestId) -> Result<()> {
        let chain: Vec<ManifestId> = self.chain_of(id)?.iter().map(|m| m.id).collect();
        for link in chain.into_iter().rev() {
            self.retire(link)?;
        }
        Ok(())
    }

    /// Number of manifests held.
    pub fn manifest_count(&self) -> usize {
        self.manifests.len()
    }

    /// Number of distinct chunks stored.
    pub fn chunk_count(&self) -> u64 {
        self.chunks.chunks()
    }

    /// Bytes of unique chunk payload stored — the store's occupancy.
    pub fn stored_bytes(&self) -> ByteSize {
        self.chunks.stored_bytes()
    }

    /// Outstanding chunk references across all manifests.
    pub fn total_refs(&self) -> u64 {
        self.chunks.total_refs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SnapshotStore;
    use rvisor_types::{GuestAddress, PAGE_SIZE};

    fn memory(pages: u64) -> GuestMemory {
        GuestMemory::flat(ByteSize::pages_of(pages)).unwrap()
    }

    fn capture(vm: u32, mem: &GuestMemory) -> VmSnapshot {
        VmSnapshot::capture_full(
            VmId::new(vm),
            "full",
            Nanoseconds::ZERO,
            mem,
            vec![VcpuState::default()],
            BTreeMap::new(),
        )
        .unwrap()
    }

    #[test]
    fn intern_dedups_and_refcounts() {
        let mut store = ChunkStore::new();
        let page_a = vec![7u8; PAGE_SIZE as usize];
        let page_b = vec![9u8; PAGE_SIZE as usize];

        let (a1, novel) = store.intern(&page_a);
        assert!(novel);
        let (a2, novel) = store.intern(&page_a);
        assert!(!novel);
        assert_eq!(a1, a2);
        let (b1, novel) = store.intern(&page_b);
        assert!(novel);
        assert_ne!(a1, b1);

        assert_eq!(store.chunks(), 2);
        assert_eq!(store.total_refs(), 3);
        assert_eq!(store.stored_bytes().as_u64(), 2 * PAGE_SIZE);
        assert_eq!(store.get(a1).unwrap(), page_a.as_slice());
        assert_eq!(store.get(b1).unwrap(), page_b.as_slice());
    }

    #[test]
    fn release_garbage_collects_at_zero_refs() {
        let mut store = ChunkStore::new();
        let page = vec![3u8; PAGE_SIZE as usize];
        let (id, _) = store.intern(&page);
        store.intern(&page);
        store.release(id).unwrap();
        assert_eq!(store.chunks(), 1, "one ref still outstanding");
        store.release(id).unwrap();
        assert_eq!(store.chunks(), 0);
        assert_eq!(store.stored_bytes().as_u64(), 0);
        assert!(store.get(id).is_none());
        assert!(store.release(id).is_err(), "double release is an error");
    }

    #[test]
    fn fingerprint_collision_degrades_to_fresh_chunk() {
        let mut store = ChunkStore::new();
        // Force two different byte strings into the same fingerprint slot —
        // the full-page compare must notice and assign a new ordinal.
        let (first, novel) = store.intern_keyed(0xdead_beef, b"one page of bytes");
        assert!(novel);
        let (second, novel) = store.intern_keyed(0xdead_beef, b"a different page!");
        assert!(novel, "colliding bytes must be stored fresh");
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_ne!(first.ordinal, second.ordinal);
        assert_eq!(store.get(first).unwrap(), b"one page of bytes");
        assert_eq!(store.get(second).unwrap(), b"a different page!");

        // Re-interning either byte string still finds its own chunk.
        let (again, novel) = store.intern_keyed(0xdead_beef, b"a different page!");
        assert!(!novel);
        assert_eq!(again, second);
    }

    #[test]
    fn ordinals_are_never_reused_after_gc() {
        let mut store = ChunkStore::new();
        let (first, _) = store.intern_keyed(1, b"aaaa");
        store.release(first).unwrap();
        let (second, _) = store.intern_keyed(1, b"aaaa");
        assert_ne!(
            first.ordinal, second.ordinal,
            "a GC'd ordinal must stay dead so stale ids cannot alias"
        );
    }

    #[test]
    fn ingest_then_reconstruct_is_byte_identical() {
        let mem = memory(8);
        mem.write_u64(GuestAddress(0), 0x1111).unwrap();
        mem.write_u64(GuestAddress(5 * PAGE_SIZE), 0x5555).unwrap();
        let mut snap = capture(1, &mem);
        snap.id = SnapshotId(42);
        snap.device_state.insert("nic0".into(), vec![1, 2, 3]);

        let mut cas = CasStore::new();
        let (id, stats) = cas.ingest(&snap, None).unwrap();
        let rebuilt = cas.reconstruct(id).unwrap();
        assert_eq!(rebuilt, snap, "reconstruction must be byte-identical");

        // 8 pages: six are all-zero and dedup to one chunk after the first.
        assert_eq!(stats.chunks_novel + stats.chunks_deduped, 8);
        assert_eq!(stats.chunks_novel, 3, "two distinct pages + one zero page");
        assert_eq!(stats.chunks_deduped, 5);
        assert_eq!(stats.bytes_novel, 3 * PAGE_SIZE);
        assert_eq!(stats.bytes_deduped, 5 * PAGE_SIZE);
        assert_eq!(cas.stored_bytes().as_u64(), 3 * PAGE_SIZE);
    }

    #[test]
    fn identical_vms_share_chunks_across_ingests() {
        let mem_a = memory(8);
        let mem_b = memory(8);
        for m in [&mem_a, &mem_b] {
            m.write_u64(GuestAddress(0), 77).unwrap();
        }
        let mut cas = CasStore::new();
        let (_, first) = cas.ingest(&capture(1, &mem_a), None).unwrap();
        let (_, second) = cas.ingest(&capture(2, &mem_b), None).unwrap();
        assert_eq!(first.chunks_novel, 2);
        assert_eq!(
            second.chunks_novel, 0,
            "an identical twin ships zero novel chunks"
        );
        assert_eq!(second.chunks_deduped, 8);
        assert_eq!(cas.stored_bytes().as_u64(), 2 * PAGE_SIZE);
    }

    #[test]
    fn manifest_chain_restores_like_the_snapshot_store() {
        let mem = memory(8);
        let mut cas = CasStore::new();
        let mut plain = SnapshotStore::new();

        mem.write_u64(GuestAddress(0), 1).unwrap();
        mem.clear_dirty();
        let full_snap = capture(1, &mem);
        let plain_base = plain.insert(full_snap.clone()).unwrap();
        let (cas_base, _) = cas.ingest(&full_snap, None).unwrap();

        mem.write_u64(GuestAddress(3 * PAGE_SIZE), 333).unwrap();
        let inc = VmSnapshot::capture_incremental(
            VmId::new(1),
            "inc",
            Nanoseconds::from_secs(10),
            plain_base,
            &mem,
            vec![VcpuState::default()],
            BTreeMap::new(),
        )
        .unwrap();
        let plain_inc = plain.insert(inc.clone()).unwrap();
        let (cas_inc, stats) = cas.ingest(&inc, Some(cas_base)).unwrap();
        assert_eq!(stats.chunks_novel, 1, "only the dirtied page is novel");

        let via_plain = memory(8);
        let via_cas = memory(8);
        let (vcpus_p, pages_p) = plain.restore(plain_inc, &via_plain).unwrap();
        let (vcpus_c, pages_c) = cas.restore(cas_inc, &via_cas).unwrap();
        assert_eq!(vcpus_p, vcpus_c);
        assert_eq!(pages_p, pages_c);
        assert_eq!(via_plain.checksum(), via_cas.checksum());
        assert_eq!(via_cas.read_u64(GuestAddress(3 * PAGE_SIZE)).unwrap(), 333);

        assert!(
            cas.chain_restore_size(cas_inc).unwrap() > cas.chain_restore_size(cas_base).unwrap()
        );
    }

    #[test]
    fn incremental_chain_rules_are_enforced() {
        let mem = memory(4);
        let mut cas = CasStore::new();
        mem.clear_dirty();
        mem.write_u64(GuestAddress(0), 9).unwrap();
        let mut inc = VmSnapshot::capture_incremental(
            VmId::new(1),
            "orphan",
            Nanoseconds::ZERO,
            SnapshotId(1),
            &mem,
            vec![],
            BTreeMap::new(),
        )
        .unwrap();
        assert!(
            cas.ingest(&inc, None).is_err(),
            "incremental needs a parent"
        );
        assert!(
            cas.ingest(&inc, Some(ManifestId(99))).is_err(),
            "parent must exist"
        );
        inc.kind = SnapshotKind::Full;
        inc.parent = None;
        let (id, _) = cas.ingest(&inc, None).unwrap();
        assert!(cas.get(id).is_some());
        assert!(cas.reconstruct(ManifestId(99)).is_err());
        assert!(cas.restore(ManifestId(99), &mem).is_err());
    }

    #[test]
    fn retire_releases_chunks_and_respects_dependents() {
        let mem = memory(8);
        let mut cas = CasStore::new();
        mem.write_u64(GuestAddress(0), 11).unwrap();
        mem.clear_dirty();
        let full_snap = capture(1, &mem);
        let (base, _) = cas.ingest(&full_snap, None).unwrap();

        mem.write_u64(GuestAddress(2 * PAGE_SIZE), 22).unwrap();
        let inc = VmSnapshot::capture_incremental(
            VmId::new(1),
            "inc",
            Nanoseconds::ZERO,
            SnapshotId(1),
            &mem,
            vec![],
            BTreeMap::new(),
        )
        .unwrap();
        let (inc_id, _) = cas.ingest(&inc, Some(base)).unwrap();

        assert!(
            cas.retire(base).is_err(),
            "dependent manifest blocks retire"
        );
        cas.retire_chain(inc_id).unwrap();
        assert_eq!(cas.manifest_count(), 0);
        assert_eq!(cas.chunk_count(), 0, "all chunks garbage-collected");
        assert_eq!(cas.stored_bytes().as_u64(), 0);
        assert_eq!(cas.total_refs(), 0);
    }

    #[test]
    fn restore_detects_corrupt_chain() {
        let mem = memory(4);
        let mut cas = CasStore::new();
        mem.write_u64(GuestAddress(0), 5).unwrap();
        let snap = capture(1, &mem);
        let (id, _) = cas.ingest(&snap, None).unwrap();
        // Tamper with the recorded checksum: the chain applies cleanly but
        // the final verification must fail.
        cas.manifests.get_mut(&id).unwrap().memory_checksum ^= 1;
        let target = memory(4);
        assert!(cas.restore(id, &target).is_err());
    }

    #[test]
    fn chunk_and_manifest_ids_display() {
        assert_eq!(
            ChunkId {
                fingerprint: 0xabc,
                ordinal: 2
            }
            .to_string(),
            "chunk-0000000000000abc.2"
        );
        assert_eq!(ManifestId(7).to_string(), "manifest-7");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// For any dirty pattern across any number of epochs, restoring
            /// any epoch from the content-addressed store is byte-identical
            /// to restoring the same captures from the plain snapshot
            /// store, the dedup accounting conserves pages, and retiring
            /// the whole chain garbage-collects every chunk.
            #[test]
            fn property_cas_restore_equals_plain_restore(
                epoch_writes in proptest::collection::vec(
                    proptest::collection::vec((0u64..16, 1u64..1000), 0..6), 1..8),
                restore_at in 0usize..8,
            ) {
                let mem = memory(16);
                let mut cas = CasStore::new();
                let mut plain = SnapshotStore::new();
                let mut plain_ids: Vec<SnapshotId> = Vec::new();
                let mut cas_ids: Vec<ManifestId> = Vec::new();
                for (i, writes) in epoch_writes.iter().enumerate() {
                    for &(page, val) in writes {
                        mem.write_u64(GuestAddress(page * PAGE_SIZE), val).unwrap();
                    }
                    let at = Nanoseconds::from_secs(i as u64);
                    let snap = if i == 0 {
                        let s = VmSnapshot::capture_full(
                            VmId::new(1),
                            "epoch",
                            at,
                            &mem,
                            vec![VcpuState::default()],
                            BTreeMap::new(),
                        )
                        .unwrap();
                        mem.clear_dirty();
                        s
                    } else {
                        VmSnapshot::capture_incremental(
                            VmId::new(1),
                            "epoch",
                            at,
                            *plain_ids.last().unwrap(),
                            &mem,
                            vec![VcpuState::default()],
                            BTreeMap::new(),
                        )
                        .unwrap()
                    };
                    let (m, stats) = cas.ingest(&snap, cas_ids.last().copied()).unwrap();
                    prop_assert_eq!(
                        stats.chunks_novel + stats.chunks_deduped,
                        snap.memory.page_count(),
                        "dedup accounting must conserve pages"
                    );
                    plain_ids.push(plain.insert(snap).unwrap());
                    cas_ids.push(m);
                }
                let target = restore_at.min(epoch_writes.len() - 1);
                let via_plain = memory(16);
                let via_cas = memory(16);
                let (vp, pp) = plain.restore(plain_ids[target], &via_plain).unwrap();
                let (vc, pc) = cas.restore(cas_ids[target], &via_cas).unwrap();
                prop_assert_eq!(vp, vc);
                prop_assert_eq!(pp, pc);
                prop_assert_eq!(via_plain.checksum(), via_cas.checksum());
                // Retiring the whole chain garbage-collects every chunk.
                cas.retire_chain(*cas_ids.last().unwrap()).unwrap();
                prop_assert_eq!(cas.manifest_count(), 0);
                prop_assert_eq!(cas.chunk_count(), 0);
                prop_assert_eq!(cas.stored_bytes().as_u64(), 0);
            }
        }
    }
}
