//! # rvisor-snapshot
//!
//! Snapshot and restore of VM state, the substrate of three of the
//! operational features the source material cares about — backups, disaster
//! recovery and template provisioning — and of live migration's final
//! stop-and-copy phase.
//!
//! * [`VmSnapshot`] — a point-in-time capture of vCPU architectural state,
//!   guest memory (full or dirty-page incremental) and opaque device blobs.
//! * [`SnapshotStore`] — keeps snapshot chains (a full parent plus
//!   incremental children) and restores any point in a chain.
//! * [`ExportManifest`] — a portable, human-readable description of an
//!   exported VM (an OVF-style envelope) with integrity checksums.
//! * [`backup`] — backup policies (full/incremental cadence), a simulator
//!   that runs them against a live guest, and RPO/RTO accounting for the
//!   disaster-recovery experiment (E14).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backup;
pub mod manifest;
pub mod snapshot;
pub mod store;

pub use backup::{BackupPolicy, BackupReport, BackupSimulator, BackupTarget};
pub use manifest::ExportManifest;
pub use snapshot::{MemorySnapshot, SnapshotId, SnapshotKind, VmSnapshot};
pub use store::SnapshotStore;
