//! # rvisor-snapshot
//!
//! Snapshot and restore of VM state, the substrate of three of the
//! operational features the source material cares about — backups, disaster
//! recovery and template provisioning — and of live migration's final
//! stop-and-copy phase.
//!
//! * [`VmSnapshot`] — a point-in-time capture of vCPU architectural state,
//!   guest memory (full or dirty-page incremental) and opaque device blobs.
//! * [`SnapshotStore`] — keeps snapshot chains (a full parent plus
//!   incremental children) and restores any point in a chain.
//! * [`ExportManifest`] — a portable, human-readable description of an
//!   exported VM (an OVF-style envelope) with integrity checksums.
//! * [`backup`] — backup policies (full/incremental cadence), a simulator
//!   that runs them against a live guest, and RPO/RTO accounting for the
//!   disaster-recovery experiment (E14).
//! * [`cas`] — the content-addressed store behind deduplicated DR:
//!   [`ChunkStore`], [`Manifest`], [`CasStore`].
//!
//! ## The content-addressed store
//!
//! [`CasStore`] deduplicates DR storage at page granularity. Every page of a
//! captured [`VmSnapshot`] is *interned* into a [`ChunkStore`] keyed by the
//! word-wise [`rvisor_memory::fingerprint`] kernel (the same kernel KSM
//! uses): identical pages across VMs and across backup epochs are stored
//! once, refcounted, and each epoch is recorded as a [`Manifest`] of
//! `(page index, chunk id)` references from which the original snapshot is
//! reconstructed byte-identically.
//!
//! Model assumptions, in decreasing order of importance:
//!
//! * **Collisions degrade, never corrupt.** A chunk's identity is its
//!   fingerprint *plus* an ordinal. Interning compares the full page bytes
//!   against every chunk already stored under the fingerprint; different
//!   bytes get a fresh ordinal. A fingerprint collision therefore costs one
//!   extra stored (and shipped) copy — restore correctness never depends on
//!   the hash being collision-free.
//! * **GC is refcount-driven and immediate.** Retiring a manifest releases
//!   its chunk references; a chunk is dropped the moment its last reference
//!   goes. There is no deferred sweep, no grace period, and ordinals are
//!   never reused, so a stale chunk id can never alias new bytes.
//! * **What dedup does *not* model:** chunk index lookup cost (interning is
//!   charged zero simulated time — only the shipped bytes pay wire time),
//!   sub-page or content-defined chunk boundaries (chunks are exactly one
//!   guest page), compression of stored chunks, and storage-media failures
//!   (the store is durable by assumption; only *wire* corruption is modeled,
//!   by the frame checksums in `rvisor-migrate`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backup;
pub mod cas;
pub mod manifest;
pub mod snapshot;
pub mod store;

pub use backup::{BackupPolicy, BackupReport, BackupSimulator, BackupTarget};
pub use cas::{CasStore, ChunkId, ChunkStore, IngestStats, Manifest, ManifestId};
pub use manifest::ExportManifest;
pub use snapshot::{MemorySnapshot, SnapshotId, SnapshotKind, VmSnapshot};
pub use store::SnapshotStore;
