//! A single contiguous region of guest physical memory.

use parking_lot::RwLock;
use rvisor_types::{Error, GuestAddress, GuestRegion, Result, PAGE_SIZE};

use crate::bitmap::DirtyBitmap;

/// A contiguous, heap-backed slab of guest physical memory.
///
/// Every write is recorded in the region's [`DirtyBitmap`] so that higher
/// layers (live migration, incremental snapshots) can observe which pages
/// changed without instrumenting the guest.
#[derive(Debug)]
pub struct MemoryRegion {
    range: GuestRegion,
    data: RwLock<Box<[u8]>>,
    dirty: DirtyBitmap,
}

impl MemoryRegion {
    /// Allocate a zero-filled region covering `[start, start+len)`.
    ///
    /// `len` must be non-zero and page aligned, and `start` must be page
    /// aligned; real VMMs hand out memory in page-sized slabs and the rest of
    /// the stack (dirty tracking, ballooning, migration) relies on it.
    pub fn new(start: GuestAddress, len: u64) -> Result<Self> {
        if len == 0 {
            return Err(Error::InvalidRegionConfig(
                "region length must be non-zero".into(),
            ));
        }
        if !len.is_multiple_of(PAGE_SIZE) {
            return Err(Error::InvalidRegionConfig(format!(
                "region length {len:#x} is not a multiple of the page size"
            )));
        }
        if !start.is_page_aligned() {
            return Err(Error::InvalidRegionConfig(format!(
                "region start {start} is not page aligned"
            )));
        }
        if start.checked_add(len).is_none() {
            return Err(Error::InvalidRegionConfig(
                "region wraps the address space".into(),
            ));
        }
        let pages = len / PAGE_SIZE;
        Ok(MemoryRegion {
            range: GuestRegion::new(start, len),
            data: RwLock::new(vec![0u8; len as usize].into_boxed_slice()),
            dirty: DirtyBitmap::new(pages),
        })
    }

    /// The guest physical range covered by this region.
    pub fn range(&self) -> GuestRegion {
        self.range
    }

    /// First guest physical address of the region.
    pub fn start(&self) -> GuestAddress {
        self.range.start
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.range.len
    }

    /// Whether the region is empty (never true for a constructed region).
    pub fn is_empty(&self) -> bool {
        self.range.len == 0
    }

    /// Number of 4 KiB pages in the region.
    pub fn pages(&self) -> u64 {
        self.range.len / PAGE_SIZE
    }

    /// The region's dirty bitmap (page indices are region-relative).
    pub fn dirty_bitmap(&self) -> &DirtyBitmap {
        &self.dirty
    }

    fn offset_of(&self, addr: GuestAddress, len: u64) -> Result<usize> {
        if !self.range.contains_range(addr, len) {
            return Err(Error::OutOfBounds { addr, len });
        }
        Ok((addr.0 - self.range.start.0) as usize)
    }

    /// Read `buf.len()` bytes starting at `addr` into `buf`.
    pub fn read(&self, addr: GuestAddress, buf: &mut [u8]) -> Result<()> {
        let off = self.offset_of(addr, buf.len() as u64)?;
        let data = self.data.read();
        buf.copy_from_slice(&data[off..off + buf.len()]);
        Ok(())
    }

    /// Write `buf` starting at `addr`, marking the touched pages dirty.
    pub fn write(&self, addr: GuestAddress, buf: &[u8]) -> Result<()> {
        let off = self.offset_of(addr, buf.len() as u64)?;
        {
            let mut data = self.data.write();
            data[off..off + buf.len()].copy_from_slice(buf);
        }
        self.mark_dirty(off as u64, buf.len() as u64);
        Ok(())
    }

    /// Fill `len` bytes starting at `addr` with `value`.
    pub fn fill(&self, addr: GuestAddress, len: u64, value: u8) -> Result<()> {
        let off = self.offset_of(addr, len)?;
        {
            let mut data = self.data.write();
            data[off..off + len as usize].fill(value);
        }
        self.mark_dirty(off as u64, len);
        Ok(())
    }

    /// Byte offset of a region-relative page, or `OutOfBounds`.
    fn page_offset(&self, page: u64) -> Result<usize> {
        if page >= self.pages() {
            return Err(Error::OutOfBounds {
                addr: self.range.start.unchecked_add(page.wrapping_mul(PAGE_SIZE)),
                len: PAGE_SIZE,
            });
        }
        Ok((page * PAGE_SIZE) as usize)
    }

    /// Run a closure over one page's bytes **without copying them**.
    ///
    /// The region's read lock is held for the duration of the closure, so
    /// keep the work short (hash, compress, memcpy into a caller buffer).
    /// `page` is region-relative.
    pub fn with_page<R>(&self, page: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let off = self.page_offset(page)?;
        let data = self.data.read();
        Ok(f(&data[off..off + PAGE_SIZE as usize]))
    }

    /// Run a closure over one page's bytes with write access, marking the
    /// page dirty. The write lock is held for the duration of the closure.
    /// `page` is region-relative.
    pub fn with_page_mut<R>(&self, page: u64, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let off = self.page_offset(page)?;
        let out = {
            let mut data = self.data.write();
            f(&mut data[off..off + PAGE_SIZE as usize])
        };
        self.dirty.mark(page);
        Ok(out)
    }

    /// FNV-1a fingerprint of a page's contents, hashed in place (no copy).
    /// `page` is region-relative.
    pub fn page_fingerprint(&self, page: u64) -> Result<u64> {
        self.with_page(page, crate::ksm::fingerprint)
    }

    /// Run a closure over an arbitrary `[addr, addr + len)` span of the
    /// region without copying. The span must lie entirely inside this region.
    pub fn with_slice<R>(
        &self,
        addr: GuestAddress,
        len: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let off = self.offset_of(addr, len)?;
        let data = self.data.read();
        Ok(f(&data[off..off + len as usize]))
    }

    /// Run a closure over an arbitrary span with write access, marking the
    /// touched pages dirty. The span must lie entirely inside this region.
    pub fn with_slice_mut<R>(
        &self,
        addr: GuestAddress,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let off = self.offset_of(addr, len)?;
        let out = {
            let mut data = self.data.write();
            f(&mut data[off..off + len as usize])
        };
        self.mark_dirty(off as u64, len);
        Ok(out)
    }

    /// Visit every currently dirty page (without clearing its bit), handing
    /// the closure `(region-relative page index, page bytes)`.
    ///
    /// Batch traversal: the region's read lock is acquired once per 64-page
    /// bitmap word and held across that word's pages, so harvest-style scans
    /// pay one lock round-trip per word instead of one per page, while still
    /// letting writers interleave between words.
    pub fn for_each_dirty_page<E>(
        &self,
        f: impl FnMut(u64, &[u8]) -> std::result::Result<(), E>,
    ) -> std::result::Result<(), E> {
        self.walk_dirty(false, f)
    }

    /// Like [`Self::for_each_dirty_page`], but each 64-page word's dirty
    /// bits are atomically fetched-and-cleared *before* its pages are
    /// visited — the batched equivalent of [`DirtyBitmap::drain_append_into`], with
    /// the same epoch guarantee: a page dirtied after its word was harvested
    /// stays dirty for the next harvest, never silently lost.
    pub fn drain_dirty_pages_with<E>(
        &self,
        f: impl FnMut(u64, &[u8]) -> std::result::Result<(), E>,
    ) -> std::result::Result<(), E> {
        self.walk_dirty(true, f)
    }

    fn walk_dirty<E>(
        &self,
        drain: bool,
        mut f: impl FnMut(u64, &[u8]) -> std::result::Result<(), E>,
    ) -> std::result::Result<(), E> {
        for word in 0..self.dirty.word_count() {
            let mut bits = if drain {
                self.dirty.take_word(word)
            } else {
                self.dirty.load_word(word)
            };
            if bits == 0 {
                continue;
            }
            let data = self.data.read();
            while bits != 0 {
                let bit = bits.trailing_zeros() as u64;
                let page = word as u64 * 64 + bit;
                if page >= self.pages() {
                    break;
                }
                let off = (page * PAGE_SIZE) as usize;
                if let Err(e) = f(page, &data[off..off + PAGE_SIZE as usize]) {
                    if drain {
                        // Error-path undo: the erred page and the word's
                        // unvisited remainder stay dirty, so a retried
                        // harvest still sees them (later words were never
                        // taken).
                        self.dirty.restore_word(word, bits);
                    }
                    return Err(e);
                }
                bits &= bits - 1;
            }
        }
        Ok(())
    }

    /// Copy a whole page out of the region. `page` is region-relative.
    ///
    /// Allocating convenience wrapper over [`Self::with_page`]; hot paths
    /// should use the view directly.
    pub fn read_page(&self, page: u64) -> Result<Vec<u8>> {
        self.with_page(page, |bytes| bytes.to_vec())
    }

    /// Overwrite a whole page. `page` is region-relative.
    pub fn write_page(&self, page: u64, contents: &[u8]) -> Result<()> {
        if contents.len() != PAGE_SIZE as usize {
            return Err(Error::InvalidRegionConfig(format!(
                "write_page requires exactly {PAGE_SIZE} bytes, got {}",
                contents.len()
            )));
        }
        self.write(self.range.start.unchecked_add(page * PAGE_SIZE), contents)
    }

    /// Discard the contents of a page (zero it) *without* marking it dirty.
    ///
    /// This models the balloon returning a page to the host: the page's
    /// contents are gone but the guest has promised not to read it, so there
    /// is nothing for migration to copy.
    pub fn discard_page(&self, page: u64) -> Result<()> {
        let off = self.page_offset(page)?;
        let mut data = self.data.write();
        data[off..off + PAGE_SIZE as usize].fill(0);
        Ok(())
    }

    fn mark_dirty(&self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        self.dirty.mark_range(first, last - first + 1);
    }

    /// Run a closure over the raw bytes of the region (read-only).
    ///
    /// Used by checksumming and snapshot code paths that want to avoid an
    /// intermediate copy.
    pub fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.data.read();
        f(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> MemoryRegion {
        MemoryRegion::new(GuestAddress(0x1000), 4 * PAGE_SIZE).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(MemoryRegion::new(GuestAddress(0), 0).is_err());
        assert!(MemoryRegion::new(GuestAddress(0), 100).is_err());
        assert!(MemoryRegion::new(GuestAddress(0x10), PAGE_SIZE).is_err());
        assert!(MemoryRegion::new(GuestAddress(u64::MAX - PAGE_SIZE + 1), 2 * PAGE_SIZE).is_err());
        assert!(MemoryRegion::new(GuestAddress(0), PAGE_SIZE).is_ok());
    }

    #[test]
    fn read_write_roundtrip() {
        let r = region();
        let payload = [1u8, 2, 3, 4, 5];
        r.write(GuestAddress(0x1100), &payload).unwrap();
        let mut out = [0u8; 5];
        r.read(GuestAddress(0x1100), &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let r = region();
        let mut buf = [0u8; 8];
        assert!(r.read(GuestAddress(0x0), &mut buf).is_err());
        assert!(r
            .read(GuestAddress(0x1000 + 4 * PAGE_SIZE - 4), &mut buf)
            .is_err());
        assert!(r.write(GuestAddress(0x5000), &buf).is_err());
    }

    #[test]
    fn writes_mark_pages_dirty() {
        let r = region();
        assert_eq!(r.dirty_bitmap().count(), 0);
        r.write(GuestAddress(0x1000), &[0u8; 10]).unwrap();
        assert_eq!(r.dirty_bitmap().dirty_pages(), vec![0]);
        // A write spanning a page boundary dirties both pages.
        r.write(GuestAddress(0x1000 + PAGE_SIZE - 2), &[0u8; 4])
            .unwrap();
        assert_eq!(r.dirty_bitmap().dirty_pages(), vec![0, 1]);
    }

    #[test]
    fn reads_do_not_dirty() {
        let r = region();
        let mut buf = [0u8; 64];
        r.read(GuestAddress(0x1000), &mut buf).unwrap();
        assert_eq!(r.dirty_bitmap().count(), 0);
    }

    #[test]
    fn fill_and_page_ops() {
        let r = region();
        r.fill(GuestAddress(0x2000), PAGE_SIZE, 0xaa).unwrap();
        let page = r.read_page(1).unwrap();
        assert!(page.iter().all(|&b| b == 0xaa));
        assert!(r.dirty_bitmap().is_dirty(1));

        let new_page = vec![0x55u8; PAGE_SIZE as usize];
        r.write_page(2, &new_page).unwrap();
        assert_eq!(r.read_page(2).unwrap(), new_page);
        assert!(r.write_page(2, &[0u8; 3]).is_err());
        assert!(r.read_page(4).is_err());
    }

    #[test]
    fn discard_page_zeroes_without_dirtying() {
        let r = region();
        r.fill(GuestAddress(0x3000), PAGE_SIZE, 0xff).unwrap();
        r.dirty_bitmap().clear();
        r.discard_page(2).unwrap();
        assert_eq!(r.dirty_bitmap().count(), 0);
        assert!(r.read_page(2).unwrap().iter().all(|&b| b == 0));
        assert!(r.discard_page(99).is_err());
    }

    #[test]
    fn with_bytes_sees_whole_region() {
        let r = region();
        r.write(GuestAddress(0x1000), &[7u8]).unwrap();
        let total: u64 = r.with_bytes(|b| b.iter().map(|&x| x as u64).sum());
        assert_eq!(total, 7);
        assert_eq!(r.with_bytes(|b| b.len()), (4 * PAGE_SIZE) as usize);
    }

    #[test]
    fn with_page_views_see_and_mutate_in_place() {
        let r = region();
        r.fill(GuestAddress(0x2000), PAGE_SIZE, 0x11).unwrap();
        r.dirty_bitmap().clear();

        let sum: u64 = r
            .with_page(1, |b| b.iter().map(|&x| x as u64).sum())
            .unwrap();
        assert_eq!(sum, 0x11 * PAGE_SIZE);
        assert_eq!(r.dirty_bitmap().count(), 0, "read view must not dirty");

        r.with_page_mut(1, |b| b[0] = 0xff).unwrap();
        assert!(r.dirty_bitmap().is_dirty(1));
        assert_eq!(r.with_page(1, |b| b[0]).unwrap(), 0xff);

        assert!(r.with_page(4, |_| ()).is_err());
        assert!(r.with_page_mut(4, |_| ()).is_err());
    }

    #[test]
    fn page_fingerprint_matches_out_of_place_hash() {
        let r = region();
        r.fill(GuestAddress(0x1000), PAGE_SIZE, 0xab).unwrap();
        let in_place = r.page_fingerprint(0).unwrap();
        let copied = crate::ksm::fingerprint(&r.read_page(0).unwrap());
        assert_eq!(in_place, copied);
        assert_ne!(in_place, r.page_fingerprint(1).unwrap());
        assert!(r.page_fingerprint(99).is_err());
    }

    #[test]
    fn with_slice_views() {
        let r = region();
        r.write(GuestAddress(0x1ffe), &[1, 2, 3, 4]).unwrap();
        let copied: Vec<u8> = r
            .with_slice(GuestAddress(0x1ffe), 4, |b| b.to_vec())
            .unwrap();
        assert_eq!(copied, vec![1, 2, 3, 4]);
        r.dirty_bitmap().clear();
        r.with_slice_mut(GuestAddress(0x1fff), 2, |b| b.copy_from_slice(&[9, 9]))
            .unwrap();
        // The mutated span straddles pages 0 and 1: both are dirty.
        assert_eq!(r.dirty_bitmap().dirty_pages(), vec![0, 1]);
        assert!(r.with_slice(GuestAddress(0x0), 8, |_| ()).is_err());
        assert!(r
            .with_slice(GuestAddress(0x1000 + 4 * PAGE_SIZE - 4), 8, |_| ())
            .is_err());
    }

    #[test]
    fn for_each_dirty_page_walks_exactly_the_dirty_set() {
        let r = MemoryRegion::new(GuestAddress(0), 130 * PAGE_SIZE).unwrap();
        for p in [0u64, 63, 64, 65, 129] {
            r.fill(GuestAddress(p * PAGE_SIZE), 8, p as u8 + 1).unwrap();
        }
        let mut seen = Vec::new();
        r.for_each_dirty_page(|page, bytes| {
            seen.push((page, bytes[0]));
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(seen, vec![(0, 1), (63, 64), (64, 65), (65, 66), (129, 130)]);
        // Traversal is non-clearing.
        assert_eq!(r.dirty_bitmap().count(), 5);
        // Errors from the closure propagate and stop the walk.
        let mut visits = 0;
        let res: std::result::Result<(), &str> = r.for_each_dirty_page(|_, _| {
            visits += 1;
            Err("stop")
        });
        assert_eq!(res, Err("stop"));
        assert_eq!(visits, 1);
    }

    #[test]
    fn drain_dirty_pages_with_harvests_and_clears_per_word() {
        let r = MemoryRegion::new(GuestAddress(0), 130 * PAGE_SIZE).unwrap();
        for p in [2u64, 64, 129] {
            r.fill(GuestAddress(p * PAGE_SIZE), 8, 0xcc).unwrap();
        }
        let mut seen = Vec::new();
        r.drain_dirty_pages_with(|page, bytes| {
            seen.push((page, bytes[0]));
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(seen, vec![(2, 0xcc), (64, 0xcc), (129, 0xcc)]);
        // Harvesting: the bits are gone, a second walk sees nothing.
        assert_eq!(r.dirty_bitmap().count(), 0);
        // A page dirtied after its word was taken lands in the next epoch —
        // the visitor itself cannot re-observe it, but the bitmap keeps it.
        r.fill(GuestAddress(0), 1, 1).unwrap();
        assert!(r.dirty_bitmap().is_dirty(0));
    }

    #[test]
    fn drain_dirty_pages_with_restores_bits_on_error() {
        let r = MemoryRegion::new(GuestAddress(0), 130 * PAGE_SIZE).unwrap();
        // Three dirty pages in word 0, one in word 2 (never reached).
        for p in [1u64, 5, 9, 129] {
            r.fill(GuestAddress(p * PAGE_SIZE), 8, 0xee).unwrap();
        }
        let mut visited = Vec::new();
        let res: std::result::Result<(), &str> = r.drain_dirty_pages_with(|page, _| {
            if page == 5 {
                return Err("backend full");
            }
            visited.push(page);
            Ok(())
        });
        assert_eq!(res, Err("backend full"));
        assert_eq!(visited, vec![1]);
        // Page 1 was harvested; the erred page, the word remainder and the
        // untaken later word all stay dirty for the retry.
        assert_eq!(r.dirty_bitmap().dirty_pages(), vec![5, 9, 129]);
    }

    #[test]
    fn metadata_accessors() {
        let r = region();
        assert_eq!(r.start(), GuestAddress(0x1000));
        assert_eq!(r.len(), 4 * PAGE_SIZE);
        assert_eq!(r.pages(), 4);
        assert!(!r.is_empty());
    }
}
