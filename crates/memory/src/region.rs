//! A single contiguous region of guest physical memory.

use parking_lot::RwLock;
use rvisor_types::{Error, GuestAddress, GuestRegion, Result, PAGE_SIZE};

use crate::bitmap::DirtyBitmap;

/// A contiguous, heap-backed slab of guest physical memory.
///
/// Every write is recorded in the region's [`DirtyBitmap`] so that higher
/// layers (live migration, incremental snapshots) can observe which pages
/// changed without instrumenting the guest.
#[derive(Debug)]
pub struct MemoryRegion {
    range: GuestRegion,
    data: RwLock<Box<[u8]>>,
    dirty: DirtyBitmap,
}

impl MemoryRegion {
    /// Allocate a zero-filled region covering `[start, start+len)`.
    ///
    /// `len` must be non-zero and page aligned, and `start` must be page
    /// aligned; real VMMs hand out memory in page-sized slabs and the rest of
    /// the stack (dirty tracking, ballooning, migration) relies on it.
    pub fn new(start: GuestAddress, len: u64) -> Result<Self> {
        if len == 0 {
            return Err(Error::InvalidRegionConfig(
                "region length must be non-zero".into(),
            ));
        }
        if !len.is_multiple_of(PAGE_SIZE) {
            return Err(Error::InvalidRegionConfig(format!(
                "region length {len:#x} is not a multiple of the page size"
            )));
        }
        if !start.is_page_aligned() {
            return Err(Error::InvalidRegionConfig(format!(
                "region start {start} is not page aligned"
            )));
        }
        if start.checked_add(len).is_none() {
            return Err(Error::InvalidRegionConfig(
                "region wraps the address space".into(),
            ));
        }
        let pages = len / PAGE_SIZE;
        Ok(MemoryRegion {
            range: GuestRegion::new(start, len),
            data: RwLock::new(vec![0u8; len as usize].into_boxed_slice()),
            dirty: DirtyBitmap::new(pages),
        })
    }

    /// The guest physical range covered by this region.
    pub fn range(&self) -> GuestRegion {
        self.range
    }

    /// First guest physical address of the region.
    pub fn start(&self) -> GuestAddress {
        self.range.start
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.range.len
    }

    /// Whether the region is empty (never true for a constructed region).
    pub fn is_empty(&self) -> bool {
        self.range.len == 0
    }

    /// Number of 4 KiB pages in the region.
    pub fn pages(&self) -> u64 {
        self.range.len / PAGE_SIZE
    }

    /// The region's dirty bitmap (page indices are region-relative).
    pub fn dirty_bitmap(&self) -> &DirtyBitmap {
        &self.dirty
    }

    fn offset_of(&self, addr: GuestAddress, len: u64) -> Result<usize> {
        if !self.range.contains_range(addr, len) {
            return Err(Error::OutOfBounds { addr, len });
        }
        Ok((addr.0 - self.range.start.0) as usize)
    }

    /// Read `buf.len()` bytes starting at `addr` into `buf`.
    pub fn read(&self, addr: GuestAddress, buf: &mut [u8]) -> Result<()> {
        let off = self.offset_of(addr, buf.len() as u64)?;
        let data = self.data.read();
        buf.copy_from_slice(&data[off..off + buf.len()]);
        Ok(())
    }

    /// Write `buf` starting at `addr`, marking the touched pages dirty.
    pub fn write(&self, addr: GuestAddress, buf: &[u8]) -> Result<()> {
        let off = self.offset_of(addr, buf.len() as u64)?;
        {
            let mut data = self.data.write();
            data[off..off + buf.len()].copy_from_slice(buf);
        }
        self.mark_dirty(off as u64, buf.len() as u64);
        Ok(())
    }

    /// Fill `len` bytes starting at `addr` with `value`.
    pub fn fill(&self, addr: GuestAddress, len: u64, value: u8) -> Result<()> {
        let off = self.offset_of(addr, len)?;
        {
            let mut data = self.data.write();
            data[off..off + len as usize].fill(value);
        }
        self.mark_dirty(off as u64, len);
        Ok(())
    }

    /// Copy a whole page out of the region. `page` is region-relative.
    pub fn read_page(&self, page: u64) -> Result<Vec<u8>> {
        if page >= self.pages() {
            return Err(Error::OutOfBounds {
                addr: self.range.start.unchecked_add(page * PAGE_SIZE),
                len: PAGE_SIZE,
            });
        }
        let data = self.data.read();
        let off = (page * PAGE_SIZE) as usize;
        Ok(data[off..off + PAGE_SIZE as usize].to_vec())
    }

    /// Overwrite a whole page. `page` is region-relative.
    pub fn write_page(&self, page: u64, contents: &[u8]) -> Result<()> {
        if contents.len() != PAGE_SIZE as usize {
            return Err(Error::InvalidRegionConfig(format!(
                "write_page requires exactly {PAGE_SIZE} bytes, got {}",
                contents.len()
            )));
        }
        self.write(self.range.start.unchecked_add(page * PAGE_SIZE), contents)
    }

    /// Discard the contents of a page (zero it) *without* marking it dirty.
    ///
    /// This models the balloon returning a page to the host: the page's
    /// contents are gone but the guest has promised not to read it, so there
    /// is nothing for migration to copy.
    pub fn discard_page(&self, page: u64) -> Result<()> {
        if page >= self.pages() {
            return Err(Error::OutOfBounds {
                addr: self.range.start.unchecked_add(page * PAGE_SIZE),
                len: PAGE_SIZE,
            });
        }
        let mut data = self.data.write();
        let off = (page * PAGE_SIZE) as usize;
        data[off..off + PAGE_SIZE as usize].fill(0);
        Ok(())
    }

    fn mark_dirty(&self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        self.dirty.mark_range(first, last - first + 1);
    }

    /// Run a closure over the raw bytes of the region (read-only).
    ///
    /// Used by checksumming and snapshot code paths that want to avoid an
    /// intermediate copy.
    pub fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.data.read();
        f(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> MemoryRegion {
        MemoryRegion::new(GuestAddress(0x1000), 4 * PAGE_SIZE).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(MemoryRegion::new(GuestAddress(0), 0).is_err());
        assert!(MemoryRegion::new(GuestAddress(0), 100).is_err());
        assert!(MemoryRegion::new(GuestAddress(0x10), PAGE_SIZE).is_err());
        assert!(MemoryRegion::new(GuestAddress(u64::MAX - PAGE_SIZE + 1), 2 * PAGE_SIZE).is_err());
        assert!(MemoryRegion::new(GuestAddress(0), PAGE_SIZE).is_ok());
    }

    #[test]
    fn read_write_roundtrip() {
        let r = region();
        let payload = [1u8, 2, 3, 4, 5];
        r.write(GuestAddress(0x1100), &payload).unwrap();
        let mut out = [0u8; 5];
        r.read(GuestAddress(0x1100), &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let r = region();
        let mut buf = [0u8; 8];
        assert!(r.read(GuestAddress(0x0), &mut buf).is_err());
        assert!(r
            .read(GuestAddress(0x1000 + 4 * PAGE_SIZE - 4), &mut buf)
            .is_err());
        assert!(r.write(GuestAddress(0x5000), &buf).is_err());
    }

    #[test]
    fn writes_mark_pages_dirty() {
        let r = region();
        assert_eq!(r.dirty_bitmap().count(), 0);
        r.write(GuestAddress(0x1000), &[0u8; 10]).unwrap();
        assert_eq!(r.dirty_bitmap().dirty_pages(), vec![0]);
        // A write spanning a page boundary dirties both pages.
        r.write(GuestAddress(0x1000 + PAGE_SIZE - 2), &[0u8; 4])
            .unwrap();
        assert_eq!(r.dirty_bitmap().dirty_pages(), vec![0, 1]);
    }

    #[test]
    fn reads_do_not_dirty() {
        let r = region();
        let mut buf = [0u8; 64];
        r.read(GuestAddress(0x1000), &mut buf).unwrap();
        assert_eq!(r.dirty_bitmap().count(), 0);
    }

    #[test]
    fn fill_and_page_ops() {
        let r = region();
        r.fill(GuestAddress(0x2000), PAGE_SIZE, 0xaa).unwrap();
        let page = r.read_page(1).unwrap();
        assert!(page.iter().all(|&b| b == 0xaa));
        assert!(r.dirty_bitmap().is_dirty(1));

        let new_page = vec![0x55u8; PAGE_SIZE as usize];
        r.write_page(2, &new_page).unwrap();
        assert_eq!(r.read_page(2).unwrap(), new_page);
        assert!(r.write_page(2, &[0u8; 3]).is_err());
        assert!(r.read_page(4).is_err());
    }

    #[test]
    fn discard_page_zeroes_without_dirtying() {
        let r = region();
        r.fill(GuestAddress(0x3000), PAGE_SIZE, 0xff).unwrap();
        r.dirty_bitmap().clear();
        r.discard_page(2).unwrap();
        assert_eq!(r.dirty_bitmap().count(), 0);
        assert!(r.read_page(2).unwrap().iter().all(|&b| b == 0));
        assert!(r.discard_page(99).is_err());
    }

    #[test]
    fn with_bytes_sees_whole_region() {
        let r = region();
        r.write(GuestAddress(0x1000), &[7u8]).unwrap();
        let total: u64 = r.with_bytes(|b| b.iter().map(|&x| x as u64).sum());
        assert_eq!(total, 7);
        assert_eq!(r.with_bytes(|b| b.len()), (4 * PAGE_SIZE) as usize);
    }

    #[test]
    fn metadata_accessors() {
        let r = region();
        assert_eq!(r.start(), GuestAddress(0x1000));
        assert_eq!(r.len(), 4 * PAGE_SIZE);
        assert_eq!(r.pages(), 4);
        assert!(!r.is_empty());
    }
}
