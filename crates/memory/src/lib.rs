//! # rvisor-memory
//!
//! The guest *physical* memory model used by every other crate in the
//! workspace.
//!
//! A [`GuestMemory`] is an ordered collection of non-overlapping
//! [`MemoryRegion`]s, each backed by host heap memory. On top of the raw
//! byte-level access API the crate provides:
//!
//! * **Dirty-page tracking** ([`DirtyBitmap`]) — the substrate for live
//!   migration pre-copy rounds and incremental snapshots.
//! * **Ballooning** ([`balloon::Balloon`]) — the guest-cooperative memory
//!   reclaim mechanism used for memory overcommit experiments.
//! * **Content-based page sharing** ([`ksm::KsmManager`]) — KSM-style
//!   deduplication of identical pages across VMs, the second overcommit
//!   mechanism and the basis of the VDI density experiments.
//! * **Typed accessors** — little-endian reads/writes of integers used by the
//!   virtio queue implementation.
//!
//! The design mirrors the `vm-memory` crate from the rust-vmm project but is
//! self-contained and entirely safe Rust: regions are backed by
//! `parking_lot`-protected boxed slices rather than raw mmap'd pointers,
//! which is exactly what a simulated substrate needs (determinism and
//! portability rather than zero-copy with a real kernel).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod balloon;
pub mod bitmap;
pub mod ksm;
pub mod memory;
pub mod region;

pub use balloon::{Balloon, BalloonStats};
pub use bitmap::DirtyBitmap;
pub use ksm::{analyze_sharing, DedupAnalysis, KsmConfig, KsmManager, KsmStats};
pub use memory::{GuestMemory, GuestMemoryBuilder};
pub use region::MemoryRegion;

pub use rvisor_types::{ByteSize, GuestAddress, GuestRegion, PAGE_SIZE};
