//! # rvisor-memory
//!
//! The guest *physical* memory model used by every other crate in the
//! workspace.
//!
//! A [`GuestMemory`] is an ordered collection of non-overlapping
//! [`MemoryRegion`]s, each backed by host heap memory. On top of the raw
//! byte-level access API the crate provides:
//!
//! * **Dirty-page tracking** ([`DirtyBitmap`]) — the substrate for live
//!   migration pre-copy rounds and incremental snapshots.
//! * **Ballooning** ([`balloon::Balloon`]) — the guest-cooperative memory
//!   reclaim mechanism used for memory overcommit experiments.
//! * **Content-based page sharing** ([`ksm::KsmManager`]) — KSM-style
//!   deduplication of identical pages across VMs, the second overcommit
//!   mechanism and the basis of the VDI density experiments.
//! * **Typed accessors** — little-endian reads/writes of integers used by the
//!   virtio queue implementation.
//! * **Word-wise scan kernels** ([`scan`]) — zero-page detection and FNV-1a
//!   fingerprinting over `u64` words, shared by the migration wire encoder,
//!   KSM and zero-run coalescing (proptest-pinned equivalent to the
//!   byte-wise loops they replaced).
//!
//! The design mirrors the `vm-memory` crate from the rust-vmm project but is
//! self-contained and entirely safe Rust: regions are backed by
//! `parking_lot`-protected boxed slices rather than raw mmap'd pointers,
//! which is exactly what a simulated substrate needs (determinism and
//! portability rather than zero-copy with a real kernel).
//!
//! ## Which accessor do I want?
//!
//! The data plane offers both zero-copy *views* (closure-based, lock held
//! for the closure's duration) and allocating *copies* (thin wrappers over
//! the views, kept for convenience and out-of-tree callers). Hot paths —
//! migration rounds, snapshot capture, KSM scans, virtio payloads — should
//! use the views.
//!
//! | I want to… | Use | Copies? |
//! |---|---|---|
//! | borrow one page read-only | [`GuestMemory::with_page`] | no |
//! | mutate one page in place (marks dirty) | [`GuestMemory::with_page_mut`] | no |
//! | hash a page (KSM / dedup) | [`GuestMemory::page_fingerprint`] | no |
//! | borrow an arbitrary single-region span | [`GuestMemory::with_slice`] / [`GuestMemory::with_slice_mut`] | no |
//! | stream every dirty page under a batched lock | [`GuestMemory::for_each_dirty_page`] | no |
//! | harvest + clear dirty indices into a reused buffer | [`GuestMemory::drain_dirty_into`] | no (at steady state) |
//! | iterate dirty indices without clearing | [`DirtyBitmap::iter_dirty`] | no |
//! | an owned copy of a page | [`GuestMemory::read_page`] | one `Vec` per call |
//! | an owned copy of a span | [`GuestMemory::read_vec`] | one `Vec` per call |
//! | a fresh `Vec` of dirty indices | [`GuestMemory::dirty_pages`] / [`GuestMemory::drain_dirty`] | one `Vec` per call |
//!
//! Multi-byte [`GuestMemory::read`]/[`GuestMemory::write`] spans may
//! straddle **adjacent** regions (the pieces are stitched in address
//! order); a span that runs into unbacked address space fails with
//! [`rvisor_types::Error::CrossRegionGap`]. The closure views are
//! single-region by construction — a contiguous borrow cannot cross
//! backing allocations.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod balloon;
pub mod bitmap;
pub mod ksm;
pub mod memory;
pub mod region;
pub mod scan;

pub use balloon::{Balloon, BalloonStats};
pub use bitmap::{DirtyBitmap, DirtyIter};
pub use ksm::{analyze_sharing, DedupAnalysis, KsmConfig, KsmManager, KsmStats};
pub use memory::{GuestMemory, GuestMemoryBuilder};
pub use region::MemoryRegion;
pub use scan::{fingerprint, is_zero};

pub use rvisor_types::{ByteSize, GuestAddress, GuestRegion, PAGE_SIZE};
