//! Content-based page sharing (KSM-style deduplication).
//!
//! Kernel Samepage Merging is the second classic memory-overcommit mechanism
//! next to ballooning: the hypervisor periodically scans guest pages, finds
//! pages with identical contents across (or within) VMs and maps them all to
//! a single read-only copy, breaking the sharing with a copy-on-write fault
//! when any guest writes. Consolidated estates of near-identical guests —
//! exactly the fleet the source document describes (many Windows 2003 /
//! Windows XP servers cloned from two templates) — are where the technique
//! shines, because most of the guests' text and zero pages are bitwise
//! identical.
//!
//! The model here reproduces the *policy* of Linux KSM faithfully enough for
//! the density experiments (E11/E12) without the kernel's red-black trees:
//!
//! * Pages are identified by a 64-bit FNV-1a fingerprint of their contents.
//! * A page is only merged after it has been observed with the **same
//!   fingerprint in two consecutive scan rounds** (KSM's "unstable tree"
//!   stability check), so rapidly changing pages are never merged.
//! * A write to a merged page (reported via [`KsmManager::notify_write`], or
//!   detected by a fingerprint change at the next scan) breaks the sharing —
//!   the copy-on-write fault of the real mechanism.
//! * Savings are counted as in `/sys/kernel/mm/ksm`: a group of `n` identical
//!   pages keeps one physical copy and saves `n - 1` pages.
//!
//! [`DedupAnalysis`] additionally provides a one-shot "how much *could* be
//! shared" measurement used by the VDI density estimator.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use rvisor_types::{Result, VmId, PAGE_SIZE};

use crate::memory::GuestMemory;

/// A page location: which registered VM and which global page index.
pub type PageKey = (VmId, u64);

/// FNV-1a over a page's contents.
///
/// Not cryptographic — collisions would merge unrelated pages — but the
/// simulation double-checks nothing (just like real KSM relies on a byte
/// compare after the hash match; modelling the compare cost is not needed
/// for the experiments, and the 64-bit space makes collisions irrelevant at
/// the scales simulated here). Computed by the word-wise
/// [`scan::fingerprint`](crate::scan::fingerprint) kernel, which is
/// bit-identical to the byte-wise recurrence.
pub fn fingerprint(contents: &[u8]) -> u64 {
    crate::scan::fingerprint(contents)
}

/// Tuning knobs of the scanner.
#[derive(Debug, Clone, Copy)]
pub struct KsmConfig {
    /// Maximum pages examined per call to [`KsmManager::scan_round`]
    /// (`pages_to_scan` in the Linux sysfs interface). `u64::MAX` scans
    /// everything each round.
    pub pages_per_round: u64,
    /// Whether all-zero pages are eligible for merging (`use_zero_pages`).
    pub merge_zero_pages: bool,
}

impl Default for KsmConfig {
    fn default() -> Self {
        KsmConfig {
            pages_per_round: u64::MAX,
            merge_zero_pages: true,
        }
    }
}

/// Counters mirroring the `/sys/kernel/mm/ksm` statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KsmStats {
    /// Pages examined since the manager was created.
    pub pages_scanned: u64,
    /// Distinct shared (canonical) pages currently backing merged groups.
    pub pages_shared: u64,
    /// Pages currently deduplicated into a canonical copy (group members).
    pub pages_sharing: u64,
    /// Candidate pages seen once and awaiting the stability confirmation.
    pub pages_unshared: u64,
    /// Copy-on-write breaks (writes to merged pages) observed so far.
    pub cow_breaks: u64,
    /// Completed scan rounds.
    pub full_scans: u64,
}

impl KsmStats {
    /// Physical pages saved: every group member beyond the canonical copy.
    pub fn pages_saved(&self) -> u64 {
        self.pages_sharing.saturating_sub(self.pages_shared)
    }

    /// Bytes of host memory saved by sharing.
    pub fn bytes_saved(&self) -> u64 {
        self.pages_saved() * PAGE_SIZE
    }

    /// The sharing ratio `pages_sharing / pages_shared` (0 when nothing is shared).
    pub fn sharing_ratio(&self) -> f64 {
        if self.pages_shared == 0 {
            0.0
        } else {
            self.pages_sharing as f64 / self.pages_shared as f64
        }
    }
}

/// One merged group: the pages currently sharing a canonical copy.
#[derive(Debug, Default, Clone)]
struct MergeGroup {
    members: BTreeSet<PageKey>,
}

/// The page-sharing scanner and merge state for a set of registered VMs.
#[derive(Debug)]
pub struct KsmManager {
    config: KsmConfig,
    vms: BTreeMap<VmId, GuestMemory>,
    /// Stable tree: fingerprint -> merged group.
    stable: HashMap<u64, MergeGroup>,
    /// Reverse index: merged page -> its group's fingerprint.
    merged_of: HashMap<PageKey, u64>,
    /// Unstable tree: candidate page -> fingerprint seen last round.
    unstable: HashMap<PageKey, u64>,
    /// Scan cursor (VM, next page) for budgeted rounds.
    cursor: Option<PageKey>,
    scanned: u64,
    /// Pages examined since the last completed pass over the address space.
    scanned_this_pass: u64,
    cow_breaks: u64,
    full_scans: u64,
}

impl KsmManager {
    /// Create a manager with the given configuration and no registered VMs.
    pub fn new(config: KsmConfig) -> Self {
        KsmManager {
            config,
            vms: BTreeMap::new(),
            stable: HashMap::new(),
            merged_of: HashMap::new(),
            unstable: HashMap::new(),
            cursor: None,
            scanned: 0,
            scanned_this_pass: 0,
            cow_breaks: 0,
            full_scans: 0,
        }
    }

    /// Register a VM's memory for scanning. Re-registering the same id
    /// replaces the memory and forgets any merge state for the old one.
    pub fn register_vm(&mut self, id: VmId, memory: GuestMemory) {
        if self.vms.contains_key(&id) {
            self.unregister_vm(id);
        }
        self.vms.insert(id, memory);
    }

    /// Remove a VM and break all of its shared pages.
    pub fn unregister_vm(&mut self, id: VmId) {
        let pages: Vec<PageKey> = self
            .merged_of
            .keys()
            .filter(|(vm, _)| *vm == id)
            .copied()
            .collect();
        for key in pages {
            self.break_sharing(key);
        }
        self.unstable.retain(|(vm, _), _| *vm != id);
        self.vms.remove(&id);
        self.cursor = None;
    }

    /// Number of registered VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Report a guest write to a page. If the page was merged this is the
    /// copy-on-write break; either way the page loses its stability credit.
    pub fn notify_write(&mut self, vm: VmId, page: u64) {
        let key = (vm, page);
        self.unstable.remove(&key);
        if self.merged_of.contains_key(&key) {
            self.break_sharing(key);
            self.cow_breaks += 1;
        }
    }

    /// Whether a page is currently merged into a shared copy.
    pub fn is_merged(&self, vm: VmId, page: u64) -> bool {
        self.merged_of.contains_key(&(vm, page))
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> KsmStats {
        let pages_shared = self.stable.values().filter(|g| g.members.len() > 1).count() as u64;
        let pages_sharing = self
            .stable
            .values()
            .filter(|g| g.members.len() > 1)
            .map(|g| g.members.len() as u64)
            .sum();
        KsmStats {
            pages_scanned: self.scanned,
            pages_shared,
            pages_sharing,
            pages_unshared: self.unstable.len() as u64,
            cow_breaks: self.cow_breaks,
            full_scans: self.full_scans,
        }
    }

    /// Run one scan round over at most `config.pages_per_round` pages,
    /// continuing from where the previous round stopped. Returns the number
    /// of pages newly merged during this round.
    pub fn scan_round(&mut self) -> Result<u64> {
        let plan: Vec<PageKey> = self.scan_plan();
        let mut budget = self.config.pages_per_round;
        let mut newly_merged = 0u64;
        let mut last: Option<PageKey> = None;

        for key in plan {
            if budget == 0 {
                break;
            }
            budget -= 1;
            last = Some(key);
            self.scanned += 1;
            self.scanned_this_pass += 1;

            let (vm, page) = key;
            // Fingerprint (and, only when zero pages are excluded from
            // merging, zero-probe) the candidate page in place: one
            // read-lock acquisition, no 4 KiB copy per scanned page.
            let probe_zero = !self.config.merge_zero_pages;
            let (fp, skip_zero) = match self.vms.get(&vm) {
                Some(mem) => mem.with_page(page, |b| {
                    (fingerprint(b), probe_zero && crate::scan::is_zero(b))
                })?,
                None => continue,
            };
            if skip_zero {
                continue;
            }

            if let Some(&merged_fp) = self.merged_of.get(&key) {
                if merged_fp != fp {
                    // The guest changed the page without a notify_write (e.g.
                    // DMA): detected at scan time, the sharing breaks.
                    self.break_sharing(key);
                    self.cow_breaks += 1;
                    self.unstable.insert(key, fp);
                }
                continue;
            }

            match self.unstable.get(&key) {
                Some(&prev) if prev == fp => {
                    // Stable across two rounds: merge.
                    self.unstable.remove(&key);
                    let group = self.stable.entry(fp).or_default();
                    group.members.insert(key);
                    self.merged_of.insert(key, fp);
                    newly_merged += 1;
                }
                _ => {
                    self.unstable.insert(key, fp);
                }
            }
        }

        // Advance or reset the cursor depending on whether the budget covered
        // the whole address space; a "full scan" completes every time a full
        // pass worth of pages has been examined.
        match last {
            Some(key) if budget == 0 => self.cursor = Some(key),
            _ => self.cursor = None,
        }
        let total: u64 = self.vms.values().map(|m| m.total_pages()).sum();
        while total > 0 && self.scanned_this_pass >= total {
            self.scanned_this_pass -= total;
            self.full_scans += 1;
        }
        Ok(newly_merged)
    }

    /// Run scan rounds until no new pages are merged (at most `max_rounds`).
    /// Returns the number of rounds executed.
    pub fn scan_until_stable(&mut self, max_rounds: u32) -> Result<u32> {
        let mut rounds = 0;
        for _ in 0..max_rounds {
            rounds += 1;
            let merged = self.scan_round()?;
            // Two passes are needed before anything merges; only stop once a
            // full pass produced no new merges and no fresh candidates exist.
            if merged == 0 && rounds >= 2 {
                break;
            }
        }
        Ok(rounds)
    }

    /// The ordered list of pages to visit, starting after the cursor.
    fn scan_plan(&self) -> Vec<PageKey> {
        let mut keys: Vec<PageKey> = Vec::new();
        for (&vm, mem) in &self.vms {
            for page in 0..mem.total_pages() {
                keys.push((vm, page));
            }
        }
        if let Some(cursor) = self.cursor {
            if let Some(pos) = keys.iter().position(|&k| k == cursor) {
                let by = (pos + 1) % keys.len().max(1);
                keys.rotate_left(by);
            }
        }
        keys
    }

    fn break_sharing(&mut self, key: PageKey) {
        if let Some(fp) = self.merged_of.remove(&key) {
            if let Some(group) = self.stable.get_mut(&fp) {
                group.members.remove(&key);
                if group.members.len() <= 1 {
                    // A group of one is no longer shared; drop the canonical
                    // entry so its last member is treated as a fresh candidate.
                    for remaining in group.members.iter() {
                        self.merged_of.remove(remaining);
                    }
                    self.stable.remove(&fp);
                }
            }
        }
    }
}

/// A one-shot measurement of how much memory a set of VMs *could* share.
///
/// This ignores scan cadence and stability and simply fingerprints every
/// page — the upper bound a perfect scanner converges to, which is what the
/// VDI density estimator needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupAnalysis {
    /// Total pages examined.
    pub total_pages: u64,
    /// Distinct page contents found.
    pub unique_pages: u64,
    /// Pages whose contents are entirely zero.
    pub zero_pages: u64,
}

impl DedupAnalysis {
    /// Pages saved if every duplicate were merged.
    pub fn pages_saved(&self) -> u64 {
        self.total_pages.saturating_sub(self.unique_pages)
    }

    /// Bytes saved if every duplicate were merged.
    pub fn bytes_saved(&self) -> u64 {
        self.pages_saved() * PAGE_SIZE
    }

    /// Fraction of all pages that deduplication eliminates (0.0–1.0).
    pub fn savings_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.pages_saved() as f64 / self.total_pages as f64
        }
    }
}

/// Fingerprint every page of every memory and report the dedup potential.
pub fn analyze_sharing<'a, I>(memories: I) -> Result<DedupAnalysis>
where
    I: IntoIterator<Item = &'a GuestMemory>,
{
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut analysis = DedupAnalysis::default();
    let zero_fp = fingerprint(&[0u8; PAGE_SIZE as usize]);
    for mem in memories {
        for page in 0..mem.total_pages() {
            let fp = mem.page_fingerprint(page)?;
            analysis.total_pages += 1;
            if fp == zero_fp {
                analysis.zero_pages += 1;
            }
            if seen.insert(fp) {
                analysis.unique_pages += 1;
            }
        }
    }
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_types::{ByteSize, GuestAddress};

    fn memory_with_pattern(pages: u64, seed: u64) -> GuestMemory {
        let mem = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        for p in 0..pages {
            mem.write_u64(
                GuestAddress(p * PAGE_SIZE),
                seed.wrapping_mul(31).wrapping_add(p),
            )
            .unwrap();
        }
        mem
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        let a = vec![0u8; PAGE_SIZE as usize];
        let mut b = a.clone();
        b[100] = 1;
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn identical_vms_merge_after_two_rounds() {
        let mut ksm = KsmManager::new(KsmConfig::default());
        // Two VMs with byte-identical contents (template clones).
        ksm.register_vm(VmId::new(0), memory_with_pattern(32, 7));
        ksm.register_vm(VmId::new(1), memory_with_pattern(32, 7));

        // Round 1: only candidates, nothing merged yet.
        assert_eq!(ksm.scan_round().unwrap(), 0);
        assert_eq!(ksm.stats().pages_sharing, 0);
        assert_eq!(ksm.stats().pages_unshared, 64);

        // Round 2: everything stable, so every duplicate merges.
        let merged = ksm.scan_round().unwrap();
        assert_eq!(merged, 64);
        let stats = ksm.stats();
        // 32 distinct contents, each shared by two VMs.
        assert_eq!(stats.pages_shared, 32);
        assert_eq!(stats.pages_sharing, 64);
        assert_eq!(stats.pages_saved(), 32);
        assert_eq!(stats.bytes_saved(), 32 * PAGE_SIZE);
        assert!((stats.sharing_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_vms_share_nothing() {
        let mut ksm = KsmManager::new(KsmConfig {
            merge_zero_pages: false,
            ..Default::default()
        });
        ksm.register_vm(VmId::new(0), memory_with_pattern(16, 1));
        ksm.register_vm(VmId::new(1), memory_with_pattern(16, 2));
        ksm.scan_until_stable(8).unwrap();
        assert_eq!(ksm.stats().pages_saved(), 0);
    }

    #[test]
    fn write_breaks_sharing() {
        let mut ksm = KsmManager::new(KsmConfig::default());
        let a = memory_with_pattern(8, 3);
        let b = memory_with_pattern(8, 3);
        ksm.register_vm(VmId::new(0), a.clone());
        ksm.register_vm(VmId::new(1), b);
        ksm.scan_until_stable(4).unwrap();
        let before = ksm.stats();
        assert_eq!(before.pages_saved(), 8);
        assert!(ksm.is_merged(VmId::new(0), 3));

        a.write_u64(GuestAddress(3 * PAGE_SIZE), 0xdead_beef)
            .unwrap();
        ksm.notify_write(VmId::new(0), 3);

        let after = ksm.stats();
        assert!(!ksm.is_merged(VmId::new(0), 3));
        assert_eq!(after.cow_breaks, 1);
        assert_eq!(after.pages_saved(), before.pages_saved() - 1);
    }

    #[test]
    fn unnotified_write_is_caught_at_next_scan() {
        let mut ksm = KsmManager::new(KsmConfig::default());
        let a = memory_with_pattern(8, 9);
        let b = memory_with_pattern(8, 9);
        ksm.register_vm(VmId::new(0), a.clone());
        ksm.register_vm(VmId::new(1), b);
        ksm.scan_until_stable(4).unwrap();
        assert!(ksm.is_merged(VmId::new(0), 5));

        // Write without notifying (models DMA into guest memory).
        a.write_u64(GuestAddress(5 * PAGE_SIZE), 0x1234_5678_9abc)
            .unwrap();
        ksm.scan_round().unwrap();
        assert!(!ksm.is_merged(VmId::new(0), 5));
        assert_eq!(ksm.stats().cow_breaks, 1);
    }

    #[test]
    fn budgeted_rounds_cover_everything_eventually() {
        let mut ksm = KsmManager::new(KsmConfig {
            pages_per_round: 10,
            ..Default::default()
        });
        ksm.register_vm(VmId::new(0), memory_with_pattern(32, 4));
        ksm.register_vm(VmId::new(1), memory_with_pattern(32, 4));
        // 64 pages at 10 pages/round: needs 7 rounds per pass, two passes to merge.
        for _ in 0..20 {
            ksm.scan_round().unwrap();
        }
        assert_eq!(ksm.stats().pages_saved(), 32);
        assert!(ksm.stats().full_scans >= 2);
    }

    #[test]
    fn unregister_breaks_that_vms_sharing() {
        let mut ksm = KsmManager::new(KsmConfig::default());
        ksm.register_vm(VmId::new(0), memory_with_pattern(8, 6));
        ksm.register_vm(VmId::new(1), memory_with_pattern(8, 6));
        ksm.register_vm(VmId::new(2), memory_with_pattern(8, 6));
        ksm.scan_until_stable(4).unwrap();
        assert_eq!(ksm.stats().pages_saved(), 16);

        ksm.unregister_vm(VmId::new(2));
        assert_eq!(ksm.vm_count(), 2);
        assert_eq!(ksm.stats().pages_saved(), 8);

        ksm.unregister_vm(VmId::new(1));
        assert_eq!(ksm.stats().pages_saved(), 0);
        assert_eq!(ksm.stats().pages_shared, 0);
    }

    #[test]
    fn zero_page_policy_is_respected() {
        // Two VMs that never wrote anything: all pages are zero.
        let mut with_zero = KsmManager::new(KsmConfig::default());
        with_zero.register_vm(
            VmId::new(0),
            GuestMemory::flat(ByteSize::pages_of(8)).unwrap(),
        );
        with_zero.register_vm(
            VmId::new(1),
            GuestMemory::flat(ByteSize::pages_of(8)).unwrap(),
        );
        with_zero.scan_until_stable(4).unwrap();
        assert_eq!(with_zero.stats().pages_saved(), 15);

        let mut without = KsmManager::new(KsmConfig {
            merge_zero_pages: false,
            ..Default::default()
        });
        without.register_vm(
            VmId::new(0),
            GuestMemory::flat(ByteSize::pages_of(8)).unwrap(),
        );
        without.register_vm(
            VmId::new(1),
            GuestMemory::flat(ByteSize::pages_of(8)).unwrap(),
        );
        without.scan_until_stable(4).unwrap();
        assert_eq!(without.stats().pages_saved(), 0);
    }

    #[test]
    fn analysis_reports_upper_bound() {
        let a = memory_with_pattern(16, 11);
        let b = memory_with_pattern(16, 11);
        let c = memory_with_pattern(16, 12);
        let analysis = analyze_sharing([&a, &b, &c]).unwrap();
        assert_eq!(analysis.total_pages, 48);
        // a and b are identical; c differs on every page.
        assert_eq!(analysis.unique_pages, 32);
        assert_eq!(analysis.pages_saved(), 16);
        assert!((analysis.savings_fraction() - 16.0 / 48.0).abs() < 1e-9);
        assert_eq!(analysis.zero_pages, 0);
    }

    #[test]
    fn scanner_converges_to_analysis_upper_bound() {
        let a = memory_with_pattern(24, 21);
        let b = memory_with_pattern(24, 21);
        let analysis = analyze_sharing([&a, &b]).unwrap();

        let mut ksm = KsmManager::new(KsmConfig::default());
        ksm.register_vm(VmId::new(0), a);
        ksm.register_vm(VmId::new(1), b);
        ksm.scan_until_stable(6).unwrap();
        assert_eq!(ksm.stats().pages_saved(), analysis.pages_saved());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Merging never invents savings: saved pages are bounded by the
            /// one-shot analysis upper bound, and stats stay self-consistent.
            #[test]
            fn saved_pages_bounded_by_upper_bound(
                pages in 1u64..24,
                vms in 1usize..4,
                seeds in proptest::collection::vec(0u64..3, 1..4),
            ) {
                let seeds = &seeds[..seeds.len().min(vms)];
                let memories: Vec<GuestMemory> =
                    seeds.iter().map(|&s| memory_with_pattern(pages, s)).collect();
                let analysis = analyze_sharing(memories.iter()).unwrap();

                let mut ksm = KsmManager::new(KsmConfig::default());
                for (i, mem) in memories.iter().enumerate() {
                    ksm.register_vm(VmId::new(i as u32), mem.clone());
                }
                ksm.scan_until_stable(8).unwrap();
                let stats = ksm.stats();
                prop_assert!(stats.pages_saved() <= analysis.pages_saved());
                prop_assert!(stats.pages_sharing >= stats.pages_shared || stats.pages_sharing == 0);
                prop_assert!(stats.pages_scanned >= stats.pages_sharing);
            }

            /// Breaking sharing by writes never leaves dangling merge state.
            #[test]
            fn cow_breaks_keep_state_consistent(
                write_pages in proptest::collection::btree_set(0u64..16, 0..8),
            ) {
                let a = memory_with_pattern(16, 5);
                let b = memory_with_pattern(16, 5);
                let mut ksm = KsmManager::new(KsmConfig::default());
                ksm.register_vm(VmId::new(0), a.clone());
                ksm.register_vm(VmId::new(1), b);
                ksm.scan_until_stable(4).unwrap();

                for &p in &write_pages {
                    a.write_u64(GuestAddress(p * PAGE_SIZE), 0xffff_0000 + p).unwrap();
                    ksm.notify_write(VmId::new(0), p);
                }
                let stats = ksm.stats();
                prop_assert_eq!(stats.cow_breaks, write_pages.len() as u64);
                prop_assert_eq!(stats.pages_saved(), 16 - write_pages.len() as u64);
                for &p in &write_pages {
                    prop_assert!(!ksm.is_merged(VmId::new(0), p));
                }
            }
        }
    }
}
