//! Atomic dirty-page bitmap.
//!
//! Live migration (pre-copy rounds) and incremental snapshots both need to
//! know *which* guest pages were written since the last time they looked.
//! [`DirtyBitmap`] records one bit per 4 KiB page and supports a cheap
//! "snapshot and clear" operation that returns the set of dirty page indices
//! while atomically starting a new tracking epoch.
//!
//! The bitmap is lock-free: writers only ever set bits with relaxed atomic
//! OR, which keeps the hot path (every guest store) inexpensive.

use std::sync::atomic::{AtomicU64, Ordering};

/// One dirty bit per 4 KiB guest page, safe for concurrent marking.
#[derive(Debug)]
pub struct DirtyBitmap {
    words: Vec<AtomicU64>,
    pages: u64,
}

impl DirtyBitmap {
    /// Create a bitmap able to track `pages` pages, all initially clean.
    pub fn new(pages: u64) -> Self {
        let words = pages.div_ceil(64) as usize;
        DirtyBitmap {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            pages,
        }
    }

    /// Number of pages tracked.
    pub fn len(&self) -> u64 {
        self.pages
    }

    /// Whether the bitmap tracks zero pages.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Mark a single page dirty. Out-of-range indices are ignored.
    pub fn mark(&self, page: u64) {
        if page >= self.pages {
            return;
        }
        let word = (page / 64) as usize;
        let bit = page % 64;
        self.words[word].fetch_or(1 << bit, Ordering::Relaxed);
    }

    /// Mark every page in `[first, first + count)` dirty.
    pub fn mark_range(&self, first: u64, count: u64) {
        for p in first..first.saturating_add(count).min(self.pages) {
            self.mark(p);
        }
    }

    /// Whether `page` is currently marked dirty.
    pub fn is_dirty(&self, page: u64) -> bool {
        if page >= self.pages {
            return false;
        }
        let word = (page / 64) as usize;
        let bit = page % 64;
        self.words[word].load(Ordering::Relaxed) & (1 << bit) != 0
    }

    /// Number of dirty pages.
    pub fn count(&self) -> u64 {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }

    /// Clear every bit, starting a new tracking epoch.
    pub fn clear(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// The indices of all currently dirty pages, in ascending order.
    pub fn dirty_pages(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (wi, w) in self.words.iter().enumerate() {
            let mut v = w.load(Ordering::Relaxed);
            while v != 0 {
                let bit = v.trailing_zeros() as u64;
                let page = wi as u64 * 64 + bit;
                if page < self.pages {
                    out.push(page);
                }
                v &= v - 1;
            }
        }
        out
    }

    /// Atomically fetch the dirty set and clear it (per 64-page word).
    ///
    /// This is the primitive used by pre-copy migration rounds: pages dirtied
    /// *after* their word has been harvested land in the next epoch.
    pub fn drain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (wi, w) in self.words.iter().enumerate() {
            let mut v = w.swap(0, Ordering::AcqRel);
            while v != 0 {
                let bit = v.trailing_zeros() as u64;
                let page = wi as u64 * 64 + bit;
                if page < self.pages {
                    out.push(page);
                }
                v &= v - 1;
            }
        }
        out
    }

    /// Merge another bitmap's dirty bits into this one (page-wise OR).
    ///
    /// Used when a migration round is aborted and its harvested dirty set has
    /// to be returned to the live bitmap.
    pub fn merge_pages(&self, pages: &[u64]) {
        for &p in pages {
            self.mark(p);
        }
    }

    /// Fraction of tracked pages that are dirty (0.0 ..= 1.0).
    pub fn dirty_fraction(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.count() as f64 / self.pages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn mark_and_query() {
        let b = DirtyBitmap::new(200);
        assert_eq!(b.count(), 0);
        assert!(!b.is_dirty(5));
        b.mark(5);
        b.mark(63);
        b.mark(64);
        b.mark(199);
        assert!(b.is_dirty(5));
        assert!(b.is_dirty(63));
        assert!(b.is_dirty(64));
        assert!(b.is_dirty(199));
        assert_eq!(b.count(), 4);
        assert_eq!(b.dirty_pages(), vec![5, 63, 64, 199]);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let b = DirtyBitmap::new(10);
        b.mark(10);
        b.mark(u64::MAX);
        assert_eq!(b.count(), 0);
        assert!(!b.is_dirty(10_000));
    }

    #[test]
    fn mark_range_clamps() {
        let b = DirtyBitmap::new(10);
        b.mark_range(8, 100);
        assert_eq!(b.dirty_pages(), vec![8, 9]);
    }

    #[test]
    fn drain_returns_and_clears() {
        let b = DirtyBitmap::new(128);
        b.mark_range(0, 10);
        let drained = b.drain();
        assert_eq!(drained.len(), 10);
        assert_eq!(b.count(), 0);
        // A second drain is empty.
        assert!(b.drain().is_empty());
    }

    #[test]
    fn merge_restores_drained_pages() {
        let b = DirtyBitmap::new(64);
        b.mark(3);
        b.mark(40);
        let drained = b.drain();
        assert_eq!(b.count(), 0);
        b.merge_pages(&drained);
        assert_eq!(b.dirty_pages(), vec![3, 40]);
    }

    #[test]
    fn dirty_fraction() {
        let b = DirtyBitmap::new(100);
        assert_eq!(b.dirty_fraction(), 0.0);
        b.mark_range(0, 25);
        assert!((b.dirty_fraction() - 0.25).abs() < 1e-12);
        let empty = DirtyBitmap::new(0);
        assert_eq!(empty.dirty_fraction(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn concurrent_marking_loses_nothing() {
        let b = Arc::new(DirtyBitmap::new(64 * 1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for p in (t * 8 * 1024)..((t + 1) * 8 * 1024) {
                    b.mark(p);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.count(), 64 * 1024);
    }

    proptest! {
        #[test]
        fn dirty_pages_matches_reference(pages in proptest::collection::btree_set(0u64..2048, 0..300)) {
            let b = DirtyBitmap::new(2048);
            for &p in &pages {
                b.mark(p);
            }
            let expected: Vec<u64> = pages.iter().copied().collect();
            prop_assert_eq!(b.dirty_pages(), expected.clone());
            prop_assert_eq!(b.count(), expected.len() as u64);
            // drain returns the same set and empties the bitmap
            let drained: BTreeSet<u64> = b.drain().into_iter().collect();
            prop_assert_eq!(drained, pages);
            prop_assert_eq!(b.count(), 0);
        }
    }
}
