//! Atomic dirty-page bitmap.
//!
//! Live migration (pre-copy rounds) and incremental snapshots both need to
//! know *which* guest pages were written since the last time they looked.
//! [`DirtyBitmap`] records one bit per 4 KiB page and supports a cheap
//! "snapshot and clear" operation that returns the set of dirty page indices
//! while atomically starting a new tracking epoch.
//!
//! The bitmap is lock-free: writers only ever set bits with relaxed atomic
//! OR, which keeps the hot path (every guest store) inexpensive.

use std::sync::atomic::{AtomicU64, Ordering};

/// One dirty bit per 4 KiB guest page, safe for concurrent marking.
#[derive(Debug)]
pub struct DirtyBitmap {
    words: Vec<AtomicU64>,
    pages: u64,
}

impl DirtyBitmap {
    /// Create a bitmap able to track `pages` pages, all initially clean.
    pub fn new(pages: u64) -> Self {
        let words = pages.div_ceil(64) as usize;
        DirtyBitmap {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            pages,
        }
    }

    /// Number of pages tracked.
    pub fn len(&self) -> u64 {
        self.pages
    }

    /// Whether the bitmap tracks zero pages.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Mark a single page dirty. Out-of-range indices are ignored.
    pub fn mark(&self, page: u64) {
        if page >= self.pages {
            return;
        }
        let word = (page / 64) as usize;
        let bit = page % 64;
        self.words[word].fetch_or(1 << bit, Ordering::Relaxed);
    }

    /// Mark every page in `[first, first + count)` dirty.
    ///
    /// Operates word-at-a-time: one `fetch_or` covers up to 64 pages, so a
    /// large `fill`/`write` costs `O(pages / 64)` atomics instead of one per
    /// page. Out-of-range pages are ignored, exactly as [`Self::mark`] does.
    pub fn mark_range(&self, first: u64, count: u64) {
        let end = first.saturating_add(count).min(self.pages);
        if first >= end {
            return;
        }
        let mut page = first;
        while page < end {
            let word = (page / 64) as usize;
            let first_bit = page % 64;
            // Pages of this word covered by the range: [first_bit, last_bit].
            let last_bit = ((end - 1).min(word as u64 * 64 + 63)) % 64;
            let width = last_bit - first_bit + 1;
            let mask = if width == 64 {
                u64::MAX
            } else {
                ((1u64 << width) - 1) << first_bit
            };
            self.words[word].fetch_or(mask, Ordering::Relaxed);
            page = (word as u64 + 1) * 64;
        }
    }

    /// Whether `page` is currently marked dirty.
    pub fn is_dirty(&self, page: u64) -> bool {
        if page >= self.pages {
            return false;
        }
        let word = (page / 64) as usize;
        let bit = page % 64;
        self.words[word].load(Ordering::Relaxed) & (1 << bit) != 0
    }

    /// Number of dirty pages.
    pub fn count(&self) -> u64 {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }

    /// Clear every bit, starting a new tracking epoch (one store per 64-page
    /// word).
    pub fn clear(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of 64-page words backing the bitmap.
    ///
    /// Together with [`Self::load_word`] this is the substrate for batch
    /// traversals (`MemoryRegion::for_each_dirty_page` holds its data lock
    /// across one word's worth of pages).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Load the dirty bits of 64-page word `word` without clearing them.
    /// Bit `b` of the result covers page `word * 64 + b`. Out-of-range words
    /// read as zero.
    pub fn load_word(&self, word: usize) -> u64 {
        match self.words.get(word) {
            Some(w) => w.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Atomically fetch and clear the dirty bits of 64-page word `word`
    /// (the per-word harvest primitive: pages dirtied after the swap land in
    /// the next epoch). Out-of-range words read as zero.
    pub fn take_word(&self, word: usize) -> u64 {
        match self.words.get(word) {
            Some(w) => w.swap(0, Ordering::AcqRel),
            None => 0,
        }
    }

    /// OR `mask` back into word `word` — the error-path undo for
    /// [`Self::take_word`]: a harvester that fails partway through a word
    /// restores the unprocessed bits so no page is silently dropped from
    /// the epoch. Out-of-range words are ignored.
    pub fn restore_word(&self, word: usize, mask: u64) {
        if let Some(w) = self.words.get(word) {
            w.fetch_or(mask, Ordering::AcqRel);
        }
    }

    /// Iterate the currently dirty page indices in ascending order without
    /// clearing them — word-wise and allocation-free, unlike
    /// [`Self::dirty_pages`] which materializes a `Vec`.
    pub fn iter_dirty(&self) -> DirtyIter<'_> {
        DirtyIter {
            bitmap: self,
            word: 0,
            bits: self.load_word(0),
        }
    }

    /// The indices of all currently dirty pages, in ascending order.
    ///
    /// Allocating convenience wrapper over [`Self::iter_dirty`]; hot paths
    /// should iterate (or use [`Self::drain_append_into`]) instead.
    pub fn dirty_pages(&self) -> Vec<u64> {
        self.iter_dirty().collect()
    }

    /// Atomically fetch the dirty set and clear it (per 64-page word),
    /// appending the page indices to `out` in ascending order.
    ///
    /// This is the buffer-reuse primitive behind pre-copy rounds: the caller
    /// keeps one harvest `Vec` alive across rounds and pays no allocation
    /// once its capacity has grown to the working set. Pages dirtied *after*
    /// their word has been harvested land in the next epoch.
    pub fn drain_append_into(&self, out: &mut Vec<u64>) {
        for (wi, w) in self.words.iter().enumerate() {
            let mut v = w.swap(0, Ordering::AcqRel);
            while v != 0 {
                let bit = v.trailing_zeros() as u64;
                let page = wi as u64 * 64 + bit;
                if page < self.pages {
                    out.push(page);
                }
                v &= v - 1;
            }
        }
    }

    /// Atomically fetch the dirty set and clear it, as a fresh `Vec`.
    ///
    /// Allocating convenience wrapper over [`Self::drain_append_into`].
    pub fn drain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.drain_append_into(&mut out);
        out
    }

    /// Merge another bitmap's dirty bits into this one (page-wise OR).
    ///
    /// Used when a migration round is aborted and its harvested dirty set has
    /// to be returned to the live bitmap.
    pub fn merge_pages(&self, pages: &[u64]) {
        for &p in pages {
            self.mark(p);
        }
    }

    /// Fraction of tracked pages that are dirty (0.0 ..= 1.0).
    pub fn dirty_fraction(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.count() as f64 / self.pages as f64
        }
    }
}

/// Word-wise, non-clearing iterator over dirty page indices (ascending).
///
/// Each 64-page word is loaded once when the iterator reaches it, so pages
/// marked behind the cursor during iteration may or may not be observed —
/// the same snapshot-per-word semantics [`DirtyBitmap::drain`] has.
#[derive(Debug)]
pub struct DirtyIter<'a> {
    bitmap: &'a DirtyBitmap,
    /// Word the current `bits` snapshot came from.
    word: usize,
    /// Remaining dirty bits of `word`, lowest bit = next page.
    bits: u64,
}

impl Iterator for DirtyIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as u64;
                self.bits &= self.bits - 1;
                let page = self.word as u64 * 64 + bit;
                if page < self.bitmap.pages {
                    return Some(page);
                }
                // Tail bits past `pages` can only appear in the last word.
                self.bits = 0;
            }
            self.word += 1;
            if self.word >= self.bitmap.word_count() {
                return None;
            }
            self.bits = self.bitmap.load_word(self.word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn mark_and_query() {
        let b = DirtyBitmap::new(200);
        assert_eq!(b.count(), 0);
        assert!(!b.is_dirty(5));
        b.mark(5);
        b.mark(63);
        b.mark(64);
        b.mark(199);
        assert!(b.is_dirty(5));
        assert!(b.is_dirty(63));
        assert!(b.is_dirty(64));
        assert!(b.is_dirty(199));
        assert_eq!(b.count(), 4);
        assert_eq!(b.dirty_pages(), vec![5, 63, 64, 199]);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let b = DirtyBitmap::new(10);
        b.mark(10);
        b.mark(u64::MAX);
        assert_eq!(b.count(), 0);
        assert!(!b.is_dirty(10_000));
    }

    #[test]
    fn mark_range_clamps() {
        let b = DirtyBitmap::new(10);
        b.mark_range(8, 100);
        assert_eq!(b.dirty_pages(), vec![8, 9]);
    }

    #[test]
    fn drain_returns_and_clears() {
        let b = DirtyBitmap::new(128);
        b.mark_range(0, 10);
        let drained = b.drain();
        assert_eq!(drained.len(), 10);
        assert_eq!(b.count(), 0);
        // A second drain is empty.
        assert!(b.drain().is_empty());
    }

    #[test]
    fn merge_restores_drained_pages() {
        let b = DirtyBitmap::new(64);
        b.mark(3);
        b.mark(40);
        let drained = b.drain();
        assert_eq!(b.count(), 0);
        b.merge_pages(&drained);
        assert_eq!(b.dirty_pages(), vec![3, 40]);
    }

    #[test]
    fn dirty_fraction() {
        let b = DirtyBitmap::new(100);
        assert_eq!(b.dirty_fraction(), 0.0);
        b.mark_range(0, 25);
        assert!((b.dirty_fraction() - 0.25).abs() < 1e-12);
        let empty = DirtyBitmap::new(0);
        assert_eq!(empty.dirty_fraction(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn concurrent_marking_loses_nothing() {
        let b = Arc::new(DirtyBitmap::new(64 * 1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for p in (t * 8 * 1024)..((t + 1) * 8 * 1024) {
                    b.mark(p);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.count(), 64 * 1024);
    }

    #[test]
    fn iter_dirty_is_nonclearing_and_ordered() {
        let b = DirtyBitmap::new(130);
        for p in [0, 63, 64, 65, 127, 128, 129] {
            b.mark(p);
        }
        let via_iter: Vec<u64> = b.iter_dirty().collect();
        assert_eq!(via_iter, vec![0, 63, 64, 65, 127, 128, 129]);
        // Iterating did not clear anything.
        assert_eq!(b.count(), 7);
    }

    #[test]
    fn drain_append_into_reuses_capacity() {
        let b = DirtyBitmap::new(256);
        b.mark_range(10, 20);
        let mut buf = Vec::with_capacity(64);
        let cap = buf.capacity();
        b.drain_append_into(&mut buf);
        assert_eq!(buf, (10..30).collect::<Vec<u64>>());
        assert_eq!(b.count(), 0);
        // Appending semantics: a second harvest lands behind the first.
        b.mark(200);
        b.drain_append_into(&mut buf);
        assert_eq!(buf.last(), Some(&200));
        assert_eq!(buf.len(), 21);
        assert_eq!(buf.capacity(), cap, "no reallocation within capacity");
    }

    #[test]
    fn word_accessors() {
        let b = DirtyBitmap::new(100);
        assert_eq!(b.word_count(), 2);
        b.mark(3);
        b.mark(64);
        assert_eq!(b.load_word(0), 1 << 3);
        assert_eq!(b.load_word(1), 1);
        assert_eq!(b.load_word(99), 0);
    }

    #[test]
    fn mark_range_word_boundaries() {
        // Ranges chosen to hit partial-first-word, full-middle-word and
        // partial-last-word mask paths.
        for (first, count) in [(0, 64), (1, 63), (63, 2), (60, 140), (64, 64), (0, 200)] {
            let b = DirtyBitmap::new(200);
            b.mark_range(first, count);
            let expected: Vec<u64> = (first..(first + count).min(200)).collect();
            assert_eq!(b.dirty_pages(), expected, "range ({first}, {count})");
        }
    }

    proptest! {
        #[test]
        fn dirty_pages_matches_reference(pages in proptest::collection::btree_set(0u64..2048, 0..300)) {
            let b = DirtyBitmap::new(2048);
            for &p in &pages {
                b.mark(p);
            }
            let expected: Vec<u64> = pages.iter().copied().collect();
            prop_assert_eq!(b.dirty_pages(), expected.clone());
            prop_assert_eq!(b.count(), expected.len() as u64);
            // The non-clearing iterator sees the same set in the same order.
            let via_iter: Vec<u64> = b.iter_dirty().collect();
            prop_assert_eq!(via_iter, expected.clone());
            prop_assert_eq!(b.count(), expected.len() as u64);
            // drain returns the same set and empties the bitmap
            let drained: BTreeSet<u64> = b.drain().into_iter().collect();
            prop_assert_eq!(drained, pages);
            prop_assert_eq!(b.count(), 0);
        }

        /// Word-wise `mark_range` is equivalent to the per-page loop it
        /// replaced, including clamping and overflow behaviour.
        #[test]
        fn mark_range_matches_per_page_reference(
            tracked in 1u64..300,
            first in 0u64..350,
            count in 0u64..350,
        ) {
            let word_wise = DirtyBitmap::new(tracked);
            word_wise.mark_range(first, count);

            let per_page = DirtyBitmap::new(tracked);
            for p in first..first.saturating_add(count).min(tracked) {
                per_page.mark(p);
            }
            prop_assert_eq!(word_wise.dirty_pages(), per_page.dirty_pages());
        }

        /// `drain_append_into` harvests exactly what `dirty_pages` reports — same
        /// set, same (ascending) order — and clears the bitmap.
        #[test]
        fn drain_append_into_matches_dirty_pages(
            pages in proptest::collection::btree_set(0u64..1024, 0..200),
        ) {
            let b = DirtyBitmap::new(1024);
            for &p in &pages {
                b.mark(p);
            }
            let expected = b.dirty_pages();
            let mut harvested = Vec::new();
            b.drain_append_into(&mut harvested);
            prop_assert_eq!(harvested, expected);
            prop_assert_eq!(b.count(), 0);
        }
    }
}
