//! Word-wise page-scan kernels.
//!
//! Three hot paths probe page contents byte by byte at fleet scale: zero-page
//! detection (wire encode and `ZeroRun` coalescing in `rvisor-migrate`, the
//! KSM zero-page policy), content fingerprinting (KSM stable/unstable trees,
//! dedup analysis), and checksumming. A byte-at-a-time loop leaves most of a
//! 64-bit datapath idle; the kernels here read guest pages as little-endian
//! `u64` words instead:
//!
//! * [`is_zero`] folds a full 64-byte cache line per iteration as two
//!   independent 32-byte OR lanes (the lanes carry no dependency between
//!   them, so the loads dual-issue) and early-exits on the first non-zero
//!   line — a touched page is rejected within its first cache lines, an
//!   untouched page is confirmed at close to memory bandwidth.
//! * [`fingerprint`] keeps the exact FNV-1a byte recurrence (so every stored
//!   fingerprint, KSM merge decision and test vector stays valid) but feeds
//!   it from two 8-byte loads per iteration instead of sixteen
//!   bounds-checked byte loads: the multiply chain stays serial by
//!   definition, the memory traffic does not.
//!
//! Both kernels accept arbitrary slices: the tail that does not fill a word
//! is handled byte-wise, and equivalence with the byte-wise reference
//! implementations — including misaligned slice starts and ragged tails —
//! is pinned by proptest below.

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// OR together one 32-byte lane (four `u64` words).
#[inline(always)]
fn or_lane(lane: &[u8]) -> u64 {
    let a = u64::from_le_bytes(lane[0..8].try_into().expect("8-byte chunk"));
    let b = u64::from_le_bytes(lane[8..16].try_into().expect("8-byte chunk"));
    let c = u64::from_le_bytes(lane[16..24].try_into().expect("8-byte chunk"));
    let d = u64::from_le_bytes(lane[24..32].try_into().expect("8-byte chunk"));
    a | b | c | d
}

/// Returns true when every byte of the slice is zero (word-wise scan).
///
/// Equivalent to `bytes.iter().all(|&b| b == 0)`; each iteration folds a
/// full 64-byte cache line as two independent 32-byte OR lanes — the lanes
/// share no data dependency, so their eight loads pipeline — and the first
/// dirty line short-circuits the scan.
#[must_use]
pub fn is_zero(bytes: &[u8]) -> bool {
    let mut lines = bytes.chunks_exact(64);
    for line in lines.by_ref() {
        if or_lane(&line[0..32]) | or_lane(&line[32..64]) != 0 {
            return false;
        }
    }
    let rest = lines.remainder();
    let mut words = rest.chunks_exact(8);
    for word in words.by_ref() {
        if u64::from_le_bytes(word.try_into().expect("8-byte chunk")) != 0 {
            return false;
        }
    }
    words.remainder().iter().all(|&b| b == 0)
}

/// Fold one little-endian `u64` word into the FNV-1a state, byte by byte —
/// the exact serial recurrence, fed from shifts instead of byte loads.
#[inline(always)]
fn fnv_word(mut h: u64, w: u64) -> u64 {
    h = (h ^ (w & 0xff)).wrapping_mul(FNV_PRIME);
    h = (h ^ ((w >> 8) & 0xff)).wrapping_mul(FNV_PRIME);
    h = (h ^ ((w >> 16) & 0xff)).wrapping_mul(FNV_PRIME);
    h = (h ^ ((w >> 24) & 0xff)).wrapping_mul(FNV_PRIME);
    h = (h ^ ((w >> 32) & 0xff)).wrapping_mul(FNV_PRIME);
    h = (h ^ ((w >> 40) & 0xff)).wrapping_mul(FNV_PRIME);
    h = (h ^ ((w >> 48) & 0xff)).wrapping_mul(FNV_PRIME);
    (h ^ (w >> 56)).wrapping_mul(FNV_PRIME)
}

/// FNV-1a hash of the slice, fed two `u64` words at a time.
///
/// Produces bit-identical results to the byte-wise FNV-1a loop (the byte
/// recurrence is unrolled over each word's lanes in order), so fingerprints
/// computed before and after this kernel landed compare equal. The hash
/// chain is inherently serial; loading 16 bytes per iteration lets the next
/// pair of loads overlap the current multiply chain.
#[must_use]
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut pairs = bytes.chunks_exact(16);
    for pair in pairs.by_ref() {
        let lo = u64::from_le_bytes(pair[0..8].try_into().expect("8-byte chunk"));
        let hi = u64::from_le_bytes(pair[8..16].try_into().expect("8-byte chunk"));
        h = fnv_word(fnv_word(h, lo), hi);
    }
    let rest = pairs.remainder();
    let mut words = rest.chunks_exact(8);
    for word in words.by_ref() {
        let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        h = fnv_word(h, w);
    }
    for &b in words.remainder() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_types::PAGE_SIZE;

    /// The byte-wise reference both kernels must match exactly.
    fn is_zero_bytewise(bytes: &[u8]) -> bool {
        bytes.iter().all(|&b| b == 0)
    }

    fn fingerprint_bytewise(bytes: &[u8]) -> u64 {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    #[test]
    fn zero_scan_handles_edges() {
        assert!(is_zero(&[]));
        assert!(is_zero(&[0u8; 1]));
        assert!(is_zero(&[0u8; 31]));
        assert!(is_zero(&[0u8; 32]));
        assert!(is_zero(&[0u8; PAGE_SIZE as usize]));
        // A single set bit anywhere must be caught, including in the tail.
        for len in [1usize, 7, 8, 31, 32, 33, 63, 64, 100] {
            for at in [0, len / 2, len - 1] {
                let mut buf = vec![0u8; len];
                buf[at] = 1;
                assert!(!is_zero(&buf), "len {len} bit at {at}");
            }
        }
    }

    #[test]
    fn fingerprint_matches_known_byte_recurrence() {
        // FNV-1a("") is the offset basis; one-byte inputs follow directly.
        assert_eq!(fingerprint(&[]), FNV_OFFSET);
        assert_eq!(fingerprint(&[0]), FNV_OFFSET.wrapping_mul(FNV_PRIME));
        let page = vec![0xabu8; PAGE_SIZE as usize];
        assert_eq!(fingerprint(&page), fingerprint_bytewise(&page));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The word-wise zero scan agrees with the byte-wise reference
            /// for arbitrary contents, lengths (ragged tails included) and
            /// slice offsets (misaligned starts included).
            #[test]
            fn is_zero_equals_bytewise(
                data in proptest::collection::vec(proptest::num::u8::ANY, 0..200),
                zeroed in any::<bool>(),
                offset in 0usize..16,
            ) {
                let mut data = data;
                if zeroed {
                    data.fill(0);
                }
                let start = offset.min(data.len());
                let slice = &data[start..];
                prop_assert_eq!(is_zero(slice), is_zero_bytewise(slice));
            }

            /// The chunked fingerprint is bit-identical to the byte-wise
            /// FNV-1a recurrence on arbitrary slices and offsets.
            #[test]
            fn fingerprint_equals_bytewise(
                data in proptest::collection::vec(proptest::num::u8::ANY, 0..200),
                offset in 0usize..16,
            ) {
                let start = offset.min(data.len());
                let slice = &data[start..];
                prop_assert_eq!(fingerprint(slice), fingerprint_bytewise(slice));
            }
        }
    }
}
