//! Memory ballooning.
//!
//! A balloon is the guest-cooperative mechanism hypervisors use to reclaim
//! memory from a running VM: the host asks the balloon driver in the guest to
//! "inflate" (allocate and pin guest pages, then hand them back to the host),
//! shrinking the amount of memory the guest can actually use; "deflating"
//! returns pages to the guest. This is the mechanism behind memory
//! overcommit (experiment E3).
//!
//! [`Balloon`] tracks which global page indices are currently inside the
//! balloon and keeps the accounting the cluster-level overcommit planner
//! needs: configured size, ballooned size, and usable size.

use std::collections::BTreeSet;

use parking_lot::Mutex;
use rvisor_types::{ByteSize, Error, Result, PAGE_SIZE};

use crate::memory::GuestMemory;

/// Statistics describing the balloon's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalloonStats {
    /// Total configured guest memory.
    pub configured: ByteSize,
    /// Memory currently inside the balloon (reclaimed by the host).
    pub ballooned: ByteSize,
    /// Memory the guest can actually use right now.
    pub usable: ByteSize,
    /// Number of inflate operations performed.
    pub inflations: u64,
    /// Number of deflate operations performed.
    pub deflations: u64,
}

#[derive(Debug, Default)]
struct BalloonInner {
    /// Global page indices currently held by the balloon.
    held: BTreeSet<u64>,
    inflations: u64,
    deflations: u64,
}

/// Tracks pages reclaimed from a guest by the host.
#[derive(Debug)]
pub struct Balloon {
    memory: GuestMemory,
    /// Pages the balloon must never take (e.g. where guest code/page tables live).
    reserved_low_pages: u64,
    inner: Mutex<BalloonInner>,
}

impl Balloon {
    /// Create a balloon for `memory`, never touching the first
    /// `reserved_low_pages` pages (where boot code and page tables live).
    pub fn new(memory: GuestMemory, reserved_low_pages: u64) -> Self {
        Balloon {
            memory,
            reserved_low_pages,
            inner: Mutex::new(BalloonInner::default()),
        }
    }

    /// Inflate the balloon by `pages` pages.
    ///
    /// Pages are chosen from the top of guest memory downwards (real balloon
    /// drivers prefer high pages to keep low DMA-able memory available).
    /// Their contents are discarded. Returns the global indices taken.
    pub fn inflate(&self, pages: u64) -> Result<Vec<u64>> {
        let mut inner = self.inner.lock();
        let total = self.memory.total_pages();
        let candidates: Vec<u64> = (self.reserved_low_pages..total)
            .rev()
            .filter(|p| !inner.held.contains(p))
            .take(pages as usize)
            .collect();
        if (candidates.len() as u64) < pages {
            return Err(Error::BalloonExhausted {
                requested_pages: pages,
                available_pages: candidates.len() as u64,
            });
        }
        for &p in &candidates {
            self.memory.discard_page(p)?;
            inner.held.insert(p);
        }
        inner.inflations += 1;
        Ok(candidates)
    }

    /// Inflate the balloon with one *specific* page (the virtio-balloon path,
    /// where the guest driver chooses which page frame numbers to give up).
    ///
    /// Fails if the page is reserved, out of range, or already ballooned.
    pub fn inflate_page(&self, page: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        let total = self.memory.total_pages();
        if page < self.reserved_low_pages || page >= total {
            return Err(Error::BalloonExhausted {
                requested_pages: 1,
                available_pages: 0,
            });
        }
        if inner.held.contains(&page) {
            return Err(Error::BalloonExhausted {
                requested_pages: 1,
                available_pages: 0,
            });
        }
        self.memory.discard_page(page)?;
        inner.held.insert(page);
        inner.inflations += 1;
        Ok(())
    }

    /// Deflate one *specific* page. Returns whether it was held.
    pub fn deflate_page(&self, page: u64) -> bool {
        let mut inner = self.inner.lock();
        let removed = inner.held.remove(&page);
        if removed {
            inner.deflations += 1;
        }
        removed
    }

    /// Deflate the balloon by `pages` pages (or all held pages if fewer are held).
    ///
    /// Returns the global indices returned to the guest.
    pub fn deflate(&self, pages: u64) -> Vec<u64> {
        let mut inner = self.inner.lock();
        let give_back: Vec<u64> = inner
            .held
            .iter()
            .rev()
            .take(pages as usize)
            .copied()
            .collect();
        for p in &give_back {
            inner.held.remove(p);
        }
        if !give_back.is_empty() {
            inner.deflations += 1;
        }
        give_back
    }

    /// Set the balloon to an absolute target size in pages, inflating or
    /// deflating as needed. Returns the resulting balloon size in pages.
    pub fn set_target(&self, target_pages: u64) -> Result<u64> {
        let current = self.held_pages();
        if target_pages > current {
            self.inflate(target_pages - current)?;
        } else if target_pages < current {
            self.deflate(current - target_pages);
        }
        Ok(self.held_pages())
    }

    /// Number of pages currently held by the balloon.
    pub fn held_pages(&self) -> u64 {
        self.inner.lock().held.len() as u64
    }

    /// Whether a specific global page index is inside the balloon.
    pub fn holds(&self, page: u64) -> bool {
        self.inner.lock().held.contains(&page)
    }

    /// The global page indices currently held, ascending.
    pub fn held_page_indices(&self) -> Vec<u64> {
        self.inner.lock().held.iter().copied().collect()
    }

    /// Current statistics.
    pub fn stats(&self) -> BalloonStats {
        let inner = self.inner.lock();
        let configured = self.memory.total_size();
        let ballooned = ByteSize::new(inner.held.len() as u64 * PAGE_SIZE);
        BalloonStats {
            configured,
            ballooned,
            usable: configured.saturating_sub(ballooned),
            inflations: inner.inflations,
            deflations: inner.deflations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rvisor_types::GuestAddress;

    fn setup(pages: u64) -> (GuestMemory, Balloon) {
        let mem = GuestMemory::flat(ByteSize::pages_of(pages)).unwrap();
        let balloon = Balloon::new(mem.clone(), 2);
        (mem, balloon)
    }

    #[test]
    fn inflate_takes_high_pages_first() {
        let (_mem, balloon) = setup(16);
        let taken = balloon.inflate(3).unwrap();
        assert_eq!(taken, vec![15, 14, 13]);
        assert_eq!(balloon.held_pages(), 3);
        assert!(balloon.holds(15));
        assert!(!balloon.holds(0));
    }

    #[test]
    fn inflate_respects_reserved_low_pages() {
        let (_mem, balloon) = setup(8);
        // 8 pages total, 2 reserved -> at most 6 can be ballooned.
        assert!(balloon.inflate(6).is_ok());
        let err = balloon.inflate(1).unwrap_err();
        assert!(matches!(
            err,
            Error::BalloonExhausted {
                available_pages: 0,
                ..
            }
        ));
    }

    #[test]
    fn inflate_discards_page_contents() {
        let (mem, balloon) = setup(8);
        let last_page_addr = GuestAddress(7 * PAGE_SIZE);
        mem.write_u64(last_page_addr, 0xdead).unwrap();
        balloon.inflate(1).unwrap();
        assert_eq!(mem.read_u64(last_page_addr).unwrap(), 0);
    }

    #[test]
    fn deflate_returns_pages() {
        let (_mem, balloon) = setup(16);
        balloon.inflate(5).unwrap();
        let returned = balloon.deflate(2);
        assert_eq!(returned.len(), 2);
        assert_eq!(balloon.held_pages(), 3);
        // Deflating more than held returns only what is held.
        let rest = balloon.deflate(100);
        assert_eq!(rest.len(), 3);
        assert_eq!(balloon.held_pages(), 0);
        assert!(balloon.deflate(1).is_empty());
    }

    #[test]
    fn set_target_moves_in_both_directions() {
        let (_mem, balloon) = setup(32);
        assert_eq!(balloon.set_target(10).unwrap(), 10);
        assert_eq!(balloon.set_target(4).unwrap(), 4);
        assert_eq!(balloon.set_target(4).unwrap(), 4);
        assert!(balloon.set_target(31).is_err());
    }

    #[test]
    fn stats_account_usable_memory() {
        let (_mem, balloon) = setup(16);
        balloon.inflate(4).unwrap();
        balloon.deflate(1);
        let s = balloon.stats();
        assert_eq!(s.configured, ByteSize::pages_of(16));
        assert_eq!(s.ballooned, ByteSize::pages_of(3));
        assert_eq!(s.usable, ByteSize::pages_of(13));
        assert_eq!(s.inflations, 1);
        assert_eq!(s.deflations, 1);
    }

    proptest! {
        #[test]
        fn usable_plus_ballooned_is_configured(
            total in 8u64..128,
            ops in proptest::collection::vec((any::<bool>(), 1u64..16), 0..20),
        ) {
            let (_mem, balloon) = setup(total);
            for (inflate, n) in ops {
                if inflate {
                    let _ = balloon.inflate(n);
                } else {
                    balloon.deflate(n);
                }
                let s = balloon.stats();
                prop_assert_eq!(s.usable + s.ballooned, s.configured);
                prop_assert!(balloon.held_pages() <= total - 2);
            }
        }

        #[test]
        fn set_target_is_idempotent(total in 16u64..64, target in 0u64..14) {
            let (_mem, balloon) = setup(total);
            let a = balloon.set_target(target).unwrap();
            let b = balloon.set_target(target).unwrap();
            prop_assert_eq!(a, target);
            prop_assert_eq!(b, target);
        }
    }
}
