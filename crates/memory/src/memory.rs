//! The guest physical address space: an ordered set of regions.

use std::sync::Arc;

use rvisor_types::{ByteSize, Error, GuestAddress, MemoryRegionConfig, Result, PAGE_SIZE};

use crate::region::MemoryRegion;

/// Builder for a [`GuestMemory`].
///
/// ```
/// use rvisor_memory::{GuestMemoryBuilder, GuestAddress, ByteSize};
/// let mem = GuestMemoryBuilder::new()
///     .with_region(GuestAddress(0), ByteSize::mib(64))
///     .unwrap()
///     .build();
/// assert_eq!(mem.total_size(), ByteSize::mib(64));
/// ```
#[derive(Debug, Default)]
pub struct GuestMemoryBuilder {
    regions: Vec<Arc<MemoryRegion>>,
}

impl GuestMemoryBuilder {
    /// Start with an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a region at `base` of `size` bytes.
    pub fn with_region(mut self, base: GuestAddress, size: ByteSize) -> Result<Self> {
        let new = MemoryRegion::new(base, size.as_u64())?;
        for existing in &self.regions {
            if existing.range().overlaps(&new.range()) {
                return Err(Error::RegionOverlap);
            }
        }
        self.regions.push(Arc::new(new));
        Ok(self)
    }

    /// Add a region described by a [`MemoryRegionConfig`].
    pub fn with_config(self, cfg: MemoryRegionConfig) -> Result<Self> {
        self.with_region(cfg.base, cfg.size)
    }

    /// Finish building; regions are sorted by start address.
    pub fn build(mut self) -> GuestMemory {
        self.regions.sort_by_key(|r| r.start());
        GuestMemory {
            regions: Arc::new(self.regions),
        }
    }
}

/// The guest physical address space.
///
/// Cloning is cheap (the regions are shared), which lets device models, vCPUs
/// and the migration engine all hold a handle to the same memory.
#[derive(Debug, Clone)]
pub struct GuestMemory {
    regions: Arc<Vec<Arc<MemoryRegion>>>,
}

impl GuestMemory {
    /// Convenience constructor: a single region of `size` bytes at address 0.
    pub fn flat(size: ByteSize) -> Result<Self> {
        Ok(GuestMemoryBuilder::new()
            .with_region(GuestAddress(0), size)?
            .build())
    }

    /// The regions making up the address space, ordered by start address.
    pub fn regions(&self) -> &[Arc<MemoryRegion>] {
        &self.regions
    }

    /// Total bytes of guest memory across all regions.
    pub fn total_size(&self) -> ByteSize {
        ByteSize::new(self.regions.iter().map(|r| r.len()).sum())
    }

    /// Total number of 4 KiB pages across all regions.
    pub fn total_pages(&self) -> u64 {
        self.regions.iter().map(|r| r.pages()).sum()
    }

    /// Find the region containing `addr` along with the offset into it.
    fn find_region(&self, addr: GuestAddress) -> Result<&Arc<MemoryRegion>> {
        self.regions
            .iter()
            .find(|r| r.range().contains(addr))
            .ok_or(Error::InvalidGuestAddress(addr))
    }

    /// Whether `addr` is backed by guest memory.
    pub fn address_in_range(&self, addr: GuestAddress) -> bool {
        self.regions.iter().any(|r| r.range().contains(addr))
    }

    /// Whether the whole `[addr, addr + len)` range is backed by a single region.
    pub fn range_in_single_region(&self, addr: GuestAddress, len: u64) -> bool {
        self.regions
            .iter()
            .any(|r| r.range().contains_range(addr, len))
    }

    /// Walk the (possibly several) regions backing `[addr, addr + len)` in
    /// address order, calling `f(region, span start, offset into the span,
    /// span length)` for each contiguous piece.
    ///
    /// This is the span contract of [`Self::read`]/[`Self::write`]: accesses
    /// may straddle *adjacent* regions, but a span whose next byte is backed
    /// by no region fails with [`Error::CrossRegionGap`] (or
    /// [`Error::InvalidGuestAddress`] when even the first byte is unbacked).
    fn for_each_span(
        &self,
        addr: GuestAddress,
        len: u64,
        mut f: impl FnMut(&MemoryRegion, GuestAddress, usize, u64) -> Result<()>,
    ) -> Result<()> {
        let mut cur = addr;
        let mut done = 0u64;
        loop {
            let region = self.regions.iter().find(|r| r.range().contains(cur));
            let region = match region {
                Some(r) => r,
                None if done == 0 => return Err(Error::InvalidGuestAddress(cur)),
                None => {
                    return Err(Error::CrossRegionGap {
                        addr,
                        len,
                        gap_at: cur,
                    })
                }
            };
            let region_end = region.start().0 + region.len();
            let take = (region_end - cur.0).min(len - done);
            f(region, cur, done as usize, take)?;
            done += take;
            if done >= len {
                return Ok(());
            }
            cur = GuestAddress(region_end);
        }
    }

    /// Read `buf.len()` bytes at `addr`.
    ///
    /// The span may straddle adjacent regions; a span over a hole fails with
    /// [`Error::CrossRegionGap`] (partial reads into `buf` may have happened
    /// by then).
    pub fn read(&self, addr: GuestAddress, buf: &mut [u8]) -> Result<()> {
        self.for_each_span(addr, buf.len() as u64, |region, at, off, take| {
            region.read(at, &mut buf[off..off + take as usize])
        })
    }

    /// Write `buf` at `addr`, marking touched pages dirty.
    ///
    /// Same span contract as [`Self::read`]: adjacent regions are stitched,
    /// holes fail with [`Error::CrossRegionGap`] (pieces before the gap may
    /// already have been written).
    pub fn write(&self, addr: GuestAddress, buf: &[u8]) -> Result<()> {
        self.for_each_span(addr, buf.len() as u64, |region, at, off, take| {
            region.write(at, &buf[off..off + take as usize])
        })
    }

    /// Fill `len` bytes at `addr` with `value`. Same span contract as
    /// [`Self::read`].
    pub fn fill(&self, addr: GuestAddress, len: u64, value: u8) -> Result<()> {
        self.for_each_span(addr, len, |region, at, _off, take| {
            region.fill(at, take, value)
        })
    }

    /// Read a little-endian `u8`.
    pub fn read_u8(&self, addr: GuestAddress) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Read a little-endian `u16`.
    pub fn read_u16(&self, addr: GuestAddress) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&self, addr: GuestAddress) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&self, addr: GuestAddress) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian `u8`.
    pub fn write_u8(&self, addr: GuestAddress, v: u8) -> Result<()> {
        self.write(addr, &[v])
    }

    /// Write a little-endian `u16`.
    pub fn write_u16(&self, addr: GuestAddress, v: u16) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Write a little-endian `u32`.
    pub fn write_u32(&self, addr: GuestAddress, v: u32) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&self, addr: GuestAddress, v: u64) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Read `len` bytes into a freshly allocated vector.
    pub fn read_vec(&self, addr: GuestAddress, len: u64) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Run a closure over one page's bytes **without copying them**.
    ///
    /// `page` is a global page index. The owning region's read lock is held
    /// for the duration of the closure; keep the work short.
    pub fn with_page<R>(&self, page: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let (region, rel) = self.locate_page(page)?;
        region.with_page(rel, f)
    }

    /// Run a closure over one page's bytes with write access, marking the
    /// page dirty. `page` is a global page index.
    pub fn with_page_mut<R>(&self, page: u64, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let (region, rel) = self.locate_page(page)?;
        region.with_page_mut(rel, f)
    }

    /// FNV-1a fingerprint of a (global) page, hashed in place — the KSM and
    /// dedup-analysis primitive, with no 4 KiB copy per probe.
    pub fn page_fingerprint(&self, page: u64) -> Result<u64> {
        let (region, rel) = self.locate_page(page)?;
        region.page_fingerprint(rel)
    }

    /// Run a closure over an arbitrary `[addr, addr + len)` span without
    /// copying. Unlike [`Self::read`], the span must lie inside a *single*
    /// region (a contiguous borrow cannot cross backing allocations).
    ///
    /// A span that [`Self::read`] would stitch across adjacent regions
    /// fails here; callers that must accept such spans need a copying
    /// fallback (virtio-blk bounces multi-region payloads through its
    /// scratch buffer, for example).
    pub fn with_slice<R>(
        &self,
        addr: GuestAddress,
        len: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        self.find_region(addr)?.with_slice(addr, len, f)
    }

    /// Run a closure over an arbitrary single-region span with write access,
    /// marking the touched pages dirty. See [`Self::with_slice`].
    pub fn with_slice_mut<R>(
        &self,
        addr: GuestAddress,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        self.find_region(addr)?.with_slice_mut(addr, len, f)
    }

    /// Visit every currently dirty page (global indices, ascending) without
    /// clearing its bit, handing the closure `(page index, page bytes)`.
    ///
    /// Region read locks are held one 64-page bitmap word at a time (see
    /// [`MemoryRegion::for_each_dirty_page`]): no per-page lock round-trip,
    /// no per-page allocation, and writers still interleave between words.
    pub fn for_each_dirty_page<E>(
        &self,
        mut f: impl FnMut(u64, &[u8]) -> std::result::Result<(), E>,
    ) -> std::result::Result<(), E> {
        let mut base = 0u64;
        for r in self.regions.iter() {
            r.for_each_dirty_page(|rel, bytes| f(base + rel, bytes))?;
            base += r.pages();
        }
        Ok(())
    }

    /// Like [`Self::for_each_dirty_page`], but harvesting: each 64-page
    /// word's dirty bits are atomically fetched-and-cleared before its pages
    /// are visited, so a page dirtied during the walk lands in the next
    /// epoch instead of being silently lost. This is what incremental
    /// snapshot capture runs on.
    pub fn drain_dirty_pages_with<E>(
        &self,
        mut f: impl FnMut(u64, &[u8]) -> std::result::Result<(), E>,
    ) -> std::result::Result<(), E> {
        let mut base = 0u64;
        for r in self.regions.iter() {
            r.drain_dirty_pages_with(|rel, bytes| f(base + rel, bytes))?;
            base += r.pages();
        }
        Ok(())
    }

    /// Copy the contents of a whole (global) page index.
    ///
    /// Allocating convenience wrapper over [`Self::with_page`]; hot paths
    /// should use the view directly.
    pub fn read_page(&self, page: u64) -> Result<Vec<u8>> {
        self.with_page(page, |bytes| bytes.to_vec())
    }

    /// Overwrite a whole (global) page index.
    pub fn write_page(&self, page: u64, contents: &[u8]) -> Result<()> {
        let (region, rel) = self.locate_page(page)?;
        region.write_page(rel, contents)
    }

    /// Zero a whole (global) page index without marking it dirty.
    pub fn discard_page(&self, page: u64) -> Result<()> {
        let (region, rel) = self.locate_page(page)?;
        region.discard_page(rel)
    }

    /// Map a global page index to `(region, region-relative page index)`.
    ///
    /// Global page indices enumerate pages of all regions in address order;
    /// they are the currency of the dirty-tracking, balloon and migration
    /// layers.
    fn locate_page(&self, page: u64) -> Result<(&Arc<MemoryRegion>, u64)> {
        let mut remaining = page;
        for r in self.regions.iter() {
            if remaining < r.pages() {
                return Ok((r, remaining));
            }
            remaining -= r.pages();
        }
        Err(Error::InvalidGuestAddress(GuestAddress(page * PAGE_SIZE)))
    }

    /// The guest physical address of a global page index.
    pub fn page_address(&self, page: u64) -> Result<GuestAddress> {
        let (region, rel) = self.locate_page(page)?;
        Ok(region.start().unchecked_add(rel * PAGE_SIZE))
    }

    /// The global page index containing a guest physical address.
    pub fn address_page(&self, addr: GuestAddress) -> Result<u64> {
        let mut base = 0u64;
        for r in self.regions.iter() {
            if r.range().contains(addr) {
                return Ok(base + (addr.0 - r.start().0) / PAGE_SIZE);
            }
            base += r.pages();
        }
        Err(Error::InvalidGuestAddress(addr))
    }

    /// Collect the global indices of all dirty pages.
    pub fn dirty_pages(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut base = 0u64;
        for r in self.regions.iter() {
            out.extend(r.dirty_bitmap().dirty_pages().into_iter().map(|p| p + base));
            base += r.pages();
        }
        out
    }

    /// Number of dirty pages across all regions.
    pub fn dirty_page_count(&self) -> u64 {
        self.regions.iter().map(|r| r.dirty_bitmap().count()).sum()
    }

    /// Atomically harvest and clear the dirty set into a caller-owned buffer
    /// (global page indices, ascending).
    ///
    /// `out` is cleared first, then filled; once its capacity has grown to
    /// the working set, successive harvests perform **zero heap
    /// allocations** — the primitive pre-copy rounds reuse one buffer with.
    pub fn drain_dirty_into(&self, out: &mut Vec<u64>) {
        out.clear();
        let mut base = 0u64;
        for r in self.regions.iter() {
            let start = out.len();
            r.dirty_bitmap().drain_append_into(out);
            if base != 0 {
                for p in &mut out[start..] {
                    *p += base;
                }
            }
            base += r.pages();
        }
    }

    /// Atomically harvest and clear the dirty set (global page indices).
    ///
    /// Allocating convenience wrapper over [`Self::drain_dirty_into`].
    pub fn drain_dirty(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.drain_dirty_into(&mut out);
        out
    }

    /// Clear all dirty bits.
    pub fn clear_dirty(&self) {
        for r in self.regions.iter() {
            r.dirty_bitmap().clear();
        }
    }

    /// Mark a global page index dirty (used when restoring harvested state).
    pub fn mark_dirty_page(&self, page: u64) {
        if let Ok((region, rel)) = self.locate_page(page) {
            region.dirty_bitmap().mark(rel);
        }
    }

    /// A simple additive checksum of all guest memory.
    ///
    /// Cheap enough for tests and migration verification; not cryptographic.
    pub fn checksum(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| {
                r.with_bytes(|b| {
                    b.iter().enumerate().fold(0u64, |acc, (i, &v)| {
                        acc.wrapping_add((v as u64).wrapping_mul(i as u64 | 1))
                    })
                })
            })
            .fold(0u64, |a, b| a.wrapping_add(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_region_memory() -> GuestMemory {
        GuestMemoryBuilder::new()
            .with_region(GuestAddress(0), ByteSize::pages_of(4))
            .unwrap()
            .with_region(GuestAddress(0x100000), ByteSize::pages_of(4))
            .unwrap()
            .build()
    }

    #[test]
    fn builder_rejects_overlap() {
        let res = GuestMemoryBuilder::new()
            .with_region(GuestAddress(0), ByteSize::mib(1))
            .unwrap()
            .with_region(GuestAddress(0x8000), ByteSize::mib(1));
        assert!(matches!(res, Err(Error::RegionOverlap)));
    }

    #[test]
    fn flat_memory() {
        let mem = GuestMemory::flat(ByteSize::mib(2)).unwrap();
        assert_eq!(mem.total_size(), ByteSize::mib(2));
        assert_eq!(mem.total_pages(), 512);
        assert_eq!(mem.regions().len(), 1);
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mem = GuestMemory::flat(ByteSize::pages_of(2)).unwrap();
        mem.write_u8(GuestAddress(0), 0xab).unwrap();
        mem.write_u16(GuestAddress(2), 0xbeef).unwrap();
        mem.write_u32(GuestAddress(4), 0xdeadbeef).unwrap();
        mem.write_u64(GuestAddress(8), 0x0123456789abcdef).unwrap();
        assert_eq!(mem.read_u8(GuestAddress(0)).unwrap(), 0xab);
        assert_eq!(mem.read_u16(GuestAddress(2)).unwrap(), 0xbeef);
        assert_eq!(mem.read_u32(GuestAddress(4)).unwrap(), 0xdeadbeef);
        assert_eq!(mem.read_u64(GuestAddress(8)).unwrap(), 0x0123456789abcdef);
    }

    #[test]
    fn access_to_hole_fails() {
        let mem = two_region_memory();
        assert!(mem.read_u8(GuestAddress(0x5000)).is_err());
        assert!(mem.write_u8(GuestAddress(0x5000), 1).is_err());
        assert!(!mem.address_in_range(GuestAddress(0x5000)));
        assert!(mem.address_in_range(GuestAddress(0x100000)));
    }

    #[test]
    fn global_page_indexing_spans_regions() {
        let mem = two_region_memory();
        assert_eq!(mem.total_pages(), 8);
        // Page 5 is the second page of the second region.
        assert_eq!(mem.page_address(5).unwrap(), GuestAddress(0x101000));
        assert_eq!(mem.address_page(GuestAddress(0x101000)).unwrap(), 5);
        assert!(mem.page_address(8).is_err());
        assert!(mem.address_page(GuestAddress(0x50000)).is_err());
    }

    #[test]
    fn page_roundtrip_across_regions() {
        let mem = two_region_memory();
        let page = vec![0x5au8; PAGE_SIZE as usize];
        mem.write_page(6, &page).unwrap();
        assert_eq!(mem.read_page(6).unwrap(), page);
        assert!(mem.read_page(100).is_err());
    }

    #[test]
    fn dirty_tracking_spans_regions() {
        let mem = two_region_memory();
        mem.write_u8(GuestAddress(0), 1).unwrap();
        mem.write_u8(GuestAddress(0x102000), 1).unwrap();
        let dirty = mem.dirty_pages();
        assert_eq!(dirty, vec![0, 6]);
        assert_eq!(mem.dirty_page_count(), 2);
        let drained = mem.drain_dirty();
        assert_eq!(drained, vec![0, 6]);
        assert_eq!(mem.dirty_page_count(), 0);
        mem.mark_dirty_page(6);
        assert_eq!(mem.dirty_pages(), vec![6]);
        mem.clear_dirty();
        assert_eq!(mem.dirty_page_count(), 0);
    }

    /// Two regions that touch (no hole): [0, 4 pages) and [4 pages, 8 pages).
    fn two_adjacent_regions() -> GuestMemory {
        GuestMemoryBuilder::new()
            .with_region(GuestAddress(0), ByteSize::pages_of(4))
            .unwrap()
            .with_region(GuestAddress(4 * PAGE_SIZE), ByteSize::pages_of(4))
            .unwrap()
            .build()
    }

    #[test]
    fn span_straddling_adjacent_regions_is_stitched() {
        let mem = two_adjacent_regions();
        let boundary = 4 * PAGE_SIZE;
        let payload: Vec<u8> = (0..64).collect();
        mem.write(GuestAddress(boundary - 32), &payload).unwrap();
        let mut back = vec![0u8; 64];
        mem.read(GuestAddress(boundary - 32), &mut back).unwrap();
        assert_eq!(back, payload);
        // The last page of region 0 and the first page of region 1 are dirty.
        assert_eq!(mem.dirty_pages(), vec![3, 4]);
        // Typed accessors ride the same path.
        mem.write_u64(GuestAddress(boundary - 4), 0xdead_beef_cafe_f00d)
            .unwrap();
        assert_eq!(
            mem.read_u64(GuestAddress(boundary - 4)).unwrap(),
            0xdead_beef_cafe_f00d
        );
        // fill() across the boundary.
        mem.fill(GuestAddress(boundary - 8), 16, 0x5a).unwrap();
        assert_eq!(
            mem.read_u64(GuestAddress(boundary)).unwrap(),
            0x5a5a_5a5a_5a5a_5a5a
        );
    }

    #[test]
    fn span_over_a_hole_reports_cross_region_gap() {
        let mem = two_region_memory(); // hole between 4 pages and 0x100000
        let start = GuestAddress(4 * PAGE_SIZE - 8);
        let mut buf = [0u8; 16];
        match mem.read(start, &mut buf) {
            Err(Error::CrossRegionGap { addr, len, gap_at }) => {
                assert_eq!(addr, start);
                assert_eq!(len, 16);
                assert_eq!(gap_at, GuestAddress(4 * PAGE_SIZE));
            }
            other => panic!("expected CrossRegionGap, got {other:?}"),
        }
        assert!(matches!(
            mem.write(start, &[0u8; 16]),
            Err(Error::CrossRegionGap { .. })
        ));
        assert!(matches!(
            mem.fill(start, 16, 1),
            Err(Error::CrossRegionGap { .. })
        ));
        // A span starting in the hole keeps the original error shape.
        assert!(matches!(
            mem.read(GuestAddress(0x50000), &mut buf),
            Err(Error::InvalidGuestAddress(_))
        ));
    }

    #[test]
    fn page_views_and_fingerprints() {
        let mem = two_region_memory();
        mem.write_u64(GuestAddress(0x101000), 0x77).unwrap();
        // Global page 5 is the second page of the second region.
        assert_eq!(mem.with_page(5, |b| b[0]).unwrap(), 0x77);
        let fp_in_place = mem.page_fingerprint(5).unwrap();
        assert_eq!(
            fp_in_place,
            crate::ksm::fingerprint(&mem.read_page(5).unwrap())
        );
        mem.clear_dirty();
        mem.with_page_mut(5, |b| b[8] = 1).unwrap();
        assert_eq!(mem.dirty_pages(), vec![5]);
        assert_ne!(mem.page_fingerprint(5).unwrap(), fp_in_place);
        assert!(mem.with_page(100, |_| ()).is_err());
        assert!(mem.page_fingerprint(100).is_err());
    }

    #[test]
    fn slice_views_are_single_region() {
        let mem = two_adjacent_regions();
        mem.write(GuestAddress(16), &[1, 2, 3]).unwrap();
        assert_eq!(
            mem.with_slice(GuestAddress(16), 3, |b| b.to_vec()).unwrap(),
            vec![1, 2, 3]
        );
        mem.clear_dirty();
        mem.with_slice_mut(GuestAddress(16), 2, |b| b.fill(9))
            .unwrap();
        assert_eq!(mem.read_u8(GuestAddress(17)).unwrap(), 9);
        assert_eq!(mem.dirty_pages(), vec![0]);
        // A contiguous borrow cannot cross backing allocations, even when the
        // regions are adjacent.
        assert!(mem
            .with_slice(GuestAddress(4 * PAGE_SIZE - 8), 16, |_| ())
            .is_err());
    }

    #[test]
    fn drain_dirty_into_reuses_buffer_across_regions() {
        let mem = two_region_memory();
        let mut buf = Vec::with_capacity(16);
        mem.write_u8(GuestAddress(0), 1).unwrap();
        mem.write_u8(GuestAddress(0x102000), 1).unwrap();
        mem.drain_dirty_into(&mut buf);
        assert_eq!(buf, vec![0, 6]);
        assert_eq!(mem.dirty_page_count(), 0);
        let cap = buf.capacity();
        // The next harvest clears and refills without reallocating.
        mem.write_u8(GuestAddress(0x1000), 1).unwrap();
        mem.drain_dirty_into(&mut buf);
        assert_eq!(buf, vec![1]);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn for_each_dirty_page_spans_regions_with_global_indices() {
        let mem = two_region_memory();
        mem.write_u64(GuestAddress(0x1000), 11).unwrap();
        mem.write_u64(GuestAddress(0x102000), 22).unwrap();
        let mut seen = Vec::new();
        mem.for_each_dirty_page(|page, bytes| {
            seen.push((page, bytes[0]));
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(seen, vec![(1, 11), (6, 22)]);
        // Non-clearing: the bits are still set.
        assert_eq!(mem.dirty_page_count(), 2);
    }

    #[test]
    fn checksum_changes_with_contents() {
        let mem = GuestMemory::flat(ByteSize::pages_of(4)).unwrap();
        let c0 = mem.checksum();
        mem.write_u64(GuestAddress(0x100), 42).unwrap();
        let c1 = mem.checksum();
        assert_ne!(c0, c1);
        mem.write_u64(GuestAddress(0x100), 0).unwrap();
        assert_eq!(mem.checksum(), c0);
    }

    #[test]
    fn clone_shares_backing_store() {
        let mem = GuestMemory::flat(ByteSize::pages_of(1)).unwrap();
        let view = mem.clone();
        mem.write_u32(GuestAddress(16), 77).unwrap();
        assert_eq!(view.read_u32(GuestAddress(16)).unwrap(), 77);
    }

    proptest! {
        #[test]
        fn write_then_read_roundtrips(
            offset in 0u64..(16 * PAGE_SIZE - 64),
            data in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            let mem = GuestMemory::flat(ByteSize::pages_of(16)).unwrap();
            mem.write(GuestAddress(offset), &data).unwrap();
            let back = mem.read_vec(GuestAddress(offset), data.len() as u64).unwrap();
            prop_assert_eq!(back, data);
        }

        #[test]
        fn page_address_and_address_page_are_inverse(page in 0u64..8) {
            let mem = two_region_memory();
            let addr = mem.page_address(page).unwrap();
            prop_assert_eq!(mem.address_page(addr).unwrap(), page);
        }

        #[test]
        fn dirty_pages_cover_all_writes(
            writes in proptest::collection::vec((0u64..(8 * PAGE_SIZE - 8), 1usize..8), 0..32)
        ) {
            let mem = GuestMemory::flat(ByteSize::pages_of(8)).unwrap();
            let mut expected = std::collections::BTreeSet::new();
            for (off, len) in &writes {
                mem.write(GuestAddress(*off), &vec![1u8; *len]).unwrap();
                let first = off / PAGE_SIZE;
                let last = (off + *len as u64 - 1) / PAGE_SIZE;
                for p in first..=last {
                    expected.insert(p);
                }
            }
            let dirty: std::collections::BTreeSet<u64> = mem.dirty_pages().into_iter().collect();
            prop_assert_eq!(dirty, expected);
        }
    }
}
