//! The host-level VM manager.
//!
//! A [`Vmm`] is what runs on one physical host: it owns the VMs placed
//! there, the virtual switch connecting their NICs, the snapshot store used
//! for backups, and the sending/receiving ends of live migrations.

use std::collections::BTreeMap;

use rvisor_memory::{analyze_sharing, DedupAnalysis, GuestMemory, KsmConfig, KsmManager};
use rvisor_migrate::{
    DirtySource, FaultService, LoopbackTransport, MigrationConfig, MigrationPlan, MigrationReport,
    PlanEngine, PostCopy, PreCopy, StopAndCopy, Transport,
};
use rvisor_net::{Link, VirtualSwitch};
use rvisor_obs::Trace;
use rvisor_snapshot::{SnapshotId, SnapshotStore};
use rvisor_types::{ByteSize, Error, Nanoseconds, Result, VmId};

use crate::config::VmConfig;
use crate::vm::{Vm, VmLifecycle};

/// Which migration engine [`Vmm::migrate_to`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// Pause, copy, resume (cold migration).
    StopAndCopy,
    /// Iterative pre-copy (the default live migration).
    PreCopy,
    /// Post-copy with demand paging.
    PostCopy,
}

/// A live-migration dirty source backed by actually running the source VM.
///
/// While a pre-copy round is in flight the source guest keeps executing; the
/// pages it writes show up in its dirty bitmap and become the next round's
/// work. This adapter is what makes the VMM-level migration path exercise
/// the same convergence behaviour as the standalone engine benchmarks.
struct RunningVmDirtier<'a> {
    vm: &'a mut Vm,
    /// Pages observed entering the dirty bitmap while rounds were in flight.
    pages_dirtied: u64,
    /// Simulated guest time accumulated across the rounds.
    time_run: Nanoseconds,
}

impl<'a> RunningVmDirtier<'a> {
    fn new(vm: &'a mut Vm) -> Self {
        RunningVmDirtier {
            vm,
            pages_dirtied: 0,
            time_run: Nanoseconds::ZERO,
        }
    }
}

impl DirtySource for RunningVmDirtier<'_> {
    fn run_for(&mut self, memory: &GuestMemory, duration: Nanoseconds) -> Result<u64> {
        // The engine drains the dirty bitmap *after* this call, so the bitmap
        // delta over the run is exactly the dirty traffic this round added.
        let dirty_before = memory.dirty_page_count();
        let mut ran = Nanoseconds::ZERO;
        if self.vm.lifecycle() == VmLifecycle::Running {
            ran = self.vm.run_for(duration)?;
        }
        let dirtied = memory.dirty_page_count().saturating_sub(dirty_before);
        self.pages_dirtied += dirtied;
        self.time_run = self.time_run.saturating_add(ran.max(duration));
        Ok(dirtied)
    }

    fn dirty_rate_bytes_per_sec(&self) -> u64 {
        let ns = self.time_run.as_nanos();
        if ns == 0 {
            return 0;
        }
        ((self.pages_dirtied as u128 * rvisor_types::PAGE_SIZE as u128 * 1_000_000_000)
            / ns as u128) as u64
    }
}

/// Point-in-time lifecycle and utilization telemetry for one host, as
/// consumed by fleet-level layers (the `rvisor-orch` orchestrator feeds its
/// rebalance policies from this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmmUtilization {
    /// VMs on the host, in any lifecycle state.
    pub vm_count: usize,
    /// VMs currently `Running`.
    pub running: usize,
    /// VMs currently `Paused`.
    pub paused: usize,
    /// VMs that have `Halted`.
    pub halted: usize,
    /// Guest memory configured across all VMs.
    pub guest_memory: ByteSize,
    /// Pages currently marked dirty across all VMs' bitmaps.
    pub dirty_pages: u64,
    /// Guest instructions retired across all VMs since they were created.
    pub instructions: u64,
    /// Simulated guest time consumed across all VMs.
    pub sim_time: Nanoseconds,
}

/// The per-host virtual machine manager.
pub struct Vmm {
    name: String,
    vms: BTreeMap<VmId, Vm>,
    next_vm: u32,
    switch: VirtualSwitch,
    snapshots: SnapshotStore,
    /// Scratch id list reused by [`Self::run_all_once`] so the per-slice
    /// scheduling loop stops allocating once it has seen the VM population.
    slice_ids: Vec<VmId>,
    /// Dirty rates measured by [`RunningVmDirtier`] during past pre-copy
    /// migrations, keyed by the VM's id *on this host*. Carried forward
    /// across migrations (under the destination's new id) so fleet-level
    /// planners can classify a guest as dirty-hot before re-migrating it.
    observed_dirty_rates: BTreeMap<VmId, u64>,
}

impl std::fmt::Debug for Vmm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vmm")
            .field("name", &self.name)
            .field("vms", &self.vms.len())
            .field("snapshots", &self.snapshots.len())
            .finish()
    }
}

impl Vmm {
    /// Create a manager for one host.
    pub fn new(name: &str) -> Self {
        Vmm {
            name: name.to_string(),
            vms: BTreeMap::new(),
            next_vm: 0,
            switch: VirtualSwitch::new(),
            snapshots: SnapshotStore::new(),
            slice_ids: Vec::new(),
            observed_dirty_rates: BTreeMap::new(),
        }
    }

    /// The dirty rate (bytes/second) last observed for `id` during a
    /// pre-copy migration, if it has ever been measured. The observation
    /// travels with the VM: after a migration the destination host reports
    /// it under the VM's new id.
    pub fn observed_dirty_rate(&self, id: VmId) -> Option<u64> {
        self.observed_dirty_rates.get(&id).copied()
    }

    /// The host's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The virtual switch VM NICs attach to.
    pub fn switch(&self) -> &VirtualSwitch {
        &self.switch
    }

    /// The snapshot store.
    pub fn snapshots(&self) -> &SnapshotStore {
        &self.snapshots
    }

    /// Mutable access to the snapshot store.
    pub fn snapshots_mut(&mut self) -> &mut SnapshotStore {
        &mut self.snapshots
    }

    /// Create a VM from `config` and return its id.
    pub fn create_vm(&mut self, config: VmConfig) -> Result<VmId> {
        let id = VmId::new(self.next_vm);
        let vm = Vm::with_id_and_switch(id, config, Some(&self.switch))?;
        self.next_vm += 1;
        self.vms.insert(id, vm);
        Ok(id)
    }

    /// Create a VM from `config` and run `init` on it (workload loading,
    /// guest-state seeding) as one provisioning step.
    ///
    /// If `init` fails the half-created VM is destroyed before the error is
    /// returned, so a failed provisioning never leaks a VM into the manager.
    /// This is the materialization hook fleet-level layers use to turn a
    /// statistical VM model into a live guest with deterministic content.
    pub fn create_vm_with(
        &mut self,
        config: VmConfig,
        init: impl FnOnce(&mut Vm) -> Result<()>,
    ) -> Result<VmId> {
        let id = self.create_vm(config)?;
        let vm = self.vms.get_mut(&id).expect("just created");
        match init(vm) {
            Ok(()) => Ok(id),
            Err(e) => {
                let _ = self.destroy_vm(id);
                Err(e)
            }
        }
    }

    /// Ids of all VMs on this host.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().copied().collect()
    }

    /// Number of VMs on this host.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Total guest memory configured across all VMs.
    pub fn total_guest_memory(&self) -> ByteSize {
        ByteSize::new(
            self.vms
                .values()
                .map(|vm| vm.config().memory.as_u64())
                .sum(),
        )
    }

    /// Find a VM by its configured name.
    ///
    /// Names are not required to be unique within a host; the first match in
    /// id order wins. Fleet-level layers that key VMs by name (the
    /// orchestrator does) are expected to keep names unique themselves.
    pub fn find_vm(&self, name: &str) -> Option<VmId> {
        self.vms
            .iter()
            .find(|(_, vm)| vm.name() == name)
            .map(|(&id, _)| id)
    }

    /// The lifecycle state of one VM (orchestrator hook).
    pub fn lifecycle_of(&self, id: VmId) -> Result<VmLifecycle> {
        Ok(self.vm(id)?.lifecycle())
    }

    /// Aggregate lifecycle/utilization telemetry across this host's VMs.
    pub fn utilization(&self) -> VmmUtilization {
        let mut u = VmmUtilization::default();
        for vm in self.vms.values() {
            u.vm_count += 1;
            match vm.lifecycle() {
                VmLifecycle::Running => u.running += 1,
                VmLifecycle::Paused => u.paused += 1,
                VmLifecycle::Halted => u.halted += 1,
                _ => {}
            }
            u.guest_memory = ByteSize::new(u.guest_memory.as_u64() + vm.config().memory.as_u64());
            u.dirty_pages += vm.memory().dirty_page_count();
            let stats = vm.stats();
            u.instructions += stats.instructions;
            u.sim_time = u.sim_time.saturating_add(stats.sim_time);
        }
        u
    }

    /// Borrow a VM.
    pub fn vm(&self, id: VmId) -> Result<&Vm> {
        self.vms.get(&id).ok_or(Error::UnknownVm(id))
    }

    /// Mutably borrow a VM.
    pub fn vm_mut(&mut self, id: VmId) -> Result<&mut Vm> {
        self.vms.get_mut(&id).ok_or(Error::UnknownVm(id))
    }

    /// Destroy a VM and release its resources.
    pub fn destroy_vm(&mut self, id: VmId) -> Result<()> {
        match self.vms.remove(&id) {
            Some(mut vm) => {
                vm.destroy();
                self.observed_dirty_rates.remove(&id);
                Ok(())
            }
            None => Err(Error::UnknownVm(id)),
        }
    }

    /// Run every runnable VM for one scheduling slice (simple round-robin at
    /// the host level). Returns the number of VMs that are still runnable.
    pub fn run_all_once(&mut self) -> Result<usize> {
        // Reuse the scratch id list: this loop runs once per scheduling slice
        // for the lifetime of the host, so it must not allocate at steady
        // state.
        self.slice_ids.clear();
        self.slice_ids.extend(self.vms.keys().copied());
        let mut runnable = 0;
        for &id in &self.slice_ids {
            let vm = self.vms.get_mut(&id).expect("id came from the map");
            if vm.lifecycle() == VmLifecycle::Running && vm.run_slice()? {
                runnable += 1;
            }
        }
        Ok(runnable)
    }

    /// Run all VMs until every one of them has halted (or the iteration bound hits).
    pub fn run_all_to_halt(&mut self, max_rounds: u64) -> Result<()> {
        for _ in 0..max_rounds {
            if self.run_all_once()? == 0 {
                return Ok(());
            }
        }
        Err(Error::VcpuFault(format!(
            "VMs still runnable after {max_rounds} rounds"
        )))
    }

    /// Take a full snapshot of a VM into this host's snapshot store.
    pub fn snapshot_vm(&mut self, id: VmId, name: &str) -> Result<SnapshotId> {
        let vm = self.vms.get_mut(&id).ok_or(Error::UnknownVm(id))?;
        vm.snapshot(name, &mut self.snapshots)
    }

    /// Measure how much memory the VMs on this host could share through
    /// content-based page deduplication (a one-shot, perfect-scanner bound).
    pub fn dedup_analysis(&self) -> Result<DedupAnalysis> {
        analyze_sharing(self.vms.values().map(|vm| vm.memory()))
    }

    /// Build a KSM scanner registered with every VM currently on this host.
    ///
    /// The caller drives it with [`KsmManager::scan_round`] at whatever
    /// cadence it wants; pages merged by the scanner are purely an
    /// accounting construct (guest memory is never aliased in the
    /// simulation), so no write-protection wiring is needed.
    pub fn ksm_manager(&self, config: KsmConfig) -> KsmManager {
        let mut manager = KsmManager::new(config);
        for (&id, vm) in &self.vms {
            manager.register_vm(id, vm.memory().clone());
        }
        manager
    }

    /// Migrate a VM to another host's manager over `link` with the default
    /// migration configuration.
    ///
    /// On success the VM exists (running) on `destination` with identical
    /// memory and vCPU state, and has been destroyed here. The returned
    /// report carries downtime/total-time/bytes as measured by the engine.
    pub fn migrate_to(
        &mut self,
        id: VmId,
        destination: &mut Vmm,
        link: &mut Link,
        outcome: MigrationOutcome,
    ) -> Result<(VmId, MigrationReport)> {
        self.migrate_to_with_config(id, destination, link, outcome, MigrationConfig::default())
    }

    /// Migrate a VM with an explicit [`MigrationConfig`] (round budgets,
    /// dirty-set threshold, page compression).
    ///
    /// The migration is streamed in the versioned wire format over a
    /// loopback transport timed by `link` — byte- and nanosecond-equivalent
    /// to the direct in-memory engines, but exercising the full
    /// encode/checksum/decode pipeline on every VM move.
    pub fn migrate_to_with_config(
        &mut self,
        id: VmId,
        destination: &mut Vmm,
        link: &mut Link,
        outcome: MigrationOutcome,
        config: MigrationConfig,
    ) -> Result<(VmId, MigrationReport)> {
        let mut transport = LoopbackTransport::new(link);
        self.migrate_to_over(id, destination, &mut transport, outcome, config)
    }

    /// Migrate a VM as a wire-format stream over an arbitrary
    /// [`Transport`] — a [`LoopbackTransport`] for same-switch moves, or a
    /// [`FabricTransport`](rvisor_migrate::FabricTransport) so the
    /// migration contends with every other stream on a shared
    /// [`Fabric`](rvisor_net::Fabric) (what the orchestrator does for
    /// rebalance traffic).
    ///
    /// With `config.streams > 1` the migration runs through the pipelined,
    /// multi-stream data plane (`rvisor_migrate::pipeline`): encode workers
    /// shard the page-index space into fixed stripes while a sink thread
    /// applies segments concurrently. The wire bytes, the destination
    /// memory image and the [`MigrationReport`] are identical to the serial
    /// stream — parallelism buys host wall-clock, not different results —
    /// with one documented exception: under XBZRLE with a working set
    /// larger than the cache, the per-stripe caches can make the pipelined
    /// run send *fewer* bytes than serial (see the `pipeline` module docs).
    pub fn migrate_to_over(
        &mut self,
        id: VmId,
        destination: &mut Vmm,
        transport: &mut dyn Transport,
        outcome: MigrationOutcome,
        config: MigrationConfig,
    ) -> Result<(VmId, MigrationReport)> {
        self.migrate_to_over_traced(id, destination, transport, outcome, config, &Trace::off())
    }

    /// [`Vmm::migrate_to_over`] with per-migration and per-round trace
    /// spans emitted to `trace`; with [`Trace::off`] the two are identical.
    ///
    /// The `(outcome, config)` pair is lowered into a [`MigrationPlan`]
    /// and executed by [`Vmm::migrate_to_planned_traced`]; the results are
    /// identical because the lowering preserves every knob and defaults
    /// the fault-service policy to the sweep-ordered reference.
    pub fn migrate_to_over_traced(
        &mut self,
        id: VmId,
        destination: &mut Vmm,
        transport: &mut dyn Transport,
        outcome: MigrationOutcome,
        config: MigrationConfig,
        trace: &Trace,
    ) -> Result<(VmId, MigrationReport)> {
        let engine = match outcome {
            MigrationOutcome::StopAndCopy => PlanEngine::StopAndCopy,
            MigrationOutcome::PreCopy => PlanEngine::PreCopy,
            MigrationOutcome::PostCopy => PlanEngine::PostCopy,
        };
        self.migrate_to_planned_traced(id, destination, transport, &config.plan(engine), trace)
    }

    /// Migrate a VM under an explicit per-migration [`MigrationPlan`] —
    /// the entry point the orchestrator's adaptive planner drives.
    ///
    /// Beyond [`Vmm::migrate_to_over_traced`] this honours the plan-only
    /// knobs: [`FaultService::FaultLane`] routes post-copy demand faults
    /// over a dedicated serial lane that overtakes the background sweep
    /// (the lane *is* the second stream, so `streams` is ignored there),
    /// and `compressors` sizes the decoupled compression stage of the
    /// pipelined pre-copy data plane independently of `streams`.
    pub fn migrate_to_planned_traced(
        &mut self,
        id: VmId,
        destination: &mut Vmm,
        transport: &mut dyn Transport,
        plan: &MigrationPlan,
        trace: &Trace,
    ) -> Result<(VmId, MigrationReport)> {
        let config = plan.config();
        let source_vm = self.vms.get_mut(&id).ok_or(Error::UnknownVm(id))?;
        // Build an identical, empty shell on the destination.
        let dest_id = destination.create_vm(source_vm.config().clone())?;
        let pipelined = config.streams.get() > 1;
        // The dirty rate this migration observes, if the engine measures one.
        let mut observed_rate: Option<u64> = None;

        let report = {
            let dest_vm = destination.vm(dest_id)?;
            let dest_memory = dest_vm.memory().clone();
            match plan.engine {
                PlanEngine::StopAndCopy => {
                    if source_vm.lifecycle() == VmLifecycle::Running {
                        source_vm.pause()?;
                    }
                    let states = source_vm.save_vcpu_states();
                    if pipelined {
                        StopAndCopy::migrate_pipelined_traced(
                            source_vm.memory(),
                            &dest_memory,
                            &states,
                            transport,
                            &config,
                            trace,
                        )?
                    } else {
                        StopAndCopy::migrate_over_traced(
                            source_vm.memory(),
                            &dest_memory,
                            &states,
                            transport,
                            trace,
                        )?
                    }
                }
                PlanEngine::PreCopy => {
                    let memory = source_vm.memory().clone();
                    let states_placeholder = source_vm.save_vcpu_states();
                    let mut dirtier = RunningVmDirtier::new(source_vm);

                    let report = if pipelined {
                        PreCopy::migrate_pipelined_planned_traced(
                            &memory,
                            &dest_memory,
                            &states_placeholder,
                            transport,
                            &mut dirtier,
                            plan,
                            trace,
                        )?
                    } else {
                        PreCopy::migrate_over_traced(
                            &memory,
                            &dest_memory,
                            &states_placeholder,
                            transport,
                            &mut dirtier,
                            &config,
                            trace,
                        )?
                    };
                    let rate = dirtier.dirty_rate_bytes_per_sec();
                    if rate > 0 {
                        observed_rate = Some(rate);
                    }
                    report
                }
                PlanEngine::PostCopy => {
                    if source_vm.lifecycle() == VmLifecycle::Running {
                        source_vm.pause()?;
                    }
                    let states = source_vm.save_vcpu_states();
                    match plan.fault_service {
                        FaultService::FaultLane => PostCopy::migrate_fault_lane_over_traced(
                            source_vm.memory(),
                            &dest_memory,
                            &states,
                            transport,
                            &config,
                            trace,
                        )?,
                        FaultService::Sweep if pipelined => PostCopy::migrate_pipelined_traced(
                            source_vm.memory(),
                            &dest_memory,
                            &states,
                            transport,
                            &config,
                            trace,
                        )?,
                        FaultService::Sweep => PostCopy::migrate_over_traced(
                            source_vm.memory(),
                            &dest_memory,
                            &states,
                            transport,
                            &config,
                            trace,
                        )?,
                    }
                }
            }
        };

        // The stop phase of every engine ends with the source paused; capture
        // the final vCPU state now and hand it to the destination.
        let source_vm = self.vms.get_mut(&id).ok_or(Error::UnknownVm(id))?;
        if source_vm.lifecycle() == VmLifecycle::Running {
            source_vm.pause()?;
        }
        let source_halted = source_vm.lifecycle() == VmLifecycle::Halted;
        let final_states = source_vm.save_vcpu_states();
        // Pre-copy moved memory while the source kept running; its final dirty
        // residue was already copied by the engine's stop phase, but any pages
        // dirtied after the engine returned (there are none, because we paused)
        // would be lost — pausing first is what guarantees correctness here.
        let dest_vm = destination.vm_mut(dest_id)?;
        dest_vm.restore_vcpu_states(&final_states)?;
        if source_halted {
            dest_vm.mark_halted()?;
        } else {
            dest_vm.mark_running()?;
        }

        // The observation travels with the VM: a fresh measurement from this
        // migration wins, otherwise whatever an earlier migration recorded
        // rides along under the VM's new id on the destination.
        let carried = self.observed_dirty_rates.remove(&id);
        if let Some(rate) = observed_rate.or(carried) {
            destination.observed_dirty_rates.insert(dest_id, rate);
        }

        self.destroy_vm(id)?;
        Ok((dest_id, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvisor_net::LinkModel;
    use rvisor_types::GuestAddress;
    use rvisor_vcpu::{Workload, WorkloadKind};

    fn config(name: &str) -> VmConfig {
        VmConfig::new(name).with_memory(ByteSize::mib(4))
    }

    #[test]
    fn create_run_destroy() {
        let mut vmm = Vmm::new("host-a");
        let a = vmm.create_vm(config("a")).unwrap();
        let b = vmm.create_vm(config("b")).unwrap();
        assert_ne!(a, b);
        assert_eq!(vmm.vm_count(), 2);
        assert_eq!(vmm.total_guest_memory(), ByteSize::mib(8));
        assert_eq!(vmm.vm_ids(), vec![a, b]);

        for id in [a, b] {
            let w = Workload::new(WorkloadKind::ComputeBound { iterations: 100 }).unwrap();
            vmm.vm_mut(id).unwrap().load_workload(&w).unwrap();
        }
        vmm.run_all_to_halt(1000).unwrap();
        assert_eq!(vmm.vm(a).unwrap().lifecycle(), VmLifecycle::Halted);

        vmm.destroy_vm(a).unwrap();
        assert!(vmm.vm(a).is_err());
        assert!(vmm.destroy_vm(a).is_err());
        assert_eq!(vmm.vm_count(), 1);
        assert!(format!("{vmm:?}").contains("host-a"));
        assert_eq!(vmm.name(), "host-a");
    }

    #[test]
    fn create_vm_with_runs_init_and_rolls_back_on_failure() {
        let mut vmm = Vmm::new("host");
        let ok = vmm
            .create_vm_with(config("seeded"), |vm| {
                vm.memory().write_u64(GuestAddress(0x3000), 0xabad1dea)
            })
            .unwrap();
        assert_eq!(
            vmm.vm(ok)
                .unwrap()
                .memory()
                .read_u64(GuestAddress(0x3000))
                .unwrap(),
            0xabad1dea
        );
        let before = vmm.vm_count();
        let err = vmm.create_vm_with(config("doomed"), |_| {
            Err(Error::Config("provisioning failed".into()))
        });
        assert!(err.is_err());
        assert_eq!(
            vmm.vm_count(),
            before,
            "a failed init must not leak a VM into the manager"
        );
        assert_eq!(vmm.find_vm("doomed"), None);
    }

    #[test]
    fn unknown_vm_operations_fail() {
        let mut vmm = Vmm::new("host");
        let ghost = VmId::new(42);
        assert!(vmm.vm(ghost).is_err());
        assert!(vmm.vm_mut(ghost).is_err());
        assert!(vmm.snapshot_vm(ghost, "x").is_err());
        let mut other = Vmm::new("other");
        let mut link = Link::new(LinkModel::gigabit());
        assert!(vmm
            .migrate_to(ghost, &mut other, &mut link, MigrationOutcome::PreCopy)
            .is_err());
    }

    #[test]
    fn running_vm_dirtier_reports_real_dirty_traffic() {
        let mut vmm = Vmm::new("host");
        let id = vmm.create_vm(config("dirty")).unwrap();
        let vm = vmm.vm_mut(id).unwrap();
        let w = Workload::new(WorkloadKind::MemoryDirty {
            pages: 64,
            passes: 200,
        })
        .unwrap();
        vm.load_workload(&w).unwrap();
        let memory = vm.memory().clone();
        let mut dirtier = RunningVmDirtier::new(vm);
        let dirtied = dirtier
            .run_for(&memory, Nanoseconds::from_micros(200))
            .unwrap();
        assert!(dirtied > 0, "a memory-dirty guest must report dirty pages");
        assert!(
            dirtier.dirty_rate_bytes_per_sec() > 0,
            "rate estimate must reflect the observed traffic"
        );
        // An idle (paused) guest reports nothing.
        let vm = vmm.vm_mut(id).unwrap();
        if vm.lifecycle() == VmLifecycle::Running {
            vm.pause().unwrap();
        }
        memory.clear_dirty();
        let mut idle = RunningVmDirtier::new(vm);
        assert_eq!(
            idle.run_for(&memory, Nanoseconds::from_millis(1)).unwrap(),
            0
        );
    }

    #[test]
    fn utilization_and_find_vm_hooks() {
        let mut vmm = Vmm::new("host");
        let a = vmm.create_vm(config("alpha")).unwrap();
        let b = vmm.create_vm(config("beta")).unwrap();
        let w = Workload::new(WorkloadKind::ComputeBound { iterations: 100 }).unwrap();
        vmm.vm_mut(a).unwrap().load_workload(&w).unwrap();

        assert_eq!(vmm.find_vm("alpha"), Some(a));
        assert_eq!(vmm.find_vm("beta"), Some(b));
        assert_eq!(vmm.find_vm("ghost"), None);
        assert_eq!(vmm.lifecycle_of(a).unwrap(), VmLifecycle::Running);
        assert_eq!(vmm.lifecycle_of(b).unwrap(), VmLifecycle::Created);
        assert!(vmm.lifecycle_of(VmId::new(99)).is_err());

        let before = vmm.utilization();
        assert_eq!(before.vm_count, 2);
        assert_eq!(before.running, 1);
        assert_eq!(before.guest_memory, ByteSize::mib(8));

        vmm.run_all_to_halt(1000).unwrap();
        let after = vmm.utilization();
        assert_eq!(after.halted, 1);
        assert!(after.instructions > before.instructions);
        assert!(after.sim_time > before.sim_time);
    }

    #[test]
    fn snapshot_via_manager() {
        let mut vmm = Vmm::new("host");
        let id = vmm.create_vm(config("snap")).unwrap();
        let w = Workload::new(WorkloadKind::ComputeBound { iterations: 50 }).unwrap();
        vmm.vm_mut(id).unwrap().load_workload(&w).unwrap();
        let snap = vmm.snapshot_vm(id, "before").unwrap();
        assert!(vmm.snapshots().get(snap).is_some());
        assert_eq!(vmm.snapshots().len(), 1);
        assert!(vmm.snapshots_mut().delete(snap).is_ok());
    }

    fn loaded_vmm_with_marker() -> (Vmm, VmId) {
        let mut vmm = Vmm::new("source");
        let id = vmm.create_vm(config("moving")).unwrap();
        {
            let vm = vmm.vm_mut(id).unwrap();
            // An idle guest with plenty of wakeups left: it keeps "running"
            // while pre-copy rounds are in flight and finishes on the
            // destination after the migration.
            let w = Workload::new(WorkloadKind::Idle { wakeups: 5_000 }).unwrap();
            vm.load_workload(&w).unwrap();
            // Leave a marker in guest memory that must survive the migration.
            vm.memory()
                .write_u64(GuestAddress(0x2000), 0xfeedface)
                .unwrap();
        }
        (vmm, id)
    }

    #[test]
    fn migration_moves_memory_and_state() {
        for outcome in [
            MigrationOutcome::StopAndCopy,
            MigrationOutcome::PreCopy,
            MigrationOutcome::PostCopy,
        ] {
            let (mut source, id) = loaded_vmm_with_marker();
            let source_checksum_before = source.vm(id).unwrap().memory().checksum();
            let mut dest = Vmm::new("dest");
            let mut link = Link::new(LinkModel::gigabit());
            let (dest_id, report) = source
                .migrate_to(id, &mut dest, &mut link, outcome)
                .unwrap();

            // Source is gone, destination runs with identical memory.
            assert!(source.vm(id).is_err());
            let dest_vm = dest.vm(dest_id).unwrap();
            assert_eq!(dest_vm.lifecycle(), VmLifecycle::Running);
            assert_eq!(
                dest_vm.memory().read_u64(GuestAddress(0x2000)).unwrap(),
                0xfeedface
            );
            if outcome != MigrationOutcome::PreCopy {
                // For the paused engines the memory image is bit-identical to the
                // pre-migration source.
                assert_eq!(dest_vm.memory().checksum(), source_checksum_before);
            }
            assert!(report.total_time > Nanoseconds::ZERO);
            assert!(report.bytes_transferred >= ByteSize::mib(4).as_u64());

            // The migrated guest can keep running to completion on the destination.
            let dest_vm = dest.vm_mut(dest_id).unwrap();
            dest_vm.run_to_halt().unwrap();
            assert_eq!(dest_vm.lifecycle(), VmLifecycle::Halted);
        }
    }

    #[test]
    fn dedup_analysis_and_ksm_scanner_over_the_managers_vms() {
        let mut vmm = Vmm::new("host");
        // Two clones with identical content plus one VM that differs.
        let mut ids = Vec::new();
        for name in ["clone-a", "clone-b", "other"] {
            ids.push(vmm.create_vm(config(name)).unwrap());
        }
        for (i, &id) in ids.iter().enumerate() {
            let vm = vmm.vm(id).unwrap();
            for p in 0..16u64 {
                let value = if i < 2 {
                    0xc0de_0000 + p
                } else {
                    0xd1ff_0000 + p
                };
                vm.memory()
                    .write_u64(GuestAddress(p * 4096), value)
                    .unwrap();
            }
        }
        let analysis = vmm.dedup_analysis().unwrap();
        assert!(
            analysis.pages_saved() >= 16,
            "clones must be fully shareable: {analysis:?}"
        );

        let mut ksm = vmm.ksm_manager(rvisor_memory::KsmConfig::default());
        assert_eq!(ksm.vm_count(), 3);
        ksm.scan_until_stable(6).unwrap();
        assert!(ksm.stats().pages_saved() >= 16);
        assert!(ksm.stats().pages_saved() <= analysis.pages_saved());
    }

    #[test]
    fn compressed_migration_config_is_honoured_by_the_manager() {
        use rvisor_migrate::PageCompression;

        let run = |compression: PageCompression| {
            let (mut source, id) = loaded_vmm_with_marker();
            let mut dest = Vmm::new("dest");
            let mut link = Link::new(LinkModel::gigabit());
            let config = MigrationConfig {
                compression,
                ..Default::default()
            };
            let (dest_id, report) = source
                .migrate_to_with_config(id, &mut dest, &mut link, MigrationOutcome::PreCopy, config)
                .unwrap();
            let dest_vm = dest.vm(dest_id).unwrap();
            assert_eq!(
                dest_vm.memory().read_u64(GuestAddress(0x2000)).unwrap(),
                0xfeedface
            );
            report
        };
        let raw = run(PageCompression::None);
        let compressed = run(PageCompression::ZeroPages);
        // A mostly-empty 4 MiB guest shrinks dramatically under zero-page detection.
        assert!(compressed.bytes_transferred < raw.bytes_transferred / 4);
    }

    #[test]
    fn multi_stream_migration_matches_the_serial_stream() {
        use std::num::NonZeroUsize;

        for outcome in [
            MigrationOutcome::StopAndCopy,
            MigrationOutcome::PreCopy,
            MigrationOutcome::PostCopy,
        ] {
            let run = |streams: usize| {
                let (mut source, id) = loaded_vmm_with_marker();
                let mut dest = Vmm::new("dest");
                let mut link = Link::new(LinkModel::gigabit());
                let config = MigrationConfig {
                    streams: NonZeroUsize::new(streams).unwrap(),
                    ..Default::default()
                };
                let mut transport = rvisor_migrate::LoopbackTransport::new(&mut link);
                let (dest_id, report) = source
                    .migrate_to_over(id, &mut dest, &mut transport, outcome, config)
                    .unwrap();
                let checksum = dest.vm(dest_id).unwrap().memory().checksum();
                (report, checksum)
            };
            let (serial, serial_sum) = run(1);
            let (parallel, parallel_sum) = run(4);
            assert_eq!(parallel, serial, "{outcome:?}");
            assert_eq!(parallel_sum, serial_sum, "{outcome:?}: memory diverged");
        }
    }

    #[test]
    fn planned_migration_observes_and_carries_the_dirty_rate() {
        let mut source = Vmm::new("source");
        let id = source.create_vm(config("hot")).unwrap();
        {
            let vm = source.vm_mut(id).unwrap();
            let w = Workload::new(WorkloadKind::MemoryDirty {
                pages: 64,
                passes: 5_000,
            })
            .unwrap();
            vm.load_workload(&w).unwrap();
        }
        assert_eq!(source.observed_dirty_rate(id), None);

        // A pre-copy migration measures the guest's dirty rate and records
        // it on the destination under the VM's new id.
        let mut hop1 = Vmm::new("hop1");
        let mut link = Link::new(LinkModel::gigabit());
        let (id1, _) = source
            .migrate_to(id, &mut hop1, &mut link, MigrationOutcome::PreCopy)
            .unwrap();
        let rate = hop1
            .observed_dirty_rate(id1)
            .expect("pre-copy must observe a dirty-hot guest");
        assert!(rate > 0);

        // A fault-lane post-copy plan executes (fault lane + background
        // sweep = 2 rounds) and carries the earlier observation forward
        // even though post-copy measures nothing itself.
        let mut hop2 = Vmm::new("hop2");
        let mut link = Link::new(LinkModel::gigabit());
        let mut transport = LoopbackTransport::new(&mut link);
        let plan = MigrationPlan::builder(PlanEngine::PostCopy)
            .fault_service(FaultService::FaultLane)
            .build()
            .unwrap();
        let (id2, report) = hop1
            .migrate_to_planned_traced(id1, &mut hop2, &mut transport, &plan, &Trace::off())
            .unwrap();
        assert_eq!(report.rounds, 2, "fault lane + background sweep");
        assert!(report.remote_faults > 0);
        assert_eq!(hop2.observed_dirty_rate(id2), Some(rate));
        assert_eq!(hop1.observed_dirty_rate(id1), None);
    }

    #[test]
    fn precopy_downtime_beats_stop_and_copy_at_the_manager_level() {
        let (mut s1, id1) = loaded_vmm_with_marker();
        let mut d1 = Vmm::new("d1");
        let mut link1 = Link::new(LinkModel::gigabit());
        let (_, pre) = s1
            .migrate_to(id1, &mut d1, &mut link1, MigrationOutcome::PreCopy)
            .unwrap();

        let (mut s2, id2) = loaded_vmm_with_marker();
        let mut d2 = Vmm::new("d2");
        let mut link2 = Link::new(LinkModel::gigabit());
        let (_, stop) = s2
            .migrate_to(id2, &mut d2, &mut link2, MigrationOutcome::StopAndCopy)
            .unwrap();

        assert!(pre.downtime <= stop.downtime);
    }
}
